"""Carbon-intensity forecasting building blocks."""

import numpy as np
import pytest

from repro.carbon.forecast import (
    DiurnalForecaster,
    PersistenceForecaster,
    forecast_mae,
)
from repro.carbon.generator import CISO_MARCH, generate_trace
from repro.carbon.intensity import CarbonIntensityTrace


@pytest.fixture(scope="module")
def solar_trace():
    return generate_trace(CISO_MARCH, days=6.0, rng=7)


class TestPersistence:
    def test_prediction_is_current_value(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        assert f.predict(30.0, 6.0) == pytest.approx(solar_trace.at(30.0))

    def test_horizon_zero_is_exact(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        assert forecast_mae(f, solar_trace, horizon_h=0.0) == pytest.approx(0.0)

    def test_negative_horizon_rejected(self, solar_trace):
        with pytest.raises(ValueError):
            PersistenceForecaster(solar_trace).predict(30.0, -1.0)


class TestDiurnal:
    def test_beats_persistence_at_multi_hour_horizons(self, solar_trace):
        """The entire point: grid intensity is diurnal, so climatology beats
        persistence from a few hours out."""
        p = PersistenceForecaster(solar_trace)
        d = DiurnalForecaster(solar_trace)
        for horizon in (6.0, 12.0):
            assert forecast_mae(d, solar_trace, horizon) < forecast_mae(
                p, solar_trace, horizon
            )

    def test_short_horizon_tracks_current_anomaly(self, solar_trace):
        """At tiny horizons the forecast stays near the current value."""
        d = DiurnalForecaster(solar_trace)
        t = 40.0
        now = solar_trace.at(t)
        assert d.predict(t, 0.0) == pytest.approx(now, abs=25.0)

    def test_no_lookahead(self):
        """Climatology must ignore samples after the query time."""
        t = np.arange(0.0, 96.0, 1.0)
        v = np.where(t < 48.0, 100.0, 300.0)  # regime change at t=48
        trace = CarbonIntensityTrace(times_h=t, values=np.maximum(v, 1.0))
        d = DiurnalForecaster(trace)
        # Querying at t=40 must know nothing about the later 300s.
        assert d.predict(40.0, 6.0) == pytest.approx(100.0, abs=1.0)

    def test_insufficient_history_raises(self, solar_trace):
        d = DiurnalForecaster(solar_trace)
        with pytest.raises(ValueError):
            d.predict(-10.0, 1.0)

    def test_bad_halflife_rejected(self, solar_trace):
        with pytest.raises(ValueError):
            DiurnalForecaster(solar_trace, anomaly_halflife_h=0.0)


class TestForecastMae:
    def test_requires_room_for_horizon(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        with pytest.raises(ValueError):
            forecast_mae(f, solar_trace, horizon_h=1e6)

    def test_step_must_be_positive(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        with pytest.raises(ValueError):
            forecast_mae(f, solar_trace, 1.0, step_h=0.0)
