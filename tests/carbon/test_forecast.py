"""Carbon-intensity forecasting building blocks."""

import numpy as np
import pytest

from repro.carbon.forecast import (
    DiurnalForecaster,
    FORECASTER_NAMES,
    PersistenceForecaster,
    forecast_mae,
    make_forecaster,
)
from repro.carbon.generator import CISO_MARCH, generate_trace
from repro.carbon.intensity import CarbonIntensityTrace


@pytest.fixture(scope="module")
def solar_trace():
    return generate_trace(CISO_MARCH, days=6.0, rng=7)


class TestPersistence:
    def test_prediction_is_current_value(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        assert f.predict(30.0, 6.0) == pytest.approx(solar_trace.at(30.0))

    def test_horizon_zero_is_exact(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        assert forecast_mae(f, solar_trace, horizon_h=0.0) == pytest.approx(0.0)

    def test_negative_horizon_rejected(self, solar_trace):
        with pytest.raises(ValueError):
            PersistenceForecaster(solar_trace).predict(30.0, -1.0)


class TestDiurnal:
    def test_beats_persistence_at_multi_hour_horizons(self, solar_trace):
        """The entire point: grid intensity is diurnal, so climatology beats
        persistence from a few hours out."""
        p = PersistenceForecaster(solar_trace)
        d = DiurnalForecaster(solar_trace)
        for horizon in (6.0, 12.0):
            assert forecast_mae(d, solar_trace, horizon) < forecast_mae(
                p, solar_trace, horizon
            )

    def test_short_horizon_tracks_current_anomaly(self, solar_trace):
        """At tiny horizons the forecast stays near the current value."""
        d = DiurnalForecaster(solar_trace)
        t = 40.0
        now = solar_trace.at(t)
        assert d.predict(t, 0.0) == pytest.approx(now, abs=25.0)

    def test_no_lookahead(self):
        """Climatology must ignore samples after the query time."""
        t = np.arange(0.0, 96.0, 1.0)
        v = np.where(t < 48.0, 100.0, 300.0)  # regime change at t=48
        trace = CarbonIntensityTrace(times_h=t, values=np.maximum(v, 1.0))
        d = DiurnalForecaster(trace)
        # Querying at t=40 must know nothing about the later 300s.
        assert d.predict(40.0, 6.0) == pytest.approx(100.0, abs=1.0)

    def test_insufficient_history_raises(self, solar_trace):
        d = DiurnalForecaster(solar_trace)
        with pytest.raises(ValueError):
            d.predict(-10.0, 1.0)

    def test_bad_halflife_rejected(self, solar_trace):
        with pytest.raises(ValueError):
            DiurnalForecaster(solar_trace, anomaly_halflife_h=0.0)

    def test_midnight_wraparound(self, solar_trace):
        """A horizon crossing midnight reads the next day's early-morning
        climatology bin, not an out-of-range index."""
        d = DiurnalForecaster(solar_trace)
        crossing = d.predict(71.0, 3.0)  # 23:00 + 3 h → 02:00 next day
        profile = d._climatology(71.0)
        anchor = profile[2]  # the 02:00 bin
        # The prediction is the 02:00 climatology plus a decayed anomaly.
        anomaly = float(solar_trace.at(71.0)) - profile[23]
        decay = 0.5 ** (3.0 / d.anomaly_halflife_h)
        assert crossing == pytest.approx(anchor + decay * anomaly)

    def test_zero_horizon_is_exactly_now(self, solar_trace):
        """At horizon zero the anomaly term cancels the climatology: the
        forecast is the current observation, exactly."""
        d = DiurnalForecaster(solar_trace)
        for t in (26.0, 40.0, 55.5):
            assert d.predict(t, 0.0) == pytest.approx(
                float(solar_trace.at(t)), rel=1e-12
            )

    def test_short_history_falls_back_to_persistence(self, solar_trace):
        """With a single sample of history (a run's first epoch) there is
        no climatology — the forecast degrades to persistence instead of
        raising."""
        d = DiurnalForecaster(solar_trace)
        t = 0.5  # only the t=0 sample is at or before the query
        assert d.predict(t, 6.0) == pytest.approx(float(solar_trace.at(t)))


class TestFactory:
    def test_all_names_construct(self, solar_trace):
        for name in FORECASTER_NAMES:
            f = make_forecaster(name, solar_trace)
            assert f.predict(30.0, 1.0) > 0.0

    def test_kwargs_forwarded(self, solar_trace):
        f = make_forecaster("diurnal", solar_trace, anomaly_halflife_h=2.0)
        assert f.anomaly_halflife_h == 2.0

    def test_unknown_name_raises(self, solar_trace):
        with pytest.raises(ValueError, match="valid"):
            make_forecaster("crystal-ball", solar_trace)


class TestForecastMae:
    def test_requires_room_for_horizon(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        with pytest.raises(ValueError):
            forecast_mae(f, solar_trace, horizon_h=1e6)

    def test_step_must_be_positive(self, solar_trace):
        f = PersistenceForecaster(solar_trace)
        with pytest.raises(ValueError):
            forecast_mae(f, solar_trace, 1.0, step_h=0.0)
