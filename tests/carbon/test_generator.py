"""Synthetic grid-profile generator."""

import numpy as np
import pytest

from repro.carbon.generator import (
    CISO_MARCH,
    ESO_MARCH,
    GridProfile,
    generate_trace,
)


class TestGenerateTrace:
    def test_span_matches_days(self):
        tr = generate_trace(CISO_MARCH, days=3.0, rng=0)
        assert tr.span_h == pytest.approx(72.0)

    def test_reproducible_with_seed(self):
        a = generate_trace(CISO_MARCH, days=1.0, rng=5)
        b = generate_trace(CISO_MARCH, days=1.0, rng=5)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = generate_trace(CISO_MARCH, days=1.0, rng=1)
        b = generate_trace(CISO_MARCH, days=1.0, rng=2)
        assert not np.array_equal(a.values, b.values)

    def test_respects_floor(self):
        tr = generate_trace(ESO_MARCH, days=14.0, rng=3)
        assert tr.min() >= ESO_MARCH.floor

    def test_solar_trough_at_midday(self):
        """The duck curve: midday intensity is below the nightly level."""
        tr = generate_trace(CISO_MARCH, days=10.0, rng=4)
        hod = tr.times_h % 24.0
        midday = tr.values[(hod >= 11.0) & (hod <= 14.0)].mean()
        night = tr.values[(hod >= 0.0) & (hod <= 4.0)].mean()
        assert midday < night - 50.0

    def test_eso_more_volatile_than_ciso(self):
        """Wind-dominated UK swings harder than solar-dominated CA when the
        diurnal template is removed."""
        ciso = generate_trace(CISO_MARCH, days=14.0, rng=6)
        eso = generate_trace(ESO_MARCH, days=14.0, rng=6)
        # Hour-over-hour changes isolate the stochastic part.
        assert np.abs(np.diff(eso.values)).mean() > np.abs(
            np.diff(ciso.values)
        ).mean()

    def test_sub_hourly_step(self):
        tr = generate_trace(CISO_MARCH, days=1.0, step_h=0.25, rng=7)
        assert len(tr) == pytest.approx(97, abs=1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            generate_trace(CISO_MARCH, days=0.0)
        with pytest.raises(ValueError):
            generate_trace(CISO_MARCH, days=1.0, step_h=0.0)


class TestGridProfileValidation:
    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            GridProfile(
                name="bad", base=-1.0, solar_depth=0.0, solar_center_h=12.0,
                solar_width_h=3.0, morning_peak=0.0, evening_peak=0.0,
                noise_std=1.0, noise_corr=0.5,
            )

    def test_bad_correlation_rejected(self):
        with pytest.raises(ValueError):
            GridProfile(
                name="bad", base=100.0, solar_depth=0.0, solar_center_h=12.0,
                solar_width_h=3.0, morning_peak=0.0, evening_peak=0.0,
                noise_std=1.0, noise_corr=1.0,
            )
