"""The embedded 48-hour evaluation traces (paper Fig. 8)."""

import numpy as np

from repro.carbon.traces import (
    EVALUATION_SPAN_HOURS,
    ciso_march_48h,
    ciso_september_48h,
    eso_march_48h,
    evaluation_traces,
    trace_by_name,
)


class TestEvaluationTraces:
    def test_all_span_48_hours(self):
        for tr in evaluation_traces().values():
            assert tr.span_h == EVALUATION_SPAN_HOURS

    def test_traces_are_cached_and_stable(self):
        a, b = ciso_march_48h(), ciso_march_48h()
        assert a is b

    def test_ciso_march_range_matches_fig8(self):
        """Fig. 8's CISO March axis runs ~100-350 gCO2/kWh."""
        tr = ciso_march_48h()
        assert 60.0 <= tr.min() <= 160.0
        assert 280.0 <= tr.max() <= 400.0

    def test_ciso_september_range_matches_fig8(self):
        tr = ciso_september_48h()
        assert 60.0 <= tr.min() <= 170.0
        assert 240.0 <= tr.max() <= 360.0

    def test_eso_march_range_matches_fig8(self):
        """Fig. 8's ESO March axis runs ~50-300 gCO2/kWh."""
        tr = eso_march_48h()
        assert tr.min() <= 120.0
        assert 220.0 <= tr.max() <= 380.0

    def test_enough_variation_to_trigger_reoptimization(self):
        """Every trace must cross the 5% change threshold many times, or
        the carbon-aware schemes would never re-invoke."""
        for tr in evaluation_traces().values():
            rel = np.abs(np.diff(tr.values)) / tr.values[:-1]
            assert (rel > 0.05).sum() >= 10

    def test_lookup_by_name(self):
        assert trace_by_name("ciso-march") is ciso_march_48h()
        assert trace_by_name("ESO-MARCH") is eso_march_48h()

    def test_unknown_name_raises(self):
        import pytest

        with pytest.raises(KeyError, match="valid"):
            trace_by_name("texas")

    def test_traces_are_distinct(self):
        vals = [tuple(tr.values) for tr in evaluation_traces().values()]
        assert len(set(vals)) == 3
