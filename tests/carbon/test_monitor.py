"""The 5% change-detection trigger."""

import numpy as np
import pytest

from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.monitor import CarbonIntensityMonitor


def trace_from(values, step=1.0):
    v = np.asarray(values, dtype=float)
    return CarbonIntensityTrace(
        times_h=np.arange(len(v)) * step, values=v, interpolation="step"
    )


class TestTriggerRule:
    def test_first_observation_always_triggers(self):
        m = CarbonIntensityMonitor(trace_from([100, 100]))
        assert m.should_trigger(0.0)

    def test_no_trigger_below_threshold(self):
        m = CarbonIntensityMonitor(trace_from([100, 104, 100]))
        m.mark_optimized(0.0)
        assert not m.should_trigger(1.0)  # +4% < 5%

    def test_trigger_above_threshold(self):
        m = CarbonIntensityMonitor(trace_from([100, 106]))
        m.mark_optimized(0.0)
        assert m.should_trigger(1.0)  # +6% > 5%

    def test_decrease_also_triggers(self):
        m = CarbonIntensityMonitor(trace_from([100, 94]))
        m.mark_optimized(0.0)
        assert m.should_trigger(1.0)

    def test_reference_is_last_optimization_not_last_observation(self):
        """Drift accumulates: +3% then +3% crosses the 5% threshold even
        though no single step does."""
        m = CarbonIntensityMonitor(trace_from([100, 103, 106.1]))
        m.mark_optimized(0.0)
        assert not m.should_trigger(1.0)
        assert m.should_trigger(2.0)

    def test_mark_optimized_resets_reference(self):
        m = CarbonIntensityMonitor(trace_from([100, 106, 106]))
        m.mark_optimized(0.0)
        assert m.should_trigger(1.0)
        m.mark_optimized(1.0)
        assert not m.should_trigger(2.0)

    def test_reset_forgets_reference(self):
        m = CarbonIntensityMonitor(trace_from([100, 100]))
        m.mark_optimized(0.0)
        m.reset()
        assert m.should_trigger(1.0)

    def test_custom_threshold(self):
        m = CarbonIntensityMonitor(trace_from([100, 106]), threshold=0.10)
        m.mark_optimized(0.0)
        assert not m.should_trigger(1.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CarbonIntensityMonitor(trace_from([100, 100]), threshold=0.0)


class TestOfflinePreview:
    def test_trigger_times_match_stateful_simulation(self):
        values = [100, 103, 108, 108, 90, 91, 130]
        m = CarbonIntensityMonitor(trace_from(values))
        times = np.arange(len(values), dtype=float)
        preview = m.trigger_times(times)

        live = CarbonIntensityMonitor(trace_from(values))
        expected = []
        for t in times:
            fired = live.should_trigger(t)
            expected.append(fired)
            if fired:
                live.mark_optimized(t)
        assert preview.tolist() == expected

    def test_preview_does_not_mutate_state(self):
        m = CarbonIntensityMonitor(trace_from([100, 200]))
        m.trigger_times(np.array([0.0, 1.0]))
        assert m.reference_ci is None
