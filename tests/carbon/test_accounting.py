"""Energy-to-carbon accounting arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.carbon.accounting import (
    CarbonAccountant,
    DEFAULT_PUE,
    carbon_grams,
    joules_to_kwh,
)


class TestConversions:
    def test_joules_to_kwh(self):
        assert joules_to_kwh(3.6e6) == 1.0

    def test_carbon_of_one_kwh(self):
        # 1 kWh at 200 g/kWh with PUE 1.5 -> 300 g.
        assert carbon_grams(3.6e6, 200.0) == pytest.approx(300.0)

    def test_pue_one_is_it_energy_only(self):
        assert carbon_grams(3.6e6, 200.0, pue=1.0) == pytest.approx(200.0)

    def test_zero_energy_zero_carbon(self):
        assert carbon_grams(0.0, 100.0) == 0.0

    @given(
        e=st.floats(min_value=0, max_value=1e12),
        ci=st.floats(min_value=1, max_value=1000),
    )
    def test_linearity_in_energy_and_intensity(self, e, ci):
        assert carbon_grams(e, ci) == pytest.approx(
            joules_to_kwh(e) * DEFAULT_PUE * ci
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            carbon_grams(-1.0, 100.0)
        with pytest.raises(ValueError):
            carbon_grams(1.0, 0.0)
        with pytest.raises(ValueError):
            carbon_grams(1.0, 100.0, pue=0.9)


class TestCarbonAccountant:
    def test_accumulates(self):
        acc = CarbonAccountant()
        g1 = acc.record(3.6e6, 100.0, requests=10)
        g2 = acc.record(3.6e6, 300.0, requests=30)
        assert acc.total_energy_j == pytest.approx(7.2e6)
        assert acc.total_carbon_g == pytest.approx(g1 + g2)
        assert acc.total_requests == 40
        assert acc.epochs == 2

    def test_per_request_averages(self):
        acc = CarbonAccountant(pue=1.0)
        acc.record(1000.0, 360.0, requests=10)  # 0.1 g total
        assert acc.joules_per_request == pytest.approx(100.0)
        assert acc.grams_per_request == pytest.approx(0.01)

    def test_per_request_without_requests_raises(self):
        acc = CarbonAccountant()
        acc.record(10.0, 100.0)
        with pytest.raises(ValueError):
            _ = acc.grams_per_request

    def test_additivity_vs_single_shot(self):
        """Accounting in two epochs at the same intensity must equal one
        epoch with the summed energy (the ledger is linear)."""
        split = CarbonAccountant()
        split.record(1e6, 250.0)
        split.record(2e6, 250.0)
        whole = CarbonAccountant()
        whole.record(3e6, 250.0)
        assert split.total_carbon_g == pytest.approx(whole.total_carbon_g)

    def test_invalid_pue(self):
        with pytest.raises(ValueError):
            CarbonAccountant(pue=0.5)

    def test_negative_requests_rejected(self):
        with pytest.raises(ValueError):
            CarbonAccountant().record(1.0, 1.0, requests=-1)
