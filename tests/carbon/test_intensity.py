"""Carbon-intensity trace queries and interpolation."""

import numpy as np
import pytest

from repro.carbon.intensity import CarbonIntensityTrace


def make_trace(interpolation="linear"):
    return CarbonIntensityTrace(
        times_h=np.array([0.0, 1.0, 2.0, 3.0]),
        values=np.array([100.0, 200.0, 150.0, 300.0]),
        name="t",
        interpolation=interpolation,
    )


class TestQueries:
    def test_at_sample_points(self):
        tr = make_trace()
        assert tr.at(1.0) == 200.0
        assert tr.at(3.0) == 300.0

    def test_linear_interpolation(self):
        assert make_trace().at(0.5) == pytest.approx(150.0)

    def test_step_interpolation_holds_previous(self):
        tr = make_trace("step")
        assert tr.at(0.99) == 100.0
        assert tr.at(1.0) == 200.0

    def test_clamped_outside_span(self):
        tr = make_trace()
        assert tr.at(-5.0) == 100.0
        assert tr.at(99.0) == 300.0

    def test_vectorized_query(self):
        tr = make_trace()
        out = tr.at(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [100.0, 150.0, 200.0])

    def test_scalar_query_returns_float(self):
        assert isinstance(make_trace().at(1.5), float)

    def test_span_and_extrema(self):
        tr = make_trace()
        assert tr.span_h == 3.0
        assert tr.min() == 100.0
        assert tr.max() == 300.0

    def test_mean_is_time_weighted(self):
        tr = CarbonIntensityTrace(
            times_h=np.array([0.0, 1.0, 3.0]),
            values=np.array([100.0, 100.0, 300.0]),
        )
        # Trapezoid: 1h at 100 + 2h averaging 200 -> (100 + 400)/3.
        assert tr.mean() == pytest.approx(500.0 / 3.0)

    def test_len(self):
        assert len(make_trace()) == 4


class TestWindow:
    def test_window_preserves_values(self):
        tr = make_trace()
        w = tr.window(0.5, 2.5)
        assert w.span_h == pytest.approx(2.0)
        assert w.at(1.0) == pytest.approx(200.0)
        assert w.at(0.5) == pytest.approx(150.0)

    def test_window_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_trace().window(-1.0, 2.0)
        with pytest.raises(ValueError):
            make_trace().window(2.0, 1.0)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace(
                times_h=np.array([0.0, 1.0]), values=np.array([100.0])
            )

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace(
                times_h=np.array([0.0]), values=np.array([100.0])
            )

    def test_nonincreasing_times_rejected(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace(
                times_h=np.array([0.0, 0.0]), values=np.array([1.0, 2.0])
            )

    def test_nonpositive_intensity_rejected(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace(
                times_h=np.array([0.0, 1.0]), values=np.array([10.0, 0.0])
            )

    def test_bad_interpolation_rejected(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace(
                times_h=np.array([0.0, 1.0]),
                values=np.array([1.0, 2.0]),
                interpolation="cubic",
            )

    def test_arrays_readonly(self):
        tr = make_trace()
        with pytest.raises(ValueError):
            tr.values[0] = 5.0
