"""Embodied-carbon amortization (the Fig. 15 implication)."""

import pytest

from repro.carbon.embodied import EmbodiedCarbonModel, TotalCarbonBreakdown


class TestEmbodiedModel:
    def test_amortization_arithmetic(self):
        m = EmbodiedCarbonModel(kg_co2e_per_gpu=150.0, lifetime_years=4.0)
        hours = 4.0 * 365.25 * 24.0
        assert m.grams_per_gpu_hour == pytest.approx(150_000.0 / hours)

    def test_embodied_scales_with_fleet_and_time(self):
        m = EmbodiedCarbonModel()
        one = m.embodied_g(1, 48.0)
        assert m.embodied_g(10, 48.0) == pytest.approx(10 * one)
        assert m.embodied_g(1, 96.0) == pytest.approx(2 * one)

    def test_zero_cases(self):
        m = EmbodiedCarbonModel()
        assert m.embodied_g(0, 48.0) == 0.0
        assert m.embodied_g(5, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbodiedCarbonModel(kg_co2e_per_gpu=0.0)
        with pytest.raises(ValueError):
            EmbodiedCarbonModel(lifetime_years=-1.0)
        with pytest.raises(ValueError):
            EmbodiedCarbonModel().embodied_g(-1, 1.0)


class TestBreakdown:
    def test_totals_and_fraction(self):
        m = EmbodiedCarbonModel()
        b = m.breakdown(operational_g=900.0, n_gpus=10, duration_h=48.0)
        assert b.total_g == pytest.approx(b.operational_g + b.embodied_g)
        assert 0.0 < b.embodied_fraction < 1.0

    def test_fig15_story_fewer_gpus_save_total_carbon(self):
        """The paper's takeaway: a 2-GPU Clover deployment beats the 10-GPU
        BASE on total (operational + embodied) carbon even before the
        operational saving — here with *equal* operational carbon the
        embodied share alone separates them."""
        m = EmbodiedCarbonModel()
        big = m.breakdown(operational_g=1000.0, n_gpus=10, duration_h=48.0)
        small = m.breakdown(operational_g=1000.0, n_gpus=2, duration_h=48.0)
        assert small.saving_vs(big) > 0.0

    def test_saving_vs_requires_positive_reference(self):
        z = TotalCarbonBreakdown(
            operational_g=0.0, embodied_g=0.0, n_gpus=0, duration_h=0.0
        )
        b = EmbodiedCarbonModel().breakdown(1.0, 1, 1.0)
        with pytest.raises(ValueError):
            b.saving_vs(z)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            TotalCarbonBreakdown(
                operational_g=-1.0, embodied_g=0.0, n_gpus=1, duration_h=1.0
            )
