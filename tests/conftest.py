"""Shared fixtures for the reproduction's test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo, default_zoo


@pytest.fixture(scope="session")
def zoo() -> ModelZoo:
    return default_zoo()


@pytest.fixture(scope="session")
def perf() -> PerfModel:
    return PerfModel()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
