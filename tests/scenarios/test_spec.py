"""ScenarioSpec construction, validation and serialization round-trips."""

import dataclasses

import pytest

from repro.scenarios import (
    BatchSpec,
    DemandSpec,
    GatingSpec,
    RegionSpec,
    RoutingSpec,
    ScenarioSpec,
    spec_from_dict,
    spec_from_json,
    spec_from_toml,
    spec_to_dict,
    spec_to_json,
    spec_to_toml,
)


def minimal(**overrides) -> ScenarioSpec:
    base = dict(regions=(RegionSpec(name="us-ciso"),))
    base.update(overrides)
    return ScenarioSpec(**base)


#: A spec exercising every serializable field kind: per-region overrides
#: (n_gpus, devices as str and tuple, scheme), all three sub-specs, floats,
#: bools and the optional label.
KITCHEN_SINK = ScenarioSpec(
    name="kitchen-sink",
    regions=(
        RegionSpec(name="us-ciso", scheme="co2opt", n_gpus=3),
        RegionSpec(name="uk-eso", devices="l4"),
        RegionSpec(name="apac-solar", devices=("a100", "l4")),
    ),
    application="classification",
    scheme="clover",
    fidelity="smoke",
    seed=7,
    n_gpus=2,
    lambda_weight=0.3,
    duration_h=12.0,
    net_latency_ms=12.5,
    routing=RoutingSpec(
        router="forecast-aware", lookahead_h=4.0, forecaster="persistence",
        efficiency_weighted=True,
    ),
    demand=DemandSpec(
        kind="diurnal", scale=0.7, ramp_share_per_h=0.1,
        drain_share_per_h=0.2,
    ),
    gating=GatingSpec(mode="forecast", wake_energy_j=500.0),
    batch=BatchSpec(
        jobs_per_h=120.0, requests_per_job=50.0, deadline_h=6.0,
        arrival="business-hours", preemptible=False,
        accuracy_floor_pct=97.0, defer=True,
    ),
    shared_cache=False,
    parallel_regions=2,
)


class TestValidation:
    def test_minimal_defaults(self):
        spec = minimal()
        assert spec.region_names == ("us-ciso",)
        assert spec.region_schemes == ("clover",)
        assert not spec.is_mixed_scheme
        assert spec.shared_cache is True

    def test_needs_a_region(self):
        with pytest.raises(ValueError, match="at least one region"):
            ScenarioSpec(regions=())

    def test_unknown_region_lists_registry(self):
        with pytest.raises(ValueError, match="valid: .*us-ciso"):
            RegionSpec(name="atlantis")

    def test_unknown_scheme_listed(self):
        with pytest.raises(ValueError, match="valid: .*clover"):
            minimal(scheme="maximizer")
        with pytest.raises(ValueError, match="valid: .*clover"):
            RegionSpec(name="us-ciso", scheme="maximizer")

    def test_unknown_router_listed(self):
        with pytest.raises(ValueError, match="valid: .*carbon-greedy"):
            RoutingSpec(router="carrier-pigeon")

    def test_unknown_device_listed(self):
        with pytest.raises(ValueError, match="valid: .*a100"):
            RegionSpec(name="us-ciso", devices="tpu")

    def test_unknown_fidelity_listed(self):
        with pytest.raises(ValueError, match="valid: .*smoke"):
            minimal(fidelity="warp")

    def test_unknown_application_listed(self):
        with pytest.raises(ValueError, match="valid: .*classification"):
            minimal(application="astrology")

    def test_unknown_forecaster_listed(self):
        with pytest.raises(ValueError, match="valid: .*diurnal"):
            RoutingSpec(forecaster="diurnall")

    def test_duplicate_regions_rejected(self):
        with pytest.raises(ValueError, match="duplicate region"):
            ScenarioSpec(
                regions=(RegionSpec(name="us-ciso"), RegionSpec(name="us-ciso"))
            )

    def test_intensity_only_needs_efficiency_router(self):
        with pytest.raises(ValueError, match="intensity-only"):
            RoutingSpec(router="static", efficiency_weighted=False)

    def test_wake_energy_needs_gating_mode(self):
        with pytest.raises(ValueError, match="gating mode"):
            GatingSpec(wake_energy_j=100.0)

    def test_demand_scale_needs_demand_kind(self):
        with pytest.raises(ValueError, match="demand kind"):
            minimal(demand=DemandSpec(scale=0.5))

    def test_ramp_allowed_without_demand_kind(self):
        """Migration limits bind constant-demand fleets too (PR-2 CLI)."""
        spec = minimal(demand=DemandSpec(ramp_share_per_h=0.1))
        assert spec.demand.ramp_share_per_h == 0.1

    def test_parallel_regions_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            minimal(parallel_regions=0)

    def test_specs_are_hashable_memo_keys(self):
        assert hash(minimal()) == hash(minimal())
        assert minimal() == minimal()
        assert minimal(seed=1) != minimal(seed=2)


class TestOverride:
    def test_top_level_override(self):
        assert minimal().override("seed", 9).seed == 9

    def test_nested_override(self):
        spec = minimal().override("gating.mode", "reactive")
        assert spec.gating.mode == "reactive"

    def test_unknown_path_actionable(self):
        with pytest.raises(ValueError, match="valid: .*routing"):
            minimal().override("routr.router", "static")
        with pytest.raises(ValueError, match="valid: .*router"):
            minimal().override("routing.routr", "static")

    def test_sub_spec_needs_dotted_path(self):
        with pytest.raises(ValueError, match="sub-spec"):
            minimal().override("routing", RoutingSpec())

    def test_override_still_validates(self):
        with pytest.raises(ValueError, match="valid:"):
            minimal().override("routing.router", "carrier-pigeon")


class TestRoundTrips:
    @pytest.mark.parametrize(
        "spec",
        [
            minimal(),
            KITCHEN_SINK,
            minimal(duration_h=24.0, net_latency_ms=0.0),
            minimal(
                regions=(
                    RegionSpec(name="nordic-hydro", scheme="co2opt"),
                    RegionSpec(name="us-ciso"),
                ),
                routing=RoutingSpec(router="carbon-greedy"),
            ),
        ],
        ids=["minimal", "kitchen-sink", "zero-latency", "mixed-scheme"],
    )
    def test_toml_and_json_round_trip_identity(self, spec):
        assert spec_from_toml(spec_to_toml(spec)) == spec
        assert spec_from_json(spec_to_json(spec)) == spec
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_omitted_none_fields_default(self):
        """TOML has no null: None fields are omitted and default back."""
        data = spec_to_dict(minimal())
        assert "duration_h" not in data
        assert spec_from_dict(data).duration_h is None

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key.*'bananas'"):
            spec_from_dict(
                {"regions": [{"name": "us-ciso"}], "bananas": 3}
            )

    def test_unknown_section_key_names_section(self):
        with pytest.raises(ValueError, match=r"\[routing\]"):
            spec_from_dict(
                {
                    "regions": [{"name": "us-ciso"}],
                    "routing": {"routr": "static"},
                }
            )

    def test_unknown_region_key_names_entry(self):
        with pytest.raises(ValueError, match=r"\[\[regions\]\] entry 1"):
            spec_from_dict(
                {
                    "regions": [
                        {"name": "us-ciso"},
                        {"name": "uk-eso", "gpus": 4},
                    ]
                }
            )

    def test_missing_regions_actionable(self):
        with pytest.raises(ValueError, match=r"\[\[regions\]\]"):
            spec_from_dict({"scheme": "clover"})

    def test_control_characters_in_name_round_trip(self):
        """The TOML emitter escapes control characters, so any name
        ScenarioSpec accepts survives a save/reload."""
        spec = minimal(name='a\nb\t"c"\\d\x01')
        assert spec_from_toml(spec_to_toml(spec)) == spec

    def test_typoed_section_error_lists_sections(self):
        with pytest.raises(ValueError, match="valid: .*routing"):
            spec_from_dict(
                {"regions": [{"name": "us-ciso"}], "routin": {"router": "x"}}
            )

    def test_toml_integers_coerce_to_float_fields(self):
        spec = spec_from_toml(
            "duration_h = 24\n\n[[regions]]\nname = \"us-ciso\"\n"
        )
        assert spec.duration_h == 24.0
        assert isinstance(spec.duration_h, float)

    def test_device_lists_become_tuples(self):
        spec = spec_from_dict(
            {"regions": [{"name": "us-ciso", "devices": ["a100", "l4"]}],
             "n_gpus": 2}
        )
        assert spec.regions[0].devices == ("a100", "l4")

    def test_round_trip_preserves_field_coverage(self):
        """Every ScenarioSpec field is either serialized or deliberately
        defaulted — a new field cannot silently drop out of the files."""
        data = spec_to_dict(KITCHEN_SINK)
        field_names = {f.name for f in dataclasses.fields(ScenarioSpec)}
        assert set(data) == field_names
