"""Sweep expansion and (parallel) execution."""

import pytest

from repro.scenarios import (
    RegionSpec,
    RoutingSpec,
    Scenario,
    ScenarioSpec,
    expand,
    run_sweep,
    sweep,
)


def base_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        regions=(RegionSpec(name="us-ciso"), RegionSpec(name="nordic-hydro")),
        scheme="base",
        fidelity="smoke",
        n_gpus=2,
        duration_h=3.0,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestExpand:
    def test_no_axes_is_identity(self):
        spec = base_spec()
        assert expand(spec, {}) == [spec]

    def test_row_major_grid(self):
        grid = expand(
            base_spec(),
            {"routing.router": ["static", "latency"], "seed": [0, 1]},
        )
        assert [(s.routing.router, s.seed) for s in grid] == [
            ("static", 0),
            ("static", 1),
            ("latency", 0),
            ("latency", 1),
        ]

    def test_bad_axis_path_actionable(self):
        with pytest.raises(ValueError, match="valid:"):
            expand(base_spec(), {"routing.routr": ["static"]})

    def test_bad_axis_values_rejected(self):
        with pytest.raises(ValueError, match="sequence of values"):
            expand(base_spec(), {"seed": 3})
        with pytest.raises(ValueError, match="no values"):
            expand(base_spec(), {"seed": []})

    def test_invalid_combination_fails_at_expansion(self):
        with pytest.raises(ValueError, match="valid:"):
            expand(base_spec(), {"routing.router": ["warp-router"]})


class TestRunSweep:
    def test_parallel_equals_serial(self):
        """Acceptance: a parallel sweep returns exactly the serial results
        (scenarios are independent deterministic simulations)."""
        grid = expand(
            base_spec(),
            {"routing.router": ["static", "carbon-greedy"], "seed": [0, 1]},
        )
        assert len(grid) == 4
        serial = run_sweep(grid, workers=None)
        parallel = run_sweep(grid, workers=2)
        for s, p in zip(serial, parallel):
            assert p.total_carbon_g == s.total_carbon_g
            assert p.total_energy_j == s.total_energy_j
            assert p.total_requests == s.total_requests
            assert p.router_name == s.router_name

    def test_duplicate_specs_share_one_run(self):
        spec = base_spec()
        results = run_sweep([spec, spec])
        assert results[0] is results[1]

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            run_sweep([base_spec()], workers=0)

    def test_sweep_wrapper_pairs_specs_with_results(self):
        pairs = sweep(base_spec(), {"seed": [0, 1]})
        assert [spec.seed for spec, _ in pairs] == [0, 1]
        assert all(result.total_requests > 0 for _, result in pairs)


class TestParallelRegionDriver:
    def test_parallel_regions_bit_for_bit_serial(self):
        """The per-epoch thread driver changes wall-clock, not results."""
        serial = Scenario(base_spec()).run()
        threaded = Scenario(base_spec(parallel_regions=2)).run()
        assert threaded.total_carbon_g == serial.total_carbon_g
        assert threaded.total_energy_j == serial.total_energy_j
        assert threaded.total_requests == serial.total_requests
        for s_r, t_r in zip(serial.results, threaded.results):
            assert [e.p95_ms for e in s_r.epochs] == [
                e.p95_ms for e in t_r.epochs
            ]

    def test_parallel_regions_with_demand_and_gating(self):
        from repro.scenarios import DemandSpec, GatingSpec

        fields = dict(
            scheme="clover",
            routing=RoutingSpec(router="carbon-greedy"),
            demand=DemandSpec(kind="diurnal", ramp_share_per_h=0.1,
                              drain_share_per_h=0.2),
            gating=GatingSpec(mode="reactive"),
            duration_h=6.0,
        )
        serial = Scenario(base_spec(**fields)).run()
        threaded = Scenario(base_spec(parallel_regions=2, **fields)).run()
        assert threaded.total_carbon_g == serial.total_carbon_g
        assert threaded.user_sla_attainment == serial.user_sla_attainment
        assert (
            threaded.awake_gpu_series() == serial.awake_gpu_series()
        ).all()
