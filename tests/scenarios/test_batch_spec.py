"""BatchSpec validation, serialization and coordinator wiring."""

import pytest

from repro.scenarios import (
    BatchSpec,
    RegionSpec,
    RoutingSpec,
    ScenarioSpec,
    Scenario,
    spec_from_json,
    spec_from_toml,
    spec_to_json,
    spec_to_toml,
)


def minimal(**overrides) -> ScenarioSpec:
    base = dict(regions=(RegionSpec(name="us-ciso"),))
    base.update(overrides)
    return ScenarioSpec(**base)


class TestBatchSpecValidation:
    def test_default_is_disabled(self):
        spec = BatchSpec()
        assert spec.enabled is False
        assert minimal().batch == spec

    def test_enabled_with_jobs_per_h(self):
        assert BatchSpec(jobs_per_h=120.0).enabled is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(deadline_h=4.0),
            dict(requests_per_job=10.0),
            dict(arrival="uniform"),
            dict(preemptible=False),
            dict(accuracy_floor_pct=95.0),
            dict(defer=False),
        ],
    )
    def test_sub_fields_without_enabler_rejected(self, kwargs):
        """Silent no-ops are configuration bugs: any batch field without
        ``jobs_per_h`` names the enabling field in the error."""
        with pytest.raises(ValueError, match="batch.*jobs_per_h"):
            BatchSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(jobs_per_h=0.0), "jobs per hour"),
            (dict(jobs_per_h=120.0, requests_per_job=-1.0), "requests per job"),
            (dict(jobs_per_h=120.0, deadline_h=0.0), "deadline"),
            (dict(jobs_per_h=120.0, arrival="bursty"), "arrival"),
            (dict(jobs_per_h=120.0, accuracy_floor_pct=150.0), "accuracy floor"),
        ],
    )
    def test_field_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            BatchSpec(**kwargs)


class TestBatchSerialization:
    def test_zero_batch_emits_no_batch_section(self):
        """A batch-free spec's files are byte-identical to pre-batch
        output: no ``[batch]`` table, no ``"batch"`` key."""
        spec = minimal()
        assert "[batch]" not in spec_to_toml(spec)
        assert '"batch"' not in spec_to_json(spec)

    def test_round_trips_exactly(self):
        spec = minimal(
            batch=BatchSpec(
                jobs_per_h=432.0,
                requests_per_job=100.0,
                deadline_h=8.0,
                arrival="business-hours",
                preemptible=False,
                accuracy_floor_pct=96.5,
                defer=True,
            )
        )
        assert spec_from_toml(spec_to_toml(spec)) == spec
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_integer_spelled_floats_coerce(self):
        spec = spec_from_toml(
            'n_gpus = 2\n[[regions]]\nname = "us-ciso"\n'
            "[batch]\njobs_per_h = 120\ndeadline_h = 6\n"
        )
        assert spec.batch.jobs_per_h == 120.0
        assert isinstance(spec.batch.jobs_per_h, float)
        assert isinstance(spec.batch.deadline_h, float)

    def test_override_by_dotted_path(self):
        spec = minimal(batch=BatchSpec(jobs_per_h=120.0))
        bumped = spec.override("batch.jobs_per_h", 240.0)
        assert bumped.batch.jobs_per_h == 240.0
        assert spec.batch.jobs_per_h == 120.0


class TestBatchWiring:
    def test_spec_builds_batch_job_with_overrides(self):
        spec = minimal(
            fidelity="smoke",
            n_gpus=2,
            batch=BatchSpec(
                jobs_per_h=120.0, deadline_h=6.0, arrival="business-hours"
            ),
        )
        coord = Scenario(spec).build()
        assert coord.batch is not None
        assert coord.batch.jobs_per_h == 120.0
        assert coord.batch.deadline_h == 6.0
        assert coord.batch.arrival == "business-hours"
        # Unset fields keep the workload-class defaults.
        assert coord.batch.requests_per_job == 1.0
        assert coord.batch.preemptible is True

    def test_disabled_spec_builds_no_scheduler(self):
        coord = Scenario(minimal(fidelity="smoke", n_gpus=2)).build()
        assert coord.batch is None
        assert coord._batch_scheduler is None


class TestRoutingLookaheadBoundary:
    def test_negative_lookahead_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="lookahead must be non-negative"):
            RoutingSpec(router="forecast-aware", lookahead_h=-1.0)

    def test_zero_lookahead_allowed(self):
        assert RoutingSpec(
            router="forecast-aware", lookahead_h=0.0
        ).lookahead_h == 0.0
