"""Golden tests: the ScenarioSpec path reproduces the legacy path bit for bit.

Two layers of protection against redesign drift:

* **Execution** — ``legacy_run_fleet`` below is a verbatim replica of the
  pre-scenario ``ExperimentRunner.run_fleet`` assembly (direct registry
  lookups, no cache pooling).  For one representative ``FleetSpec`` per
  legacy experiment family (``fig16``/``fleet``/``demand``/``gating``/
  ``hetero``) the scenario path must reproduce its results exactly —
  ``==``, not ``approx`` — which also proves cross-region cache pooling
  changes no number.
* **Spec mapping** — the experiment entries must build exactly the specs
  :func:`scenario_from_fleet_spec` derives from their historical
  ``FleetSpec`` parameters, so the registry entries, the ``fleet`` CLI
  shim and standalone scenario files can never diverge.
"""

from dataclasses import replace as dc_replace

import pytest

from repro.analysis.runner import ExperimentRunner, FleetSpec, scenario_from_fleet_spec
from repro.core.service import FidelityProfile
from repro.fleet import FleetCoordinator, make_gating_policy, region_by_name
from repro.fleet.routing import make_router
from repro.gpu.profiles import parse_region_devices
from repro.scenarios import (
    DemandSpec,
    GatingSpec,
    RegionSpec,
    RoutingSpec,
    ScenarioSpec,
)


def legacy_run_fleet(spec: FleetSpec):
    """Verbatim replica of the pre-scenario ``run_fleet`` assembly."""
    device_specs: tuple
    if spec.devices is None or isinstance(spec.devices, str):
        device_specs = (spec.devices,) * len(spec.region_names)
    else:
        device_specs = spec.devices
    regions = tuple(
        region_by_name(
            name,
            n_gpus=spec.n_gpus,
            devices=None if dev is None else parse_region_devices(dev),
        )
        for name, dev in zip(spec.region_names, device_specs)
    )
    if spec.net_latency_ms is not None:
        regions = tuple(
            dc_replace(r, net_latency_ms=spec.net_latency_ms) for r in regions
        )
    gating = spec.gating
    if gating is not None and spec.wake_energy_j is not None:
        gating = make_gating_policy(gating, wake_energy_j=spec.wake_energy_j)
    router = spec.router
    if not spec.efficiency_weighted:
        router = make_router(spec.router, efficiency_weighted=False)
    fleet = FleetCoordinator.create(
        regions,
        application=spec.application,
        scheme=spec.scheme,
        router=router,
        lambda_weight=spec.lambda_weight,
        fidelity=FidelityProfile.by_name(spec.fidelity),
        seed=spec.seed,
        demand=spec.demand,
        demand_scale=spec.demand_scale,
        ramp_share_per_h=spec.ramp_share_per_h,
        drain_share_per_h=spec.drain_share_per_h,
        lookahead_h=spec.lookahead_h,
        forecaster=spec.forecaster,
        gating=gating,
    )
    return fleet.run(duration_h=spec.duration_h)


#: One representative FleetSpec per legacy experiment family (smoke
#: fidelity, short horizons — the *construction* is what is under test).
GOLDEN_SPECS = {
    "fig16": FleetSpec(
        region_names=("us-ciso",),
        application="classification",
        scheme="clover",
        router="static",
        fidelity="smoke",
        seed=0,
        net_latency_ms=0.0,
        duration_h=6.0,
    ),
    "fleet": FleetSpec(
        region_names=("us-ciso", "uk-eso", "nordic-hydro"),
        router="carbon-greedy",
        fidelity="smoke",
        seed=0,
        n_gpus=2,
        duration_h=6.0,
    ),
    "demand": FleetSpec(
        region_names=("us-ciso", "uk-eso", "apac-solar"),
        router="forecast-aware",
        fidelity="smoke",
        seed=0,
        n_gpus=2,
        duration_h=6.0,
        demand="diurnal",
        ramp_share_per_h=0.10,
        drain_share_per_h=0.20,
        lookahead_h=6.0,
    ),
    "gating": FleetSpec(
        region_names=("us-ciso", "uk-eso", "apac-solar"),
        router="carbon-greedy",
        fidelity="smoke",
        seed=0,
        n_gpus=2,
        duration_h=6.0,
        demand="diurnal",
        ramp_share_per_h=0.10,
        drain_share_per_h=0.20,
        gating="reactive",
    ),
    "hetero": FleetSpec(
        region_names=("us-ciso", "apac-solar"),
        router="carbon-greedy",
        fidelity="smoke",
        seed=0,
        n_gpus=2,
        duration_h=6.0,
        demand="diurnal",
        ramp_share_per_h=0.10,
        drain_share_per_h=0.20,
        gating="reactive",
        wake_energy_j=1000.0,
        devices=("a100", "l4"),
        efficiency_weighted=True,
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_SPECS))
def test_scenario_path_is_bit_for_bit_the_legacy_path(name):
    spec = GOLDEN_SPECS[name]
    legacy = legacy_run_fleet(spec)
    modern = ExperimentRunner().run_fleet(spec)  # shim -> scenario path
    assert modern.total_requests == legacy.total_requests
    assert modern.total_energy_j == legacy.total_energy_j
    assert modern.total_carbon_g == legacy.total_carbon_g
    assert modern.mean_accuracy == legacy.mean_accuracy
    assert modern.sla_attainment == legacy.sla_attainment
    assert modern.router_name == legacy.router_name
    assert modern.scheme_name == legacy.scheme_name
    for new_r, old_r in zip(modern.results, legacy.results):
        assert [e.p95_ms for e in new_r.epochs] == [
            e.p95_ms for e in old_r.epochs
        ]
        assert [e.energy_j for e in new_r.epochs] == [
            e.energy_j for e in old_r.epochs
        ]
        assert [e.requests for e in new_r.epochs] == [
            e.requests for e in old_r.epochs
        ]
    if legacy.has_demand:
        assert modern.user_sla_attainment == legacy.user_sla_attainment
    if legacy.has_gating:
        assert (
            modern.awake_gpu_series() == legacy.awake_gpu_series()
        ).all()


class RecordingRunner(ExperimentRunner):
    """Captures every spec an experiment executes (then runs it)."""

    def __init__(self):
        super().__init__()
        self.specs: list[ScenarioSpec] = []

    def run_scenario(self, spec):
        self.specs.append(spec)
        return super().run_scenario(spec)


class TestExperimentsBuildTheShimSpecs:
    """Each legacy experiment's scenarios == the FleetSpec conversions."""

    def test_fig16(self):
        from repro.analysis.experiments import fig16_geographic

        runner = RecordingRunner()
        fig16_geographic(
            runner,
            fidelity="smoke",
            seed=0,
            applications=("classification",),
            trace_names=("ciso-march",),
        )
        expected = [
            scenario_from_fleet_spec(
                FleetSpec(
                    region_names=("us-ciso",),
                    application="classification",
                    scheme=scheme,
                    router="static",
                    fidelity="smoke",
                    seed=0,
                    net_latency_ms=0.0,
                )
            )
            for scheme in ("base", "clover")
        ]
        assert runner.specs == expected

    def test_fleet(self):
        from repro.analysis.experiments import fleet_load_shifting

        runner = RecordingRunner()
        fleet_load_shifting(
            runner,
            fidelity="smoke",
            seed=0,
            n_gpus=2,
            duration_h=3.0,
            routers=("static", "carbon-greedy"),
        )
        expected = [
            scenario_from_fleet_spec(
                FleetSpec(
                    region_names=("us-ciso", "uk-eso", "nordic-hydro"),
                    application="classification",
                    scheme="clover",
                    router=r,
                    fidelity="smoke",
                    seed=0,
                    n_gpus=2,
                    duration_h=3.0,
                )
            )
            for r in ("static", "carbon-greedy")
        ]
        assert runner.specs == expected

    def test_demand(self):
        from repro.analysis.experiments import demand_routing

        runner = RecordingRunner()
        demand_routing(
            runner,
            fidelity="smoke",
            seed=0,
            n_gpus=2,
            duration_h=3.0,
            routers=("static", "forecast-aware"),
        )
        expected = [
            scenario_from_fleet_spec(
                FleetSpec(
                    region_names=("us-ciso", "uk-eso", "apac-solar"),
                    application="classification",
                    scheme="clover",
                    router=r,
                    fidelity="smoke",
                    seed=0,
                    n_gpus=2,
                    duration_h=3.0,
                    demand="diurnal",
                    ramp_share_per_h=0.10,
                    drain_share_per_h=0.20,
                    lookahead_h=(6.0 if r == "forecast-aware" else None),
                )
            )
            for r in ("static", "forecast-aware")
        ]
        assert runner.specs == expected

    def test_gating(self):
        from repro.analysis.experiments import GATING_ROWS, gating_elasticity

        runner = RecordingRunner()
        gating_elasticity(
            runner, fidelity="smoke", seed=0, n_gpus=2, duration_h=3.0
        )
        expected = [
            scenario_from_fleet_spec(
                FleetSpec(
                    region_names=("us-ciso", "uk-eso", "apac-solar"),
                    application="classification",
                    scheme="clover",
                    router=router,
                    fidelity="smoke",
                    seed=0,
                    n_gpus=2,
                    duration_h=3.0,
                    demand="diurnal",
                    ramp_share_per_h=0.10,
                    drain_share_per_h=0.20,
                    lookahead_h=(6.0 if needs_lookahead else None),
                    gating=gating,
                )
            )
            for _, router, gating, needs_lookahead in GATING_ROWS
        ]
        assert runner.specs == expected

    def test_hetero(self):
        from repro.analysis.experiments import (
            HETERO_DEVICES,
            HETERO_ROWS,
            HETERO_WAKE_ENERGY_J,
            hetero_fleet,
        )

        runner = RecordingRunner()
        hetero_fleet(
            runner, fidelity="smoke", seed=0, n_gpus=2, duration_h=3.0
        )
        expected = [
            scenario_from_fleet_spec(
                FleetSpec(
                    region_names=("us-ciso", "uk-eso", "apac-solar"),
                    application="classification",
                    scheme="clover",
                    router=router,
                    fidelity="smoke",
                    seed=0,
                    n_gpus=2,
                    duration_h=3.0,
                    demand="diurnal",
                    ramp_share_per_h=0.10,
                    drain_share_per_h=0.20,
                    lookahead_h=(6.0 if needs_lookahead else None),
                    gating="reactive",
                    wake_energy_j=HETERO_WAKE_ENERGY_J,
                    devices=HETERO_DEVICES,
                    efficiency_weighted=efficiency,
                )
            )
            for _, router, efficiency, needs_lookahead in HETERO_ROWS
        ]
        assert runner.specs == expected


class TestMixedSchemeScenario:
    """The tentpole's new capability: per-region scheme assignment."""

    def _run(self, schemes):
        spec = ScenarioSpec(
            regions=(
                RegionSpec(name="nordic-hydro", scheme=schemes[0]),
                RegionSpec(name="us-ciso", scheme=schemes[1]),
            ),
            fidelity="smoke",
            n_gpus=2,
            duration_h=6.0,
            routing=RoutingSpec(router="carbon-greedy"),
        )
        return ExperimentRunner().run_scenario(spec)

    def test_mixed_scheme_runs_end_to_end(self):
        result = self._run(("co2opt", "clover"))
        assert result.scheme_name == "co2opt+clover"
        assert result.scheme_by_region == {
            "nordic-hydro": "co2opt",
            "us-ciso": "clover",
        }
        assert result.total_requests > 0
        assert result.total_carbon_g > 0

    def test_mixed_scheme_differs_from_uniform(self):
        mixed = self._run(("co2opt", "clover"))
        uniform = self._run(("clover", "clover"))
        assert uniform.scheme_name == "clover"
        assert mixed.total_carbon_g != uniform.total_carbon_g

    def test_uniform_per_region_equals_plain_scheme(self):
        """Explicit per-region schemes that all agree build the same
        coordinator as the plain scheme string — bit for bit."""
        explicit = self._run(("clover", "clover"))
        plain = ExperimentRunner().run_scenario(
            ScenarioSpec(
                regions=(
                    RegionSpec(name="nordic-hydro"),
                    RegionSpec(name="us-ciso"),
                ),
                scheme="clover",
                fidelity="smoke",
                n_gpus=2,
                duration_h=6.0,
                routing=RoutingSpec(router="carbon-greedy"),
            )
        )
        assert explicit.total_carbon_g == plain.total_carbon_g
        assert explicit.total_energy_j == plain.total_energy_j
