"""Cross-region evaluator cache pooling (satellite)."""

from repro.scenarios import (
    RegionSpec,
    RoutingSpec,
    Scenario,
    ScenarioSpec,
)


def spec(shared: bool, devices=None) -> ScenarioSpec:
    return ScenarioSpec(
        regions=(
            RegionSpec(name="us-ciso", devices=devices),
            RegionSpec(name="uk-eso", devices=devices),
            RegionSpec(name="nordic-hydro", devices=devices),
        ),
        scheme="clover",
        fidelity="smoke",
        n_gpus=2,
        duration_h=6.0,
        routing=RoutingSpec(router="carbon-greedy"),
        shared_cache=shared,
    )


def opt_misses(result) -> int:
    return sum(
        r.opt_cache.misses for r in result.results if r.opt_cache is not None
    )


class TestSharedCache:
    def test_results_identical_with_and_without_sharing(self):
        """Pooling is a pure-function cache merge: no number may move."""
        pooled = Scenario(spec(shared=True)).run()
        isolated = Scenario(spec(shared=False)).run()
        assert pooled.total_carbon_g == isolated.total_carbon_g
        assert pooled.total_energy_j == isolated.total_energy_j
        assert pooled.total_requests == isolated.total_requests
        assert pooled.mean_accuracy == isolated.mean_accuracy
        for p_r, i_r in zip(pooled.results, isolated.results):
            assert [e.p95_ms for e in p_r.epochs] == [
                e.p95_ms for e in i_r.epochs
            ]

    def test_warm_up_evaluation_count_drops_on_uniform_fleet(self):
        """The satellite's acceptance: identical-hardware regions stop
        re-deriving each other's evaluations."""
        pooled = Scenario(spec(shared=True)).run()
        isolated = Scenario(spec(shared=False)).run()
        assert opt_misses(pooled) < opt_misses(isolated)

    def test_hit_stats_still_reported_per_region(self):
        pooled = Scenario(spec(shared=True)).run()
        by_region = pooled.cache_stats_by_region
        assert set(by_region) == {"us-ciso", "uk-eso", "nordic-hydro"}
        assert all(s.evaluations > 0 for s in by_region.values())

    def test_different_pools_never_share(self):
        """Pooling groups by device pool: mixed-silicon fleets keep their
        per-region caches apart (cache-key isolation is preserved)."""
        from repro.fleet.coordinator import share_evaluator_caches
        from repro.scenarios import build_coordinator

        mixed = ScenarioSpec(
            regions=(
                RegionSpec(name="us-ciso", devices="a100"),
                RegionSpec(name="uk-eso", devices="l4"),
            ),
            fidelity="smoke",
            n_gpus=2,
            shared_cache=True,
        )
        fleet = build_coordinator(mixed)
        evaluators = [s.service.scheme.evaluator for s in fleet.services]
        assert evaluators[0].cache_store is not evaluators[1].cache_store
        # ... while same-pool services do share.
        uniform = build_coordinator(spec(shared=True))
        stores = {
            id(s.service.scheme.evaluator.cache_store)
            for s in uniform.services
        }
        assert len(stores) == 1

    def test_measure_evaluators_never_pooled(self):
        """DES measurement caches are seed-dependent and must stay
        per-region even when the analytic caches pool."""
        from repro.scenarios import build_coordinator

        fleet = build_coordinator(spec(shared=True))
        stores = {
            id(s.controller.measure_evaluator.cache_store)
            for s in fleet.services
        }
        assert len(stores) == len(fleet.services)
