"""The perf trajectory's committed-baseline schema and regression check."""

import json

import pytest

from repro.perf import (
    DEFAULT_TOLERANCE,
    ScenarioResult,
    SuiteResult,
    baseline_path,
    calibration_ops_per_s,
    check_regressions,
    load_baseline,
    write_baseline,
)


def suite(ops=1000.0, speedup=10.0, cal=100.0, name="batch_eval_1k"):
    return SuiteResult(
        fidelity="smoke",
        calibration_ops_per_s=cal,
        scenarios=(
            ScenarioResult(
                name=name, ops_per_s=ops, speedup_vs_scalar=speedup,
                items=1000, seconds=1.0, scalar_seconds=speedup,
            ),
        ),
    )


class TestSchema:
    def test_roundtrip(self, tmp_path):
        path = write_baseline(suite(), tmp_path / "b.json")
        data = load_baseline(path)
        assert data["schema"] == 1
        assert data["calibration_ops_per_s"] == 100.0
        assert data["scenarios"]["batch_eval_1k"]["speedup_vs_scalar"] == 10.0

    def test_rejects_unknown_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 99, "scenarios": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(p)

    def test_rejects_missing_keys(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 1, "scenarios": {}}))
        with pytest.raises(ValueError, match="missing"):
            load_baseline(p)

    def test_scenario_lookup(self):
        s = suite()
        assert s.scenario("batch_eval_1k").items == 1000
        with pytest.raises(KeyError):
            s.scenario("nope")

    def test_committed_baseline_is_valid_and_meets_the_bar(self):
        """The repo's own BENCH_perf_core.json: loadable, and its headline
        1k-candidate batch evaluation records >= 10x vs scalar."""
        data = load_baseline(baseline_path())
        headline = data["scenarios"]["batch_eval_1k"]
        assert headline["items"] == 1000
        assert headline["speedup_vs_scalar"] >= 10.0


class TestCheckRegressions:
    def test_identical_run_passes(self, tmp_path):
        base = load_baseline(write_baseline(suite(), tmp_path / "b.json"))
        assert check_regressions(suite(), base) == []

    def test_within_tolerance_passes(self, tmp_path):
        base = load_baseline(write_baseline(suite(), tmp_path / "b.json"))
        ok = suite(ops=750.0, speedup=7.5)  # 25% drop < 30% tolerance
        assert check_regressions(ok, base) == []

    def test_speedup_regression_fails(self, tmp_path):
        base = load_baseline(write_baseline(suite(), tmp_path / "b.json"))
        bad = suite(speedup=6.0)  # 40% drop
        failures = check_regressions(bad, base)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_opsps_regression_fails(self, tmp_path):
        base = load_baseline(write_baseline(suite(), tmp_path / "b.json"))
        bad = suite(ops=500.0)  # 50% ops/s drop, same calibration
        failures = check_regressions(bad, base)
        assert len(failures) == 1
        assert "ops/s" in failures[0]

    def test_calibration_cancels_machine_speed(self, tmp_path):
        """Half-speed host: ops/s halves but so does the calibration —
        the normalized ratio is unchanged and the check passes."""
        base = load_baseline(write_baseline(suite(), tmp_path / "b.json"))
        slow_host = suite(ops=500.0, cal=50.0)
        assert check_regressions(slow_host, base) == []

    def test_new_scenario_skipped(self, tmp_path):
        base = load_baseline(write_baseline(suite(), tmp_path / "b.json"))
        added = suite(name="brand_new", ops=1.0, speedup=0.01)
        assert check_regressions(added, base) == []

    def test_tolerance_validation(self, tmp_path):
        base = load_baseline(write_baseline(suite(), tmp_path / "b.json"))
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError, match="tolerance"):
                check_regressions(suite(), base, tolerance=bad)


class TestCalibration:
    def test_positive_and_repeatable_order_of_magnitude(self):
        a = calibration_ops_per_s(repeats=2)
        b = calibration_ops_per_s(repeats=2)
        assert a > 0 and b > 0
        # min-of-N timing on a fixed kernel: same order of magnitude.
        assert 0.2 < a / b < 5.0
