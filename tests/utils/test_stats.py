"""Statistics helpers: percentile conventions and weighted means."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import (
    exact_percentile,
    normalize,
    running_mean,
    weighted_mean,
)


class TestExactPercentile:
    def test_p95_is_an_observed_sample(self):
        values = np.arange(1, 101, dtype=float)
        assert exact_percentile(values, 95.0) in values

    def test_p50_of_odd_set(self):
        assert exact_percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_p100_is_max(self):
        assert exact_percentile([5.0, 9.0, 1.0], 100.0) == 9.0

    def test_p0_is_min(self):
        assert exact_percentile([5.0, 9.0, 1.0], 0.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="zero samples"):
            exact_percentile([], 95.0)

    @pytest.mark.parametrize("q", [-1.0, 101.0])
    def test_out_of_range_quantile_raises(self, q):
        with pytest.raises(ValueError):
            exact_percentile([1.0], q)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_is_always_a_sample(self, values, q):
        assert exact_percentile(values, q) in np.asarray(values)


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0

    def test_weights_matter(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_zero_total_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [1.0])


class TestNormalize:
    def test_divides_by_reference(self):
        out = normalize([2.0, 4.0], 2.0)
        assert out.tolist() == [1.0, 2.0]

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)


class TestRunningMean:
    def test_window_one_is_identity(self):
        arr = [1.0, 5.0, 3.0]
        assert running_mean(arr, 1).tolist() == arr

    def test_smooths_constant_series_exactly(self):
        out = running_mean([2.0] * 10, 3)
        assert np.allclose(out[1:-1], 2.0)

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            running_mean([1.0], 0)
