"""Bootstrap confidence intervals for tail-latency percentiles."""

import numpy as np
import pytest

from repro.utils.stats import exact_percentile, percentile_ci


class TestPercentileCi:
    def test_interval_brackets_point_estimate(self):
        arr = np.random.default_rng(0).exponential(10.0, 2000)
        lo, hi = percentile_ci(arr, 95.0, rng=0)
        point = float(np.percentile(arr, 95.0))
        assert lo <= point <= hi

    def test_interval_shrinks_with_more_samples(self):
        rng = np.random.default_rng(1)
        small = rng.exponential(10.0, 200)
        big = rng.exponential(10.0, 20_000)
        lo_s, hi_s = percentile_ci(small, 95.0, rng=0)
        lo_b, hi_b = percentile_ci(big, 95.0, rng=0)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_higher_confidence_wider_interval(self):
        arr = np.random.default_rng(2).exponential(10.0, 1000)
        lo90, hi90 = percentile_ci(arr, 95.0, confidence=0.90, rng=0)
        lo99, hi99 = percentile_ci(arr, 95.0, confidence=0.99, rng=0)
        assert (hi99 - lo99) > (hi90 - lo90)

    def test_deterministic_given_rng(self):
        arr = np.random.default_rng(3).exponential(5.0, 500)
        assert percentile_ci(arr, 95.0, rng=7) == percentile_ci(arr, 95.0, rng=7)

    def test_degenerate_distribution(self):
        arr = np.full(100, 42.0)
        lo, hi = percentile_ci(arr, 95.0, rng=0)
        assert lo == hi == 42.0

    def test_validation(self):
        with pytest.raises(ValueError, match="10 samples"):
            percentile_ci([1.0] * 5, 95.0)
        arr = np.ones(100)
        with pytest.raises(ValueError):
            percentile_ci(arr, 101.0)
        with pytest.raises(ValueError):
            percentile_ci(arr, 95.0, confidence=1.0)

    def test_sla_verdict_use_case(self):
        """The intended use: a config near the SLA boundary is 'confidently
        violating' only if the entire interval exceeds the target."""
        rng = np.random.default_rng(4)
        latencies = rng.normal(40.0, 5.0, 5000)
        lo, hi = percentile_ci(latencies, 95.0, rng=0)
        p95 = exact_percentile(latencies, 95.0)
        target_tight = p95 - 0.01  # boundary target: not confidently violating
        assert not (lo > target_tight)
        target_loose = lo - 10.0  # far below the interval: confident violation
        assert lo > target_loose
