"""stable_hash: the cross-process reproducibility anchor.

Python's builtin ``hash`` is salted per process; every seeded RNG stream in
the reproduction is keyed via ``stable_hash`` instead.  These tests pin the
actual hash values — if they ever change, every "seeded" experiment's
numbers silently change with them.
"""

from repro.utils.rng import stable_hash


class TestStableHash:
    def test_pinned_values(self):
        """CRC32-derived constants; changing these is a breaking change."""
        assert stable_hash("workload") == 302230139
        assert stable_hash("") == 0
        assert stable_hash("clover-invocation") == stable_hash(
            "clover-invocation"
        )

    def test_accepts_bytes(self):
        assert stable_hash(b"abc") == stable_hash("abc")

    def test_is_non_negative_31_bit(self):
        for tag in ("a", "b" * 1000, "üñî"):
            h = stable_hash(tag)
            assert 0 <= h < 2**31

    def test_distinguishes_tags(self):
        assert stable_hash("sa") != stable_hash("des")
