"""Deterministic RNG plumbing."""

import numpy as np

from repro.utils.rng import RngMixer, as_generator, spawn_child


class TestAsGenerator:
    def test_int_seeds_are_reproducible(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnChild:
    def test_children_differ_by_tag(self):
        parent = as_generator(1)
        a = spawn_child(parent, "a").random(4)
        parent2 = as_generator(1)
        b = spawn_child(parent2, "b").random(4)
        assert not np.array_equal(a, b)


class TestRngMixer:
    def test_same_name_same_stream(self):
        m1, m2 = RngMixer(seed=3), RngMixer(seed=3)
        assert np.array_equal(
            m1.stream("workload").random(8), m2.stream("workload").random(8)
        )

    def test_different_names_independent(self):
        m = RngMixer(seed=3)
        a = m.stream("a").random(8)
        b = m.stream("b").random(8)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        m = RngMixer(seed=3)
        assert m.stream("x") is m.stream("x")

    def test_fork_indexed_substreams(self):
        m1, m2 = RngMixer(seed=5), RngMixer(seed=5)
        assert np.array_equal(
            m1.fork("sa", 3).random(4), m2.fork("sa", 3).random(4)
        )
        assert not np.array_equal(
            m1.fork("sa", 1).random(4), m2.fork("sa", 2).random(4)
        )

    def test_different_seeds_differ(self):
        a = RngMixer(seed=1).stream("s").random(4)
        b = RngMixer(seed=2).stream("s").random(4)
        assert not np.array_equal(a, b)
