"""Geo-diurnal demand fleets: seed equivalence, conservation, routing wins.

The acceptance bar of the demand subsystem:

* a constant-demand N=1 fleet reproduces the seed service bit-for-bit,
* under diurnal demand the carbon-greedy router beats the static geo-DNS
  split on fleet carbon and the forecast-aware router matches or beats
  carbon-greedy, both at equal-or-better user SLA attainment (charged per
  (origin, serving-region) pair).
"""

import numpy as np
import pytest

from repro.carbon.traces import ciso_march_48h
from repro.core.service import CarbonAwareInferenceService
from repro.demand import (
    DiurnalDemandModel,
    GeoOrigin,
    LatencyMatrix,
    default_origins,
)
from repro.fleet import FleetCoordinator, Region, region_by_name

GPUS = 2
DEMAND_REGIONS = ("us-ciso", "uk-eso", "apac-solar")
RAMP, DRAIN, LOOKAHEAD = 0.10, 0.20, 6.0


def demand_fleet(router, **kwargs):
    regions = tuple(region_by_name(n, n_gpus=GPUS) for n in DEMAND_REGIONS)
    return FleetCoordinator.create(
        regions,
        application="classification",
        scheme="clover",
        router=router,
        fidelity="smoke",
        seed=0,
        demand="diurnal",
        ramp_share_per_h=RAMP,
        drain_share_per_h=DRAIN,
        **kwargs,
    )


@pytest.fixture(scope="module")
def demand_runs():
    """static vs carbon-greedy vs forecast-aware over 48 h of demand."""
    out = {}
    for router, kw in (
        ("static", {}),
        ("carbon-greedy", {}),
        ("forecast-aware", dict(lookahead_h=LOOKAHEAD)),
    ):
        fleet = demand_fleet(router, **kw)
        out[router] = (fleet, fleet.run(duration_h=48.0))
    return out


class TestConstantDemandSeedEquivalence:
    def test_n1_constant_demand_is_bit_for_bit_seed(self):
        """One co-located origin, zero network, constant demand at the
        nominal rate: the fleet path IS the seed service, exactly."""
        region = Region(
            name="solo", trace=ciso_march_48h(), pue=1.5,
            net_latency_ms=0.0, n_gpus=GPUS,
        )
        fleet = FleetCoordinator.create(
            [region],
            application="classification",
            scheme="clover",
            router="static",
            fidelity="smoke",
            seed=7,
            demand="constant",
            origins=(GeoOrigin("local", 1.0, 0.0, "na"),),
            latency_matrix=LatencyMatrix(("local",), ("solo",), np.zeros((1, 1))),
            demand_scale=1.0,
        )
        fleet_result = fleet.run(duration_h=6.0)

        service = CarbonAwareInferenceService.create(
            application="classification", scheme="clover",
            fidelity="smoke", seed=7, n_gpus=GPUS,
        )
        seed_result = service.run(duration_h=6.0)

        assert fleet_result.total_carbon_g == seed_result.total_carbon_g
        assert fleet_result.total_energy_j == seed_result.total_energy_j
        assert fleet_result.total_requests == seed_result.total_requests
        assert fleet_result.mean_accuracy == seed_result.mean_accuracy
        for fe, se in zip(fleet_result.results[0].epochs, seed_result.epochs):
            assert fe.carbon_g == se.carbon_g
            assert fe.p95_ms == se.p95_ms
            assert fe.rate_per_s == se.rate_per_s
            assert fe.config_label == se.config_label

    def test_n1_constant_demand_reports_demand_views(self):
        region = Region(
            name="solo", trace=ciso_march_48h(), pue=1.5,
            net_latency_ms=0.0, n_gpus=GPUS,
        )
        fleet = FleetCoordinator.create(
            [region], scheme="base", router="static", fidelity="smoke",
            seed=0, demand="constant",
            origins=(GeoOrigin("local", 1.0, 0.0, "na"),),
            latency_matrix=LatencyMatrix(("local",), ("solo",), np.zeros((1, 1))),
            demand_scale=1.0,
        )
        result = fleet.run(duration_h=3.0)
        assert result.has_demand
        assert result.origin_request_shares == {"local": pytest.approx(1.0)}
        assert result.mean_net_latency_ms == pytest.approx(0.0)
        assert result.user_sla_attainment == pytest.approx(
            result.sla_attainment
        )


class TestAcceptance:
    """The ISSUE's headline ordering, at the tuned experiment settings."""

    def test_carbon_greedy_beats_static_on_carbon(self, demand_runs):
        static = demand_runs["static"][1]
        greedy = demand_runs["carbon-greedy"][1]
        assert greedy.total_carbon_g < static.total_carbon_g
        saving = 1.0 - greedy.total_carbon_g / static.total_carbon_g
        assert saving > 0.02  # a real win, not float noise

    def test_forecast_aware_at_least_matches_carbon_greedy(self, demand_runs):
        greedy = demand_runs["carbon-greedy"][1]
        fa = demand_runs["forecast-aware"][1]
        assert fa.total_carbon_g <= greedy.total_carbon_g

    def test_carbon_routers_keep_user_sla(self, demand_runs):
        static = demand_runs["static"][1]
        for router in ("carbon-greedy", "forecast-aware"):
            assert (
                demand_runs[router][1].user_sla_attainment
                >= static.user_sla_attainment
            )

    def test_accuracy_stays_in_paper_band(self, demand_runs):
        for _, result in demand_runs.values():
            assert result.accuracy_loss_pct < 5.5

    def test_share_shifts_off_the_dirty_region(self, demand_runs):
        static = demand_runs["static"][1]
        greedy = demand_runs["carbon-greedy"][1]
        assert (
            greedy.request_shares["apac-solar"]
            < static.request_shares["apac-solar"]
        )


class TestDemandConservation:
    def test_per_epoch_rates_match_demand_model(self, demand_runs):
        """Every epoch, routed regional rates sum to the demand model's
        global rate at that epoch — nonstationary conservation."""
        fleet, result = demand_runs["carbon-greedy"]
        for i in range(len(result.results[0].epochs)):
            t_h = result.results[0].epochs[i].t_h
            routed = sum(r.epochs[i].rate_per_s for r in result.results)
            assert routed == pytest.approx(
                fleet.demand.total_rate(t_h), rel=1e-9
            )

    def test_origin_plans_are_complete_transports(self, demand_runs):
        """Each epoch's plan rows sum to the origin rates and its columns
        to the routed regional rates."""
        fleet, result = demand_runs["forecast-aware"]
        for i, plan in enumerate(result.origin_plans):
            t_h = result.results[0].epochs[i].t_h
            np.testing.assert_allclose(
                plan.sum(axis=1), fleet.demand.rates(t_h), rtol=1e-9
            )
            rates = np.array([r.epochs[i].rate_per_s for r in result.results])
            np.testing.assert_allclose(plan.sum(axis=0), rates, rtol=1e-9)

    def test_session_drain_limits_hold(self, demand_runs):
        """No cell sheds more than the drain limit per epoch (scaled with
        its origin's demand); cells below the planner's de-minimis share
        of their origin's demand are exempt (they are dropped outright so
        a decaying residue cannot throttle a region forever)."""
        _, result = demand_runs["carbon-greedy"]
        keep = 1.0 - DRAIN  # hourly epochs at smoke fidelity
        plans = result.origin_plans
        for i in range(1, len(plans)):
            prev_rows = plans[i - 1].sum(axis=1)
            rows = plans[i].sum(axis=1)
            ratio = np.minimum(1.0, rows / np.maximum(prev_rows, 1e-12))
            floor = plans[i - 1] * ratio[:, None] * keep
            binding = floor > 1e-3 * rows[:, None]
            assert (plans[i][binding] >= floor[binding] - 1e-6).all()


class TestDemandReporting:
    def test_origin_shares_match_population_order(self, demand_runs):
        _, result = demand_runs["static"]
        shares = result.origin_request_shares
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["asia-pacific"] == max(shares.values())

    def test_mean_net_latency_positive_and_bounded(self, demand_runs):
        _, result = demand_runs["carbon-greedy"]
        lat = result.mean_net_latency_ms
        assert 0.0 < lat < result.latency_matrix_ms.max()

    def test_cache_stats_by_region_cover_all_regions(self, demand_runs):
        """The per-region evaluator cache counters surface in the summary."""
        _, result = demand_runs["carbon-greedy"]
        stats = result.cache_stats_by_region
        assert set(stats) == set(DEMAND_REGIONS)
        pooled = result.cache_stats
        assert pooled.hits == sum(s.hits for s in stats.values())
        assert pooled.misses == sum(s.misses for s in stats.values())
        assert pooled.batched == sum(s.batched for s in stats.values())
        for s in stats.values():
            assert s.misses > 0

    def test_batched_evaluations_surface_in_summary(self, demand_runs):
        """Demand-mode routing drives the batched SLA bisections, so the
        batch counter must be non-zero and bounded by the misses."""
        _, result = demand_runs["carbon-greedy"]
        pooled = result.cache_stats
        assert pooled.batched > 0
        assert pooled.batched <= pooled.misses
        assert 0.0 < pooled.batch_rate <= 1.0

    def test_region_table_has_cache_column(self, demand_runs):
        _, result = demand_runs["carbon-greedy"]
        headers, rows = result.table()
        assert "CacheHit%" in headers
        assert "Batch%" in headers
        assert len(rows) == len(DEMAND_REGIONS) + 1
        assert len(headers) == len(rows[0])

    def test_origin_table_renders(self, demand_runs):
        _, result = demand_runs["forecast-aware"]
        headers, rows = result.origin_table()
        assert len(rows) == 3
        assert {r[0] for r in rows} == set(result.origin_names)
        assert len(headers) == len(rows[0])

    def test_demand_views_rejected_without_demand(self):
        fleet = FleetCoordinator.create(
            [region_by_name("us-ciso", n_gpus=GPUS)],
            scheme="base", router="static", fidelity="smoke", seed=0,
        )
        result = fleet.run(duration_h=2.0)
        assert not result.has_demand
        with pytest.raises(ValueError, match="demand"):
            _ = result.origin_request_shares


class TestKeepAlive:
    def test_homeless_region_keeps_a_positive_rate(self):
        """Two regions in one zone: the one that is nobody's nearest
        origin must still be planned a keep-alive rate every epoch (a
        zero-rate region has no defined service measurement)."""
        regions = tuple(
            region_by_name(n, n_gpus=GPUS)
            for n in ("us-ciso", "uk-eso", "nordic-hydro")  # two eu zones
        )
        fleet = FleetCoordinator.create(
            regions, router="forecast-aware", fidelity="smoke", seed=0,
            demand="diurnal", ramp_share_per_h=RAMP, drain_share_per_h=DRAIN,
            lookahead_h=LOOKAHEAD,
        )
        result = fleet.run(duration_h=6.0)
        for run in result.results:
            for e in run.epochs:
                assert e.rate_per_s > 0.0

    def test_router_instance_reusable_across_fleets(self):
        """A router instance that already served one fleet run carries no
        regret state into the next fleet — the coordinator resets it, so
        a shared instance routes identically to a fresh one."""
        from repro.fleet import ForecastAwareRouter

        shared = ForecastAwareRouter(lookahead_h=LOOKAHEAD)
        demand_fleet(shared).run(duration_h=6.0)
        reused = demand_fleet(shared).run(duration_h=6.0)
        fresh = demand_fleet(
            ForecastAwareRouter(lookahead_h=LOOKAHEAD)
        ).run(duration_h=6.0)
        assert reused.total_carbon_g == fresh.total_carbon_g
        assert reused.total_requests == fresh.total_requests


class TestValidation:
    def test_demand_model_origins_must_match_matrix(self):
        region = region_by_name("us-ciso", n_gpus=GPUS)
        model = DiurnalDemandModel(
            origins=default_origins(), mean_total_rate_per_s=10.0
        )
        bad_matrix = LatencyMatrix(
            ("someone-else",), ("us-ciso",), np.zeros((1, 1))
        )
        with pytest.raises(ValueError, match="origins"):
            FleetCoordinator.create(
                [region], router="static", fidelity="smoke",
                demand=model, latency_matrix=bad_matrix,
            )

    def test_unknown_demand_kind_rejected(self):
        region = region_by_name("us-ciso", n_gpus=GPUS)
        with pytest.raises(ValueError, match="demand kind"):
            FleetCoordinator.create(
                [region], router="static", fidelity="smoke", demand="chaotic",
            )

    def test_lookahead_on_nonforecast_router_rejected(self):
        region = region_by_name("us-ciso", n_gpus=GPUS)
        with pytest.raises(ValueError, match="lookahead"):
            FleetCoordinator.create(
                [region], router="static", fidelity="smoke",
                demand="diurnal", lookahead_h=4.0,
            )

    def test_bad_ramp_rejected(self):
        region = region_by_name("us-ciso", n_gpus=GPUS)
        with pytest.raises(ValueError, match="ramp"):
            FleetCoordinator.create(
                [region], router="static", fidelity="smoke",
                demand="diurnal", ramp_share_per_h=-0.1,
            )
