"""Router invariants: conservation, capacity/SLA caps, policy ordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.routing import (
    CarbonGreedyRouter,
    ForecastAwareRouter,
    LatencyAwareRouter,
    ROUTER_NAMES,
    RoutingContext,
    StaticRouter,
    make_router,
    plan_origin_cells,
)


def make_ctx(
    ci=(300.0, 150.0, 40.0),
    pue=None,
    latency=(5.0, 20.0, 40.0),
    nominal=(30.0, 30.0, 30.0),
    capacity=None,
    sla_caps=None,
    floor_share=0.05,
    global_rate=None,
):
    n = len(ci)
    nominal = np.asarray(nominal, dtype=np.float64)
    return RoutingContext(
        t_h=0.0,
        global_rate_per_s=(
            float(nominal.sum()) if global_rate is None else global_rate
        ),
        ci=np.asarray(ci, dtype=np.float64),
        pue=np.asarray(pue if pue is not None else [1.5] * n),
        net_latency_ms=np.asarray(latency, dtype=np.float64),
        nominal_rates=nominal,
        capacity_rates=np.asarray(
            capacity if capacity is not None else nominal * 1.3
        ),
        sla_cap_rates=np.asarray(
            sla_caps if sla_caps is not None else [np.inf] * n
        ),
        floor_rates=floor_share * nominal,
    )


ALL_ROUTERS = (
    StaticRouter(),
    LatencyAwareRouter(),
    CarbonGreedyRouter(),
    ForecastAwareRouter(),
)


class TestConservation:
    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    def test_shares_sum_to_one(self, router):
        shares = router.split(make_ctx())
        assert shares.sum() == pytest.approx(1.0, rel=1e-12)
        assert (shares >= 0).all()

    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    def test_rates_conserve_global_rate(self, router):
        ctx = make_ctx()
        assert router.rates(ctx).sum() == pytest.approx(
            ctx.global_rate_per_s, rel=1e-12
        )

    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    def test_conservation_survives_tight_sla_caps(self, router):
        """Even when SLA caps cannot absorb the workload, every arrival is
        routed somewhere (conservation beats caps)."""
        ctx = make_ctx(sla_caps=(10.0, 10.0, 10.0))
        assert router.rates(ctx).sum() == pytest.approx(
            ctx.global_rate_per_s, rel=1e-12
        )


class TestStatic:
    def test_single_region_share_is_exactly_one(self):
        """The N=1 bit-for-bit equivalence hinges on an *exact* 1.0."""
        ctx = make_ctx(ci=(200.0,), pue=(1.5,), latency=(0.0,), nominal=(37.0,))
        shares = StaticRouter().split(ctx)
        assert shares[0] == 1.0  # exact, not approx

    def test_proportional_to_nominal(self):
        ctx = make_ctx(nominal=(10.0, 30.0, 60.0))
        assert StaticRouter().split(ctx) == pytest.approx([0.1, 0.3, 0.6])

    def test_explicit_weights(self):
        ctx = make_ctx()
        shares = StaticRouter(weights=np.array([1.0, 1.0, 2.0])).split(ctx)
        assert shares == pytest.approx([0.25, 0.25, 0.5])

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="regions"):
            StaticRouter(weights=np.array([1.0, 2.0])).split(make_ctx())

    def test_nonpositive_weights_rejected(self):
        """Zero-weight regions would serve a zero rate (undefined DES
        measurement); the router refuses them up front."""
        for bad in (-1.0, 0.0):
            with pytest.raises(ValueError, match="positive"):
                StaticRouter(weights=np.array([1.0, bad, 1.0])).split(
                    make_ctx()
                )

    def test_ignores_carbon(self):
        clean_last = StaticRouter().split(make_ctx(ci=(300.0, 150.0, 40.0)))
        clean_first = StaticRouter().split(make_ctx(ci=(40.0, 150.0, 300.0)))
        assert clean_last == pytest.approx(clean_first)


class TestCarbonGreedy:
    def test_cleanest_region_filled_to_cap(self):
        ctx = make_ctx()
        rates = CarbonGreedyRouter().rates(ctx)
        # Region 2 (ci=40) is cleanest: filled to its capacity cap.
        assert rates[2] == pytest.approx(ctx.capacity_rates[2])
        # The dirtiest region keeps the least.
        assert rates[0] < rates[1] <= rates[2]

    def test_capacity_caps_respected_when_feasible(self):
        ctx = make_ctx()
        rates = CarbonGreedyRouter().rates(ctx)
        assert (rates <= ctx.capacity_rates * (1 + 1e-12)).all()

    def test_sla_caps_respected_when_feasible(self):
        """A clean region with a tight SLA cap only absorbs up to the cap."""
        ctx = make_ctx(sla_caps=(np.inf, np.inf, 32.0))
        rates = CarbonGreedyRouter().rates(ctx)
        assert rates[2] == pytest.approx(32.0)
        assert (
            rates <= np.minimum(ctx.capacity_rates, ctx.sla_cap_rates) + 1e-9
        ).all()

    def test_floor_shares_never_shifted_away(self):
        ctx = make_ctx()
        rates = CarbonGreedyRouter().rates(ctx)
        assert (rates >= ctx.floor_rates - 1e-12).all()

    def test_effective_ci_uses_pue(self):
        """A dirty-grid/efficient-datacenter region can beat a cleaner grid
        behind a terrible PUE."""
        ctx = make_ctx(ci=(100.0, 90.0, 300.0), pue=(1.1, 2.0, 1.5))
        # effective: 110, 180, 450 -> region 0 is the routing winner.
        rates = CarbonGreedyRouter().rates(ctx)
        assert rates[0] == pytest.approx(ctx.capacity_rates[0])

    def test_zero_sla_cap_leaves_only_floor(self):
        """With enough headroom elsewhere, an SLA-infeasible region keeps
        only its un-shiftable floor traffic."""
        ctx = make_ctx(
            capacity=(60.0, 60.0, 39.0), sla_caps=(np.inf, np.inf, 0.0)
        )
        rates = CarbonGreedyRouter().rates(ctx)
        assert rates[2] == pytest.approx(ctx.floor_rates[2])


class TestLatencyAware:
    def test_nearest_region_filled_first(self):
        ctx = make_ctx(latency=(40.0, 5.0, 20.0))
        rates = LatencyAwareRouter().rates(ctx)
        assert rates[1] == pytest.approx(ctx.capacity_rates[1])
        assert rates[0] < rates[2] <= rates[1]

    def test_ignores_carbon(self):
        a = LatencyAwareRouter().split(make_ctx(ci=(300.0, 150.0, 40.0)))
        b = LatencyAwareRouter().split(make_ctx(ci=(40.0, 150.0, 300.0)))
        assert a == pytest.approx(b)


class TestFactory:
    def test_all_names_construct(self):
        for name in ROUTER_NAMES:
            assert make_router(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="valid"):
            make_router("teleport")


# --------------------------------------------------------------------- #
# Property tests: conservation and caps for arbitrary contexts
# --------------------------------------------------------------------- #

rates_arrays = st.integers(min_value=1, max_value=5).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(1.0, 100.0), min_size=n, max_size=n),   # nominal
        st.lists(st.floats(1.05, 2.0), min_size=n, max_size=n),    # cap factor
        st.lists(st.floats(1.0, 1000.0), min_size=n, max_size=n),  # ci
        st.lists(st.floats(1.0, 2.0), min_size=n, max_size=n),     # pue
        st.lists(st.floats(0.0, 100.0), min_size=n, max_size=n),   # latency
        st.lists(st.floats(0.1, 1.0), min_size=n, max_size=n),     # sla frac
    )
)


def ctx_from_draw(draw, floor_share=0.05, sla_capped=False):
    nominal, factors, ci, pue, latency, sla_frac = draw
    nominal = np.asarray(nominal)
    capacity = nominal * np.asarray(factors)
    sla = capacity * np.asarray(sla_frac) if sla_capped else np.full_like(
        capacity, np.inf
    )
    return RoutingContext(
        t_h=0.0,
        global_rate_per_s=float(nominal.sum()),
        ci=np.asarray(ci),
        pue=np.asarray(pue),
        net_latency_ms=np.asarray(latency),
        nominal_rates=nominal,
        capacity_rates=capacity,
        sla_cap_rates=sla,
        floor_rates=floor_share * nominal,
    )


class TestRouterProperties:
    """Hypothesis: every policy conserves the workload and honors caps."""

    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    @given(draw=rates_arrays)
    @settings(max_examples=40, deadline=None)
    def test_shares_conserve_global_rate(self, router, draw):
        ctx = ctx_from_draw(draw)
        shares = router.split(ctx)
        assert shares.sum() == pytest.approx(1.0, rel=1e-9)
        assert (shares >= 0.0).all()
        assert router.rates(ctx).sum() == pytest.approx(
            ctx.global_rate_per_s, rel=1e-9
        )

    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    @given(draw=rates_arrays)
    @settings(max_examples=40, deadline=None)
    def test_capacity_caps_respected(self, router, draw):
        """The global rate equals the nominal sum and capacity exceeds
        nominal everywhere, so capacity caps are always satisfiable —
        and every policy must then satisfy them."""
        ctx = ctx_from_draw(draw)
        assert (
            router.rates(ctx) <= ctx.capacity_rates * (1 + 1e-9)
        ).all()

    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    @given(draw=rates_arrays)
    @settings(max_examples=40, deadline=None)
    def test_conservation_beats_tight_sla_caps(self, router, draw):
        """Even when SLA caps are unsatisfiable, no arrival is dropped."""
        ctx = ctx_from_draw(draw, sla_capped=True)
        assert router.rates(ctx).sum() == pytest.approx(
            ctx.global_rate_per_s, rel=1e-9
        )


# --------------------------------------------------------------------- #
# Ramp and drain limits
# --------------------------------------------------------------------- #


class TestRampLimits:
    def make_ramped(self, prev, ramp=0.05, drain=None):
        return make_ctx().__class__(
            **{
                **make_ctx().__dict__,
                "prev_shares": np.asarray(prev),
                "max_ramp_share": ramp,
                "max_drain_share": drain,
            }
        )

    #: A previous split every region could actually have served (each
    #: prev rate below its capacity cap), so the ramp box is feasible.
    PREV = np.array([0.3, 0.3, 0.4])

    def test_share_gain_bounded_by_ramp(self):
        ctx = self.make_ramped(self.PREV, ramp=0.05)
        shares = CarbonGreedyRouter().split(ctx)
        assert (shares <= self.PREV + 0.05 + 1e-9).all()

    def test_share_loss_bounded_by_drain(self):
        ctx = self.make_ramped(self.PREV, ramp=0.05, drain=0.02)
        shares = CarbonGreedyRouter().split(ctx)
        assert (shares >= self.PREV - 0.02 - 1e-9).all()

    def test_drain_unset_means_unconstrained(self):
        """drain=None is 'no drain limit' (the documented default), not
        'same as the ramp': the dirty region sheds all the way down to
        what the others' capacity caps force it to keep, in one epoch."""
        prev = np.array([0.3, 0.3, 0.4])
        ctx = self.make_ramped(prev, ramp=1.0, drain=None)
        # ci default (300, 150, 40): region 0 is dirtiest; the clean two
        # fill to capacity and region 0 keeps only the remainder.
        shares = CarbonGreedyRouter().split(ctx)
        leftover = (
            ctx.global_rate_per_s - ctx.capacity_rates[1] - ctx.capacity_rates[2]
        )
        assert shares[0] == pytest.approx(leftover / ctx.global_rate_per_s)
        assert shares[0] < prev[0] - 0.1  # far beyond any ramp-like bound

    def test_unconstrained_without_prev_shares(self):
        """No history (epoch zero of an unramped fleet): PR-1 semantics."""
        free = CarbonGreedyRouter().split(make_ctx())
        ramped = CarbonGreedyRouter().split(
            self.make_ramped(np.array([1 / 3] * 3), ramp=1.0)
        )
        assert free == pytest.approx(ramped)

    def test_invalid_ramp_rejected(self):
        with pytest.raises(ValueError, match="ramp"):
            self.make_ramped(np.array([1 / 3] * 3), ramp=0.0)
        with pytest.raises(ValueError, match="drain"):
            self.make_ramped(np.array([1 / 3] * 3), drain=1.5)


# --------------------------------------------------------------------- #
# Forecast-aware routing
# --------------------------------------------------------------------- #


def forecast_ctx(
    ci, forecast, prev=None, ramp=1.0, t_h=0.0, lookahead=6.0, capacity=None
):
    base = make_ctx(ci=ci, capacity=capacity)
    return RoutingContext(
        **{
            **base.__dict__,
            "t_h": t_h,
            "forecast_ci": np.asarray(forecast, dtype=np.float64),
            "lookahead_h": lookahead,
            "prev_shares": None if prev is None else np.asarray(prev),
            "max_ramp_share": ramp,
        }
    )


class TestForecastAware:
    def test_no_forecast_degrades_to_greedy(self):
        ctx = make_ctx()
        fa = ForecastAwareRouter().split(ctx)
        greedy = CarbonGreedyRouter().split(ctx)
        assert fa == pytest.approx(greedy)

    def test_forecast_flips_the_order(self):
        """A region predicted to get much cleaner wins the fill despite a
        slightly dirtier present.  Capacity is kept loose so the fill
        order is visible in the split (tight caps equalize any order)."""
        ci = (210.0, 200.0, 900.0)          # region 1 cleanest now, barely
        forecast = (40.0, 400.0, 900.0)     # region 0 about to plunge
        roomy = (90.0, 90.0, 90.0)
        fa = ForecastAwareRouter(blend=0.6).split(
            forecast_ctx(ci, forecast, capacity=roomy)
        )
        greedy = CarbonGreedyRouter().split(make_ctx(ci=ci, capacity=roomy))
        assert fa[0] > greedy[0]            # pre-positioned toward region 0
        assert fa[0] == pytest.approx(greedy[1])  # mirror of the fill order

    def test_blend_zero_is_myopic(self):
        ci = (210.0, 200.0, 900.0)
        forecast = (40.0, 400.0, 900.0)
        fa = ForecastAwareRouter(blend=0.0).split(forecast_ctx(ci, forecast))
        greedy = CarbonGreedyRouter().split(make_ctx(ci=ci))
        assert fa == pytest.approx(greedy)

    def test_regret_guard_decays_trust_in_bad_forecasts(self):
        """Feeding wildly wrong forecasts long enough drops the effective
        weight, and the split converges back to myopic greedy."""
        router = ForecastAwareRouter(
            blend=0.6, regret_threshold=0.1, regret_memory=0.5
        )
        ci = (210.0, 200.0, 900.0)
        garbage = (2000.0, 10.0, 50.0)
        assert router.forecast_weight == pytest.approx(0.6)
        for epoch in range(20):
            ctx = forecast_ctx(ci, garbage, t_h=float(epoch), lookahead=2.0)
            router.split(ctx)
        assert router.forecast_weight < 0.1
        final = router.split(
            forecast_ctx(ci, garbage, t_h=21.0, lookahead=2.0)
        )
        greedy = CarbonGreedyRouter().split(make_ctx(ci=ci))
        assert final == pytest.approx(greedy, rel=1e-3)

    def test_accurate_forecasts_keep_full_trust(self):
        router = ForecastAwareRouter(blend=0.6, regret_threshold=0.1)
        ci = (210.0, 200.0, 900.0)
        for epoch in range(20):
            ctx = forecast_ctx(ci, ci, t_h=float(epoch), lookahead=2.0)
            router.split(ctx)
        assert router.forecast_weight == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ForecastAwareRouter(blend=1.5)
        with pytest.raises(ValueError):
            ForecastAwareRouter(lookahead_h=-1.0)
        with pytest.raises(ValueError):
            ForecastAwareRouter(regret_threshold=0.0)
        with pytest.raises(ValueError):
            ForecastAwareRouter(regret_memory=1.0)

    def test_reset_clears_regret_state(self):
        """A router instance reused across runs must not inherit pending
        forecasts or regret statistics (the coordinator resets per run)."""
        router = ForecastAwareRouter(
            blend=0.6, regret_threshold=0.1, regret_memory=0.5
        )
        ci = (210.0, 200.0, 900.0)
        garbage = (2000.0, 10.0, 50.0)
        for epoch in range(10):
            router.split(forecast_ctx(ci, garbage, t_h=float(epoch), lookahead=2.0))
        assert router.forecast_weight < 0.6
        assert router._pending
        router.reset()
        assert router.forecast_weight == pytest.approx(0.6)
        assert not router._pending and not router._observed

    def test_sub_epoch_lookahead_still_feeds_the_regret_guard(self):
        """With a lookahead shorter than the epoch step the scoring window
        holds no observations; the guard falls back to the current reading
        instead of going inert."""
        router = ForecastAwareRouter(
            blend=0.6, regret_threshold=0.1, regret_memory=0.5
        )
        ci = (210.0, 200.0, 900.0)
        garbage = (2000.0, 10.0, 50.0)
        for epoch in range(10):
            router.split(
                forecast_ctx(ci, garbage, t_h=float(epoch), lookahead=0.5)
            )
        assert router.forecast_weight < 0.6


# --------------------------------------------------------------------- #
# Pair-aware cell planning
# --------------------------------------------------------------------- #


def cell_inputs(targets=(90.0, 90.0, 90.0)):
    """Three origins, three regions; origin i's home is region i."""
    latency = np.array(
        [
            [10.0, 45.0, 65.0],
            [45.0, 10.0, 65.0],
            [55.0, 65.0, 14.0],
        ]
    )
    return latency, np.asarray(targets, dtype=np.float64)


class TestPlanOriginCells:
    def plan(self, origin_rates, order=(0, 1, 2), sla_rate=1e9,
             targets=(90.0, 90.0, 90.0), **kwargs):
        latency, t = cell_inputs(targets)
        ctx = make_ctx()
        return plan_origin_cells(
            ctx,
            np.asarray(order),
            np.asarray(origin_rates, dtype=np.float64),
            latency,
            t,
            lambda r, budget: sla_rate,
            **kwargs,
        )

    def test_conserves_origin_supply(self):
        supply = [30.0, 30.0, 30.0]
        plan = self.plan(supply)
        np.testing.assert_allclose(plan.sum(axis=1), supply, rtol=1e-9)
        assert plan.sum() == pytest.approx(90.0, rel=1e-9)

    def test_infeasible_pair_never_filled(self):
        """A pair whose hop exceeds the whole budget gets zero traffic
        (supply reroutes through feasible pairs with room)."""
        plan = self.plan([30.0, 30.0, 30.0], targets=(90.0, 90.0, 60.0))
        # Budgets into region 2: 60-55, 60-65, 60-14 → origin 1 infeasible.
        assert plan[1, 2] == pytest.approx(0.0)

    def test_session_retention_pins_prior_cells(self):
        prev = np.array(
            [[20.0, 10.0, 0.0], [0.0, 30.0, 0.0], [0.0, 0.0, 30.0]]
        )
        plan = self.plan(
            [30.0, 30.0, 30.0],
            prev_plan=prev,
            session_keep_frac=0.8,
        )
        assert (plan >= 0.8 * prev - 1e-9).all()

    def test_retention_scales_with_shrinking_demand(self):
        """When an origin's demand halves, retained cells halve too —
        sessions end with their users."""
        prev = np.array(
            [[20.0, 10.0, 0.0], [0.0, 30.0, 0.0], [0.0, 0.0, 30.0]]
        )
        plan = self.plan(
            [15.0, 30.0, 30.0],  # origin 0 demand halved
            prev_plan=prev,
            session_keep_frac=1.0,
        )
        assert plan[0] == pytest.approx(prev[0] * 0.5)

    def test_residency_floor_stays_home(self):
        plan = self.plan(
            [30.0, 30.0, 30.0],
            order=(2, 0, 1),  # policy prefers region 2
            resident_floor_share=0.1,
        )
        for o in range(3):
            assert plan[o, o] >= 0.1 * 30.0 - 1e-9

    def test_measured_p95_gate_blocks_far_cells(self):
        """A measured tail above a pair's budget keeps that pair empty
        even when the analytic bisection would allow it."""
        measured = np.array([5.0, 5.0, 40.0])  # region 2's tail is bad
        plan = self.plan(
            [30.0, 30.0, 30.0],
            order=(2, 0, 1),
            measured_p95_ms=measured,
        )
        # Budgets into region 2: 90-55=35 and 90-65=25 < 40 → origins 0, 1
        # blocked; only origin 2 (budget 76) may use it via the fill.
        assert plan[0, 2] == pytest.approx(0.0)
        assert plan[1, 2] == pytest.approx(0.0)

    def test_conservation_spill_when_budgets_block_everything(self):
        """With zero SLA-safe rate everywhere, traffic still lands
        somewhere (capacity order) — conservation beats caps."""
        plan = self.plan([30.0, 30.0, 30.0], sla_rate=0.0)
        assert plan.sum() == pytest.approx(90.0, rel=1e-9)
