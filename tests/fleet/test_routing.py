"""Router invariants: conservation, capacity/SLA caps, policy ordering."""

import numpy as np
import pytest

from repro.fleet.routing import (
    CarbonGreedyRouter,
    LatencyAwareRouter,
    ROUTER_NAMES,
    RoutingContext,
    StaticRouter,
    make_router,
)


def make_ctx(
    ci=(300.0, 150.0, 40.0),
    pue=None,
    latency=(5.0, 20.0, 40.0),
    nominal=(30.0, 30.0, 30.0),
    capacity=None,
    sla_caps=None,
    floor_share=0.05,
    global_rate=None,
):
    n = len(ci)
    nominal = np.asarray(nominal, dtype=np.float64)
    return RoutingContext(
        t_h=0.0,
        global_rate_per_s=(
            float(nominal.sum()) if global_rate is None else global_rate
        ),
        ci=np.asarray(ci, dtype=np.float64),
        pue=np.asarray(pue if pue is not None else [1.5] * n),
        net_latency_ms=np.asarray(latency, dtype=np.float64),
        nominal_rates=nominal,
        capacity_rates=np.asarray(
            capacity if capacity is not None else nominal * 1.3
        ),
        sla_cap_rates=np.asarray(
            sla_caps if sla_caps is not None else [np.inf] * n
        ),
        floor_rates=floor_share * nominal,
    )


ALL_ROUTERS = (StaticRouter(), LatencyAwareRouter(), CarbonGreedyRouter())


class TestConservation:
    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    def test_shares_sum_to_one(self, router):
        shares = router.split(make_ctx())
        assert shares.sum() == pytest.approx(1.0, rel=1e-12)
        assert (shares >= 0).all()

    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    def test_rates_conserve_global_rate(self, router):
        ctx = make_ctx()
        assert router.rates(ctx).sum() == pytest.approx(
            ctx.global_rate_per_s, rel=1e-12
        )

    @pytest.mark.parametrize("router", ALL_ROUTERS, ids=lambda r: r.name)
    def test_conservation_survives_tight_sla_caps(self, router):
        """Even when SLA caps cannot absorb the workload, every arrival is
        routed somewhere (conservation beats caps)."""
        ctx = make_ctx(sla_caps=(10.0, 10.0, 10.0))
        assert router.rates(ctx).sum() == pytest.approx(
            ctx.global_rate_per_s, rel=1e-12
        )


class TestStatic:
    def test_single_region_share_is_exactly_one(self):
        """The N=1 bit-for-bit equivalence hinges on an *exact* 1.0."""
        ctx = make_ctx(ci=(200.0,), pue=(1.5,), latency=(0.0,), nominal=(37.0,))
        shares = StaticRouter().split(ctx)
        assert shares[0] == 1.0  # exact, not approx

    def test_proportional_to_nominal(self):
        ctx = make_ctx(nominal=(10.0, 30.0, 60.0))
        assert StaticRouter().split(ctx) == pytest.approx([0.1, 0.3, 0.6])

    def test_explicit_weights(self):
        ctx = make_ctx()
        shares = StaticRouter(weights=np.array([1.0, 1.0, 2.0])).split(ctx)
        assert shares == pytest.approx([0.25, 0.25, 0.5])

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="regions"):
            StaticRouter(weights=np.array([1.0, 2.0])).split(make_ctx())

    def test_nonpositive_weights_rejected(self):
        """Zero-weight regions would serve a zero rate (undefined DES
        measurement); the router refuses them up front."""
        for bad in (-1.0, 0.0):
            with pytest.raises(ValueError, match="positive"):
                StaticRouter(weights=np.array([1.0, bad, 1.0])).split(
                    make_ctx()
                )

    def test_ignores_carbon(self):
        clean_last = StaticRouter().split(make_ctx(ci=(300.0, 150.0, 40.0)))
        clean_first = StaticRouter().split(make_ctx(ci=(40.0, 150.0, 300.0)))
        assert clean_last == pytest.approx(clean_first)


class TestCarbonGreedy:
    def test_cleanest_region_filled_to_cap(self):
        ctx = make_ctx()
        rates = CarbonGreedyRouter().rates(ctx)
        # Region 2 (ci=40) is cleanest: filled to its capacity cap.
        assert rates[2] == pytest.approx(ctx.capacity_rates[2])
        # The dirtiest region keeps the least.
        assert rates[0] < rates[1] <= rates[2]

    def test_capacity_caps_respected_when_feasible(self):
        ctx = make_ctx()
        rates = CarbonGreedyRouter().rates(ctx)
        assert (rates <= ctx.capacity_rates * (1 + 1e-12)).all()

    def test_sla_caps_respected_when_feasible(self):
        """A clean region with a tight SLA cap only absorbs up to the cap."""
        ctx = make_ctx(sla_caps=(np.inf, np.inf, 32.0))
        rates = CarbonGreedyRouter().rates(ctx)
        assert rates[2] == pytest.approx(32.0)
        assert (
            rates <= np.minimum(ctx.capacity_rates, ctx.sla_cap_rates) + 1e-9
        ).all()

    def test_floor_shares_never_shifted_away(self):
        ctx = make_ctx()
        rates = CarbonGreedyRouter().rates(ctx)
        assert (rates >= ctx.floor_rates - 1e-12).all()

    def test_effective_ci_uses_pue(self):
        """A dirty-grid/efficient-datacenter region can beat a cleaner grid
        behind a terrible PUE."""
        ctx = make_ctx(ci=(100.0, 90.0, 300.0), pue=(1.1, 2.0, 1.5))
        # effective: 110, 180, 450 -> region 0 is the routing winner.
        rates = CarbonGreedyRouter().rates(ctx)
        assert rates[0] == pytest.approx(ctx.capacity_rates[0])

    def test_zero_sla_cap_leaves_only_floor(self):
        """With enough headroom elsewhere, an SLA-infeasible region keeps
        only its un-shiftable floor traffic."""
        ctx = make_ctx(
            capacity=(60.0, 60.0, 39.0), sla_caps=(np.inf, np.inf, 0.0)
        )
        rates = CarbonGreedyRouter().rates(ctx)
        assert rates[2] == pytest.approx(ctx.floor_rates[2])


class TestLatencyAware:
    def test_nearest_region_filled_first(self):
        ctx = make_ctx(latency=(40.0, 5.0, 20.0))
        rates = LatencyAwareRouter().rates(ctx)
        assert rates[1] == pytest.approx(ctx.capacity_rates[1])
        assert rates[0] < rates[2] <= rates[1]

    def test_ignores_carbon(self):
        a = LatencyAwareRouter().split(make_ctx(ci=(300.0, 150.0, 40.0)))
        b = LatencyAwareRouter().split(make_ctx(ci=(40.0, 150.0, 300.0)))
        assert a == pytest.approx(b)


class TestFactory:
    def test_all_names_construct(self):
        for name in ROUTER_NAMES:
            assert make_router(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="valid"):
            make_router("teleport")
