"""Batched SLA-rate bisection (`sla_safe_rates`) vs the scalar method."""

import numpy as np
import pytest

from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.regional import (
    PRE_DEPLOYMENT_BUDGET_SLACK_MS,
    RegionalService,
)
from repro.fleet.regions import region_by_name


@pytest.fixture(scope="module")
def fresh_service():
    region = region_by_name("us-ciso", n_gpus=2)
    return RegionalService.create(region, fidelity="smoke", seed=0)


@pytest.fixture(scope="module")
def deployed_service():
    region = region_by_name("us-ciso", n_gpus=2)
    fleet = FleetCoordinator.create(
        [region], scheme="clover", router="static", fidelity="smoke", seed=0
    )
    fleet.run(duration_h=2.0)
    svc = fleet.services[0]
    assert svc.controller.deployed is not None
    return svc


class TestPreDeployment:
    def test_scalar_delegates_to_batch(self, fresh_service):
        svc = fresh_service
        cap = svc.awake_capacity_rate_per_s
        target = svc.sla_target_ms
        budgets = np.array([
            -5.0,
            0.0,
            target - PRE_DEPLOYMENT_BUDGET_SLACK_MS - 1.0,
            target - 1.0,
            target,
            target + 50.0,
        ])
        batch = svc.sla_safe_rates(budgets)
        scalar = np.array([svc.sla_safe_rate(float(b)) for b in budgets])
        np.testing.assert_array_equal(batch, scalar)  # exact
        assert batch[0] == batch[1] == 0.0  # non-positive budgets
        assert batch[2] == 0.0  # tighter than the slack window
        assert batch[3] == batch[4] == batch[5] == cap

    def test_default_budget_is_the_region_target(self, fresh_service):
        svc = fresh_service
        assert svc.sla_safe_rate() == svc.sla_safe_rate(svc.sla_target_ms)


class TestDeployed:
    def test_batch_identical_to_scalar_probes(self, deployed_service):
        svc = deployed_service
        target = svc.sla_target_ms
        budgets = np.concatenate([
            np.linspace(-10.0, 0.0, 3),  # non-positive -> 0.0
            np.linspace(1.0, 2.0 * target, 17),
        ])
        batch = svc.sla_safe_rates(budgets)
        scalar = np.array([svc.sla_safe_rate(float(b)) for b in budgets])
        # Each batch row runs exactly the scalar probe sequence, so the
        # agreement is bitwise, not approximate.
        np.testing.assert_array_equal(batch, scalar)
        assert (batch[:3] == 0.0).all()

    def test_monotone_in_budget(self, deployed_service):
        svc = deployed_service
        budgets = np.linspace(1.0, 2.0 * svc.sla_target_ms, 25)
        rates = svc.sla_safe_rates(budgets)
        assert (np.diff(rates) >= -1e-12).all()
        assert (rates <= svc.awake_capacity_rate_per_s + 1e-12).all()
