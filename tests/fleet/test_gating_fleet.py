"""Elastic capacity end to end: equivalence, energy, zero traffic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.carbon.traces import ciso_march_48h
from repro.core.controller import EpochCapacity
from repro.core.service import CarbonAwareInferenceService
from repro.fleet import FleetCoordinator, GatingPolicy, Region, region_by_name
from repro.gpu.profiles import A100_PROFILE

GPUS = 2
DEMAND_REGIONS = ("us-ciso", "uk-eso", "apac-solar")


def solo_region(net_latency_ms=0.0):
    return Region(
        name="solo",
        trace=ciso_march_48h(),
        pue=1.5,
        net_latency_ms=net_latency_ms,
        n_gpus=GPUS,
    )


def demand_fleet(router="carbon-greedy", gating=None, lookahead_h=None):
    regions = tuple(
        region_by_name(n, n_gpus=GPUS) for n in DEMAND_REGIONS
    )
    return FleetCoordinator.create(
        regions,
        scheme="clover",
        router=router,
        fidelity="smoke",
        seed=0,
        demand="diurnal",
        ramp_share_per_h=0.10,
        drain_share_per_h=0.20,
        lookahead_h=lookahead_h,
        gating=gating,
    )


@pytest.fixture(scope="module")
def gated_vs_always_on():
    """carbon-greedy on the demand fleet, gated and always-on (24 h)."""
    on = demand_fleet(gating=None).run(duration_h=24.0)
    gated = demand_fleet(gating="reactive").run(duration_h=24.0)
    return on, gated


class TestGatingDisabledEquivalence:
    def test_n1_gating_none_is_seed_service_bit_for_bit(self):
        """The acceptance bar: gating disabled changes nothing — the N=1
        constant-demand fleet still reproduces the seed service exactly,
        epoch by epoch."""
        fleet = FleetCoordinator.create(
            [solo_region()],
            scheme="clover",
            router="static",
            fidelity="smoke",
            seed=7,
            gating=None,
        )
        fleet_result = fleet.run(duration_h=6.0)
        seed_result = CarbonAwareInferenceService.create(
            application="classification",
            scheme="clover",
            fidelity="smoke",
            seed=7,
            n_gpus=GPUS,
        ).run(duration_h=6.0)
        assert fleet_result.total_carbon_g == seed_result.total_carbon_g
        assert fleet_result.total_energy_j == seed_result.total_energy_j
        for fe, se in zip(fleet_result.results[0].epochs, seed_result.epochs):
            assert fe.energy_j == se.energy_j
            assert fe.p95_ms == se.p95_ms
            assert fe.awake_gpus is None

    def test_gating_off_runs_report_no_gating(self, gated_vs_always_on):
        on, gated = gated_vs_always_on
        assert not on.has_gating
        assert on.mean_awake_fraction == 1.0
        assert gated.has_gating
        assert gated.gating_name == "reactive"

    def test_rerun_resets_capacity_managers(self):
        """Regression: run() used to reset the router and services but not
        the capacity managers, so a second run started from a stale awake
        count / pending transitions / hysteresis streak.  (Full bit-equal
        reruns of a reused coordinator are not a guarantee — schemes keep
        warm-start state across runs, which is why the harness builds a
        fresh coordinator per run — but the capacity state machine must
        boot fully provisioned every run.)"""
        fleet = demand_fleet(gating="reactive")
        first = fleet.run(duration_h=12.0)
        assert first.awake_gpu_series().min() < GPUS  # GPUs really slept
        # At least one manager ends the run carrying non-boot state.
        assert any(
            mgr.awake < mgr.n_gpus or mgr.total_wakes > 0
            for mgr in fleet._managers
        )
        second = fleet.run(duration_h=12.0)
        # Epoch 0 of the rerun starts from the boot state everywhere.
        assert (second.awake_gpu_series()[0] == GPUS).all()
        for mgr, result in zip(fleet._managers, second.results):
            assert result.epochs[0].awake_gpus == GPUS

    def test_overspending_wake_energy_rejected(self):
        """The no-overspend invariant is enforced, not just documented: a
        wake transition may not draw more than the static floor it was
        gated from."""
        with pytest.raises(ValueError, match="out-spend"):
            demand_fleet(
                gating=GatingPolicy(wake_latency_s=10.0)  # default 2 kJ wake
            )


class TestGatedEnergy:
    def test_gated_fleet_sleeps_gpus(self, gated_vs_always_on):
        _, gated = gated_vs_always_on
        assert gated.mean_awake_fraction < 1.0
        awake = gated.awake_gpu_series()
        assert awake.min() >= 1
        assert awake.max() <= GPUS

    def test_gated_total_energy_below_always_on(self, gated_vs_always_on):
        on, gated = gated_vs_always_on
        assert gated.total_energy_j < on.total_energy_j
        assert gated.total_carbon_g < on.total_carbon_g

    def test_gated_per_epoch_energy_never_exceeds_always_on(
        self, gated_vs_always_on
    ):
        """Satellite property at fleet scope: epoch by epoch, the gated
        fleet never spends more energy than its always-on twin — sleep
        savings always cover the (static-floor-bounded) wake transitions."""
        on, gated = gated_vs_always_on
        for i in range(len(on.results[0].epochs)):
            e_on = sum(r.epochs[i].energy_j for r in on.results)
            e_gated = sum(r.epochs[i].energy_j for r in gated.results)
            assert e_gated <= e_on * (1.0 + 1e-9)

    def test_sla_still_judged(self, gated_vs_always_on):
        _, gated = gated_vs_always_on
        assert 0.0 < gated.user_sla_attainment <= 1.0


class ControllerHarness:
    """Two identical BASE services, one gated, driven with paired rates."""

    def __init__(self, seed=3):
        def make():
            return CarbonAwareInferenceService.create(
                application="classification",
                scheme="base",
                fidelity="smoke",
                seed=seed,
                n_gpus=4,
            )

        self.plain = make()
        self.gated = make()
        self.rate = self.plain.controller.rate_per_s

    def run_paired(self, awake_seq, rate_factors):
        c_plain, c_gated = self.plain.controller, self.gated.controller
        r_plain, r_gated = c_plain.begin_run(), c_gated.begin_run()
        power = c_plain.measure_evaluator.perf.power
        prev_awake = 4
        for i, (awake, factor) in enumerate(zip(awake_seq, rate_factors)):
            rate = self.rate * factor
            t_h = float(i)
            c_plain.step(r_plain, i, t_h, rate)
            woken = max(0, awake - prev_awake)
            capacity = EpochCapacity(
                awake_gpus=awake,
                serving_gpus_at_start=min(prev_awake, awake),
                wake_delay_s=60.0 if woken else 0.0,
                aux_energy_j=(
                    power.sleep_watts_per_gpu() * (4 - awake)
                    * c_gated.step_s
                    # The policy default (None) resolves to the device
                    # profile's per-wake energy — all-A100 here.
                    + A100_PROFILE.wake_energy_j * woken
                ),
            )
            c_gated.step(r_gated, i, t_h, rate, capacity=capacity)
            prev_awake = awake
        return c_plain.finalize(r_plain), c_gated.finalize(r_gated)


@given(
    awake_seq=st.lists(
        st.integers(min_value=1, max_value=4), min_size=3, max_size=8
    ),
    rate_factor=st.floats(min_value=0.05, max_value=0.9),
)
@settings(max_examples=12, deadline=None)
def test_property_gated_epoch_energy_bounded(awake_seq, rate_factor):
    """Paired-rate property at controller scope: with identical arrival
    rates, every gated epoch's energy (awake cluster + sleep draw + wake
    transitions) stays at or below the always-on epoch's."""
    harness = ControllerHarness()
    # The gated cluster must be able to carry the rate on one GPU.
    factors = [rate_factor * min(awake_seq) / 4.0] * len(awake_seq)
    plain, gated = harness.run_paired(awake_seq, factors)
    for pe, ge in zip(plain.epochs, gated.epochs):
        assert ge.energy_j <= pe.energy_j * (1.0 + 1e-9)
    assert gated.total_energy_j <= plain.total_energy_j * (1.0 + 1e-9)


class TestZeroTraffic:
    def test_zero_rate_epoch_serves_nothing_pays_static(self):
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="base",
            fidelity="smoke", seed=0, n_gpus=GPUS,
        )
        controller = service.controller
        result = controller.begin_run()
        controller.step(result, 0, 0.0, controller.rate_per_s)
        record = controller.step(result, 1, 1.0, 0.0)
        assert record.requests == 0.0
        assert np.isnan(record.p95_ms)
        assert record.sla_met
        static = (
            controller.measure_evaluator.perf.power.static_watts_per_gpu()
            * GPUS
        )
        assert record.energy_j == pytest.approx(static * controller.step_s)
        assert record.carbon_g > 0.0

    def test_zero_traffic_run_views_do_not_divide_by_zero(self):
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="base",
            fidelity="smoke", seed=0, n_gpus=GPUS,
        )
        controller = service.controller
        result = controller.begin_run()
        for i in range(3):
            controller.step(result, i, float(i), 0.0)
        controller.finalize(result)
        assert result.total_requests == 0.0
        assert np.isnan(result.carbon_g_per_request)
        assert np.isnan(result.mean_accuracy)
        assert np.isnan(result.worst_p95_ms)
        assert result.sla_violation_fraction == 0.0

    def test_fleet_views_survive_a_zero_request_region(self):
        """FleetResult aggregate views must stay well-defined when one
        region serves nothing for the whole window — the case gating
        makes common."""
        import dataclasses

        fleet = demand_fleet(gating="reactive")
        report = fleet.run(duration_h=12.0)
        # Zero out one region's record stream to simulate a fully-drained
        # gated region (rates, requests and measurements all nil).
        starved = report.results[1]
        starved.epochs[:] = [
            dataclasses.replace(
                e, requests=0.0, accuracy=0.0, p95_ms=float("nan"),
                rate_per_s=0.0,
            )
            for e in starved.epochs
        ]
        zeroed_plans = tuple(
            np.where([False, True, False], 0.0, plan)
            for plan in report.origin_plans
        )
        report = dataclasses.replace(report, origin_plans=zeroed_plans)
        assert np.isfinite(report.carbon_g_per_request)
        assert np.isfinite(report.mean_accuracy)
        assert 0.0 <= report.sla_attainment <= 1.0
        shares = report.request_shares
        assert shares[report.regions[1].name] == 0.0
        headers, rows = report.table()
        assert len(rows) == len(report.regions) + 1
        headers, rows = report.origin_table()
        assert len(rows) == len(report.origin_names)
        assert np.isfinite(report.mean_net_latency_ms)
