"""FleetCoordinator: N=1 seed equivalence, conservation, routing wins."""

import numpy as np
import pytest

from repro.carbon.traces import ciso_march_48h
from repro.core.service import CarbonAwareInferenceService
from repro.fleet import (
    FleetCoordinator,
    Region,
    StaticRouter,
    default_fleet_regions,
    region_by_name,
)

#: Small clusters + smoke fidelity keep the fleet tests in CI budget.
GPUS = 2


def solo_region(net_latency_ms=0.0):
    """A region that mirrors the seed service's defaults exactly."""
    return Region(
        name="solo",
        trace=ciso_march_48h(),
        pue=1.5,
        net_latency_ms=net_latency_ms,
        n_gpus=GPUS,
    )


@pytest.fixture(scope="module")
def three_region_runs():
    """static vs carbon-greedy on the default 3-region fleet (24 h)."""
    out = {}
    for router in ("static", "carbon-greedy"):
        fleet = FleetCoordinator.create(
            default_fleet_regions(n_gpus=GPUS),
            scheme="clover",
            router=router,
            fidelity="smoke",
            seed=0,
        )
        out[router] = (fleet, fleet.run(duration_h=24.0))
    return out


class TestSingleRegionEquivalence:
    @pytest.mark.parametrize("scheme", ["base", "clover"])
    def test_static_n1_reproduces_seed_service_exactly(self, scheme):
        """The acceptance bar: one region + static router == the seed
        CarbonAwareInferenceService.run, bit for bit."""
        fleet = FleetCoordinator.create(
            [solo_region()],
            application="classification",
            scheme=scheme,
            router="static",
            fidelity="smoke",
            seed=7,
        )
        fleet_result = fleet.run(duration_h=6.0)

        service = CarbonAwareInferenceService.create(
            application="classification",
            scheme=scheme,
            fidelity="smoke",
            seed=7,
            n_gpus=GPUS,
        )
        seed_result = service.run(duration_h=6.0)

        assert fleet_result.total_carbon_g == seed_result.total_carbon_g
        assert fleet_result.total_energy_j == seed_result.total_energy_j
        assert fleet_result.total_requests == seed_result.total_requests
        assert fleet_result.mean_accuracy == seed_result.mean_accuracy
        region_run = fleet_result.results[0]
        assert region_run.sla_target_ms == seed_result.sla_target_ms
        assert len(region_run.epochs) == len(seed_result.epochs)
        for fe, se in zip(region_run.epochs, seed_result.epochs):
            assert fe.carbon_g == se.carbon_g
            assert fe.p95_ms == se.p95_ms
            assert fe.config_label == se.config_label

    def test_n1_default_duration_is_trace_span(self):
        fleet = FleetCoordinator.create(
            [solo_region()], scheme="base", router="static",
            fidelity="smoke", seed=0,
        )
        assert fleet.run().duration_h == pytest.approx(48.0)


class TestConservation:
    def test_per_epoch_arrivals_conserved(self, three_region_runs):
        """Every epoch, the regions' routed requests sum to the global
        workload — Poisson thinning never creates or drops arrivals."""
        for fleet, result in three_region_runs.values():
            per_epoch_global = fleet.global_rate_per_s * fleet.step_s
            n_epochs = len(result.results[0].epochs)
            for i in range(n_epochs):
                routed = sum(r.epochs[i].requests for r in result.results)
                assert routed == pytest.approx(per_epoch_global, rel=1e-9)

    def test_total_requests_match_global_workload(self, three_region_runs):
        fleet, result = three_region_runs["carbon-greedy"]
        expected = fleet.global_rate_per_s * result.duration_h * 3600.0
        assert result.total_requests == pytest.approx(expected, rel=1e-9)

    def test_request_shares_sum_to_one(self, three_region_runs):
        _, result = three_region_runs["carbon-greedy"]
        assert sum(result.request_shares.values()) == pytest.approx(1.0)


class TestCapacityAndSla:
    def test_carbon_greedy_respects_capacity(self, three_region_runs):
        fleet, result = three_region_runs["carbon-greedy"]
        for service, run in zip(fleet.services, result.results):
            for e in run.epochs:
                assert e.rate_per_s <= service.capacity_rate_per_s * (1 + 1e-9)

    def test_floor_traffic_always_served(self, three_region_runs):
        fleet, result = three_region_runs["carbon-greedy"]
        for service, run in zip(fleet.services, result.results):
            floor = fleet.floor_share * service.nominal_rate_per_s
            for e in run.epochs:
                assert e.rate_per_s >= floor * (1 - 1e-9)

    def test_remote_region_sla_tightened_by_network_latency(self):
        near = FleetCoordinator.create(
            [solo_region(net_latency_ms=0.0)], scheme="base",
            router="static", fidelity="smoke", seed=0,
        )
        far = FleetCoordinator.create(
            [solo_region(net_latency_ms=15.0)], scheme="base",
            router="static", fidelity="smoke", seed=0,
        )
        near_sla = near.services[0].sla_target_ms
        far_sla = far.services[0].sla_target_ms
        assert far_sla == pytest.approx(near_sla - 15.0)

    def test_unreachable_region_rejected(self):
        with pytest.raises(ValueError, match="never"):
            FleetCoordinator.create(
                [solo_region(net_latency_ms=10_000.0)], scheme="base",
                router="static", fidelity="smoke", seed=0,
            )


class TestLoadShiftingWins:
    def test_carbon_greedy_beats_static_on_carbon(self, three_region_runs):
        """The tentpole acceptance: shifting toward the cleanest grid cuts
        total fleet carbon vs the static split."""
        static = three_region_runs["static"][1]
        greedy = three_region_runs["carbon-greedy"][1]
        assert greedy.total_carbon_g < static.total_carbon_g

    def test_carbon_greedy_keeps_sla_attainment(self, three_region_runs):
        static = three_region_runs["static"][1]
        greedy = three_region_runs["carbon-greedy"][1]
        assert greedy.sla_attainment >= static.sla_attainment

    def test_share_shifts_toward_clean_region(self, three_region_runs):
        static = three_region_runs["static"][1]
        greedy = three_region_runs["carbon-greedy"][1]
        assert (
            greedy.request_shares["nordic-hydro"]
            > static.request_shares["nordic-hydro"]
        )


class TestFleetResult:
    def test_totals_are_region_sums(self, three_region_runs):
        _, result = three_region_runs["static"]
        assert result.total_carbon_g == pytest.approx(
            sum(r.total_carbon_g for r in result.results)
        )
        assert result.total_energy_j == pytest.approx(
            sum(r.total_energy_j for r in result.results)
        )

    def test_accuracy_is_request_weighted(self, three_region_runs):
        _, result = three_region_runs["static"]
        lo = min(r.mean_accuracy for r in result.results)
        hi = max(r.mean_accuracy for r in result.results)
        assert lo <= result.mean_accuracy <= hi

    def test_cache_counters_reported(self, three_region_runs):
        _, result = three_region_runs["carbon-greedy"]
        stats = result.cache_stats
        assert stats.misses > 0
        assert stats.hits > 0
        assert 0.0 < stats.hit_rate < 1.0
        for run in result.results:
            assert run.measure_cache is not None
            assert run.measure_cache.evaluations > 0
            assert run.opt_cache is not None

    def test_table_renders(self, three_region_runs):
        _, result = three_region_runs["carbon-greedy"]
        headers, rows = result.table()
        assert len(rows) == 4  # 3 regions + the fleet summary row
        assert rows[-1][0] == "fleet"
        assert len(headers) == len(rows[0])


class TestValidation:
    def test_duplicate_region_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetCoordinator.create(
                [solo_region(), solo_region()], scheme="base",
                router="static", fidelity="smoke", seed=0,
            )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetCoordinator([], StaticRouter())

    def test_region_seeds_differ(self):
        fleet = FleetCoordinator.create(
            [region_by_name("us-ciso", n_gpus=GPUS),
             region_by_name("uk-eso", n_gpus=GPUS)],
            scheme="base", router="static", fidelity="smoke", seed=3,
        )
        seeds = {s.service.controller.measure_evaluator.seed for s in fleet.services}
        assert len(seeds) == 2

    def test_zero_floor_share_rejected(self):
        """A zero floor could route a zero rate (undefined measurement)."""
        with pytest.raises(ValueError, match="floor share"):
            FleetCoordinator.create(
                [solo_region()], scheme="base", router="static",
                fidelity="smoke", seed=0, floor_share=0.0,
            )
