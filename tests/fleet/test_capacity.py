"""CapacityManager: the per-region awake/asleep state machine."""

import pytest

from repro.fleet.capacity import (
    CapacityManager,
    GatingPolicy,
    make_gating_policy,
)

#: 4 GPUs, capacity 4.0 req/s -> 1.0 req/s per GPU; target 0.75 means one
#: GPU absorbs 0.75 req/s before the next one wakes.
N, CAP = 4, 4.0


def manager(**policy_kwargs) -> CapacityManager:
    return CapacityManager(
        n_gpus=N, capacity_rate_per_s=CAP, policy=GatingPolicy(**policy_kwargs)
    )


class TestGatingPolicy:
    def test_defaults_valid(self):
        GatingPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(target_utilization=0.0),
            dict(target_utilization=1.2),
            dict(sleep_margin=1.0),
            dict(sleep_after_epochs=0),
            dict(wake_latency_s=-1.0),
            dict(wake_energy_j=-1.0),
            dict(min_awake=0),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GatingPolicy(**kwargs)

    def test_mode_presets(self):
        reactive = make_gating_policy("reactive")
        forecast = make_gating_policy("forecast")
        assert not reactive.prewake
        assert forecast.prewake
        # The forecast preset trusts its pre-wakes with deeper sleeps.
        assert forecast.sleep_margin < reactive.sleep_margin
        assert forecast.sleep_after_epochs <= reactive.sleep_after_epochs

    def test_preset_overrides_win(self):
        p = make_gating_policy("forecast", sleep_margin=2.0)
        assert p.sleep_margin == 2.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown gating mode"):
            make_gating_policy("psychic")


class TestSizing:
    def test_gpus_for_ceil(self):
        m = manager()
        assert m.gpus_for(0.1, 0.75) == 1
        assert m.gpus_for(0.75, 0.75) == 1
        assert m.gpus_for(0.76, 0.75) == 2
        assert m.gpus_for(100.0, 0.75) == N  # clamped to the pool

    def test_zero_rate_sizes_to_min_awake(self):
        m = manager(min_awake=2)
        assert m.gpus_for(0.0, 0.75) == 2

    def test_min_awake_above_pool_rejected(self):
        with pytest.raises(ValueError, match="min awake"):
            CapacityManager(
                n_gpus=2, capacity_rate_per_s=2.0,
                policy=GatingPolicy(min_awake=3),
            )

    def test_boots_fully_awake(self):
        assert manager().awake == N


class TestReactiveWake:
    def test_shortfall_wakes_now_with_delay(self):
        m = manager()
        m.awake = 1
        m.begin_epoch()
        decision = m.settle(2.0)  # needs ceil(2.0 / 0.75) = 3 GPUs
        assert decision.awake == 3
        assert decision.serving_at_start == 1
        assert decision.woken == 2
        assert decision.wake_delay_s == m.policy.wake_latency_s

    def test_no_shortfall_no_delay(self):
        m = manager()
        m.begin_epoch()
        decision = m.settle(1.0)
        assert decision.awake == N
        assert decision.woken == 0
        assert decision.wake_delay_s == 0.0


class TestHysteresis:
    def test_sleep_needs_consecutive_low_epochs(self):
        m = manager(sleep_after_epochs=2)
        m.begin_epoch()
        d1 = m.settle(0.5)  # low (needs 1 GPU even with margin)
        assert d1.slept == 0 and d1.awake == N
        m.begin_epoch()
        d2 = m.settle(0.5)  # second low epoch: sleep scheduled
        assert d2.slept == N - 1
        assert d2.awake == N  # still serving this epoch
        assert m.begin_epoch() == 1  # lands at the next epoch boundary

    def test_streak_resets_on_busy_epoch(self):
        m = manager(sleep_after_epochs=2)
        m.begin_epoch()
        m.settle(0.5)
        m.begin_epoch()
        m.settle(3.0 * 0.75)  # margined rate needs the whole pool again
        m.begin_epoch()
        d = m.settle(0.5)  # streak restarted: first low epoch again
        assert d.slept == 0

    def test_margin_is_a_deadband(self):
        """A rate needing k GPUs at target utilization but k+1 at the
        margined rate must NOT sleep down to k — that is the deadband
        that stops capacity flapping across the wake-latency boundary."""
        m = manager(sleep_margin=1.25, sleep_after_epochs=1)
        m.awake = 3
        rate = 1.6  # needs 3 @ target 0.75; margined 2.0 also needs 3
        m.begin_epoch()
        d = m.settle(rate)
        assert d.slept == 0

    def test_never_sleeps_below_min_awake(self):
        m = manager(min_awake=2, sleep_after_epochs=1)
        m.begin_epoch()
        d = m.settle(0.0)
        assert d.slept == N - 2
        assert m.begin_epoch() == 2


class TestPrewake:
    def test_hint_files_pending_wakes_that_land_next_epoch(self):
        m = manager(prewake=True)
        m.awake = 1
        m.begin_epoch()
        d = m.settle(0.5, hint_rate_per_s=2.0)  # forecast needs 3 GPUs
        assert d.awake == 1  # nothing woke reactively
        assert d.wake_delay_s == 0.0
        assert d.pending_wakes == 2
        assert m.begin_epoch() == 3  # pre-wakes online before routing
        # The matured pre-wakes are charged (woken) in the landing epoch.
        d2 = m.settle(2.0)
        assert d2.woken == 2
        assert d2.wake_delay_s == 0.0  # no reactive wake, no window

    def test_hint_ignored_without_prewake_policy(self):
        m = manager(prewake=False)
        m.awake = 1
        m.begin_epoch()
        d = m.settle(0.5, hint_rate_per_s=3.0)
        assert d.pending_wakes == 0

    def test_hint_holds_capacity_awake(self):
        """A high forecast stops the hysteresis from sleeping capacity the
        pre-wake would only have to bring back."""
        m = manager(prewake=True, sleep_after_epochs=1)
        m.begin_epoch()
        d = m.settle(0.5, hint_rate_per_s=2.5)
        assert d.slept == 0

    def test_wake_counters_accumulate(self):
        m = manager()
        m.awake = 1
        m.begin_epoch()
        m.settle(2.0)
        assert m.total_wakes == 2
