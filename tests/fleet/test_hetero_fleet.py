"""Heterogeneous fleets: bit-for-bit homogeneous anchor, routing, gating.

The acceptance bar of the heterogeneity PR: a fleet whose every region
explicitly declares A100 devices must be *bit-for-bit* identical to the
pre-heterogeneity fleet path (``devices=None``), while mixed fleets route
on effective gCO2/request and gate their least-efficient silicon first.
"""

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, FleetSpec
from repro.fleet import (
    CapacityManager,
    FleetCoordinator,
    GatingPolicy,
    make_gating_policy,
    region_by_name,
)
from repro.fleet.regional import RegionalService
from repro.fleet.routing import CarbonGreedyRouter, RoutingContext, make_router

GPUS = 2


def small_fleet(devices, router="carbon-greedy", seed=0, **kwargs):
    regions = tuple(
        region_by_name(name, n_gpus=GPUS, devices=dev)
        for name, dev in (("us-ciso", devices[0]), ("uk-eso", devices[1]))
    )
    return FleetCoordinator.create(
        regions, router=router, fidelity="smoke", seed=seed, **kwargs
    )


class TestHomogeneousBitForBit:
    @pytest.mark.parametrize("router", ["static", "carbon-greedy"])
    def test_explicit_a100_fleet_equals_pre_heterogeneity_path(self, router):
        """The acceptance criterion: all regions A100 == the pre-PR fleet,
        epoch by epoch, bit for bit."""
        implicit = small_fleet((None, None), router=router).run(duration_h=6.0)
        explicit = small_fleet(("a100", "a100"), router=router).run(
            duration_h=6.0
        )
        assert implicit.total_carbon_g == explicit.total_carbon_g
        assert implicit.total_energy_j == explicit.total_energy_j
        assert implicit.total_requests == explicit.total_requests
        assert implicit.sla_attainment == explicit.sla_attainment
        for a, b in zip(implicit.results, explicit.results):
            assert len(a.epochs) == len(b.epochs)
            for ea, eb in zip(a.epochs, b.epochs):
                assert ea.carbon_g == eb.carbon_g
                assert ea.p95_ms == eb.p95_ms
                assert ea.requests == eb.requests

    def test_explicit_tuple_form_is_also_anchored(self):
        implicit = small_fleet((None, None)).run(duration_h=3.0)
        explicit = small_fleet((("a100",) * GPUS, ("a100",) * GPUS)).run(
            duration_h=3.0
        )
        assert implicit.total_carbon_g == explicit.total_carbon_g

    def test_homogeneous_context_carries_no_energy_signal(self):
        fleet = small_fleet((None, None))
        ctx = fleet._context(0.0, fleet.global_rate_per_s, None)
        assert ctx.energy_per_request_j is None

    def test_heterogeneous_context_carries_energy_signal(self):
        fleet = small_fleet(("a100", "l4"))
        ctx = fleet._context(0.0, fleet.global_rate_per_s, None)
        assert ctx.energy_per_request_j is not None
        assert ctx.energy_per_request_j.shape == (2,)
        assert np.all(ctx.energy_per_request_j > 0)


class TestEfficiencyAwareRouting:
    def ctx(self, ci, energy):
        n = len(ci)
        return RoutingContext(
            t_h=0.0,
            global_rate_per_s=30.0,
            ci=np.asarray(ci, dtype=np.float64),
            pue=np.ones(n),
            net_latency_ms=np.zeros(n),
            nominal_rates=np.full(n, 10.0),
            capacity_rates=np.full(n, 15.0),
            sla_cap_rates=np.full(n, 15.0),
            floor_rates=np.full(n, 0.5),
            energy_per_request_j=(
                None if energy is None else np.asarray(energy, dtype=np.float64)
            ),
        )

    def test_flat_energy_returns_identical_scores_object(self):
        """Not merely the same ordering — the identical array, which is
        what keeps homogeneous fleets bit-for-bit."""
        ctx = self.ctx([100.0, 200.0], [5.0, 5.0])
        scores = ctx.effective_ci
        assert ctx.efficiency_scores(scores) is scores
        ctx_none = self.ctx([100.0, 200.0], None)
        assert ctx_none.efficiency_scores(scores) is scores

    def test_efficiency_ranking_flips_on_hungry_clean_region(self):
        """A clean grid on hungry silicon loses to a dirtier grid on lean
        silicon once the energy term is priced in."""
        ctx = self.ctx([100.0, 140.0], [12.0, 5.0])
        intensity_only = CarbonGreedyRouter(efficiency_weighted=False)
        efficiency = CarbonGreedyRouter(efficiency_weighted=True)
        assert list(intensity_only.region_order(ctx)) == [0, 1]
        assert list(efficiency.region_order(ctx)) == [1, 0]

    def test_make_router_passes_efficiency_flag(self):
        assert make_router("carbon-greedy").efficiency_weighted
        r = make_router("forecast-aware", efficiency_weighted=False)
        assert not r.efficiency_weighted

    def test_mixed_fleet_efficiency_beats_intensity_under_gating(self):
        """The tentpole's routing claim at test scale: strictly lower
        carbon at equal-or-better SLA on a mixed A100/L4 fleet."""
        policy = make_gating_policy("reactive", wake_energy_j=1000.0)
        kwargs = dict(
            gating=policy,
            demand="diurnal",
            ramp_share_per_h=0.10,
            drain_share_per_h=0.20,
        )
        eff = small_fleet(
            ("a100", "l4"),
            router=make_router("carbon-greedy", efficiency_weighted=True),
            **kwargs,
        ).run(duration_h=24.0)
        intensity = small_fleet(
            ("a100", "l4"),
            router=make_router("carbon-greedy", efficiency_weighted=False),
            **kwargs,
        ).run(duration_h=24.0)
        assert eff.total_carbon_g < intensity.total_carbon_g
        assert eff.user_sla_attainment >= intensity.user_sla_attainment - 1e-12


class TestHeterogeneousRegionalService:
    @pytest.fixture(scope="class")
    def mixed_service(self):
        region = region_by_name("us-ciso", n_gpus=2, devices=("a100", "l4"))
        return RegionalService.create(region, fidelity="smoke", seed=0)

    def test_pool_is_canonical_best_first(self, mixed_service):
        assert mixed_service.device_pool.names == ("l4", "a100")

    def test_capacity_reflects_device_speeds(self, mixed_service):
        rates = mixed_service.device_capacity_rates
        # Canonical order (l4, a100): the L4 carries 0.4x the A100 rate.
        assert rates[0] == pytest.approx(0.4 * rates[1])
        assert sum(rates) == pytest.approx(mixed_service.capacity_rate_per_s)

    def test_awake_capacity_is_a_canonical_prefix_sum(self, mixed_service):
        full = mixed_service.capacity_rate_per_s
        mixed_service.set_awake(1)
        try:
            # The awake prefix is the L4 alone: 0.4/1.4 of the pool.
            assert mixed_service.awake_capacity_rate_per_s == pytest.approx(
                full * 0.4 / 1.4
            )
        finally:
            mixed_service.set_awake(None)

    def test_sleeping_draw_prices_the_gated_tail(self, mixed_service):
        # Gating to 1 awake sleeps the A100 (canonical tail): 6 W, not the
        # L4's 3 W.
        assert mixed_service.sleeping_draw_watts(1) == pytest.approx(6.0)
        assert mixed_service.sleeping_draw_watts(2) == 0.0

    def test_min_static_watts_is_the_leanest_device(self, mixed_service):
        assert mixed_service.min_static_watts_per_gpu() == pytest.approx(18.0)

    def test_marginal_energy_positive_and_finite(self, mixed_service):
        # Pre-deployment: the closed-form BASE fallback (statics included).
        e = mixed_service.marginal_energy_per_request_j()
        assert 0.0 < e < 1e3

    def test_marginal_energy_amortizes_static_once_deployed(self):
        region = region_by_name("us-ciso", n_gpus=2, devices=("a100", "l4"))
        svc = RegionalService.create(region, fidelity="smoke", seed=0)
        result = svc.begin_run()
        svc.step(result, 0, 0.0, svc.nominal_rate_per_s)
        dynamic_only = svc.marginal_energy_per_request_j()
        with_static = svc.marginal_energy_per_request_j(
            static_amortize_utilization=0.75
        )
        assert 0.0 < dynamic_only < with_static

    def test_l4_region_never_partitions(self):
        """Granularity 1 pins an L4 region's deployments to full GPUs."""
        region = region_by_name("us-ciso", n_gpus=2, devices="l4")
        svc = RegionalService.create(
            region, scheme="clover", fidelity="smoke", seed=0
        )
        result = svc.begin_run()
        for i in range(4):
            svc.step(result, i, float(i), svc.nominal_rate_per_s)
        svc.finalize(result)
        deployed = svc.controller.deployed
        assert deployed is not None
        assert all(a.partition_id == 1 for a in deployed.assignments)


class TestHeterogeneousCapacityManager:
    def test_prefix_sizing_sleeps_least_efficient_first(self):
        mgr = CapacityManager(
            n_gpus=3,
            capacity_rate_per_s=50.0,
            policy=GatingPolicy(),
            per_gpu_rates=(10.0, 20.0, 20.0),
        )
        # 10 req/s fits the first (most efficient) device at 100% of its
        # 10 req/s... but not at 75% target utilization.
        assert mgr.gpus_for(7.0, 0.75) == 1
        assert mgr.gpus_for(10.0, 0.75) == 2
        assert mgr.gpus_for(23.0, 0.75) == 3
        assert mgr.gpus_for(1e9, 0.75) == 3
        assert mgr.awake_rate_per_s() == pytest.approx(50.0)

    def test_per_gpu_rate_validation(self):
        with pytest.raises(ValueError, match="per-GPU rates"):
            CapacityManager(
                n_gpus=2, capacity_rate_per_s=10.0, policy=GatingPolicy(),
                per_gpu_rates=(5.0,),
            )
        with pytest.raises(ValueError, match="positive"):
            CapacityManager(
                n_gpus=2, capacity_rate_per_s=10.0, policy=GatingPolicy(),
                per_gpu_rates=(5.0, 0.0),
            )

    def test_default_wake_energy_fits_every_device(self):
        """Per-profile wake energies: the A100-sized 2 kJ scalar used to
        make a gated L4 fleet unassemblable; the profile defaults fit
        each board's own static ceiling, so the mixed fleet gates out of
        the box with no override."""
        fleet = small_fleet(("a100", "l4"), gating="reactive")
        assert fleet.gating is not None
        assert fleet.gating.wake_energy_j is None  # per-device defaults

    def test_scalar_wake_energy_rejected_for_l4_fleet(self):
        """The gated-never-out-spends-always-on invariant is enforced
        against the leanest device: an L4 region with an explicit
        A100-sized 2 kJ wake energy must be rejected loudly."""
        from repro.fleet import make_gating_policy

        with pytest.raises(ValueError, match="wake energy"):
            small_fleet(
                ("a100", "l4"),
                gating=make_gating_policy("reactive", wake_energy_j=2000.0),
            )


class TestFleetSpecDevices:
    def test_runner_threads_devices_and_efficiency_flag(self):
        runner = ExperimentRunner()
        spec = FleetSpec(
            region_names=("us-ciso", "uk-eso"),
            router="carbon-greedy",
            fidelity="smoke",
            n_gpus=2,
            duration_h=3.0,
            devices=("a100", "l4"),
        )
        result = runner.run_fleet(spec)
        assert result.regions[0].devices is None or result.regions[0].devices
        assert result.regions[1].device_pool().names == ("l4", "l4")
        # The intensity-only ablation is a distinct memo entry.
        ablation = runner.run_fleet(
            spec.__class__(**{**spec.__dict__, "efficiency_weighted": False})
        )
        assert ablation is not runner.run_fleet(spec)

    def test_mixed_pool_spec_string(self):
        runner = ExperimentRunner()
        spec = FleetSpec(
            region_names=("us-ciso",),
            router="static",
            fidelity="smoke",
            n_gpus=2,
            duration_h=2.0,
            devices=("a100:1,l4:1",),
        )
        result = runner.run_fleet(spec)
        assert result.regions[0].device_pool().names == ("l4", "a100")

    def test_intensity_only_static_rejected(self):
        runner = ExperimentRunner()
        with pytest.raises(ValueError, match="intensity-only"):
            runner.run_fleet(
                FleetSpec(
                    region_names=("us-ciso",),
                    router="static",
                    fidelity="smoke",
                    n_gpus=2,
                    efficiency_weighted=False,
                )
            )

    def test_device_count_mismatch_rejected(self):
        runner = ExperimentRunner()
        with pytest.raises(ValueError, match="device specs"):
            runner.run_fleet(
                FleetSpec(
                    region_names=("us-ciso", "uk-eso"),
                    fidelity="smoke",
                    devices=("a100",),
                )
            )
