"""Temporal load shifting end to end: equivalence, safety, interplay."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import FleetCoordinator, region_by_name
from repro.shifting import BatchJobClass

GPUS = 2
REGIONS = ("nordic-hydro", "us-ciso")


def fleet(batch=None, router="carbon-greedy", gating=None, demand=None,
          seed=0):
    regions = tuple(region_by_name(n, n_gpus=GPUS) for n in REGIONS)
    kwargs = {}
    if demand is not None:
        kwargs.update(
            demand=demand, ramp_share_per_h=0.10, drain_share_per_h=0.20
        )
    return FleetCoordinator.create(
        regions,
        scheme="clover",
        router=router,
        fidelity="smoke",
        seed=seed,
        gating=gating,
        batch=batch,
        **kwargs,
    )


def batch_job(jobs_per_h=360.0, **kwargs):
    kwargs.setdefault("requests_per_job", 100.0)
    kwargs.setdefault("deadline_h", 8.0)
    return BatchJobClass(jobs_per_h=jobs_per_h, **kwargs)


@pytest.fixture(scope="module")
def joint_run():
    coord = fleet(batch=batch_job())
    return coord.run(duration_h=24.0), coord._capacity


class TestZeroBatchEquivalence:
    def test_batch_none_is_pre_batch_pipeline_bit_for_bit(self):
        """The acceptance bar: no batch configured changes nothing.  The
        coordinator with ``batch=None`` and a twin built before any batch
        plumbing existed must agree epoch by epoch — here proxied by two
        independent builds whose results must be bitwise identical and
        whose batch views report the feature off."""
        a = fleet().run(duration_h=12.0)
        b = fleet().run(duration_h=12.0)
        assert a.total_carbon_g == b.total_carbon_g
        assert a.total_energy_j == b.total_energy_j
        for ra, rb in zip(a.results, b.results):
            for ea, eb in zip(ra.epochs, rb.epochs):
                assert ea.energy_j == eb.energy_j
                assert ea.rate_per_s == eb.rate_per_s

    def test_zero_batch_views_report_feature_off(self):
        report = fleet().run(duration_h=6.0)
        assert report.has_batch is False
        assert report.batch_name is None
        assert report.batch_rates is None
        assert report.batch_completions == ()
        for prop in (
            "batch_completed_requests",
            "batch_deadline_attainment",
            "mean_shift_h",
        ):
            with pytest.raises(ValueError, match="ran no batch class"):
                getattr(report, prop)
        with pytest.raises(ValueError, match="ran no batch class"):
            report.batch_table()


class TestBatchSafety:
    def test_served_rates_never_exceed_capacity(self, joint_run):
        """Admission consumes *leftover* capacity only: the combined
        interactive + batch rate stays inside each region's envelope."""
        report, capacity = joint_run
        for r, result in enumerate(report.results):
            for epoch in result.epochs:
                assert epoch.rate_per_s <= capacity[r] + 1e-9

    def test_batch_rates_recorded_per_epoch(self, joint_run):
        report, _ = joint_run
        n_epochs = len(report.results[0].epochs)
        assert report.batch_rates.shape == (n_epochs, len(report.regions))
        assert (report.batch_rates >= 0.0).all()
        assert report.batch_rates.sum() > 0.0

    def test_all_deadlines_met_with_ample_capacity(self, joint_run):
        report, _ = joint_run
        assert report.batch_deadline_attainment == 1.0
        assert report.batch_overdue_requests == 0.0

    def test_interactive_sla_unharmed(self, joint_run):
        report, _ = joint_run
        baseline = fleet().run(duration_h=24.0)
        assert report.sla_attainment >= baseline.sla_attainment - 1e-12

    def test_conservation_served_plus_queued_is_arrivals(self, joint_run):
        report, _ = joint_run
        job = batch_job()
        arrived = job.arrivals_requests(0.0, 24.0)
        accounted = (
            report.batch_completed_requests + report.batch_pending_requests
        )
        assert accounted == pytest.approx(arrived, rel=1e-9)

    def test_batch_table_and_histogram_render(self, joint_run):
        report, _ = joint_run
        headers, rows = report.batch_table()
        assert rows[-1][0] == "fleet"
        assert len(rows) == len(REGIONS) + 1
        assert all(len(r) == len(headers) for r in rows)
        edges, counts = report.shift_histogram(bin_h=1.0)
        assert edges.size == counts.size + 1
        assert counts.sum() == pytest.approx(
            report.batch_completed_requests, rel=1e-9
        )
        with pytest.raises(ValueError, match="histogram bin"):
            report.shift_histogram(bin_h=0.0)


class TestGatingInterplay:
    def test_hold_hints_keep_gpus_awake_for_the_backlog(self):
        gated = fleet(gating="reactive", demand="diurnal").run(duration_h=24.0)
        gated_batch = fleet(
            batch=batch_job(), gating="reactive", demand="diurnal"
        ).run(duration_h=24.0)
        assert gated.mean_awake_fraction < 1.0
        assert (
            gated_batch.mean_awake_fraction
            >= gated.mean_awake_fraction - 1e-12
        )
        assert gated_batch.batch_deadline_attainment == 1.0

    def test_defer_false_admits_on_arrival(self):
        report = fleet(batch=batch_job(defer=False)).run(duration_h=12.0)
        assert report.mean_shift_h == pytest.approx(0.0)
        assert report.batch_deadline_attainment == 1.0


@given(
    jobs_per_h=st.floats(min_value=36.0, max_value=288.0),
    deadline_h=st.floats(min_value=4.0, max_value=12.0),
    seed=st.integers(0, 3),
)
@settings(max_examples=8, deadline=None)
def test_property_no_miss_and_capacity_respected(jobs_per_h, deadline_h, seed):
    """Across feasible workload shapes: every deadline holds and the
    fleet never serves past its capacity envelope."""
    coord = fleet(
        batch=batch_job(jobs_per_h=jobs_per_h, deadline_h=deadline_h),
        seed=seed,
    )
    report = coord.run(duration_h=12.0)
    assert report.batch_deadline_attainment == 1.0
    for r, result in enumerate(report.results):
        cap = coord._capacity[r]
        for epoch in result.epochs:
            assert epoch.rate_per_s <= cap + 1e-9
