"""Region registry and construction."""

import pytest

from repro.carbon.generator import NORDIC_HYDRO
from repro.carbon.traces import ciso_march_48h, eso_march_48h
from repro.fleet import (
    REGION_NAMES,
    Region,
    default_fleet_regions,
    make_region,
    region_by_name,
)


class TestRegistry:
    def test_known_names(self):
        assert "us-ciso" in REGION_NAMES
        assert "uk-eso" in REGION_NAMES
        assert "nordic-hydro" in REGION_NAMES

    def test_unknown_region_raises_with_listing(self):
        with pytest.raises(KeyError, match="valid"):
            region_by_name("atlantis")

    def test_paper_regions_reuse_embedded_traces(self):
        """An N=1 fleet over a paper grid must see the *identical* trace
        the single-cluster experiments use (lru-cached singleton)."""
        assert region_by_name("us-ciso").trace is ciso_march_48h()
        assert region_by_name("uk-eso").trace is eso_march_48h()

    def test_gpu_count_passthrough(self):
        assert region_by_name("us-ciso", n_gpus=4).n_gpus == 4

    def test_nordic_region_is_clean(self):
        nordic = region_by_name("nordic-hydro")
        ciso = region_by_name("us-ciso")
        assert nordic.trace.mean() < 0.3 * ciso.trace.mean()
        assert nordic.pue < ciso.pue

    def test_default_fleet_is_three_distinct_regions(self):
        regions = default_fleet_regions(n_gpus=2)
        assert len(regions) == 3
        assert len({r.name for r in regions}) == 3
        assert all(r.n_gpus == 2 for r in regions)


class TestRegionValidation:
    def test_pue_below_one_rejected(self):
        with pytest.raises(ValueError, match="PUE"):
            Region(name="x", trace=ciso_march_48h(), pue=0.9)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            Region(name="x", trace=ciso_march_48h(), net_latency_ms=-1.0)

    def test_nonpositive_gpus_rejected(self):
        with pytest.raises(ValueError, match="n_gpus"):
            Region(name="x", trace=ciso_march_48h(), n_gpus=0)

    def test_with_gpus_clones(self):
        r = region_by_name("us-ciso", n_gpus=10)
        r2 = r.with_gpus(2)
        assert r2.n_gpus == 2 and r.n_gpus == 10
        assert r2.trace is r.trace


class TestMakeRegion:
    def test_deterministic_trace(self):
        a = make_region("hydro", NORDIC_HYDRO, seed=42)
        b = make_region("hydro", NORDIC_HYDRO, seed=42)
        assert (a.trace.values == b.trace.values).all()

    def test_seed_changes_trace(self):
        a = make_region("hydro", NORDIC_HYDRO, seed=1)
        b = make_region("hydro", NORDIC_HYDRO, seed=2)
        assert (a.trace.values != b.trace.values).any()


class TestGpuCountValidation:
    """Regression tests: a region must never accept a non-positive pool.

    Every construction path — the dataclass, the registry, the profile
    factory, and the resize helper — validates ``n_gpus > 0``.
    """

    @pytest.mark.parametrize("bad", [0, -1, -10])
    def test_direct_construction_rejects(self, bad):
        with pytest.raises(ValueError, match="n_gpus must be positive"):
            Region(name="x", trace=ciso_march_48h(), n_gpus=bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_registry_rejects(self, bad):
        with pytest.raises(ValueError, match="n_gpus must be positive"):
            region_by_name("us-ciso", n_gpus=bad)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_make_region_rejects(self, bad):
        with pytest.raises(ValueError, match="n_gpus must be positive"):
            make_region("x", NORDIC_HYDRO, n_gpus=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_with_gpus_rejects(self, bad):
        region = region_by_name("us-ciso", n_gpus=4)
        with pytest.raises(ValueError, match="n_gpus must be positive"):
            region.with_gpus(bad)


class TestDeviceField:
    def test_default_is_implicit_a100(self):
        region = region_by_name("us-ciso", n_gpus=3)
        assert region.devices is None
        assert region.device_names == ("a100",) * 3
        assert region.device_pool().is_default_a100

    def test_uniform_and_mixed_forms(self):
        uniform = region_by_name("us-ciso", n_gpus=2, devices="L4")
        assert uniform.device_names == ("l4", "l4")
        mixed = region_by_name("us-ciso", n_gpus=2, devices=("a100", "l4"))
        assert mixed.device_pool().names == ("l4", "a100")

    def test_unknown_device_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown device"):
            region_by_name("us-ciso", n_gpus=2, devices="v100")

    def test_device_count_mismatch_rejected_at_construction(self):
        with pytest.raises(ValueError, match="device entries"):
            region_by_name("us-ciso", n_gpus=3, devices=("a100", "l4"))

    def test_with_gpus_broadcasts_uniform_devices(self):
        region = region_by_name("us-ciso", n_gpus=2, devices="l4")
        grown = region.with_gpus(4)
        assert grown.device_names == ("l4",) * 4
        # An explicit uniform tuple degrades to a broadcastable name.
        tup = region_by_name("us-ciso", n_gpus=2, devices=("l4", "l4"))
        assert tup.with_gpus(3).device_names == ("l4",) * 3

    def test_with_gpus_refuses_to_resize_a_mixed_tuple(self):
        region = region_by_name("us-ciso", n_gpus=2, devices=("a100", "l4"))
        with pytest.raises(ValueError, match="with_devices"):
            region.with_gpus(4)

    def test_with_devices_resizes_by_tuple(self):
        region = region_by_name("us-ciso", n_gpus=2)
        mixed = region.with_devices(("a100", "a100", "l4"))
        assert mixed.n_gpus == 3
        assert mixed.device_pool().describe() == "2xa100+1xl4"
