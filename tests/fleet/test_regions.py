"""Region registry and construction."""

import pytest

from repro.carbon.generator import NORDIC_HYDRO
from repro.carbon.traces import ciso_march_48h, eso_march_48h
from repro.fleet import (
    REGION_NAMES,
    Region,
    default_fleet_regions,
    make_region,
    region_by_name,
)


class TestRegistry:
    def test_known_names(self):
        assert "us-ciso" in REGION_NAMES
        assert "uk-eso" in REGION_NAMES
        assert "nordic-hydro" in REGION_NAMES

    def test_unknown_region_raises_with_listing(self):
        with pytest.raises(KeyError, match="valid"):
            region_by_name("atlantis")

    def test_paper_regions_reuse_embedded_traces(self):
        """An N=1 fleet over a paper grid must see the *identical* trace
        the single-cluster experiments use (lru-cached singleton)."""
        assert region_by_name("us-ciso").trace is ciso_march_48h()
        assert region_by_name("uk-eso").trace is eso_march_48h()

    def test_gpu_count_passthrough(self):
        assert region_by_name("us-ciso", n_gpus=4).n_gpus == 4

    def test_nordic_region_is_clean(self):
        nordic = region_by_name("nordic-hydro")
        ciso = region_by_name("us-ciso")
        assert nordic.trace.mean() < 0.3 * ciso.trace.mean()
        assert nordic.pue < ciso.pue

    def test_default_fleet_is_three_distinct_regions(self):
        regions = default_fleet_regions(n_gpus=2)
        assert len(regions) == 3
        assert len({r.name for r in regions}) == 3
        assert all(r.n_gpus == 2 for r in regions)


class TestRegionValidation:
    def test_pue_below_one_rejected(self):
        with pytest.raises(ValueError, match="PUE"):
            Region(name="x", trace=ciso_march_48h(), pue=0.9)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            Region(name="x", trace=ciso_march_48h(), net_latency_ms=-1.0)

    def test_nonpositive_gpus_rejected(self):
        with pytest.raises(ValueError, match="n_gpus"):
            Region(name="x", trace=ciso_march_48h(), n_gpus=0)

    def test_with_gpus_clones(self):
        r = region_by_name("us-ciso", n_gpus=10)
        r2 = r.with_gpus(2)
        assert r2.n_gpus == 2 and r.n_gpus == 10
        assert r2.trace is r.trace


class TestMakeRegion:
    def test_deterministic_trace(self):
        a = make_region("hydro", NORDIC_HYDRO, seed=42)
        b = make_region("hydro", NORDIC_HYDRO, seed=42)
        assert (a.trace.values == b.trace.values).all()

    def test_seed_changes_trace(self):
        a = make_region("hydro", NORDIC_HYDRO, seed=1)
        b = make_region("hydro", NORDIC_HYDRO, seed=2)
        assert (a.trace.values != b.trace.values).any()
