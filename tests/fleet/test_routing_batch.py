"""Vectorized routing vs the retained scalar references, property-tested.

`_water_fill` and `plan_origin_cells` were rewritten as array programs;
`_water_fill_scalar` / `_plan_origin_cells_scalar` keep the original
per-cell loops as the semantic reference.  Agreement must be within
summation-order noise (<= 1e-9 relative, typically ~1e-14).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.routing import (
    RoutingContext,
    _plan_origin_cells_scalar,
    _water_fill,
    _water_fill_scalar,
    plan_origin_cells,
)

RTOL = 1e-9


def make_ctx(
    ci=(300.0, 150.0, 40.0),
    pue=None,
    latency=(5.0, 20.0, 40.0),
    nominal=(30.0, 30.0, 30.0),
    capacity=None,
    sla_caps=None,
    floor_share=0.05,
    global_rate=None,
):
    n = len(ci)
    nominal = np.asarray(nominal, dtype=np.float64)
    return RoutingContext(
        t_h=0.0,
        global_rate_per_s=(
            float(nominal.sum()) if global_rate is None else global_rate
        ),
        ci=np.asarray(ci, dtype=np.float64),
        pue=np.asarray(pue if pue is not None else [1.5] * n),
        net_latency_ms=np.asarray(latency, dtype=np.float64),
        nominal_rates=nominal,
        capacity_rates=np.asarray(
            capacity if capacity is not None else nominal * 1.3
        ),
        sla_cap_rates=np.asarray(
            sla_caps if sla_caps is not None else [np.inf] * n
        ),
        floor_rates=floor_share * nominal,
    )


region_counts = st.integers(min_value=1, max_value=6)


@st.composite
def fill_contexts(draw):
    n = draw(region_counts)
    nominal = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    ci = draw(
        st.lists(
            st.floats(min_value=10.0, max_value=500.0),
            min_size=n,
            max_size=n,
        )
    )
    cap_mult = draw(st.floats(min_value=1.0, max_value=2.0))
    # Spans under-, exactly- and over-subscribed fills (spill path).
    load_frac = draw(st.floats(min_value=0.1, max_value=1.8))
    sla_frac = draw(st.one_of(st.none(), st.floats(0.3, 1.5)))
    nominal_arr = np.asarray(nominal)
    caps = cap_mult * nominal_arr
    ctx = make_ctx(
        ci=ci,
        latency=np.linspace(5.0, 50.0, n),
        nominal=nominal_arr,
        capacity=caps,
        sla_caps=None if sla_frac is None else sla_frac * caps,
        floor_share=draw(st.floats(min_value=0.0, max_value=0.2)),
        global_rate=load_frac * float(caps.sum()),
    )
    return ctx


class TestWaterFill:
    @given(ctx=fill_contexts(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar(self, ctx, seed):
        order = np.random.default_rng(seed).permutation(len(ctx.ci))
        vec = _water_fill(ctx, order)
        ref = _water_fill_scalar(ctx, order)
        np.testing.assert_allclose(vec, ref, rtol=RTOL, atol=1e-12)

    def test_single_region_bitwise(self):
        ctx = make_ctx(
            ci=(200.0,), latency=(0.0,), nominal=(37.0,), global_rate=31.5
        )
        order = np.array([0])
        assert list(_water_fill(ctx, order)) == list(
            _water_fill_scalar(ctx, order)
        )

    def test_overload_spills_like_scalar(self):
        ctx = make_ctx(global_rate=1e4)
        order = np.argsort(ctx.ci, kind="stable")
        vec = _water_fill(ctx, order)
        ref = _water_fill_scalar(ctx, order)
        np.testing.assert_allclose(vec, ref, rtol=RTOL)
        assert vec.sum() == pytest.approx(1e4, rel=1e-12)


@st.composite
def cell_problems(draw):
    n_r = draw(st.integers(min_value=1, max_value=4))
    n_o = draw(st.integers(min_value=1, max_value=6))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    origin_rates = rng.uniform(0.0, 20.0, n_o)
    if draw(st.booleans()):
        origin_rates[rng.integers(0, n_o)] = 0.0  # zero-demand origin
    latency = rng.uniform(1.0, 120.0, (n_o, n_r))
    targets = rng.uniform(60.0, 250.0, n_r)
    nominal = rng.uniform(5.0, 40.0, n_r)
    load_frac = draw(st.floats(min_value=0.2, max_value=1.6))
    cap_scale = draw(st.floats(min_value=0.3, max_value=2.0))
    ctx = make_ctx(
        ci=rng.uniform(20.0, 400.0, n_r),
        latency=rng.uniform(1.0, 40.0, n_r),
        nominal=nominal,
        capacity=cap_scale * nominal * 1.5,
        global_rate=max(float(origin_rates.sum()), 1e-9),
    )
    rate_scale = draw(st.floats(min_value=0.2, max_value=2.0))

    def sla_rate_fn(r, budget_ms):
        # Deterministic, budget-monotone admissible-rate oracle.
        return rate_scale * nominal[r] * min(1.0, budget_ms / 100.0)

    measured = (
        rng.uniform(20.0, 200.0, n_r) if draw(st.booleans()) else None
    )
    keep = draw(st.floats(min_value=0.0, max_value=1.0))
    floor = draw(st.floats(min_value=0.0, max_value=0.3))
    prev = rng.uniform(0.0, 10.0, (n_o, n_r)) if draw(st.booleans()) else None
    del load_frac
    return (
        ctx, origin_rates, latency, targets, sla_rate_fn,
        measured, prev, keep, floor,
    )


class TestPlanOriginCells:
    @given(problem=cell_problems())
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar(self, problem):
        (
            ctx, origin_rates, latency, targets, sla_rate_fn,
            measured, prev, keep, floor,
        ) = problem
        order = np.argsort(ctx.ci, kind="stable")
        vec = plan_origin_cells(
            ctx, order, origin_rates, latency, targets, sla_rate_fn,
            measured_p95_ms=measured, prev_plan=prev,
            session_keep_frac=keep, resident_floor_share=floor,
        )
        ref = _plan_origin_cells_scalar(
            ctx, order, origin_rates, latency, targets, sla_rate_fn,
            measured_p95_ms=measured, prev_plan=prev,
            session_keep_frac=keep, resident_floor_share=floor,
        )
        np.testing.assert_allclose(vec, ref, rtol=RTOL, atol=1e-12)
        # Conservation: row sums equal origin demand on both paths.
        np.testing.assert_allclose(
            vec.sum(axis=1), origin_rates, rtol=1e-9, atol=1e-9
        )

    def test_zero_demand_everywhere(self):
        ctx = make_ctx()
        order = np.argsort(ctx.ci, kind="stable")
        origin_rates = np.zeros(4)
        latency = np.full((4, 3), 10.0)
        targets = np.full(3, 150.0)
        vec = plan_origin_cells(
            ctx, order, origin_rates, latency, targets,
            lambda r, b: 100.0,
        )
        ref = _plan_origin_cells_scalar(
            ctx, order, origin_rates, latency, targets,
            lambda r, b: 100.0,
        )
        assert (vec == 0.0).all()
        np.testing.assert_array_equal(vec, ref)

    def test_overload_spill_matches_scalar(self):
        """Demand far past every region's cap exercises the spill phase."""
        ctx = make_ctx(global_rate=1e4)
        order = np.argsort(ctx.ci, kind="stable")
        origin_rates = np.full(5, 2e3)
        latency = np.linspace(5.0, 80.0, 15).reshape(5, 3)
        targets = np.full(3, 120.0)
        vec = plan_origin_cells(
            ctx, order, origin_rates, latency, targets,
            lambda r, b: 20.0 * min(1.0, b / 100.0),
        )
        ref = _plan_origin_cells_scalar(
            ctx, order, origin_rates, latency, targets,
            lambda r, b: 20.0 * min(1.0, b / 100.0),
        )
        np.testing.assert_allclose(vec, ref, rtol=RTOL)
        np.testing.assert_allclose(vec.sum(axis=1), origin_rates, rtol=1e-12)

    def test_single_region_matches_scalar_bitwise(self):
        ctx = make_ctx(ci=(200.0,), latency=(5.0,), nominal=(40.0,))
        order = np.array([0])
        origin_rates = np.array([7.0, 11.0, 0.0])
        latency = np.array([[10.0], [60.0], [140.0]])
        targets = np.array([150.0])
        args = (
            ctx, order, origin_rates, latency, targets,
            lambda r, b: 40.0 * min(1.0, b / 100.0),
        )
        vec = plan_origin_cells(*args)
        ref = _plan_origin_cells_scalar(*args)
        assert vec.tolist() == ref.tolist()  # exact
