"""Intra-repo markdown links must not rot (PR-4 docs satellite).

Checks every relative link and anchor in the repo's top-level markdown
documentation (ARCHITECTURE.md, README.md, ROADMAP.md, ...) against the
working tree.  External URLs are not fetched — CI must not depend on the
network — but every path-shaped target must exist, and every in-page
``#anchor`` must match a heading of the target document (GitHub slug
rules: lowercase, punctuation stripped, spaces to dashes).

The CI ``docs`` job runs exactly this module; it also runs in the tier-1
suite so a broken link fails fast locally.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The documents under link control.  Everything a reader is routed
#: through must stay internally consistent.
DOCUMENTS = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/MIGRATION.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces."""
    heading = re.sub(r"[`*_~]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    text = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(h) for h in _HEADING_RE.findall(text)}


def iter_links(path: Path):
    text = _CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(text):
        yield match.group(1)


def existing_documents():
    return [d for d in DOCUMENTS if (REPO_ROOT / d).exists()]


@pytest.mark.parametrize("doc", existing_documents())
def test_intra_repo_links_resolve(doc):
    doc_path = REPO_ROOT / doc
    broken: list[str] = []
    for target in iter_links(doc_path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (doc_path.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{target} (missing file)")
                continue
            anchor_doc = resolved
        else:
            anchor_doc = doc_path
        if anchor and anchor_doc.suffix == ".md":
            if github_slug(anchor) not in heading_slugs(anchor_doc):
                broken.append(f"{target} (missing anchor)")
    assert not broken, f"{doc} has broken intra-repo links: {broken}"


def test_architecture_doc_exists():
    """The docs satellite's anchor: the architecture doc must ship."""
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()


def test_architecture_covers_every_module_directory():
    """Acceptance: every package under src/repro appears in the layer map."""
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    packages = sorted(
        p.name
        for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )
    missing = [name for name in packages if f"repro.{name}" not in text]
    assert not missing, (
        f"docs/ARCHITECTURE.md layer map is missing packages: {missing}"
    )


def test_architecture_indexes_every_experiment_and_subcommand():
    """The experiment/CLI index must track the registries, not drift."""
    from repro.analysis.experiments import EXPERIMENT_REGISTRY
    from repro.cli import build_parser

    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    missing = [
        f"`{name}`" for name in EXPERIMENT_REGISTRY if f"`{name}`" not in text
    ]
    assert not missing, f"ARCHITECTURE.md experiment index missing: {missing}"

    parser = build_parser()
    subcommands = []
    for action in parser._actions:
        if hasattr(action, "choices") and action.choices:
            subcommands = list(action.choices)
            break
    missing_cmds = [c for c in subcommands if f"`{c}`" not in text]
    assert not missing_cmds, (
        f"ARCHITECTURE.md CLI index missing subcommands: {missing_cmds}"
    )
