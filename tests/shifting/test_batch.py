"""The deferrable workload class and its backlog accounting."""

import pytest

from repro.shifting import BatchJobClass, BatchLot, BacklogLedger
from repro.shifting.batch import _business_hours_overlap


class TestBatchJobClass:
    def test_mean_rate(self):
        job = BatchJobClass(jobs_per_h=360.0, requests_per_job=10.0)
        assert job.mean_rate_per_s == pytest.approx(1.0)

    def test_uniform_arrivals_integrate_the_rate(self):
        job = BatchJobClass(jobs_per_h=60.0, requests_per_job=30.0)
        assert job.arrivals_requests(0.0, 2.0) == pytest.approx(3600.0)
        assert job.arrivals_requests(5.0, 5.0) == 0.0
        assert job.arrivals_requests(5.0, 4.0) == 0.0  # empty interval

    def test_business_hours_preserves_daily_volume(self):
        uniform = BatchJobClass(jobs_per_h=60.0, requests_per_job=2.0)
        bursty = BatchJobClass(
            jobs_per_h=60.0, requests_per_job=2.0, arrival="business-hours"
        )
        assert bursty.arrivals_requests(0.0, 24.0) == pytest.approx(
            uniform.arrivals_requests(0.0, 24.0)
        )
        # ... but nothing lands outside 09:00-17:00.
        assert bursty.arrivals_requests(0.0, 9.0) == 0.0
        assert bursty.arrivals_requests(17.0, 24.0) == 0.0
        assert bursty.arrivals_requests(9.0, 17.0) == pytest.approx(
            24.0 * 60.0 * 2.0
        )

    def test_business_hours_overlap_spans_days(self):
        assert _business_hours_overlap(0.0, 48.0) == pytest.approx(16.0)
        assert _business_hours_overlap(16.5, 33.5) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(jobs_per_h=0.0), "jobs per hour"),
            (dict(jobs_per_h=-5.0), "jobs per hour"),
            (dict(jobs_per_h=1.0, requests_per_job=0.0), "requests per job"),
            (dict(jobs_per_h=1.0, deadline_h=0.0), "deadline"),
            (dict(jobs_per_h=1.0, arrival="poisson"), "arrival profile"),
            (dict(jobs_per_h=1.0, accuracy_floor_pct=0.0), "accuracy floor"),
            (dict(jobs_per_h=1.0, accuracy_floor_pct=101.0), "accuracy floor"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            BatchJobClass(**kwargs)


class TestBacklogLedger:
    def test_queue_and_overdue_accounting(self):
        ledger = BacklogLedger("fleet")
        ledger.enqueue(BatchLot(arrival_t_h=0.0, deadline_t_h=4.0, requests=50.0))
        ledger.enqueue(BatchLot(arrival_t_h=1.0, deadline_t_h=9.0, requests=30.0))
        assert ledger.pending_requests == 80.0
        assert ledger.overdue_requests(3.0) == 0.0
        assert ledger.overdue_requests(4.0) == 50.0
        assert ledger.overdue_requests(10.0) == 80.0

    def test_completion_accounting(self):
        ledger = BacklogLedger("us-ciso")
        ledger.record(epoch=0, t_h=0.0, requests=40.0, age_h=0.0, on_time=True)
        ledger.record(epoch=5, t_h=5.0, requests=10.0, age_h=5.0, on_time=False)
        assert ledger.completed_requests == 50.0
        assert ledger.on_time_requests == 40.0

    def test_reset_clears_both_sides(self):
        ledger = BacklogLedger("fleet")
        ledger.enqueue(BatchLot(arrival_t_h=0.0, deadline_t_h=8.0, requests=5.0))
        ledger.record(epoch=0, t_h=0.0, requests=5.0, age_h=0.0, on_time=True)
        ledger.reset()
        assert ledger.pending_requests == 0.0
        assert ledger.completed_requests == 0.0
        assert not ledger.completions

    def test_lot_keeps_arrival_size(self):
        lot = BatchLot(arrival_t_h=0.0, deadline_t_h=8.0, requests=100.0)
        lot.requests -= 60.0
        assert lot.requests_total == 100.0
