"""Property tests for the temporal slot planner.

Three guarantees: the vectorized planner agrees with its scalar
reference within summation-order noise, every plan respects capacity and
deadline eligibility, and EDF water-filling never misses a deadline the
slot capacities could have met (Hall's condition on the nested deadline
windows — the scheduler's no-miss claim).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.shifting import _plan_batch_slots_scalar, plan_batch_slots

RTOL = 1e-9


@st.composite
def slot_problems(draw):
    n_lots = draw(st.integers(min_value=1, max_value=24))
    n_slots = draw(st.integers(min_value=1, max_value=16))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    requests = rng.uniform(0.0, 80.0, n_lots)
    if draw(st.booleans()):
        requests = requests.round(0)  # integer sizes force exact ties
    deadline_slots = rng.integers(0, n_slots, n_lots)
    caps = rng.uniform(0.0, 120.0, n_slots)
    if draw(st.booleans()):
        caps = caps.round(0)
    scores = rng.uniform(20.0, 400.0, n_slots)
    if draw(st.booleans()):
        scores = scores.round(-1)  # score ties exercise the stable sort
    preemptible = draw(st.booleans())
    return requests, deadline_slots, caps, scores, preemptible


class TestVectorizedMatchesScalar:
    @given(problem=slot_problems())
    @settings(max_examples=120, deadline=None)
    def test_allocation_matrices_agree(self, problem):
        requests, deadlines, caps, scores, preemptible = problem
        vec = plan_batch_slots(
            requests, deadlines, caps, scores, preemptible=preemptible
        )
        ref = _plan_batch_slots_scalar(
            requests, deadlines, caps, scores, preemptible=preemptible
        )
        np.testing.assert_allclose(vec, ref, rtol=RTOL, atol=1e-9)


class TestPlanInvariants:
    @given(problem=slot_problems())
    @settings(max_examples=120, deadline=None)
    def test_caps_deadlines_and_demand_respected(self, problem):
        requests, deadlines, caps, scores, preemptible = problem
        alloc = plan_batch_slots(
            requests, deadlines, caps, scores, preemptible=preemptible
        )
        n_slots = caps.size
        assert (alloc >= 0.0).all()
        # No slot is oversubscribed...
        assert (alloc.sum(axis=0) <= caps + 1e-9 * (1.0 + caps)).all()
        # ... no lot is over-served...
        assert (alloc.sum(axis=1) <= requests + 1e-9 * (1.0 + requests)).all()
        # ... and nothing lands past its deadline slot.
        for li in range(requests.size):
            last = max(0, min(int(deadlines[li]), n_slots - 1))
            assert alloc[li, last + 1:].sum() == 0.0


class TestNoMissWhileFeasible:
    @given(
        n_slots=st.integers(min_value=1, max_value=12),
        seed=st.integers(0, 2**31 - 1),
        slack=st.floats(min_value=1.0, max_value=2.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_feasible_backlogs_place_fully(self, n_slots, seed, slack):
        """Hall's condition: if every deadline-prefix of the demand fits
        the matching capacity prefix, preemptible EDF places every lot."""
        rng = np.random.default_rng(seed)
        n_lots = int(rng.integers(1, 20))
        requests = rng.uniform(1.0, 50.0, n_lots)
        deadline_slots = rng.integers(0, n_slots, n_lots)
        # Build capacities that make the instance feasible by
        # construction: each slot carries ``slack`` times the demand due
        # at it, placed at its deadline (the tightest legal layout).
        caps = np.zeros(n_slots)
        for li in range(n_lots):
            caps[deadline_slots[li]] += requests[li]
        caps *= slack
        scores = rng.uniform(20.0, 400.0, n_slots)
        alloc = plan_batch_slots(requests, deadline_slots, caps, scores)
        np.testing.assert_allclose(
            alloc.sum(axis=1), requests, rtol=RTOL, atol=1e-9
        )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_shortfall_only_when_prefix_overflows(self, seed):
        """Any unplaced remainder certifies genuine infeasibility: the
        demand due by some deadline exceeds that prefix's capacity."""
        rng = np.random.default_rng(seed)
        n_lots = int(rng.integers(1, 16))
        n_slots = int(rng.integers(1, 10))
        requests = rng.uniform(1.0, 60.0, n_lots)
        deadline_slots = rng.integers(0, n_slots, n_lots)
        caps = rng.uniform(0.0, 80.0, n_slots)
        scores = rng.uniform(20.0, 400.0, n_slots)
        alloc = plan_batch_slots(requests, deadline_slots, caps, scores)
        placed = alloc.sum(axis=1)
        short = placed < requests - 1e-9 * (1.0 + requests)
        if not short.any():
            return
        clipped = np.minimum(deadline_slots, n_slots - 1)
        for li in np.flatnonzero(short):
            last = int(clipped[li])
            due = requests[clipped <= last].sum()
            room = caps[: last + 1].sum()
            assert due > room - 1e-6
