"""The slot planner and the per-epoch temporal scheduler."""

import numpy as np
import pytest

from repro.shifting import BatchJobClass, TemporalScheduler, plan_batch_slots


def plan(requests, deadlines, caps, scores, **kwargs):
    return plan_batch_slots(
        np.asarray(requests, dtype=np.float64),
        np.asarray(deadlines, dtype=np.int64),
        np.asarray(caps, dtype=np.float64),
        np.asarray(scores, dtype=np.float64),
        **kwargs,
    )


class TestPlanBatchSlots:
    def test_defers_into_cleanest_slot(self):
        alloc = plan([10.0], [2], [50.0, 50.0, 50.0], [300.0, 100.0, 200.0])
        assert alloc[0].tolist() == [0.0, 10.0, 0.0]

    def test_deadline_restricts_the_window(self):
        alloc = plan([10.0], [0], [50.0, 50.0], [300.0, 100.0])
        assert alloc[0].tolist() == [10.0, 0.0]

    def test_water_fills_over_capacity(self):
        alloc = plan([30.0], [2], [5.0, 20.0, 50.0], [200.0, 100.0, 300.0])
        # Cleanest first (slot 1), overflow to slot 0, never slot 2's dirt
        # until the clean room runs out.
        assert alloc[0].tolist() == [5.0, 20.0, 5.0]

    def test_edf_gives_tight_lots_first_claim(self):
        # Both lots want the clean slot 0; the lot due *now* gets it.
        alloc = plan(
            [10.0, 10.0], [1, 0], [10.0, 10.0], [100.0, 300.0]
        )
        assert alloc[1].tolist() == [10.0, 0.0]
        assert alloc[0].tolist() == [0.0, 10.0]

    def test_shortfall_stays_unplaced(self):
        alloc = plan([100.0], [1], [10.0, 10.0], [100.0, 100.0])
        assert alloc[0].sum() == pytest.approx(20.0)

    def test_ties_prefer_the_earlier_slot(self):
        alloc = plan([10.0], [2], [50.0, 50.0, 50.0], [100.0, 100.0, 100.0])
        assert alloc[0].tolist() == [10.0, 0.0, 0.0]

    def test_non_preemptible_takes_one_whole_slot(self):
        alloc = plan(
            [30.0], [2], [35.0, 29.0, 40.0], [200.0, 100.0, 150.0],
            preemptible=False,
        )
        # The cleanest slot (1) cannot hold the lot whole; the next
        # cleanest that fits (2) takes all of it.
        assert alloc[0].tolist() == [0.0, 0.0, 30.0]

    def test_non_preemptible_falls_back_to_roomiest(self):
        alloc = plan(
            [100.0], [1], [20.0, 30.0], [100.0, 200.0], preemptible=False
        )
        assert alloc[0].tolist() == [0.0, 30.0]

    def test_zero_request_lots_are_skipped(self):
        alloc = plan([0.0, 5.0], [1, 1], [10.0, 10.0], [100.0, 200.0])
        assert alloc[0].sum() == 0.0
        assert alloc[1].sum() == pytest.approx(5.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="deadlines"):
            plan([1.0, 2.0], [0], [10.0], [100.0])
        with pytest.raises(ValueError, match="scores"):
            plan([1.0], [0], [10.0, 10.0], [100.0])


def make_scheduler(
    jobs_per_h=360.0,
    requests_per_job=10.0,
    deadline_h=4.0,
    step_s=3600.0,
    regions=("clean", "dirty"),
    **kwargs,
):
    job = BatchJobClass(
        jobs_per_h=jobs_per_h,
        requests_per_job=requests_per_job,
        deadline_h=deadline_h,
        **kwargs,
    )
    return TemporalScheduler(job, step_s, tuple(regions))


class TestTemporalScheduler:
    def test_horizon_matches_deadline(self):
        assert make_scheduler(deadline_h=4.0).horizon_slots == 4
        assert make_scheduler(deadline_h=0.5).horizon_slots == 1
        assert make_scheduler(deadline_h=4.0, defer=False).horizon_slots == 1

    def test_step_must_be_positive(self):
        with pytest.raises(ValueError, match="epoch length"):
            make_scheduler(step_s=0.0)

    def test_arrivals_enqueue_with_deadline(self):
        sched = make_scheduler(jobs_per_h=360.0, requests_per_job=10.0)
        got = sched.observe_arrivals(2.0)
        assert got == pytest.approx(3600.0)
        (lot,) = sched.backlog.pending
        assert lot.arrival_t_h == 2.0
        assert lot.deadline_t_h == pytest.approx(6.0)

    def plan_once(self, sched, scores, leftover, slot_scores, slot_caps,
                  eligible=None, epoch=0, t_h=0.0):
        n = len(sched.ledgers)
        return sched.plan_epoch(
            epoch,
            t_h,
            region_scores=np.asarray(scores, dtype=np.float64),
            region_leftover_rates=np.asarray(leftover, dtype=np.float64),
            region_eligible=(
                np.ones(n, dtype=bool) if eligible is None
                else np.asarray(eligible, dtype=bool)
            ),
            slot_scores=np.asarray(slot_scores, dtype=np.float64),
            slot_caps=np.asarray(slot_caps, dtype=np.float64),
        )

    def test_clean_now_admits_into_cleanest_region(self):
        sched = make_scheduler()
        sched.observe_arrivals(0.0)
        admitted, hold = self.plan_once(
            sched,
            scores=[100.0, 400.0],
            leftover=[2.0, 2.0],
            slot_scores=[100.0, 300.0, 300.0, 300.0],
            slot_caps=[7200.0, 7200.0, 7200.0, 7200.0],
        )
        # 3600 requests over a 3600 s epoch: 1 req/s, all on the clean
        # region (its leftover suffices).
        assert admitted[0] == pytest.approx(1.0)
        assert admitted[1] == 0.0
        assert sched.backlog.pending_requests == pytest.approx(0.0)
        assert hold[0] >= admitted[0]

    def test_dirty_now_defers_everything(self):
        sched = make_scheduler()
        sched.observe_arrivals(0.0)
        admitted, _ = self.plan_once(
            sched,
            scores=[400.0, 500.0],
            leftover=[2.0, 2.0],
            slot_scores=[400.0, 100.0, 300.0, 300.0],
            slot_caps=[7200.0, 7200.0, 7200.0, 7200.0],
        )
        assert admitted.sum() == 0.0
        assert sched.backlog.pending_requests == pytest.approx(3600.0)
        # The planned next-slot volume shows up as a hold hint.
        _, hold = self.plan_once(
            sched,
            scores=[400.0, 500.0],
            leftover=[2.0, 2.0],
            slot_scores=[400.0, 100.0, 300.0, 300.0],
            slot_caps=[7200.0, 7200.0, 7200.0, 7200.0],
        )
        assert hold.sum() > 0.0

    def test_deadline_forced_lot_ignores_cleanliness_and_floors(self):
        sched = make_scheduler(deadline_h=1.0)
        sched.observe_arrivals(0.0)
        admitted, _ = self.plan_once(
            sched,
            scores=[100.0, 400.0],
            leftover=[0.0, 2.0],
            slot_scores=[900.0],
            slot_caps=[7200.0],
            eligible=[True, False],  # even an ineligible region serves it
        )
        assert admitted[0] == 0.0
        assert admitted[1] == pytest.approx(1.0)
        on_time = sum(
            c.requests for c in sched.ledgers[1].completions if c.on_time
        )
        assert on_time == pytest.approx(3600.0)

    def test_admission_never_exceeds_leftover(self):
        sched = make_scheduler(jobs_per_h=3600.0, requests_per_job=10.0)
        sched.observe_arrivals(0.0)
        admitted, _ = self.plan_once(
            sched,
            scores=[100.0, 200.0],
            leftover=[1.5, 0.5],
            slot_scores=[100.0, 300.0, 300.0, 300.0],
            slot_caps=[7200.0, 7200.0, 7200.0, 7200.0],
        )
        assert admitted[0] <= 1.5 + 1e-12
        assert admitted[1] <= 0.5 + 1e-12

    def test_defer_false_admits_on_arrival(self):
        sched = make_scheduler(defer=False)
        sched.observe_arrivals(0.0)
        admitted, _ = self.plan_once(
            sched,
            scores=[100.0, 400.0],
            leftover=[5.0, 5.0],
            slot_scores=[500.0],
            slot_caps=[36000.0],
        )
        assert admitted.sum() == pytest.approx(1.0)

    def test_reset_clears_all_ledgers(self):
        sched = make_scheduler()
        sched.observe_arrivals(0.0)
        sched.ledgers[0].record(
            epoch=0, t_h=0.0, requests=1.0, age_h=0.0, on_time=True
        )
        sched.reset()
        assert sched.backlog.pending_requests == 0.0
        assert all(not led.completions for led in sched.ledgers)
