"""Failure injection: the system must fail loudly and correctly.

Overload, infeasible placements, degenerate traces, hostile parameters —
each must either be handled with defined semantics (overload → infinite
p95 → never deployable) or raise a clear error at the boundary.
"""

import numpy as np
import pytest

from repro.carbon.intensity import CarbonIntensityTrace
from repro.core.config import ClusterConfig, GpuAssignment, base_config
from repro.core.evaluator import ConfigEvaluator
from repro.core.graph import ConfigGraph
from repro.core.moves import MoveGenerator
from repro.core.objective import ObjectiveSpec
from repro.core.schemes import make_scheme
from repro.core.service import Baseline, CarbonAwareInferenceService
from repro.serving.sla import SlaPolicy
from repro.serving.workload import default_rate
from repro.utils.rng import RngMixer


class TestOverloadSemantics:
    def test_overloaded_config_never_deployable(self, zoo, perf):
        """A 20x overload must be rejected by every layer: infinite p95,
        SLA unmet, not deployable, yet energy accounting still defined."""
        fam = zoo.family("efficientnet")
        evaluator = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name,
            rate_per_s=20 * default_rate(fam, perf, 1), n_gpus=1,
        )
        ev = evaluator.evaluate(base_config(fam, 1))
        assert ev.overloaded and ev.p95_ms == float("inf")
        obj = ObjectiveSpec(
            lambda_weight=0.5, a_base=fam.base_accuracy, c_base=0.002,
            sla=SlaPolicy(p95_target_ms=50.0),
        )
        score = obj.score(ev.accuracy, ev.energy_per_request_j, ev.p95_ms, 200.0)
        assert not score.deployable
        assert score.sa_energy == 0.0  # Eq. 6 with zero penalty
        assert np.isfinite(ev.energy_per_request_j)

    def test_clover_survives_unsatisfiable_sla(self, zoo, perf):
        """If NO configuration can meet the SLA, the scheme must stay on
        the current deployment rather than deploy a violator."""
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 2)
        evaluator = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=2,
        )
        impossible = ObjectiveSpec(
            lambda_weight=0.5, a_base=fam.base_accuracy, c_base=0.002,
            sla=SlaPolicy(p95_target_ms=0.001),  # unmeetable
        )
        scheme = make_scheme(
            "clover", zoo=zoo, family=fam.name, n_gpus=2,
            evaluator=evaluator, objective=impossible, mixer=RngMixer(seed=0),
        )
        deployed = base_config(fam, 2)
        outcome = scheme.optimize(200.0, deployed)
        assert outcome.deployed == deployed  # stayed put
        assert all(not c.value.sla_met for c in outcome.evaluated)


class TestInfeasiblePlacements:
    def test_oom_assignment_rejected_at_validation(self, zoo):
        fam = zoo.family("yolov5")
        cfg = ClusterConfig(
            family=fam.name,
            assignments=(
                GpuAssignment(partition_id=19, variant_ordinals=(3,) * 7),
            ),
        )
        with pytest.raises(ValueError, match="does not fit"):
            cfg.validate_against(zoo)

    def test_moves_never_produce_oom_from_adversarial_start(self, zoo):
        """Start from the tightest memory corner (xxlarge everywhere it
        fits) and hammer the move generator."""
        moves = MoveGenerator(zoo=zoo, family="albert")
        fam = zoo.family("albert")
        config = ClusterConfig(
            family=fam.name,
            assignments=(
                GpuAssignment(partition_id=4, variant_ordinals=(4, 4)),
            ) * 3,
        )
        config.validate_against(zoo)
        rng = np.random.default_rng(0)
        for _ in range(100):
            nxt = moves.propose(config, rng)
            if nxt is not None:
                nxt.validate_against(zoo)
                config = nxt

    def test_evaluator_raises_on_oom_graph(self, zoo, perf):
        fam = zoo.family("albert")
        w = np.zeros((fam.num_variants, 5), dtype=np.int64)
        w[3, 0] = 1  # xxlarge on 1g
        graph = ConfigGraph(family=fam.name, weights=w)
        evaluator = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=10.0, n_gpus=1,
        )
        from repro.models.perf import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            evaluator.evaluate_graph(graph)


class TestDegenerateTraces:
    def test_two_point_trace_works(self):
        trace = CarbonIntensityTrace(
            times_h=np.array([0.0, 48.0]), values=np.array([150.0, 150.0])
        )
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="clover", trace=trace,
            fidelity="smoke", seed=0, n_gpus=2,
        )
        report = service.run(duration_h=4.0)
        assert len(report.invocations) == 1  # flat: one trigger only

    def test_extreme_intensity_spike_handled(self):
        """A 10x spike mid-trace: the controller must keep accounting sane
        and re-optimize, not blow up."""
        t = np.arange(0.0, 13.0)
        v = np.where((t >= 6) & (t < 8), 2000.0, 200.0)
        trace = CarbonIntensityTrace(times_h=t, values=v)
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="clover", trace=trace,
            fidelity="smoke", seed=0, n_gpus=2,
        )
        report = service.run(duration_h=12.0)
        assert report.total_carbon_g > 0
        assert len(report.invocations) >= 3  # spike in and out both trigger


class TestHostileParameters:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CarbonAwareInferenceService.create(
                application="classification", rate_per_s=-5.0,
                fidelity="smoke",
            )

    def test_zero_gpu_fleet_rejected(self):
        with pytest.raises(ValueError):
            CarbonAwareInferenceService.create(
                application="classification", n_gpus=0, fidelity="smoke"
            )

    def test_lambda_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CarbonAwareInferenceService.create(
                application="classification", lambda_weight=1.5,
                fidelity="smoke", n_gpus=2,
            )

    def test_pinned_baseline_with_absurd_sla_still_runs(self, zoo):
        """An SLA nothing can meet: the service runs, deploys BASE-ish
        configs, and reports honest violation fractions."""
        fam = zoo.family("efficientnet")
        baseline = Baseline(
            a_base=fam.base_accuracy, e_base_j_per_request=10.0,
            c_base_g_per_request=0.002, sla=SlaPolicy(p95_target_ms=0.01),
            ci_base=200.0,
        )
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="clover", n_gpus=2,
            baseline=baseline, fidelity="smoke", seed=0,
        )
        report = service.run(duration_h=4.0)
        assert report.sla_violation_fraction == 1.0
