"""End-to-end integration: the paper's headline orderings must hold.

These run the full service (controller, scheme, DES measurement) at smoke
fidelity over the 48-hour CISO trace on a reduced cluster — slow-ish tests
(a few seconds total) that pin the system-level behaviour every figure
depends on.
"""

import numpy as np
import pytest

from repro.core.service import CarbonAwareInferenceService


@pytest.fixture(scope="module")
def results():
    out = {}
    for scheme in ("base", "co2opt", "blover", "clover", "oracle"):
        service = CarbonAwareInferenceService.create(
            application="classification", scheme=scheme,
            fidelity="default", seed=0,
        )
        out[scheme] = service.run(duration_h=48.0)
    return out


def saving(results, scheme):
    return 1.0 - results[scheme].total_carbon_g / results["base"].total_carbon_g


class TestHeadlineOrderings:
    def test_all_carbon_aware_schemes_beat_base(self, results):
        for scheme in ("co2opt", "blover", "clover", "oracle"):
            assert saving(results, scheme) > 0.3

    def test_co2opt_saves_most_carbon(self, results):
        """CO2OPT is the carbon-optimal static policy by construction."""
        assert saving(results, "co2opt") >= saving(results, "clover") - 0.02
        assert saving(results, "co2opt") >= saving(results, "blover")

    def test_co2opt_has_worst_accuracy(self, results):
        """'the worst-case accuracy is represented by CO2OPT'."""
        for scheme in ("base", "blover", "clover", "oracle"):
            assert (
                results[scheme].accuracy_loss_pct
                <= results["co2opt"].accuracy_loss_pct + 1e-9
            )

    def test_clover_beats_blover_on_carbon(self, results):
        """The graph-based optimization is the paper's core claim."""
        assert saving(results, "clover") > saving(results, "blover") + 0.05

    def test_clover_close_to_oracle(self, results):
        """'Clover is within 5% of the practically-infeasible Oracle'."""
        assert saving(results, "oracle") - saving(results, "clover") < 0.08

    def test_clover_carbon_band_matches_paper(self, results):
        """'over 75% carbon emission savings' (we accept 65%+ at smoke
        fidelity on the reduced measurement sample)."""
        assert saving(results, "clover") > 0.65

    def test_clover_accuracy_loss_band(self, results):
        """'minimal accuracy degradation (2-4%)'."""
        assert 0.5 <= results["clover"].accuracy_loss_pct <= 5.5

    def test_clover_latency_below_base(self, results):
        """Fig. 9 right: Clover's p95 lands *below* BASE's despite the
        partitioning, because smaller variants are faster."""
        assert results["clover"].p95_ms < results["base"].p95_ms


class TestOptimizationBehaviour:
    def test_clover_spends_low_single_digit_percent_optimizing(self, results):
        """Fig. 12a: ~1.2% for Clover (band: under 4%)."""
        assert results["clover"].optimization_fraction < 0.04

    def test_blover_spends_more_time_optimizing(self, results):
        """Fig. 12a: Blover's raw-space search costs ~2x Clover's time."""
        assert (
            results["blover"].optimization_fraction
            > 1.5 * results["clover"].optimization_fraction
        )

    def test_clover_candidates_mostly_sla_compliant(self, results):
        """Fig. 12b: the SA guides Clover toward SLA-compliant
        neighbourhoods (paper: ~60% of evaluated configs meet the SLA)."""
        r = results["clover"]
        assert r.evaluations_sla_met / r.total_evaluations > 0.5

    def test_blover_candidates_mostly_violate(self, results):
        r = results["blover"]
        assert r.evaluations_sla_met / r.total_evaluations < 0.5

    def test_oracle_has_zero_optimization_time(self, results):
        assert results["oracle"].total_optimization_s == pytest.approx(
            0.0, abs=120.0  # initial cold-start deployment only
        )

    def test_carbon_aware_schemes_reoptimize_many_times(self, results):
        for scheme in ("clover", "blover", "oracle"):
            assert len(results[scheme].invocations) >= 5

    def test_static_schemes_never_reoptimize(self, results):
        for scheme in ("base", "co2opt"):
            assert len(results[scheme].invocations) == 1


class TestObjectiveTimeline:
    def test_clover_objective_tracks_oracle(self, results):
        """Fig. 11: Clover's objective closely follows ORACLE's."""
        _, f_clover = results["clover"].objective_series()
        _, f_oracle = results["oracle"].objective_series()
        assert f_clover.mean() > 0.85 * f_oracle.mean()

    def test_blover_objective_below_clover(self, results):
        _, f_clover = results["clover"].objective_series()
        _, f_blover = results["blover"].objective_series()
        assert f_clover.mean() > f_blover.mean()

    def test_all_deployed_configs_meet_sla_for_clover(self, results):
        """The SLA is a hard constraint on deployment (Eq. 5): epochs where
        Clover's *deployed* config violates must be rare (measurement noise
        only)."""
        r = results["clover"]
        violating = sum(1 for e in r.epochs if not e.sla_met)
        assert violating / len(r.epochs) < 0.15


class TestCrossApplication:
    @pytest.mark.parametrize("application", ["detection", "language"])
    def test_clover_effective_on_other_apps(self, application):
        """Fig. 9 spans all three Table-1 applications.

        Absolute accuracy-loss magnitudes are family-specific (see
        EXPERIMENTS.md: our detection/language losses run above the paper's
        2-4% because Eq. 3 at lambda=0.5 is carbon-dominated under our
        energy calibration); the robust claims are big carbon savings and
        accuracy no worse than the CO2OPT floor.
        """
        runs = {}
        for scheme in ("base", "co2opt", "clover"):
            runs[scheme] = CarbonAwareInferenceService.create(
                application=application, scheme=scheme,
                fidelity="smoke", seed=0,
            ).run(duration_h=24.0)
        save = 1 - runs["clover"].total_carbon_g / runs["base"].total_carbon_g
        assert save > 0.5
        assert (
            runs["clover"].accuracy_loss_pct
            <= runs["co2opt"].accuracy_loss_pct + 1e-9
        )
        assert runs["clover"].p95_ms < runs["base"].p95_ms
