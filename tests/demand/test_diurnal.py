"""DiurnalDemandModel: day curves, weekends, bursts, normalization."""

import numpy as np
import pytest

from repro.demand.diurnal import (
    BurstEvent,
    ConstantDemandModel,
    DiurnalDemandModel,
    default_demand,
)
from repro.demand.origins import GeoOrigin, default_origins, normalized_weights

MEAN = 120.0


@pytest.fixture(scope="module")
def model():
    return DiurnalDemandModel(
        origins=default_origins(), mean_total_rate_per_s=MEAN
    )


def local_day_mean(model, origin_idx, local_day):
    """Mean rate over one full *local* day of the origin (runs start on a
    local Monday = local day 0; weekends are local days 5 and 6)."""
    off = model.origins[origin_idx].utc_offset_h
    ts = np.arange(local_day * 24.0 - off, (local_day + 1) * 24.0 - off, 0.25)
    return float(np.mean([model.rates(t)[origin_idx] for t in ts]))


class TestDayCurve:
    def test_weekday_mean_preserved_per_origin(self, model):
        """The sinusoid is normalized: a local weekday averages to the
        origin's weight share of the configured mean."""
        weights = normalized_weights(model.origins)
        for i in range(model.n_origins):
            assert local_day_mean(model, i, local_day=1) == pytest.approx(
                MEAN * weights[i], rel=1e-3
            )

    def test_global_weekday_mean_is_configured_mean(self, model):
        """Summed across origins over a mid-week fleet day (every origin
        in a local weekday), the global mean is the configured mean."""
        ts = np.arange(48.0, 72.0, 0.25)
        assert np.mean([model.total_rate(t) for t in ts]) == pytest.approx(
            MEAN, rel=1e-3
        )

    def test_peak_at_local_peak_hour(self, model):
        """Each origin's maximum lands at peak_local_h in its local time."""
        ts = np.arange(0.0, 24.0, 0.25)
        for i, origin in enumerate(model.origins):
            rates = [model.rates(t)[i] for t in ts]
            t_peak = ts[int(np.argmax(rates))]
            local_peak = (t_peak + origin.utc_offset_h) % 24.0
            assert local_peak == pytest.approx(model.peak_local_h, abs=0.5)

    def test_origins_peak_at_different_fleet_hours(self, model):
        """The geo part of geo-diurnal: demand peaks sweep the planet."""
        ts = np.arange(0.0, 24.0, 0.25)
        peaks = [
            ts[int(np.argmax([model.rates(t)[i] for t in ts]))]
            for i in range(model.n_origins)
        ]
        assert len(set(peaks)) == model.n_origins

    def test_rates_strictly_positive(self, model):
        for t in np.arange(0.0, 7 * 24.0, 1.0):
            assert (model.rates(t) > 0.0).all()

    def test_total_is_sum_of_origins(self, model):
        for t in (0.0, 13.5, 30.0):
            assert model.total_rate(t) == pytest.approx(model.rates(t).sum())

    def test_peak_total_rate_bounds_totals(self, model):
        bound = model.peak_total_rate()
        for t in np.arange(0.0, 48.0, 0.5):
            assert model.total_rate(t) <= bound + 1e-9


class TestWeekend:
    def test_weekend_damped_relative_to_weekday(self, model):
        """Local Saturday (day 5) runs below local Tuesday (day 1)."""
        for i in range(model.n_origins):
            assert local_day_mean(model, i, 5) < local_day_mean(model, i, 1)

    def test_damping_magnitude(self, model):
        ratio = local_day_mean(model, 0, 5) / local_day_mean(model, 0, 1)
        assert ratio == pytest.approx(1.0 - model.weekend_damping, abs=0.01)


class TestBursts:
    def test_burst_multiplies_target_origin_only(self):
        origins = default_origins()
        burst = BurstEvent(start_h=10.0, duration_h=2.0, magnitude=2.0,
                           origin="europe")
        plain = DiurnalDemandModel(origins=origins, mean_total_rate_per_s=MEAN)
        bursty = DiurnalDemandModel(
            origins=origins, mean_total_rate_per_s=MEAN, bursts=(burst,)
        )
        idx = bursty.origin_names.index("europe")
        inside, outside = 11.0, 13.0
        assert bursty.rates(inside)[idx] == pytest.approx(
            2.0 * plain.rates(inside)[idx]
        )
        assert bursty.rates(outside) == pytest.approx(plain.rates(outside))
        other = (idx + 1) % len(origins)
        assert bursty.rates(inside)[other] == pytest.approx(
            plain.rates(inside)[other]
        )

    def test_global_burst_hits_everyone(self):
        burst = BurstEvent(start_h=5.0, duration_h=1.0, magnitude=3.0)
        m = DiurnalDemandModel(
            origins=default_origins(), mean_total_rate_per_s=MEAN,
            bursts=(burst,),
        )
        plain = DiurnalDemandModel(
            origins=default_origins(), mean_total_rate_per_s=MEAN
        )
        assert m.rates(5.5) == pytest.approx(3.0 * plain.rates(5.5))

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            BurstEvent(start_h=0.0, duration_h=0.0, magnitude=2.0)
        with pytest.raises(ValueError):
            BurstEvent(start_h=0.0, duration_h=1.0, magnitude=0.0)


class TestConstantModel:
    def test_time_invariant(self):
        m = ConstantDemandModel(
            origins=default_origins(), mean_total_rate_per_s=MEAN
        )
        assert m.rates(0.0) == pytest.approx(m.rates(37.5))
        assert m.total_rate(11.0) == pytest.approx(MEAN)

    def test_single_origin_rate_is_exact(self):
        """The N=1 bit-for-bit anchor: no floating-point drift allowed."""
        rate = 37.12345678901234
        m = ConstantDemandModel(
            origins=(GeoOrigin("solo", 1.0, 0.0, "na"),),
            mean_total_rate_per_s=rate,
        )
        assert float(m.rates(0.0)[0]) == rate  # exact


class TestValidationAndFactory:
    def test_empty_origins_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ConstantDemandModel(origins=(), mean_total_rate_per_s=1.0)

    def test_duplicate_origins_rejected(self):
        o = GeoOrigin("x", 1.0, 0.0, "na")
        with pytest.raises(ValueError, match="duplicate"):
            ConstantDemandModel(origins=(o, o), mean_total_rate_per_s=1.0)

    def test_bad_swing_rejected(self):
        with pytest.raises(ValueError, match="swing"):
            DiurnalDemandModel(
                origins=default_origins(), mean_total_rate_per_s=1.0,
                day_night_swing=1.0,
            )

    def test_unknown_origin_rate_query(self):
        m = ConstantDemandModel(
            origins=default_origins(), mean_total_rate_per_s=MEAN
        )
        with pytest.raises(KeyError, match="valid"):
            m.rate("mars", 0.0)

    def test_factory_kinds(self):
        assert isinstance(default_demand(10.0, "constant"), ConstantDemandModel)
        assert isinstance(default_demand(10.0, "diurnal"), DiurnalDemandModel)
        with pytest.raises(ValueError, match="kind"):
            default_demand(10.0, "chaotic")


class TestWorkloadBridge:
    def test_arrival_counts_track_the_rate_curve(self):
        """The thinning bridge: per-2h arrival counts over a day follow
        the origin's diurnal shape (small mean rate keeps the test fast)."""
        m = DiurnalDemandModel(
            origins=default_origins(), mean_total_rate_per_s=6.0
        )
        wl = m.workload("europe")
        arrivals = wl.arrivals(24 * 3600.0, rng=5)
        counts, _ = np.histogram(arrivals, bins=12, range=(0.0, 24 * 3600.0))
        expected = np.array(
            [m.rate("europe", 2.0 * b + 1.0) * 7200.0 for b in range(12)]
        )
        # Poisson noise on thousands of arrivals: a loose 15% band.
        assert counts.max() > counts.min() * 1.5  # genuinely nonstationary
        np.testing.assert_allclose(counts, expected, rtol=0.15)
