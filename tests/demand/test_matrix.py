"""Origin→region latency matrix and the min-latency transport."""

import numpy as np
import pytest

from repro.demand.matrix import (
    LatencyMatrix,
    assign_origin_traffic,
    default_latency_matrix,
    zone_latency_ms,
)
from repro.demand.origins import default_origins


class FakeRegion:
    def __init__(self, name, zone):
        self.name = name
        self.zone = zone


REGIONS = (
    FakeRegion("r-na", "na"),
    FakeRegion("r-eu", "eu"),
    FakeRegion("r-apac", "apac"),
)


@pytest.fixture(scope="module")
def matrix():
    return default_latency_matrix(default_origins(), REGIONS)


class TestZonePrices:
    def test_symmetric(self):
        assert zone_latency_ms("na", "eu") == zone_latency_ms("eu", "na")

    def test_intra_zone_cheapest(self):
        for z in ("na", "eu", "apac"):
            intra = zone_latency_ms(z, z)
            for other in ("na", "eu", "apac"):
                if other != z:
                    assert intra < zone_latency_ms(z, other)

    def test_unknown_zone_raises(self):
        with pytest.raises(KeyError):
            zone_latency_ms("na", "atlantis")


class TestLatencyMatrix:
    def test_shape_and_lookup(self, matrix):
        assert matrix.latency_ms.shape == (3, 3)
        assert matrix.latency("europe", "r-eu") == zone_latency_ms("eu", "eu")
        assert matrix.latency("asia-pacific", "r-na") == zone_latency_ms(
            "apac", "na"
        )

    def test_home_region_is_nearest(self, matrix):
        """Each origin's cheapest column is its own zone's region."""
        for i, origin in enumerate(default_origins()):
            nearest = int(np.argmin(matrix.latency_ms[i]))
            assert REGIONS[nearest].zone == origin.zone

    def test_unknown_names_raise(self, matrix):
        with pytest.raises(KeyError):
            matrix.latency("mars", "r-na")
        with pytest.raises(KeyError):
            matrix.latency("europe", "r-mars")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            LatencyMatrix(("a",), ("x", "y"), np.zeros((2, 2)))

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LatencyMatrix(("a",), ("x",), np.array([[-1.0]]))

    def test_weighted_region_latency(self, matrix):
        w = np.array([1.0, 0.0, 0.0])  # all demand from north-america
        lat = matrix.weighted_region_latency(w)
        assert lat == pytest.approx(matrix.latency_ms[0])

    def test_nearest_origin_latency_is_column_min(self, matrix):
        assert matrix.nearest_origin_latency() == pytest.approx(
            matrix.latency_ms.min(axis=0)
        )


class TestAssignOriginTraffic:
    def test_conserves_rows_and_columns(self, matrix):
        supply = np.array([30.0, 25.0, 45.0])
        demand = np.array([40.0, 40.0, 20.0])
        plan = assign_origin_traffic(supply, demand, matrix.latency_ms)
        np.testing.assert_allclose(plan.sum(axis=1), supply, rtol=1e-9)
        np.testing.assert_allclose(plan.sum(axis=0), demand, rtol=1e-9)
        assert (plan >= 0.0).all()

    def test_prefers_home_regions(self, matrix):
        """When every origin's home region has exactly its demand as
        quota, the plan serves everyone at home."""
        homes = np.argmin(matrix.latency_ms, axis=1)
        assert len(set(homes)) == 3  # each origin has its own home region
        supply = np.array([30.0, 25.0, 45.0])
        demand = np.zeros(3)
        for o, h in enumerate(homes):
            demand[h] += supply[o]
        plan = assign_origin_traffic(supply, demand, matrix.latency_ms)
        for o, h in enumerate(homes):
            assert plan[o, h] == pytest.approx(supply[o])

    def test_overflow_goes_to_next_cheapest(self, matrix):
        """An origin's overflow beyond its home quota ships to its
        second-nearest region, never the farthest one with room nearer."""
        apac = next(
            i for i, o in enumerate(default_origins()) if o.zone == "apac"
        )
        homes = np.argmin(matrix.latency_ms, axis=1)
        second = int(np.argsort(matrix.latency_ms[apac])[1])
        farthest = int(np.argsort(matrix.latency_ms[apac])[2])
        supply = np.array([10.0, 10.0, 10.0])
        supply[apac] = 50.0
        demand = np.zeros(3)
        for o, h in enumerate(homes):
            demand[h] += supply[o]
        # Cut the APAC home quota by 25 and move that room second-nearest.
        demand[homes[apac]] -= 25.0
        demand[second] += 25.0
        plan = assign_origin_traffic(supply, demand, matrix.latency_ms)
        assert plan[apac, second] == pytest.approx(25.0)
        assert plan[apac, farthest] == pytest.approx(0.0)

    def test_mismatched_totals_rejected(self, matrix):
        with pytest.raises(ValueError, match="supply"):
            assign_origin_traffic(
                np.array([1.0, 1.0, 1.0]),
                np.array([5.0, 5.0, 5.0]),
                matrix.latency_ms,
            )

    def test_negative_rates_rejected(self, matrix):
        with pytest.raises(ValueError, match="non-negative"):
            assign_origin_traffic(
                np.array([-1.0, 2.0, 2.0]),
                np.array([1.0, 1.0, 1.0]),
                matrix.latency_ms,
            )
