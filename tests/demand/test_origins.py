"""GeoOrigin registry: weights, offsets, zones."""

import numpy as np
import pytest

from repro.demand.origins import (
    GeoOrigin,
    ORIGIN_NAMES,
    ZONES,
    default_origins,
    normalized_weights,
    origin_by_name,
)


class TestRegistry:
    def test_default_world_covers_all_zones(self):
        origins = default_origins()
        assert {o.zone for o in origins} == set(ZONES)

    def test_names_match_registry(self):
        assert tuple(o.name for o in default_origins()) == ORIGIN_NAMES

    def test_lookup_is_case_insensitive(self):
        assert origin_by_name("EUROPE").name == "europe"

    def test_unknown_origin_lists_valid_names(self):
        with pytest.raises(KeyError, match="valid"):
            origin_by_name("atlantis")

    def test_apac_generates_the_most_demand(self):
        """Internet population: APAC carries the largest weight."""
        origins = {o.name: o for o in default_origins()}
        assert origins["asia-pacific"].population_weight == max(
            o.population_weight for o in origins.values()
        )

    def test_offsets_sweep_the_planet(self):
        """The three origins' local clocks span most of a day."""
        offsets = [o.utc_offset_h for o in default_origins()]
        assert max(offsets) - min(offsets) >= 12.0


class TestValidation:
    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            GeoOrigin("x", 0.0, 0.0, "na")

    def test_absurd_offset_rejected(self):
        with pytest.raises(ValueError, match="offset"):
            GeoOrigin("x", 1.0, 30.0, "na")

    def test_unknown_zone_rejected(self):
        with pytest.raises(ValueError, match="zone"):
            GeoOrigin("x", 1.0, 0.0, "atlantis")


class TestLocalHour:
    def test_wraps_around_midnight(self):
        o = GeoOrigin("x", 1.0, 8.0, "apac")
        assert o.local_hour(20.0) == pytest.approx(4.0)

    def test_negative_offset(self):
        o = GeoOrigin("x", 1.0, -6.0, "na")
        assert o.local_hour(2.0) == pytest.approx(20.0)


class TestNormalizedWeights:
    def test_sum_to_one(self):
        w = normalized_weights(default_origins())
        assert w.sum() == pytest.approx(1.0, rel=1e-12)

    def test_single_origin_is_exactly_one(self):
        """The constant-demand N=1 bit-for-bit anchor needs exact 1.0."""
        w = normalized_weights((GeoOrigin("solo", 0.37, 0.0, "na"),))
        assert w[0] == 1.0  # exact, not approx

    def test_ratios_preserved(self):
        origins = (
            GeoOrigin("a", 1.0, 0.0, "na"),
            GeoOrigin("b", 3.0, 0.0, "eu"),
        )
        assert normalized_weights(origins) == pytest.approx([0.25, 0.75])
