"""CSV/JSON export of experiment results and runs."""

import csv
import io
import json

import pytest

from repro.analysis.experiments import fig6_selection_example, table1
from repro.analysis.export import (
    run_result_to_dict,
    table_to_csv,
    table_to_json,
    write_json,
)
from repro.analysis.runner import ExperimentRunner, RunSpec


@pytest.fixture(scope="module")
def run_result():
    runner = ExperimentRunner()
    return runner.run(
        RunSpec(
            application="classification", scheme="clover", fidelity="smoke",
            seed=0, n_gpus=2, duration_h=6.0,
        )
    )


class TestTableExport:
    def test_csv_round_trips(self):
        text = table_to_csv(table1())
        rows = list(csv.reader(io.StringIO(text)))
        headers, data = rows[0], rows[1:]
        assert headers[0] == "Application"
        assert len(data) == 11

    def test_csv_writes_file(self, tmp_path):
        path = tmp_path / "t1.csv"
        table_to_csv(table1(), path)
        assert path.read_text().startswith("Application")

    def test_json_records(self):
        records = json.loads(table_to_json(fig6_selection_example()))
        assert len(records) == 4
        assert records[0]["Config"] == "A"
        assert {"ci", "Objective"} <= set(records[0])

    def test_json_writes_file(self, tmp_path):
        path = tmp_path / "fig6.json"
        table_to_json(fig6_selection_example(), path)
        assert json.loads(path.read_text())


class TestRunResultExport:
    def test_summary_fields(self, run_result):
        d = run_result_to_dict(run_result, include_epochs=False)
        assert d["scheme"] == "clover"
        assert d["totals"]["requests"] > 0
        assert "epochs" not in d

    def test_epoch_records(self, run_result):
        d = run_result_to_dict(run_result)
        assert len(d["epochs"]) == len(run_result.epochs)
        epoch = d["epochs"][0]
        assert {"t_h", "ci", "carbon_g", "p95_ms", "f", "config"} <= set(epoch)

    def test_json_serializable_end_to_end(self, run_result, tmp_path):
        d = run_result_to_dict(run_result)
        path = tmp_path / "run.json"
        write_json(d, path)
        loaded = json.loads(path.read_text())
        assert loaded["totals"]["carbon_g"] == pytest.approx(
            run_result.total_carbon_g
        )

    def test_infinite_latency_becomes_null(self):
        """Overloaded configs report infinite p95; JSON gets null."""
        runner = ExperimentRunner()
        from repro.core.service import Baseline, CarbonAwareInferenceService
        from repro.serving.sla import SlaPolicy

        baseline = Baseline(
            a_base=84.3, e_base_j_per_request=10.0,
            c_base_g_per_request=0.002, sla=SlaPolicy(p95_target_ms=40.0),
            ci_base=200.0,
        )
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="base", n_gpus=1,
            rate_per_s=1000.0,  # far beyond one GPU's capacity
            baseline=baseline, fidelity="smoke", seed=0,
        )
        result = service.run(duration_h=2.0)
        d = run_result_to_dict(result)
        assert d["totals"]["p95_ms"] is None
        assert json.dumps(d)  # must not raise
