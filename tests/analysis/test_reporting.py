"""ASCII table and series rendering."""

import numpy as np
import pytest

from repro.analysis.reporting import format_series, format_table, render


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(("A", "Bee"), [("1", "x"), ("22", "yy")])
        lines = text.splitlines()
        assert lines[0].startswith("A ")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(("A",), [("1",)], title="T")
        assert text.splitlines()[0] == "T"

    def test_cell_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(("A", "B"), [("only-one",)])

    def test_empty_rows_ok(self):
        text = format_table(("A",), [])
        assert "A" in text


class TestFormatSeries:
    def test_renders_requested_samples(self):
        t = np.linspace(0, 48, 100)
        v = np.sin(t)
        out = format_series(t, v, label="f", samples=6)
        assert out.count("t=") == 6
        assert out.splitlines()[0].startswith("f [")

    def test_constant_series_no_crash(self):
        out = format_series(np.array([0.0, 1.0]), np.array([5.0, 5.0]))
        assert "5.00" in out

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            format_series(np.array([]), np.array([]))


class TestRender:
    def test_renders_table_protocol(self):
        class Result:
            def table(self):
                return ("H",), [("v",)]

        assert "H" in render(Result())
