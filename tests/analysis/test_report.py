"""The one-shot Markdown reproduction report."""

import pytest

from repro.analysis.report import generate_report


class TestGenerateReport:
    def test_selected_experiments_render(self, tmp_path):
        out = tmp_path / "r.md"
        text = generate_report(
            fidelity="smoke", experiments=("table1", "fig6"), out_path=out
        )
        assert out.read_text() == text
        assert "# Clover (SC '23) — reproduction report" in text
        assert "Table 1" in text
        assert "Fig. 6" in text
        assert "4.4" in text  # the worked example's value

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(ValueError, match="valid"):
            generate_report(experiments=("fig99",))

    def test_headers_and_fences_balanced(self):
        text = generate_report(fidelity="smoke", experiments=("fig3",))
        assert text.count("```") % 2 == 0
        assert text.count("## ") == 1

    def test_no_write_without_path(self, tmp_path):
        before = set(tmp_path.iterdir())
        generate_report(fidelity="smoke", experiments=("table1",))
        assert set(tmp_path.iterdir()) == before
