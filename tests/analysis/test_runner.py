"""Experiment runner: memoization and derived metrics."""

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.carbon.intensity import CarbonIntensityTrace


@pytest.fixture()
def runner():
    return ExperimentRunner()


SPEC = RunSpec(
    application="classification", scheme="base", fidelity="smoke",
    seed=0, n_gpus=2, duration_h=4.0,
)


class TestMemoization:
    def test_same_spec_returns_cached_object(self, runner):
        r1 = runner.run(SPEC)
        r2 = runner.run(SPEC)
        assert r1 is r2

    def test_different_spec_reruns(self, runner):
        r1 = runner.run(SPEC)
        r2 = runner.run(
            RunSpec(
                application="classification", scheme="base", fidelity="smoke",
                seed=1, n_gpus=2, duration_h=4.0,
            )
        )
        assert r1 is not r2


class TestCustomTraces:
    def test_registered_trace_is_used(self, runner):
        flat = CarbonIntensityTrace(
            times_h=np.array([0.0, 48.0]),
            values=np.array([123.0, 123.0]),
            name="flat-123",
        )
        runner.register_trace("flat-123", flat)
        r = runner.run(
            RunSpec(
                application="classification", scheme="base",
                trace_name="flat-123", fidelity="smoke", seed=0,
                n_gpus=2, duration_h=4.0,
            )
        )
        assert r.trace_name == "flat-123"
        assert all(e.ci == pytest.approx(123.0) for e in r.epochs)

    def test_unknown_trace_raises(self, runner):
        with pytest.raises(KeyError):
            runner.run(
                RunSpec(
                    application="classification", scheme="base",
                    trace_name="mars-colony", fidelity="smoke", seed=0,
                )
            )


class TestDerivedMetrics:
    def test_carbon_saving_vs_self_is_zero(self, runner):
        base = runner.run(SPEC)
        assert ExperimentRunner.carbon_saving_pct(base, base) == 0.0

    def test_latency_norm_vs_self_is_one(self, runner):
        base = runner.run(SPEC)
        assert ExperimentRunner.latency_norm(base, base) == pytest.approx(1.0)

    def test_run_matrix_keys(self, runner):
        out = runner.run_matrix(
            ("base",), ("classification",), fidelity="smoke", seed=0,
            n_gpus=2, duration_h=4.0,
        )
        assert set(out) == {("classification", "base")}
