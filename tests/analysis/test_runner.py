"""Experiment runner: memoization and derived metrics."""

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.carbon.intensity import CarbonIntensityTrace


@pytest.fixture()
def runner():
    return ExperimentRunner()


SPEC = RunSpec(
    application="classification", scheme="base", fidelity="smoke",
    seed=0, n_gpus=2, duration_h=4.0,
)


class TestMemoization:
    def test_same_spec_returns_cached_object(self, runner):
        r1 = runner.run(SPEC)
        r2 = runner.run(SPEC)
        assert r1 is r2

    def test_different_spec_reruns(self, runner):
        r1 = runner.run(SPEC)
        r2 = runner.run(
            RunSpec(
                application="classification", scheme="base", fidelity="smoke",
                seed=1, n_gpus=2, duration_h=4.0,
            )
        )
        assert r1 is not r2


class TestCustomTraces:
    def test_registered_trace_is_used(self, runner):
        flat = CarbonIntensityTrace(
            times_h=np.array([0.0, 48.0]),
            values=np.array([123.0, 123.0]),
            name="flat-123",
        )
        runner.register_trace("flat-123", flat)
        r = runner.run(
            RunSpec(
                application="classification", scheme="base",
                trace_name="flat-123", fidelity="smoke", seed=0,
                n_gpus=2, duration_h=4.0,
            )
        )
        assert r.trace_name == "flat-123"
        assert all(e.ci == pytest.approx(123.0) for e in r.epochs)

    def test_unknown_trace_raises(self, runner):
        with pytest.raises(KeyError):
            runner.run(
                RunSpec(
                    application="classification", scheme="base",
                    trace_name="mars-colony", fidelity="smoke", seed=0,
                )
            )


class TestDerivedMetrics:
    def test_carbon_saving_vs_self_is_zero(self, runner):
        base = runner.run(SPEC)
        assert ExperimentRunner.carbon_saving_pct(base, base) == 0.0

    def test_latency_norm_vs_self_is_one(self, runner):
        base = runner.run(SPEC)
        assert ExperimentRunner.latency_norm(base, base) == pytest.approx(1.0)

    def test_run_matrix_keys(self, runner):
        out = runner.run_matrix(
            ("base",), ("classification",), fidelity="smoke", seed=0,
            n_gpus=2, duration_h=4.0,
        )
        assert set(out) == {("classification", "base")}


class TestFleetRuns:
    def _spec(self, **overrides):
        from repro.analysis.runner import FleetSpec

        base = dict(
            region_names=("us-ciso",), application="classification",
            scheme="base", router="static", fidelity="smoke", seed=0,
            n_gpus=2, duration_h=4.0,
        )
        base.update(overrides)
        return FleetSpec(**base)

    def test_fleet_run_is_memoized(self, runner):
        r1 = runner.run_fleet(self._spec())
        r2 = runner.run_fleet(self._spec())
        assert r1 is r2

    def test_fleet_n1_static_matches_plain_run(self, runner):
        """The runner's fleet path and single-cluster path agree exactly
        on the paper trace (registry regions embed the same traces)."""
        fleet = runner.run_fleet(self._spec())
        plain = runner.run(SPEC)
        assert fleet.total_requests == plain.total_requests
        assert fleet.mean_accuracy == plain.mean_accuracy
        # Carbon differs only by the run's PUE; energy is PUE-free.
        assert fleet.total_energy_j == plain.total_energy_j

    def test_fleet_experiment_orders_routers(self, runner):
        """fleet_load_shifting: carbon-greedy saves carbon vs static and
        keeps SLA attainment — the PR's acceptance ordering."""
        from repro.analysis.experiments import fleet_load_shifting

        result = fleet_load_shifting(
            runner, fidelity="smoke", seed=0, n_gpus=2, duration_h=24.0,
            routers=("static", "carbon-greedy"),
        )
        assert (
            result.total_carbon_g["carbon-greedy"]
            < result.total_carbon_g["static"]
        )
        assert (
            result.sla_attainment["carbon-greedy"]
            >= result.sla_attainment["static"]
        )
        assert result.carbon_save_vs_static_pct["carbon-greedy"] > 0.0
        headers, rows = result.table()
        assert len(rows) == 2

    def test_fig16_custom_trace_falls_back_to_single_cluster(self, runner):
        """Traces registered on the runner (no fleet region) still work."""
        import numpy as np

        from repro.analysis.experiments import fig16_geographic
        from repro.carbon.intensity import CarbonIntensityTrace

        flat = CarbonIntensityTrace(
            times_h=np.array([0.0, 48.0]),
            values=np.array([200.0, 200.0]),
            name="flat-200",
        )
        runner.register_trace("flat-200", flat)
        result = fig16_geographic(
            runner, fidelity="smoke", seed=0,
            applications=("classification",), trace_names=("flat-200",),
        )
        assert ("flat-200", "classification") in result.carbon_save_pct
