"""The cheap experiments, checked against the paper's claims exactly;
the trace-driven ones run under smoke fidelity in the integration tests."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    demand_routing,
    fig2_mixed_quality,
    fig3_partitioning,
    fig4_intensity_variation,
    fig6_selection_example,
    fig8_evaluation_traces,
    savings_estimate,
    table1,
)


class TestTable1:
    def test_eleven_variants_total(self):
        headers, rows = table1().table()
        assert len(rows) == 3 + 4 + 4
        assert headers[0] == "Application"

    def test_mentions_all_papers_models(self):
        _, rows = table1().table()
        names = {r[3] for r in rows}
        assert "YOLOv5x6" in names
        assert "ALBERT-v2-xxlarge" in names
        assert "EfficientNet-B7" in names


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_mixed_quality()

    def test_mixture_count_is_multisets_of_4(self, result):
        # C(4+4-1, 4) = 35 mixtures of 4 variants over 4 GPUs.
        assert len(result.mixtures) == 35

    def test_star_point_present(self, result):
        """The all-largest mixture is the (0, 1) anchor."""
        idx = result.mixtures.index((4, 4, 4, 4))
        assert result.carbon_reduction_pct[idx] == pytest.approx(0.0, abs=1e-9)
        assert result.accuracy_norm[idx] == pytest.approx(1.0)

    def test_paper_headline_over_60pct_at_5pct_loss(self, result):
        """'over 60% carbon footprint savings, while incurring less than 5%
        accuracy degradation'."""
        assert result.best_saving_within_loss(5.0) > 60.0

    def test_paper_headline_over_80pct_at_10pct_loss(self, result):
        """'more than 80% carbon savings for 10% accuracy loss'."""
        assert result.best_saving_within_loss(10.0) > 80.0

    def test_savings_monotone_in_allowed_loss(self, result):
        assert (
            result.best_saving_within_loss(10.0)
            >= result.best_saving_within_loss(5.0)
            >= result.best_saving_within_loss(1.0)
        )

    def test_pareto_frontier_is_monotone(self, result):
        frontier = result.pareto_points()
        savings = [c for c, _ in frontier]
        accs = [a for _, a in frontier]
        assert savings == sorted(savings)
        assert accs == sorted(accs, reverse=True)


class TestFig3:
    @pytest.mark.parametrize(
        "application", ["detection", "language", "classification"]
    )
    def test_partitioning_saves_carbon_but_hurts_latency(self, application):
        """The paper's Fig. 3 shape: C3 cuts carbon vs C1 while raising
        per-request latency; C2 sits in between."""
        r = fig3_partitioning(application)
        c1, c2, c3 = r.carbon_norm
        l1, l2, l3 = r.latency_norm
        assert c3 < c2 < c1 == 1.0
        assert l3 > l2 > l1 == 1.0

    def test_carbon_reduction_magnitude(self):
        """'we can reduce the carbon footprint by 30%' — C3 lands in the
        20-40% band in our calibration."""
        r = fig3_partitioning("classification")
        assert 0.60 <= r.carbon_norm[2] <= 0.80

    def test_explicit_variant_override(self, zoo):
        r = fig3_partitioning("classification", variant_ordinal=1)
        assert r.variant_name == "EfficientNet-B1"


class TestFig4AndFig8:
    def test_fig4_produces_four_14day_traces(self):
        r = fig4_intensity_variation(days=14.0)
        assert len(r.traces) == 4
        for tr in r.traces:
            assert tr.span_h == pytest.approx(14 * 24.0)

    def test_fig4_big_intraday_swings(self):
        """'carbon intensity can vary by more than 200 gCO2/kWh within half
        a day'."""
        r = fig4_intensity_variation(days=14.0)
        assert max(s.max_half_day_swing for s in r.stats) > 200.0

    def test_fig4_regions_differ(self):
        r = fig4_intensity_variation(days=14.0)
        names = {s.name for s in r.stats}
        assert len(names) == 4

    def test_fig8_three_evaluation_traces(self):
        r = fig8_evaluation_traces()
        assert len(r.traces) == 3
        headers, rows = r.table()
        assert len(rows) == 3


class TestFig6:
    def test_preference_flip(self):
        r = fig6_selection_example()
        assert r.preferred[500.0] == "A"
        assert r.preferred[100.0] == "B"

    def test_table_contains_computed_objectives(self):
        _, rows = fig6_selection_example().table()
        cells = {row[5] for row in rows}
        assert {"4.4", "2.2", "6.0", "7.0"} <= cells


class TestDemandRouting:
    """A short smoke-sized run of the demand experiment; the full 48 h
    acceptance ordering is pinned in tests/fleet/test_demand_fleet.py and
    benchmarks/bench_demand_routing.py."""

    @pytest.fixture(scope="class")
    def result(self):
        return demand_routing(
            fidelity="smoke", seed=0, n_gpus=2, duration_h=24.0
        )

    def test_static_is_the_zero_of_the_save_column(self, result):
        assert result.carbon_save_vs_static_pct["static"] == pytest.approx(0.0)

    def test_carbon_routers_save_vs_static(self, result):
        assert result.carbon_save_vs_static_pct["carbon-greedy"] > 0.0
        assert result.carbon_save_vs_static_pct["forecast-aware"] > 0.0

    def test_origin_shares_cover_the_world(self, result):
        assert set(result.origin_names) == set(result.origin_shares)
        assert sum(result.origin_shares.values()) == pytest.approx(1.0)

    def test_table_renders_one_row_per_router(self, result):
        headers, rows = result.table()
        assert len(rows) == len(result.routers)
        assert "UserSLA%" in headers
        assert len(headers) == len(rows[0])

    def test_static_router_required(self):
        with pytest.raises(ValueError, match="static"):
            demand_routing(
                fidelity="smoke", n_gpus=2, duration_h=24.0,
                routers=("carbon-greedy",),
            )
