"""Incremental annealing: graph memoization and batched neighbourhoods."""

import pytest

from repro.core.annealing import (
    OptimizationCostModel,
    SAParams,
    _Tracker,
    simulated_annealing,
)
from repro.core.config import base_config
from repro.core.evaluator import ConfigEvaluator
from repro.core.graph import ConfigGraph
from repro.core.moves import MoveGenerator
from repro.core.objective import ObjectiveSpec
from repro.serving.sla import SlaPolicy
from repro.serving.workload import default_rate
from repro.utils.rng import RngMixer


@pytest.fixture()
def setup(zoo, perf):
    fam = zoo.family("efficientnet")
    n_gpus = 3
    rate = default_rate(fam, perf, n_gpus)
    evaluator = ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=n_gpus,
        method="analytic",
    )
    base_eval = evaluator.evaluate(base_config(fam, n_gpus))
    objective = ObjectiveSpec(
        lambda_weight=0.5,
        a_base=fam.base_accuracy,
        c_base=0.002,
        sla=SlaPolicy(p95_target_ms=base_eval.p95_ms),
    )
    moves = MoveGenerator(zoo=zoo, family=fam.name)
    return fam, n_gpus, evaluator, objective, moves


class TestGraphMemoization:
    def test_one_projection_per_distinct_config(self, setup, monkeypatch):
        """Regression: each SA move used to rebuild the *previous* config's
        graph as well as the candidate's — two ``from_config`` calls per
        evaluation.  The tracker memo makes it one per distinct config."""
        fam, n_gpus, evaluator, objective, moves = setup
        # Generate the walk first: MoveGenerator.propose projects graphs
        # of its own, which must not pollute the count.
        gen = RngMixer(seed=3).fork("memo-walk", 0)
        walk = [base_config(fam, n_gpus)]
        while len(walk) < 25:
            nxt = moves.propose(walk[-1], gen)
            if nxt is None:  # pragma: no cover
                break
            walk.append(nxt)

        calls = []
        original = ConfigGraph.from_config.__func__

        def counting(cls, config, num_variants):
            calls.append(config)
            return original(cls, config, num_variants)

        monkeypatch.setattr(
            ConfigGraph, "from_config", classmethod(counting)
        )
        tracker = _Tracker(
            evaluator, objective, ci=300.0, cost=OptimizationCostModel(),
            num_variants=fam.num_variants, deployed=None,
        )
        for config in walk:
            tracker.evaluate(config)
        # Per distinct config: one projection inside the evaluator (cache
        # key) plus at most one from the tracker memo.  The regression
        # (re-projecting the *previous* config every move) would add one
        # more per move and break this bound.
        distinct = len(set(walk))
        assert len(calls) <= 2 * distinct
        tracker_calls = len(calls)
        for cand in walk[:5]:
            tracker.graph(cand)  # memoized: no new projections
        assert len(calls) == tracker_calls

    def test_lru_from_config_returns_equal_graphs(self, zoo):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 3)
        g1 = ConfigGraph.from_config(cfg, fam.num_variants)
        g2 = ConfigGraph.from_config(cfg, fam.num_variants)
        assert (g1.weights == g2.weights).all()
        assert not g1.weights.flags.writeable


class TestNeighborhood:
    def test_validation(self):
        with pytest.raises(ValueError):
            SAParams(neighborhood=0)
        assert SAParams().neighborhood == 1  # seed-equivalent default

    def test_k1_trajectory_is_deterministic(self, setup):
        fam, n_gpus, evaluator, objective, moves = setup
        initial = base_config(fam, n_gpus)

        def run():
            ev = ConfigEvaluator(
                zoo=evaluator.zoo, perf=evaluator.perf, family=fam.name,
                rate_per_s=evaluator.rate_per_s, n_gpus=n_gpus,
                method="analytic",
            )
            return simulated_annealing(
                initial, ev, objective, ci=300.0, moves=moves, rng=5,
                params=SAParams(max_evals=40, neighborhood=1),
            )

        a, b = run(), run()
        assert [c.config for c in a.evaluated] == [
            c.config for c in b.evaluated
        ]
        assert [c.value for c in a.evaluated] == [
            c.value for c in b.evaluated
        ]

    def test_batched_neighborhood_counts_and_quality(self, setup):
        fam, n_gpus, evaluator, objective, moves = setup
        initial = base_config(fam, n_gpus)

        def run(k):
            ev = ConfigEvaluator(
                zoo=evaluator.zoo, perf=evaluator.perf, family=fam.name,
                rate_per_s=evaluator.rate_per_s, n_gpus=n_gpus,
                method="analytic",
            )
            result = simulated_annealing(
                initial, ev, objective, ci=300.0, moves=moves, rng=5,
                params=SAParams(
                    max_evals=60, no_improve_limit=60, neighborhood=k
                ),
            )
            return result, ev

        scalar, scalar_ev = run(1)
        batched, batched_ev = run(4)
        assert scalar_ev.cache_batched == 0
        assert batched_ev.cache_batched > 0
        assert batched.num_evaluations <= 60
        # Both searches improve on (or match) the starting configuration.
        start = batched.evaluated[0].sa_energy
        assert batched.best_any.sa_energy <= start + 1e-12
        assert scalar.best_any.sa_energy <= start + 1e-12

    def test_max_evals_respected_with_partial_last_batch(self, setup):
        fam, n_gpus, evaluator, objective, moves = setup
        initial = base_config(fam, n_gpus)
        result = simulated_annealing(
            initial, evaluator, objective, ci=300.0, moves=moves, rng=2,
            params=SAParams(
                max_evals=10, no_improve_limit=10, neighborhood=4
            ),
        )
        assert result.num_evaluations <= 10
