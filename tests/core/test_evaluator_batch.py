"""Batched config evaluation vs the scalar loop: equivalence + counters."""

import numpy as np
import pytest

from repro.core.config import base_config, uniform_config
from repro.core.evaluator import CacheStats, ConfigEvaluator
from repro.core.moves import MoveGenerator
from repro.serving.workload import default_rate
from repro.utils.rng import RngMixer

RTOL = 1e-9


def _walk(zoo, fam, n, n_gpus, seed=7):
    """A deterministic SA-style walk of n configurations."""
    moves = MoveGenerator(zoo=zoo, family=fam.name)
    gen = RngMixer(seed=seed).fork("batch-walk", 0)
    configs = [base_config(fam, n_gpus)]
    while len(configs) < n:
        nxt = moves.propose(configs[-1], gen)
        if nxt is None:  # pragma: no cover
            break
        configs.append(nxt)
    return configs


def _fresh(zoo, perf, n_gpus=4, rate=None):
    fam = zoo.family("efficientnet")
    if rate is None:
        rate = default_rate(fam, perf, n_gpus)
    return ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=n_gpus,
        method="analytic",
    )


def _assert_evals_match(batch, scalar):
    assert len(batch) == len(scalar)
    for b, s in zip(batch, scalar):
        assert b.overloaded == s.overloaded
        assert b.num_instances == s.num_instances
        np.testing.assert_allclose(b.accuracy, s.accuracy, rtol=RTOL)
        np.testing.assert_allclose(
            b.energy_per_request_j, s.energy_per_request_j, rtol=RTOL
        )
        np.testing.assert_allclose(b.power_watts, s.power_watts, rtol=RTOL)
        np.testing.assert_allclose(b.utilization, s.utilization, rtol=RTOL)
        if s.overloaded:
            assert b.p95_ms == s.p95_ms == np.inf
        else:
            np.testing.assert_allclose(b.p95_ms, s.p95_ms, rtol=RTOL)


class TestEvaluateBatch:
    def test_matches_scalar_loop_on_walk(self, zoo, perf):
        fam = zoo.family("efficientnet")
        configs = _walk(zoo, fam, 60, 4)
        batch_ev = _fresh(zoo, perf)
        scalar_ev = _fresh(zoo, perf)
        batch = batch_ev.evaluate_batch(configs)
        scalar = [scalar_ev.evaluate(c) for c in configs]
        _assert_evals_match(batch, scalar)

    def test_counters_identical_to_scalar(self, zoo, perf):
        fam = zoo.family("efficientnet")
        configs = _walk(zoo, fam, 40, 4)
        configs = configs + configs[:10]  # duplicates → in-batch hits
        batch_ev = _fresh(zoo, perf)
        scalar_ev = _fresh(zoo, perf)
        batch_ev.evaluate_batch(configs)
        for c in configs:
            scalar_ev.evaluate(c)
        b, s = batch_ev.cache_stats, scalar_ev.cache_stats
        assert (b.hits, b.misses) == (s.hits, s.misses)
        assert b.batched == b.misses  # every miss went through the batch path
        assert s.batched == 0

    def test_second_batch_is_all_hits(self, zoo, perf):
        fam = zoo.family("efficientnet")
        configs = _walk(zoo, fam, 20, 4)
        ev = _fresh(zoo, perf)
        first = ev.evaluate_batch(configs)
        misses = ev.cache_stats.misses
        second = ev.evaluate_batch(configs)
        assert ev.cache_stats.misses == misses
        assert [id(a) for a in first] == [id(b) for b in second]  # cached objects

    def test_awake_gated_batch_matches_scalar(self, zoo, perf):
        fam = zoo.family("efficientnet")
        configs = _walk(zoo, fam, 30, 4)
        batch_ev = _fresh(zoo, perf)
        scalar_ev = _fresh(zoo, perf)
        batch_ev.set_awake_gpus(2)
        scalar_ev.set_awake_gpus(2)
        batch = batch_ev.evaluate_batch(configs)
        scalar = [scalar_ev.evaluate(c) for c in configs]
        _assert_evals_match(batch, scalar)
        # Gating shrinks capacity: never more instances than ungated.
        full = _fresh(zoo, perf)
        ungated = full.evaluate_batch(configs)
        assert all(
            b.num_instances <= u.num_instances
            for b, u in zip(batch, ungated)
        )

    def test_overloaded_candidates_match(self, zoo, perf):
        fam = zoo.family("efficientnet")
        configs = _walk(zoo, fam, 15, 4)
        # A rate far past any candidate's capacity: every row overloads.
        batch_ev = _fresh(zoo, perf, rate=1e7)
        scalar_ev = _fresh(zoo, perf, rate=1e7)
        batch = batch_ev.evaluate_batch(configs)
        scalar = [scalar_ev.evaluate(c) for c in configs]
        assert all(b.overloaded for b in batch)
        _assert_evals_match(batch, scalar)

    def test_family_and_size_validation(self, zoo, perf):
        ev = _fresh(zoo, perf)
        with pytest.raises(ValueError, match="evaluator serves"):
            ev.evaluate_batch([base_config(zoo.family("albert"), 4)])
        with pytest.raises(ValueError, match="sized for"):
            ev.evaluate_batch([base_config(zoo.family("efficientnet"), 3)])


class TestEvaluateRates:
    def test_matches_scalar_over_rate_grid(self, zoo, perf):
        fam = zoo.family("efficientnet")
        config = uniform_config(fam, 4, 3, 2)
        rates = np.linspace(5.0, 400.0, 9)
        batch_ev = _fresh(zoo, perf)
        scalar_ev = _fresh(zoo, perf)
        batch = batch_ev.evaluate_rates(config, rates)
        scalar = [scalar_ev.evaluate(config, float(r)) for r in rates]
        _assert_evals_match(batch, scalar)


class TestCacheStatsBatchRate:
    def test_batch_rate(self):
        assert CacheStats(hits=3, misses=4, size=4, batched=2).batch_rate == 0.5
        assert CacheStats(hits=0, misses=0, size=0).batch_rate == 0.0
