"""The five competing schemes."""

import numpy as np
import pytest

from repro.core.annealing import SAParams
from repro.core.config import base_config, co2opt_config
from repro.core.evaluator import ConfigEvaluator
from repro.core.objective import ObjectiveSpec
from repro.core.schemes import (
    SCHEME_NAMES,
    enumerate_standardized_configs,
    make_scheme,
)
from repro.serving.sla import SlaPolicy
from repro.serving.workload import default_rate
from repro.utils.rng import RngMixer


@pytest.fixture()
def ctx(zoo, perf):
    fam = zoo.family("efficientnet")
    n_gpus = 3
    rate = default_rate(fam, perf, n_gpus)
    evaluator = ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=n_gpus,
        method="analytic",
    )
    base_eval = evaluator.evaluate(base_config(fam, n_gpus))
    objective = ObjectiveSpec(
        lambda_weight=0.5,
        a_base=fam.base_accuracy,
        c_base=0.002,
        sla=SlaPolicy(p95_target_ms=base_eval.p95_ms),
    )
    return dict(
        zoo=zoo, family=fam.name, n_gpus=n_gpus, evaluator=evaluator,
        objective=objective,
    )


class TestFactory:
    def test_all_names_resolve(self, ctx):
        for name in SCHEME_NAMES:
            scheme = make_scheme(name, **ctx)
            assert scheme.name == name

    def test_unknown_name_raises(self, ctx):
        with pytest.raises(ValueError, match="valid"):
            make_scheme("zzz", **ctx)

    def test_reoptimization_flags(self, ctx):
        assert not make_scheme("base", **ctx).reoptimizes
        assert not make_scheme("co2opt", **ctx).reoptimizes
        assert make_scheme("blover", **ctx).reoptimizes
        assert make_scheme("clover", **ctx).reoptimizes
        assert make_scheme("oracle", **ctx).reoptimizes


class TestStaticSchemes:
    def test_base_deploys_base_config(self, ctx, zoo):
        scheme = make_scheme("base", **ctx)
        fam = zoo.family("efficientnet")
        out = scheme.optimize(250.0, None)
        assert out.deployed == base_config(fam, 3)
        assert out.virtual_cost_s > 0  # cold start
        assert out.evaluated == ()

    def test_base_second_call_free(self, ctx):
        scheme = make_scheme("base", **ctx)
        first = scheme.optimize(250.0, None)
        second = scheme.optimize(100.0, first.deployed)
        assert second.virtual_cost_s == 0.0
        assert second.deployed == first.deployed

    def test_co2opt_deploys_finest_smallest(self, ctx, zoo):
        scheme = make_scheme("co2opt", **ctx)
        fam = zoo.family("efficientnet")
        out = scheme.optimize(250.0, None)
        assert out.deployed == co2opt_config(fam, 3)


class TestSearchSchemes:
    @pytest.mark.parametrize("name", ["clover", "blover"])
    def test_deployment_meets_sla(self, ctx, name):
        scheme = make_scheme(name, **ctx, mixer=RngMixer(seed=0))
        out = scheme.optimize(250.0, None)
        ev = ctx["evaluator"].evaluate(out.deployed)
        assert ctx["objective"].sla.is_met(ev.p95_ms)

    def test_clover_warm_starts_from_last_best(self, ctx):
        scheme = make_scheme(
            "clover", **ctx, mixer=RngMixer(seed=0),
            sa_params=SAParams(max_evals=30),
        )
        out1 = scheme.optimize(250.0, None)
        out2 = scheme.optimize(240.0, out1.deployed)
        # Warm-started: the first candidate of invocation 2 is the previous
        # best, so it costs only the measurement window if unchanged.
        assert out2.evaluated[0].config == out1.deployed

    def test_clover_improves_objective_vs_base(self, ctx, zoo):
        """Never regresses below BASE; strictly improves for most seeds
        (a single invocation may legally terminate after 5 unlucky
        non-improving proposals)."""
        fam = zoo.family("efficientnet")
        base_ev = ctx["evaluator"].evaluate(base_config(fam, 3))
        base_f = ctx["objective"].f(
            base_ev.accuracy, base_ev.energy_per_request_j, 250.0
        )
        improved = 0
        for seed in range(3):
            scheme = make_scheme("clover", **ctx, mixer=RngMixer(seed=seed))
            out = scheme.optimize(250.0, None)
            ev = ctx["evaluator"].evaluate(out.deployed)
            f = ctx["objective"].f(ev.accuracy, ev.energy_per_request_j, 250.0)
            assert f >= base_f - 1e-9
            if f > base_f + 1e-9:
                improved += 1
        assert improved >= 2

    def test_blover_per_eval_cost_exceeds_clover(self, ctx):
        clover = make_scheme("clover", **ctx, mixer=RngMixer(seed=2))
        blover = make_scheme("blover", **ctx, mixer=RngMixer(seed=2))
        oc = clover.optimize(250.0, None)
        ob = blover.optimize(250.0, None)
        c_cost = oc.virtual_cost_s / max(1, oc.num_evaluations)
        b_cost = ob.virtual_cost_s / max(1, ob.num_evaluations)
        assert b_cost > c_cost

    def test_invocation_rngs_differ(self, ctx):
        """Two invocations at the same ci must not replay the same search."""
        scheme = make_scheme("clover", **ctx, mixer=RngMixer(seed=3))
        out1 = scheme.optimize(250.0, None)
        out2 = scheme.optimize(250.0, out1.deployed)
        assert scheme.invocations == 2
        # (Configurations may coincide; the eval traces should not, unless
        # the search immediately converges both times.)
        assert out1.num_evaluations >= 1 and out2.num_evaluations >= 1


class TestStandardizedEnumeration:
    def test_counts_for_single_slice_partitions(self, zoo, ctx):
        configs = enumerate_standardized_configs(zoo, "efficientnet", 2)
        # Partition 1 ({7g}) contributes exactly V=4 configs.
        from_p1 = [c for c in configs if c.partition_ids == (1, 1)]
        assert len(from_p1) == 4

    def test_multiset_counting_for_config19(self, zoo):
        configs = enumerate_standardized_configs(zoo, "efficientnet", 1)
        # All four EfficientNet variants fit 1g: C(4+7-1, 7) = 120 multisets.
        from_p19 = [c for c in configs if c.partition_ids == (19,)]
        assert len(from_p19) == 120

    def test_memory_mask_respected(self, zoo):
        configs = enumerate_standardized_configs(zoo, "albert", 1)
        for cfg in configs:
            cfg.validate_against(zoo)

    def test_all_gpus_identical(self, zoo):
        for cfg in enumerate_standardized_configs(zoo, "yolov5", 3):
            first = cfg.assignments[0]
            assert all(a == first for a in cfg.assignments)

    def test_no_duplicates(self, zoo):
        configs = enumerate_standardized_configs(zoo, "efficientnet", 1)
        assert len(set(configs)) == len(configs)


class TestOracle:
    def test_oracle_selects_sla_compliant_argmax(self, ctx):
        scheme = make_scheme("oracle", **ctx)
        out = scheme.optimize(250.0, None)
        assert out.virtual_cost_s == 0.0
        ev = ctx["evaluator"].evaluate(out.deployed)
        assert ctx["objective"].sla.is_met(ev.p95_ms)

    def test_oracle_dominates_clover(self, ctx):
        """ORACLE's objective at any ci is an upper bound for any scheme
        restricted to standardized configs — and in practice beats Clover's
        online search."""
        oracle = make_scheme("oracle", **ctx)
        clover = make_scheme("clover", **ctx, mixer=RngMixer(seed=4))
        ci = 250.0
        o = oracle.optimize(ci, None)
        c = clover.optimize(ci, None)
        f_of = lambda cfg: ctx["objective"].f(
            ctx["evaluator"].evaluate(cfg).accuracy,
            ctx["evaluator"].evaluate(cfg).energy_per_request_j,
            ci,
        )
        assert f_of(o.deployed) >= f_of(c.deployed) - 1e-9

    def test_oracle_adapts_to_intensity(self, ctx):
        """Low ci must not pick a lower-accuracy config than high ci."""
        scheme = make_scheme("oracle", **ctx)
        high = scheme.optimize(400.0, None)
        low = scheme.optimize(60.0, high.deployed)
        acc_high = ctx["evaluator"].evaluate(high.deployed).accuracy
        acc_low = ctx["evaluator"].evaluate(low.deployed).accuracy
        assert acc_low >= acc_high
