"""The public facade: assembly, baselines, fidelity profiles."""

import numpy as np
import pytest

from repro.core.service import (
    Baseline,
    CarbonAwareInferenceService,
    FidelityProfile,
    derive_baseline,
)
from repro.models.perf import PerfModel
from repro.models.zoo import default_zoo
from repro.serving.workload import default_rate


class TestFidelityProfile:
    def test_by_name(self):
        assert FidelityProfile.by_name("smoke").name == "smoke"
        assert FidelityProfile.by_name("DEFAULT").name == "default"
        assert FidelityProfile.by_name("paper").name == "paper"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="valid"):
            FidelityProfile.by_name("ludicrous")

    def test_fidelity_ordering(self):
        smoke = FidelityProfile.smoke()
        paper = FidelityProfile.paper()
        assert smoke.step_minutes > paper.step_minutes
        assert smoke.measure_des_requests < paper.measure_des_requests


class TestDeriveBaseline:
    def test_baseline_fields(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 4)
        b = derive_baseline(
            zoo, perf, fam.name, 4, rate, ci_base=220.0,
            des_requests=4000, seed=0,
        )
        assert b.a_base == fam.base_accuracy
        assert b.sla.p95_target_ms > 0
        assert b.c_base_g_per_request > 0
        # C_base = carbon(E_base) at ci_base with PUE 1.5.
        assert b.c_base_g_per_request == pytest.approx(
            b.e_base_j_per_request / 3.6e6 * 1.5 * 220.0
        )

    def test_overloaded_baseline_raises(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 10)
        with pytest.raises(ValueError, match="overloaded"):
            derive_baseline(
                zoo, perf, fam.name, 1, rate, ci_base=220.0,
                des_requests=1000, seed=0,
            )


class TestServiceCreate:
    def test_create_and_short_run(self):
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="clover",
            fidelity="smoke", seed=0, n_gpus=2,
        )
        report = service.run(duration_h=4.0)
        assert report.scheme_name == "clover"
        assert report.total_requests > 0
        assert report.total_carbon_g > 0
        assert np.isfinite(report.p95_ms)

    def test_default_duration_is_trace_span(self):
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="base",
            fidelity="smoke", seed=0, n_gpus=2,
        )
        report = service.run()
        assert report.duration_h == pytest.approx(48.0)

    def test_seeded_runs_are_reproducible(self):
        runs = []
        for _ in range(2):
            service = CarbonAwareInferenceService.create(
                application="classification", scheme="clover",
                fidelity="smoke", seed=7, n_gpus=2,
            )
            runs.append(service.run(duration_h=6.0))
        assert runs[0].total_carbon_g == pytest.approx(runs[1].total_carbon_g)
        assert runs[0].mean_accuracy == pytest.approx(runs[1].mean_accuracy)

    def test_different_seeds_differ(self):
        reports = []
        for seed in (0, 1):
            service = CarbonAwareInferenceService.create(
                application="classification", scheme="clover",
                fidelity="smoke", seed=seed, n_gpus=2,
            )
            reports.append(service.run(duration_h=12.0))
        assert (
            reports[0].total_carbon_g != reports[1].total_carbon_g
            or reports[0].total_evaluations != reports[1].total_evaluations
        )

    def test_external_baseline_is_used(self, zoo, perf):
        fam = zoo.family("efficientnet")
        from repro.serving.sla import SlaPolicy

        pinned = Baseline(
            a_base=fam.base_accuracy,
            e_base_j_per_request=10.0,
            c_base_g_per_request=0.005,
            sla=SlaPolicy(p95_target_ms=123.0),
            ci_base=200.0,
        )
        service = CarbonAwareInferenceService.create(
            application="classification", scheme="base",
            fidelity="smoke", seed=0, n_gpus=2, baseline=pinned,
        )
        assert service.baseline.sla.p95_target_ms == 123.0
        assert service.controller.objective.sla.p95_target_ms == 123.0

    def test_bad_application_raises(self):
        with pytest.raises(KeyError):
            CarbonAwareInferenceService.create(application="speech")

    def test_bad_scheme_raises(self):
        with pytest.raises(ValueError):
            CarbonAwareInferenceService.create(scheme="wizard")
