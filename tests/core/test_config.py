"""Cluster configuration variables and canonicalization."""

import pytest

from repro.core.config import (
    ClusterConfig,
    GpuAssignment,
    base_config,
    co2opt_config,
    uniform_config,
)


class TestGpuAssignment:
    def test_valid_assignment(self):
        a = GpuAssignment(partition_id=3, variant_ordinals=(1, 2, 3))
        assert a.partition.config_id == 3
        assert len(a.instances()) == 3

    def test_wrong_ordinal_count_raises(self):
        with pytest.raises(ValueError, match="3 slices"):
            GpuAssignment(partition_id=3, variant_ordinals=(1, 2))

    def test_nonpositive_ordinal_raises(self):
        with pytest.raises(ValueError):
            GpuAssignment(partition_id=1, variant_ordinals=(0,))

    def test_instances_align_with_slices(self):
        a = GpuAssignment(partition_id=3, variant_ordinals=(4, 2, 1))
        pairs = a.instances()
        assert [s.name for s, _ in pairs] == ["4g", "2g", "1g"]
        assert [o for _, o in pairs] == [4, 2, 1]

    def test_canonical_sorts_within_slice_type_runs(self):
        # Partition 19 is seven 1g slices: ordinal order is irrelevant.
        a = GpuAssignment(partition_id=19, variant_ordinals=(3, 1, 2, 1, 4, 1, 2))
        c = a.canonical()
        assert c.variant_ordinals == (1, 1, 1, 2, 2, 3, 4)

    def test_canonical_preserves_cross_type_alignment(self):
        a = GpuAssignment(partition_id=3, variant_ordinals=(4, 2, 1))
        assert a.canonical().variant_ordinals == (4, 2, 1)

    def test_validate_against_catches_oom(self, zoo):
        fam = zoo.family("albert")
        # xxlarge (ordinal 4) does not fit the 1g slice of partition 3.
        a = GpuAssignment(partition_id=3, variant_ordinals=(4, 4, 4))
        with pytest.raises(ValueError, match="does not fit"):
            a.validate_against(fam)

    def test_validate_against_catches_unknown_ordinal(self, zoo):
        fam = zoo.family("yolov5")  # 3 variants
        a = GpuAssignment(partition_id=1, variant_ordinals=(4,))
        with pytest.raises(ValueError):
            a.validate_against(fam)


class TestClusterConfig:
    def test_instance_count(self, zoo):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 3, 19, 1)
        assert cfg.num_instances == 21
        assert cfg.n_gpus == 3

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(family="f", assignments=())

    def test_canonical_orders_gpus(self):
        a1 = GpuAssignment(partition_id=19, variant_ordinals=(1,) * 7)
        a2 = GpuAssignment(partition_id=1, variant_ordinals=(4,))
        cfg = ClusterConfig(family="efficientnet", assignments=(a1, a2))
        canon = cfg.canonical()
        assert canon.partition_ids == (1, 19)

    def test_canonical_equal_for_permuted_gpus(self, zoo):
        a1 = GpuAssignment(partition_id=3, variant_ordinals=(3, 2, 1))
        a2 = GpuAssignment(partition_id=1, variant_ordinals=(4,))
        c1 = ClusterConfig(family="efficientnet", assignments=(a1, a2))
        c2 = ClusterConfig(family="efficientnet", assignments=(a2, a1))
        assert c1.canonical() == c2.canonical()

    def test_with_assignment_is_functional(self):
        cfg = ClusterConfig(
            family="f",
            assignments=(
                GpuAssignment(partition_id=1, variant_ordinals=(1,)),
            ) * 2,
        )
        new = cfg.with_assignment(
            1, GpuAssignment(partition_id=1, variant_ordinals=(2,))
        )
        assert cfg.assignments[1].variant_ordinals == (1,)
        assert new.assignments[1].variant_ordinals == (2,)

    def test_with_assignment_bounds(self):
        cfg = ClusterConfig(
            family="f",
            assignments=(GpuAssignment(partition_id=1, variant_ordinals=(1,)),),
        )
        with pytest.raises(IndexError):
            cfg.with_assignment(
                5, GpuAssignment(partition_id=1, variant_ordinals=(1,))
            )


class TestNamedConfigs:
    def test_base_config(self, zoo):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 10)
        assert cfg.partition_ids == (1,) * 10
        assert all(
            a.variant_ordinals == (fam.largest.ordinal,) for a in cfg.assignments
        )

    def test_co2opt_config_uses_finest_partition(self, zoo):
        fam = zoo.family("efficientnet")
        cfg = co2opt_config(fam, 10)
        assert cfg.partition_ids == (19,) * 10
        assert cfg.num_instances == 70
        assert all(a.variant_ordinals == (1,) * 7 for a in cfg.assignments)

    def test_co2opt_valid_for_all_families(self, zoo):
        for fam in zoo.families:
            cfg = co2opt_config(fam, 2)
            cfg.validate_against(zoo)

    def test_uniform_config_validates_memory(self, zoo):
        fam = zoo.family("yolov5")
        with pytest.raises(ValueError, match="does not fit"):
            uniform_config(fam, 1, 19, fam.largest.ordinal)  # x6 on 1g
