"""Neighbourhood moves: every proposal stays feasible and within GED 4."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import base_config, co2opt_config
from repro.core.graph import ConfigGraph
from repro.core.moves import GED_THRESHOLD, MoveGenerator, partition_neighbors
from repro.gpu.cluster import decompose_histogram
from repro.gpu.partitions import ALL_PARTITION_HISTOGRAMS


class TestPartitionNeighbors:
    def test_symmetric(self):
        adj = partition_neighbors()
        for a, neighbors in adj.items():
            for b in neighbors:
                assert a in adj[b]

    def test_no_self_loops(self):
        adj = partition_neighbors()
        for a, neighbors in adj.items():
            assert a not in neighbors

    def test_histogram_distance_bound(self):
        adj = partition_neighbors()
        for a, neighbors in adj.items():
            for b in neighbors:
                d = int(
                    np.abs(
                        ALL_PARTITION_HISTOGRAMS[a - 1]
                        - ALL_PARTITION_HISTOGRAMS[b - 1]
                    ).sum()
                )
                assert 0 < d <= GED_THRESHOLD

    def test_paper_adjacencies(self):
        adj = partition_neighbors()
        # {7g} <-> {4g,3g} (distance 3) and {7g} <-> {4g,2g,1g} (distance 4).
        assert 2 in adj[1]
        assert 3 in adj[1]
        # {7g} is far from {1g x 7} (distance 8): not a direct neighbour.
        assert 19 not in adj[1]

    def test_graph_is_connected(self):
        """Every partition is reachable from every other through GED <= 4
        hops — SA can traverse the whole space."""
        import networkx as nx

        adj = partition_neighbors()
        g = nx.Graph()
        for a, neighbors in adj.items():
            g.add_node(a)
            for b in neighbors:
                g.add_edge(a, b)
        assert nx.is_connected(g)


class TestPropose:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_proposals_stay_in_neighborhood_and_feasible(self, zoo, seed):
        moves = MoveGenerator(zoo=zoo, family="efficientnet")
        fam = zoo.family("efficientnet")
        rng = np.random.default_rng(seed)
        config = moves.random_config(3, rng)
        proposal = moves.propose(config, rng)
        if proposal is None:
            return
        g0 = ConfigGraph.from_config(config, fam.num_variants)
        g1 = ConfigGraph.from_config(proposal, fam.num_variants)
        d = g0.ged(g1)
        assert 0 < d <= GED_THRESHOLD
        proposal.validate_against(zoo)
        assert decompose_histogram(
            g1.slice_histogram(), proposal.n_gpus
        ) is not None

    def test_propose_from_base_finds_neighbors(self, zoo):
        moves = MoveGenerator(zoo=zoo, family="efficientnet")
        fam = zoo.family("efficientnet")
        config = base_config(fam, 2)
        found = 0
        rng = np.random.default_rng(0)
        for _ in range(20):
            if moves.propose(config, rng) is not None:
                found += 1
        assert found >= 18  # base has plenty of neighbours

    def test_memory_respected_for_albert(self, zoo):
        """No proposal may place ALBERT-xxlarge on a 1g slice."""
        moves = MoveGenerator(zoo=zoo, family="albert")
        fam = zoo.family("albert")
        rng = np.random.default_rng(1)
        config = co2opt_config(fam, 2)
        for _ in range(50):
            proposal = moves.propose(config, rng)
            if proposal is None:
                continue
            proposal.validate_against(zoo)  # raises on OOM
            config = proposal

    def test_variant_only_family_move(self, zoo):
        """With one GPU at {7g}, variant swaps are always available."""
        moves = MoveGenerator(zoo=zoo, family="yolov5")
        fam = zoo.family("yolov5")
        config = base_config(fam, 1)
        rng = np.random.default_rng(2)
        proposals = [moves.propose(config, rng) for _ in range(10)]
        assert any(p is not None for p in proposals)

    def test_threshold_below_two_rejected(self, zoo):
        with pytest.raises(ValueError):
            MoveGenerator(zoo=zoo, family="efficientnet", threshold=1)


class TestRandomAndPerturb:
    @given(seed=st.integers(0, 200), n=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_random_config_always_valid(self, zoo, seed, n):
        moves = MoveGenerator(zoo=zoo, family="albert")
        cfg = moves.random_config(n, rng=seed)
        assert cfg.n_gpus == n
        cfg.validate_against(zoo)

    def test_random_config_reproducible(self, zoo):
        moves = MoveGenerator(zoo=zoo, family="efficientnet")
        assert moves.random_config(3, rng=7) == moves.random_config(3, rng=7)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_perturb_changes_something_and_stays_valid(self, zoo, seed):
        moves = MoveGenerator(zoo=zoo, family="efficientnet")
        fam = zoo.family("efficientnet")
        base = base_config(fam, 4)
        out = moves.perturb_config(base, rng=seed)
        assert out != base.canonical() or out == base.canonical()
        out.validate_against(zoo)
        assert out.n_gpus == 4

    def test_perturb_prob_bounds(self, zoo):
        moves = MoveGenerator(zoo=zoo, family="efficientnet")
        fam = zoo.family("efficientnet")
        with pytest.raises(ValueError):
            moves.perturb_config(base_config(fam, 2), rng=0, per_gpu_prob=0.0)

    def test_perturb_low_prob_touches_few_gpus(self, zoo):
        moves = MoveGenerator(zoo=zoo, family="efficientnet")
        fam = zoo.family("efficientnet")
        base = base_config(fam, 10).canonical()
        rng = np.random.default_rng(3)
        changed_counts = []
        for _ in range(30):
            out = moves.perturb_config(base, rng, per_gpu_prob=0.2)
            same = sum(
                1 for a in out.assignments
                if a.partition_id == 1 and a.variant_ordinals == (4,)
            )
            changed_counts.append(10 - same)
        assert 1 <= np.mean(changed_counts) <= 4
