"""Configuration evaluator: accuracy/energy/latency and caching."""

import numpy as np
import pytest

from repro.core.config import base_config, co2opt_config, uniform_config
from repro.core.evaluator import ConfigEvaluator
from repro.serving.workload import default_rate


@pytest.fixture()
def evaluator(zoo, perf):
    fam = zoo.family("efficientnet")
    rate = default_rate(fam, perf, 4)
    return ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
        method="analytic",
    )


@pytest.fixture()
def des_evaluator(zoo, perf):
    fam = zoo.family("efficientnet")
    rate = default_rate(fam, perf, 4)
    return ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
        method="des", des_requests=4000, seed=1,
    )


class TestBasics:
    def test_base_config_metrics(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        ev = evaluator.evaluate(base_config(fam, 4))
        assert ev.accuracy == pytest.approx(fam.largest.accuracy)
        assert not ev.overloaded
        assert ev.utilization == pytest.approx(0.65, abs=0.01)
        assert ev.num_instances == 4

    def test_co2opt_uses_less_energy_than_base(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        base = evaluator.evaluate(base_config(fam, 4))
        small = evaluator.evaluate(co2opt_config(fam, 4))
        assert small.energy_per_request_j < 0.4 * base.energy_per_request_j
        assert small.accuracy < base.accuracy

    def test_mixture_accuracy_between_extremes(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        mixed = evaluator.evaluate(uniform_config(fam, 4, 3, 2))
        assert fam.smallest.accuracy <= mixed.accuracy <= fam.largest.accuracy

    def test_power_includes_static_floor(self, zoo, perf, evaluator):
        fam = zoo.family("efficientnet")
        ev = evaluator.evaluate(co2opt_config(fam, 4))
        assert ev.power_watts >= 4 * perf.power.static_watts_per_gpu()

    def test_family_mismatch_rejected(self, zoo, evaluator):
        cfg = base_config(zoo.family("albert"), 4)
        with pytest.raises(ValueError, match="evaluator serves"):
            evaluator.evaluate(cfg)

    def test_gpu_count_mismatch_rejected(self, zoo, evaluator):
        cfg = base_config(zoo.family("efficientnet"), 2)
        with pytest.raises(ValueError, match="sized for"):
            evaluator.evaluate(cfg)


class TestOverload:
    def test_overload_detected(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 10)  # load sized for 10 GPUs ...
        ev = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=2,
            method="analytic",
        ).evaluate(base_config(fam, 2))  # ... on 2 GPUs
        assert ev.overloaded
        assert ev.p95_ms == float("inf")
        assert ev.energy_per_request_j > 0

    def test_des_overload_flag(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 10)
        ev = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=2,
            method="des", des_requests=1000,
        ).evaluate(base_config(fam, 2))
        assert ev.overloaded
        assert ev.p95_ms == float("inf")


class TestCaching:
    def test_cache_hits_by_graph(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        c1 = uniform_config(fam, 4, 3, 2)
        # Same multiset, permuted GPU order -> same graph -> cache hit.
        c2 = c1.canonical()
        evaluator.evaluate(c1)
        n = evaluator.cache_size
        evaluator.evaluate(c2)
        assert evaluator.cache_size == n

    def test_distinct_configs_distinct_entries(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        evaluator.evaluate(uniform_config(fam, 4, 1, 4))
        n = evaluator.cache_size
        evaluator.evaluate(uniform_config(fam, 4, 1, 3))
        assert evaluator.cache_size == n + 1

    def test_cached_result_identical(self, zoo, des_evaluator):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 4, 19, 2)
        a = des_evaluator.evaluate(cfg)
        b = des_evaluator.evaluate(cfg)
        assert a is b


class TestDesVsAnalytic:
    def test_methods_agree_on_structure(self, zoo, evaluator, des_evaluator):
        """Analytic (optimizer) and DES (measurement) must tell the same
        story: close accuracy/energy, p95 within tolerance."""
        fam = zoo.family("efficientnet")
        for cfg in (
            base_config(fam, 4),
            co2opt_config(fam, 4),
            uniform_config(fam, 4, 3, 2),
        ):
            a = evaluator.evaluate(cfg)
            d = des_evaluator.evaluate(cfg)
            assert a.accuracy == pytest.approx(d.accuracy, rel=0.02)
            assert a.energy_per_request_j == pytest.approx(
                d.energy_per_request_j, rel=0.1
            )
            assert a.p95_ms == pytest.approx(d.p95_ms, rel=0.25)

    def test_des_deterministic_per_graph(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 4)
        cfg = uniform_config(fam, 4, 10, 2)
        e1 = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
            method="des", des_requests=2000, seed=9,
        ).evaluate(cfg)
        e2 = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
            method="des", des_requests=2000, seed=9,
        ).evaluate(cfg)
        assert e1.p95_ms == e2.p95_ms


class TestValidation:
    def test_bad_method_rejected(self, zoo, perf):
        with pytest.raises(ValueError):
            ConfigEvaluator(
                zoo=zoo, perf=perf, family="efficientnet", rate_per_s=1.0,
                n_gpus=1, method="magic",
            )

    def test_bad_rate_rejected(self, zoo, perf):
        with pytest.raises(ValueError):
            ConfigEvaluator(
                zoo=zoo, perf=perf, family="efficientnet", rate_per_s=0.0,
                n_gpus=1,
            )


class TestCacheStats:
    def test_counters_track_hits_and_misses(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 4, 3, 2)
        assert evaluator.cache_stats.evaluations == 0
        evaluator.evaluate(cfg)
        assert (evaluator.cache_hits, evaluator.cache_misses) == (0, 1)
        evaluator.evaluate(cfg)
        assert (evaluator.cache_hits, evaluator.cache_misses) == (1, 1)
        stats = evaluator.cache_stats
        assert stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_defined_before_first_evaluation(self, evaluator):
        assert evaluator.cache_stats.hit_rate == 0.0


class TestRateOverride:
    def test_override_rate_changes_latency(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        nominal = evaluator.evaluate(cfg)
        pushed = evaluator.evaluate(cfg, rate_per_s=1.3 * evaluator.rate_per_s)
        assert pushed.p95_ms > nominal.p95_ms
        assert evaluator.cache_size == 2  # distinct (graph, rate) entries

    def test_same_rate_override_hits_default_entry(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        a = evaluator.evaluate(cfg)
        b = evaluator.evaluate(cfg, rate_per_s=evaluator.rate_per_s)
        assert a is b

    def test_des_override_keeps_common_random_numbers(self, zoo, des_evaluator):
        """A rate override scales the arrival gaps but reuses the per-graph
        stream, so repeated probes at one rate are deterministic."""
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        r = 0.9 * des_evaluator.rate_per_s
        a = des_evaluator.evaluate(cfg, rate_per_s=r)
        b = des_evaluator.evaluate(cfg, rate_per_s=r)
        assert a is b

    def test_invalid_override_rejected(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        with pytest.raises(ValueError, match="rate"):
            evaluator.evaluate(base_config(fam, 4), rate_per_s=0.0)
