"""Configuration evaluator: accuracy/energy/latency and caching."""

import numpy as np
import pytest

from repro.core.config import base_config, co2opt_config, uniform_config
from repro.core.evaluator import ConfigEvaluator
from repro.serving.workload import default_rate


@pytest.fixture()
def evaluator(zoo, perf):
    fam = zoo.family("efficientnet")
    rate = default_rate(fam, perf, 4)
    return ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
        method="analytic",
    )


@pytest.fixture()
def des_evaluator(zoo, perf):
    fam = zoo.family("efficientnet")
    rate = default_rate(fam, perf, 4)
    return ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
        method="des", des_requests=4000, seed=1,
    )


class TestBasics:
    def test_base_config_metrics(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        ev = evaluator.evaluate(base_config(fam, 4))
        assert ev.accuracy == pytest.approx(fam.largest.accuracy)
        assert not ev.overloaded
        assert ev.utilization == pytest.approx(0.65, abs=0.01)
        assert ev.num_instances == 4

    def test_co2opt_uses_less_energy_than_base(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        base = evaluator.evaluate(base_config(fam, 4))
        small = evaluator.evaluate(co2opt_config(fam, 4))
        assert small.energy_per_request_j < 0.4 * base.energy_per_request_j
        assert small.accuracy < base.accuracy

    def test_mixture_accuracy_between_extremes(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        mixed = evaluator.evaluate(uniform_config(fam, 4, 3, 2))
        assert fam.smallest.accuracy <= mixed.accuracy <= fam.largest.accuracy

    def test_power_includes_static_floor(self, zoo, perf, evaluator):
        fam = zoo.family("efficientnet")
        ev = evaluator.evaluate(co2opt_config(fam, 4))
        assert ev.power_watts >= 4 * perf.power.static_watts_per_gpu()

    def test_family_mismatch_rejected(self, zoo, evaluator):
        cfg = base_config(zoo.family("albert"), 4)
        with pytest.raises(ValueError, match="evaluator serves"):
            evaluator.evaluate(cfg)

    def test_gpu_count_mismatch_rejected(self, zoo, evaluator):
        cfg = base_config(zoo.family("efficientnet"), 2)
        with pytest.raises(ValueError, match="sized for"):
            evaluator.evaluate(cfg)


class TestOverload:
    def test_overload_detected(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 10)  # load sized for 10 GPUs ...
        ev = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=2,
            method="analytic",
        ).evaluate(base_config(fam, 2))  # ... on 2 GPUs
        assert ev.overloaded
        assert ev.p95_ms == float("inf")
        assert ev.energy_per_request_j > 0

    def test_des_overload_flag(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 10)
        ev = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=2,
            method="des", des_requests=1000,
        ).evaluate(base_config(fam, 2))
        assert ev.overloaded
        assert ev.p95_ms == float("inf")


class TestCaching:
    def test_cache_hits_by_graph(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        c1 = uniform_config(fam, 4, 3, 2)
        # Same multiset, permuted GPU order -> same graph -> cache hit.
        c2 = c1.canonical()
        evaluator.evaluate(c1)
        n = evaluator.cache_size
        evaluator.evaluate(c2)
        assert evaluator.cache_size == n

    def test_distinct_configs_distinct_entries(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        evaluator.evaluate(uniform_config(fam, 4, 1, 4))
        n = evaluator.cache_size
        evaluator.evaluate(uniform_config(fam, 4, 1, 3))
        assert evaluator.cache_size == n + 1

    def test_cached_result_identical(self, zoo, des_evaluator):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 4, 19, 2)
        a = des_evaluator.evaluate(cfg)
        b = des_evaluator.evaluate(cfg)
        assert a is b


class TestDesVsAnalytic:
    def test_methods_agree_on_structure(self, zoo, evaluator, des_evaluator):
        """Analytic (optimizer) and DES (measurement) must tell the same
        story: close accuracy/energy, p95 within tolerance."""
        fam = zoo.family("efficientnet")
        for cfg in (
            base_config(fam, 4),
            co2opt_config(fam, 4),
            uniform_config(fam, 4, 3, 2),
        ):
            a = evaluator.evaluate(cfg)
            d = des_evaluator.evaluate(cfg)
            assert a.accuracy == pytest.approx(d.accuracy, rel=0.02)
            assert a.energy_per_request_j == pytest.approx(
                d.energy_per_request_j, rel=0.1
            )
            assert a.p95_ms == pytest.approx(d.p95_ms, rel=0.25)

    def test_des_deterministic_per_graph(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 4)
        cfg = uniform_config(fam, 4, 10, 2)
        e1 = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
            method="des", des_requests=2000, seed=9,
        ).evaluate(cfg)
        e2 = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=4,
            method="des", des_requests=2000, seed=9,
        ).evaluate(cfg)
        assert e1.p95_ms == e2.p95_ms


class TestValidation:
    def test_bad_method_rejected(self, zoo, perf):
        with pytest.raises(ValueError):
            ConfigEvaluator(
                zoo=zoo, perf=perf, family="efficientnet", rate_per_s=1.0,
                n_gpus=1, method="magic",
            )

    def test_bad_rate_rejected(self, zoo, perf):
        with pytest.raises(ValueError):
            ConfigEvaluator(
                zoo=zoo, perf=perf, family="efficientnet", rate_per_s=0.0,
                n_gpus=1,
            )


class TestCacheStats:
    def test_counters_track_hits_and_misses(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 4, 3, 2)
        assert evaluator.cache_stats.evaluations == 0
        evaluator.evaluate(cfg)
        assert (evaluator.cache_hits, evaluator.cache_misses) == (0, 1)
        evaluator.evaluate(cfg)
        assert (evaluator.cache_hits, evaluator.cache_misses) == (1, 1)
        stats = evaluator.cache_stats
        assert stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_defined_before_first_evaluation(self, evaluator):
        assert evaluator.cache_stats.hit_rate == 0.0


class TestRateOverride:
    def test_override_rate_changes_latency(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        nominal = evaluator.evaluate(cfg)
        pushed = evaluator.evaluate(cfg, rate_per_s=1.3 * evaluator.rate_per_s)
        assert pushed.p95_ms > nominal.p95_ms
        assert evaluator.cache_size == 2  # distinct (graph, rate) entries

    def test_same_rate_override_hits_default_entry(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        a = evaluator.evaluate(cfg)
        b = evaluator.evaluate(cfg, rate_per_s=evaluator.rate_per_s)
        assert a is b

    def test_des_override_keeps_common_random_numbers(self, zoo, des_evaluator):
        """A rate override scales the arrival gaps but reuses the per-graph
        stream, so repeated probes at one rate are deterministic."""
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        r = 0.9 * des_evaluator.rate_per_s
        a = des_evaluator.evaluate(cfg, rate_per_s=r)
        b = des_evaluator.evaluate(cfg, rate_per_s=r)
        assert a is b

    def test_invalid_override_rejected(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        with pytest.raises(ValueError, match="rate"):
            evaluator.evaluate(base_config(fam, 4), rate_per_s=0.0)


class TestAwakeGpus:
    """Elastic capacity: evaluations capped to the awake GPU subset."""

    def test_trimmed_evaluation_shrinks_cluster(self, zoo, evaluator):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        full = evaluator.evaluate(cfg)
        evaluator.set_awake_gpus(2)
        half = evaluator.evaluate(cfg, rate_per_s=0.25 * evaluator.rate_per_s)
        assert half.num_instances == 2
        assert half.power_watts < full.power_watts  # two static floors gone

    def test_static_power_charged_for_awake_only(self, zoo, perf, evaluator):
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        evaluator.set_awake_gpus(3)
        ev = evaluator.evaluate(cfg, rate_per_s=0.1 * evaluator.rate_per_s)
        static3 = 3 * perf.power.static_watts_per_gpu()
        assert static3 <= ev.power_watts < static3 + perf.power.peak_dynamic_watts

    def test_full_awake_is_identical_to_unset(self, zoo, evaluator):
        """awake == n_gpus must be byte-identical to the always-on path:
        the same cache entry answers both."""
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        baseline = evaluator.evaluate(cfg)
        evaluator.set_awake_gpus(4)
        assert evaluator.evaluate(cfg) is baseline  # cache hit, same key
        evaluator.set_awake_gpus(None)
        assert evaluator.evaluate(cfg) is baseline

    def test_gated_cache_entries_keyed_by_awake_count(self, zoo, evaluator):
        """Gated evaluations live under (graph, rate, awake) keys: the
        same configuration at the same rate under two awake counts yields
        two distinct cache entries with different static draws."""
        fam = zoo.family("efficientnet")
        cfg = base_config(fam, 4)
        rate = 0.1 * evaluator.rate_per_s
        evaluator.set_awake_gpus(2)
        at2 = evaluator.evaluate(cfg, rate_per_s=rate)
        evaluator.set_awake_gpus(3)
        at3 = evaluator.evaluate(cfg, rate_per_s=rate)
        assert evaluator.cache_misses >= 2
        assert at3.power_watts > at2.power_watts
        # Re-asking either count hits its own entry.
        evaluator.set_awake_gpus(2)
        assert evaluator.evaluate(cfg, rate_per_s=rate) is at2

    def test_awake_bounds_validated(self, evaluator):
        with pytest.raises(ValueError, match="awake"):
            evaluator.set_awake_gpus(0)
        with pytest.raises(ValueError, match="awake"):
            evaluator.set_awake_gpus(5)

    def test_graph_evaluation_rejected_while_gated(self, zoo, evaluator):
        from repro.core.graph import ConfigGraph

        fam = zoo.family("efficientnet")
        graph = ConfigGraph.from_config(base_config(fam, 4), fam.num_variants)
        evaluator.set_awake_gpus(2)
        with pytest.raises(ValueError, match="partially-awake"):
            evaluator.evaluate_graph(graph)
        evaluator.set_awake_gpus(None)
        evaluator.evaluate_graph(graph)  # fine again

    def test_trim_keeps_canonically_first_gpus(self, zoo, evaluator):
        """Sleeping gates the canonically-last GPUs — the finest
        partitions — so a mixed config keeps its coarse anchors."""
        from repro.core.config import ClusterConfig, GpuAssignment

        fam = zoo.family("efficientnet")
        coarse = GpuAssignment(partition_id=1, variant_ordinals=(4,))
        fine = GpuAssignment(
            partition_id=19, variant_ordinals=(1,) * 7
        )
        cfg = ClusterConfig(
            family=fam.name, assignments=(fine, coarse, fine, coarse)
        )
        evaluator.set_awake_gpus(2)
        ev = evaluator.evaluate(cfg, rate_per_s=0.1 * evaluator.rate_per_s)
        assert ev.num_instances == 2  # the two coarse 7g GPUs stayed awake


class TestDevicePoolIsolation:
    """Cache-key isolation across device profiles (PR-4 satellite).

    The same configuration graph at the same rate on different silicon is
    a different measurement; the pool component of the cache key is what
    lets a future shared cross-region cache merge evaluator caches
    without ever conflating devices.
    """

    def make(self, zoo, perf, devices):
        from repro.gpu.profiles import DevicePool

        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 2)
        return ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=2,
            method="analytic",
            device_pool=None if devices is None else DevicePool.uniform(devices, 2),
        )

    def test_a100_pool_normalizes_to_seed_keys(self, zoo, perf):
        implicit = self.make(zoo, perf, None)
        explicit = self.make(zoo, perf, "a100")
        assert explicit.device_pool is None
        assert explicit.pool_key is None
        fam = zoo.family("efficientnet")
        a = implicit.evaluate(base_config(fam, 2))
        b = explicit.evaluate(base_config(fam, 2))
        assert a == b
        assert set(implicit._cache) == set(explicit._cache)

    def test_identical_graph_and_rate_never_share_entries_across_pools(
        self, zoo, perf
    ):
        """The satellite's acceptance: A100 vs L4 cache keys are disjoint
        for the identical (graph, rate) query."""
        fam = zoo.family("efficientnet")
        config = base_config(fam, 2)
        rate = default_rate(fam, perf, 2)
        a100 = self.make(zoo, perf, None)
        l4 = self.make(zoo, perf, "l4")
        h100 = self.make(zoo, perf, "h100")
        ev_a, ev_l, ev_h = (
            e.evaluate(config, rate_per_s=rate) for e in (a100, l4, h100)
        )
        keys = [set(e._cache) for e in (a100, l4, h100)]
        assert keys[0].isdisjoint(keys[1])
        assert keys[0].isdisjoint(keys[2])
        assert keys[1].isdisjoint(keys[2])
        # And the measurements genuinely differ: the L4 is slower and
        # leaner, the H100 faster.
        assert ev_l.p95_ms > ev_a.p95_ms > ev_h.p95_ms
        assert ev_l.energy_per_request_j != ev_a.energy_per_request_j

    def test_pool_key_present_in_cached_keys(self, zoo, perf):
        fam = zoo.family("efficientnet")
        l4 = self.make(zoo, perf, "l4")
        l4.evaluate(base_config(fam, 2))
        (key,) = l4._cache
        assert key[-1] == ("l4", "l4")

    def test_mixed_pool_prices_positions(self, zoo, perf):
        """A mixed pool evaluates the canonical realization on canonical
        device order: results differ from both uniform pools."""
        from repro.gpu.profiles import DevicePool

        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, 2)
        mixed = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=2,
            method="analytic", device_pool=DevicePool.of(("a100", "l4")),
        )
        config = base_config(fam, 2)
        ev = mixed.evaluate(config)
        ev_a = self.make(zoo, perf, None).evaluate(config, rate_per_s=rate)
        ev_l = self.make(zoo, perf, "l4").evaluate(config, rate_per_s=rate)
        assert ev.power_watts != ev_a.power_watts
        assert ev.power_watts != ev_l.power_watts
        # Static draw is the sum of both devices' own floors.
        assert ev_a.num_instances == ev.num_instances == 2

    def test_pool_size_mismatch_rejected(self, zoo, perf):
        from repro.gpu.profiles import DevicePool

        fam = zoo.family("efficientnet")
        with pytest.raises(ValueError, match="pool has 2"):
            ConfigEvaluator(
                zoo=zoo, perf=perf, family=fam.name, rate_per_s=10.0, n_gpus=3,
                method="analytic", device_pool=DevicePool.uniform("l4", 2),
            )
