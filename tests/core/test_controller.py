"""Controller epoch accounting and run records."""

import numpy as np
import pytest

from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.monitor import CarbonIntensityMonitor
from repro.core.config import base_config
from repro.core.controller import ServiceController
from repro.core.evaluator import ConfigEvaluator
from repro.core.objective import ObjectiveSpec
from repro.core.schemes import make_scheme
from repro.serving.sla import SlaPolicy
from repro.serving.workload import default_rate
from repro.utils.rng import RngMixer


def flat_trace(ci=200.0, span=48.0):
    return CarbonIntensityTrace(
        times_h=np.array([0.0, span]), values=np.array([ci, ci]), name="flat"
    )


def varying_trace():
    t = np.arange(0.0, 49.0, 1.0)
    v = 200.0 + 100.0 * np.sin(2 * np.pi * t / 24.0)
    return CarbonIntensityTrace(times_h=t, values=v, name="sine")


@pytest.fixture()
def parts(zoo, perf):
    fam = zoo.family("efficientnet")
    n = 2
    rate = default_rate(fam, perf, n)
    opt_eval = ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=n,
        method="analytic",
    )
    measure_eval = ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=n,
        method="des", des_requests=600, seed=5,
    )
    base_ev = measure_eval.evaluate(base_config(fam, n))
    objective = ObjectiveSpec(
        lambda_weight=0.5,
        a_base=fam.base_accuracy,
        c_base=0.0015,
        sla=SlaPolicy(p95_target_ms=base_ev.p95_ms),
    )
    return fam, n, rate, opt_eval, measure_eval, objective


def build_controller(parts, scheme_name, trace, step_s=1800.0):
    fam, n, rate, opt_eval, measure_eval, objective = parts
    scheme = make_scheme(
        scheme_name,
        zoo=opt_eval.zoo,
        family=fam.name,
        n_gpus=n,
        evaluator=opt_eval,
        objective=objective,
        mixer=RngMixer(seed=0),
    )
    return ServiceController(
        scheme=scheme,
        objective=objective,
        monitor=CarbonIntensityMonitor(trace),
        measure_evaluator=measure_eval,
        rate_per_s=rate,
        application="classification",
        step_s=step_s,
    )


class TestEpochAccounting:
    def test_epoch_count(self, parts):
        controller = build_controller(parts, "base", flat_trace())
        result = controller.run(6.0)
        assert len(result.epochs) == 12  # 6 h at 30-minute epochs
        assert result.duration_h == pytest.approx(6.0)

    def test_requests_match_rate(self, parts):
        controller = build_controller(parts, "base", flat_trace())
        result = controller.run(4.0)
        expected = result.rate_per_s * 4 * 3600.0
        assert result.total_requests == pytest.approx(expected, rel=0.01)

    def test_carbon_is_energy_times_intensity(self, parts):
        ci = 250.0
        controller = build_controller(parts, "base", flat_trace(ci))
        result = controller.run(4.0)
        expected = result.total_energy_j / 3.6e6 * 1.5 * ci
        assert result.total_carbon_g == pytest.approx(expected, rel=1e-6)

    def test_base_never_reoptimizes(self, parts):
        controller = build_controller(parts, "base", varying_trace())
        result = controller.run(24.0)
        assert len(result.invocations) == 1  # initial deployment only
        optimized_epochs = [e for e in result.epochs if e.optimized]
        assert len(optimized_epochs) == 1

    def test_clover_reoptimizes_on_intensity_changes(self, parts):
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.run(24.0)
        assert len(result.invocations) > 3
        assert result.total_evaluations > 0

    def test_flat_trace_triggers_once(self, parts):
        controller = build_controller(parts, "clover", flat_trace())
        result = controller.run(12.0)
        assert len(result.invocations) == 1

    def test_accuracy_request_weighted(self, parts, zoo):
        fam = zoo.family("efficientnet")
        controller = build_controller(parts, "base", flat_trace())
        result = controller.run(4.0)
        assert result.mean_accuracy == pytest.approx(fam.base_accuracy, rel=0.01)
        assert result.accuracy_loss_pct == pytest.approx(0.0, abs=0.5)

    def test_optimization_time_accounted(self, parts):
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.run(24.0)
        assert result.total_optimization_s > 0
        assert 0 < result.optimization_fraction < 0.2
        # Each epoch's exploration is capped to 90% of the epoch.
        for e in result.epochs:
            assert e.optimization_s <= 0.9 * e.duration_s + 1e-9

    def test_window_breakdown_covers_run(self, parts):
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.run(24.0)
        windows = result.optimization_fraction_by_window(8.0)
        assert len(windows) == 3
        assert all(w >= 0 for w in windows)

    def test_objective_series_shape(self, parts):
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.run(12.0)
        t, f = result.objective_series()
        assert t.shape == f.shape == (len(result.epochs),)

    def test_invalid_duration(self, parts):
        controller = build_controller(parts, "base", flat_trace())
        with pytest.raises(ValueError):
            controller.run(0.0)

    def test_invalid_step(self, parts):
        with pytest.raises(ValueError):
            build_controller(parts, "base", flat_trace(), step_s=0.0)


class TestInvocationRecords:
    def test_candidates_recorded(self, parts):
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.run(24.0)
        with_evals = [i for i in result.invocations if i.num_evaluations > 0]
        assert with_evals
        inv = with_evals[0]
        assert len(inv.candidates) == inv.num_evaluations
        assert inv.sla_met_count + inv.sla_violated_count == len(inv.candidates)

    def test_candidate_orders_sequential(self, parts):
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.run(12.0)
        for inv in result.invocations:
            assert [c.order for c in inv.candidates] == list(
                range(len(inv.candidates))
            )


class TestCacheReporting:
    def test_run_attaches_evaluator_cache_stats(self, parts):
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.run(12.0)
        assert result.measure_cache is not None
        assert result.measure_cache.evaluations > 0
        assert result.opt_cache is not None
        assert result.opt_cache.misses > 0

    def test_step_api_matches_run(self, parts):
        """Driving epochs by hand reproduces run() exactly (the seam the
        fleet coordinator relies on)."""
        whole = build_controller(parts, "clover", varying_trace()).run(6.0)
        controller = build_controller(parts, "clover", varying_trace())
        result = controller.begin_run()
        for i in range(controller.n_epochs(6.0)):
            controller.step(result, i, i * controller.step_s / 3600.0)
        controller.finalize(result)
        assert result.total_carbon_g == whole.total_carbon_g
        assert result.mean_accuracy == whole.mean_accuracy
        assert len(result.epochs) == len(whole.epochs)

    def test_epoch_records_carry_rate(self, parts):
        controller = build_controller(parts, "base", flat_trace())
        result = controller.run(2.0)
        for e in result.epochs:
            assert e.rate_per_s == controller.rate_per_s

    def test_step_rate_override_scales_requests(self, parts):
        controller = build_controller(parts, "base", flat_trace())
        result = controller.begin_run()
        controller.step(result, 0, 0.0)  # warm-up epoch deploys BASE
        controller.step(result, 1, 0.5, rate_per_s=controller.rate_per_s)
        half = 0.5 * controller.rate_per_s
        controller.step(result, 2, 1.0, rate_per_s=half)
        full_epoch, half_epoch = result.epochs[1], result.epochs[2]
        assert half_epoch.requests == pytest.approx(0.5 * full_epoch.requests)
        assert half_epoch.rate_per_s == half


class TestEpochCapacity:
    """Elastic-capacity accounting through the step API."""

    def test_validation(self):
        from repro.core.controller import EpochCapacity

        with pytest.raises(ValueError):
            EpochCapacity(awake_gpus=0)
        with pytest.raises(ValueError):
            EpochCapacity(awake_gpus=2, serving_gpus_at_start=3)
        with pytest.raises(ValueError):
            EpochCapacity(awake_gpus=2, wake_delay_s=-1.0)
        with pytest.raises(ValueError):
            EpochCapacity(awake_gpus=2, aux_energy_j=-1.0)
        assert EpochCapacity(awake_gpus=2).start_gpus == 2

    def test_gated_epoch_uses_less_energy(self, parts):
        from repro.core.controller import EpochCapacity

        controller = build_controller(parts, "base", flat_trace())
        result = controller.begin_run()
        controller.step(result, 0, 0.0)  # warm-up deploys BASE on 2 GPUs
        full = controller.step(result, 1, 0.5, rate_per_s=None)
        quarter = 0.25 * controller.rate_per_s
        gated = controller.step(
            result, 2, 1.0, rate_per_s=quarter,
            capacity=EpochCapacity(awake_gpus=1, aux_energy_j=100.0),
        )
        assert gated.awake_gpus == 1
        assert gated.num_instances == 1
        assert gated.energy_j < full.energy_j
        assert full.awake_gpus is None

    def test_aux_energy_lands_in_the_record(self, parts):
        from repro.core.controller import EpochCapacity

        controller = build_controller(parts, "base", flat_trace())
        result = controller.begin_run()
        controller.step(result, 0, 0.0)
        rate = 0.25 * controller.rate_per_s
        plain = controller.step(
            result, 1, 0.5, rate_per_s=rate,
            capacity=EpochCapacity(awake_gpus=1),
        )
        charged = controller.step(
            result, 2, 1.0, rate_per_s=rate,
            capacity=EpochCapacity(awake_gpus=1, aux_energy_j=5000.0),
        )
        assert charged.energy_j == pytest.approx(plain.energy_j + 5000.0)
        assert charged.carbon_g > plain.carbon_g

    def test_reactive_wake_window_degrades_the_tail(self, parts):
        """A wake epoch is measured partly at the pre-wake capacity: with
        the full rate landing on half the cluster, the blended p95 must
        sit above the steady post-wake measurement."""
        from repro.core.controller import EpochCapacity

        controller = build_controller(parts, "base", flat_trace())
        result = controller.begin_run()
        controller.step(result, 0, 0.0)
        steady = controller.step(result, 1, 0.5, rate_per_s=None)
        woke = controller.step(
            result, 2, 1.0, rate_per_s=controller.rate_per_s,
            capacity=EpochCapacity(
                awake_gpus=2, serving_gpus_at_start=1, wake_delay_s=300.0,
            ),
        )
        assert woke.awake_gpus == 2
        assert woke.p95_ms > steady.p95_ms

    def test_capacity_cleared_between_steps(self, parts):
        """An ungated step after a gated one must be indistinguishable
        from the seed loop (the awake cap must not leak)."""
        from repro.core.controller import EpochCapacity

        gated_then_plain = build_controller(parts, "base", flat_trace())
        result = gated_then_plain.begin_run()
        gated_then_plain.step(result, 0, 0.0)
        gated_then_plain.step(
            result, 1, 0.5, rate_per_s=0.25 * gated_then_plain.rate_per_s,
            capacity=EpochCapacity(awake_gpus=1),
        )
        after = gated_then_plain.step(result, 2, 1.0, rate_per_s=None)

        plain = build_controller(parts, "base", flat_trace())
        ref_result = plain.begin_run()
        plain.step(ref_result, 0, 0.0)
        plain.step(ref_result, 1, 0.5, rate_per_s=None)
        reference = plain.step(ref_result, 2, 1.0, rate_per_s=None)
        assert after.p95_ms == reference.p95_ms
        assert after.energy_j == reference.energy_j
