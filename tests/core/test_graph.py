"""Configuration graph: GED metric axioms, compaction, additivity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ClusterConfig, GpuAssignment, uniform_config
from repro.core.graph import ConfigGraph, graph_edit_distance

weights_st = st.lists(
    st.lists(st.integers(min_value=0, max_value=5), min_size=5, max_size=5),
    min_size=4,
    max_size=4,
).map(lambda w: np.array(w, dtype=np.int64))


def graph(w):
    return ConfigGraph(family="efficientnet", weights=np.asarray(w))


class TestConstruction:
    def test_from_config_counts_instances(self, zoo):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 2, 3, 2)  # 2 GPUs of {4g,2g,1g}, all B3
        g = ConfigGraph.from_config(cfg, fam.num_variants)
        assert g.total_instances == 6
        # Variant 2 on slice types 4g (3), 2g (1), 1g (0): two each.
        assert g.weights[1, 3] == 2
        assert g.weights[1, 1] == 2
        assert g.weights[1, 0] == 2

    def test_compaction_placement_irrelevant(self, zoo):
        """The paper's key claim: different physical placements of the same
        variant-on-slice-type multiset give the same graph."""
        fam = zoo.family("efficientnet")
        a1 = GpuAssignment(partition_id=3, variant_ordinals=(4, 2, 1))
        a2 = GpuAssignment(partition_id=1, variant_ordinals=(3,))
        c1 = ClusterConfig(family=fam.name, assignments=(a1, a2))
        c2 = ClusterConfig(family=fam.name, assignments=(a2, a1))
        g1 = ConfigGraph.from_config(c1, fam.num_variants)
        g2 = ConfigGraph.from_config(c2, fam.num_variants)
        assert g1 == g2
        assert hash(g1) == hash(g2)

    def test_ordinal_beyond_family_raises(self, zoo):
        fam = zoo.family("yolov5")
        cfg = uniform_config(zoo.family("efficientnet"), 1, 1, 4)
        with pytest.raises(ValueError, match="only 3 variants"):
            ConfigGraph.from_config(cfg, fam.num_variants)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            graph(-np.ones((4, 5), dtype=np.int64))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            ConfigGraph(family="f", weights=np.zeros((4, 4), dtype=np.int64))

    def test_weights_readonly(self):
        g = graph(np.zeros((4, 5), dtype=np.int64))
        with pytest.raises(ValueError):
            g.weights[0, 0] = 1


class TestGedMetricAxioms:
    @given(weights_st)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, w):
        assert graph(w).ged(graph(w)) == 0

    @given(weights_st, weights_st)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, w1, w2):
        assert graph(w1).ged(graph(w2)) == graph(w2).ged(graph(w1))

    @given(weights_st, weights_st, weights_st)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, w1, w2, w3):
        a, b, c = graph(w1), graph(w2), graph(w3)
        assert a.ged(c) <= a.ged(b) + b.ged(c)

    @given(weights_st, weights_st)
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_and_discriminating(self, w1, w2):
        d = graph(w1).ged(graph(w2))
        assert d >= 0
        assert (d == 0) == np.array_equal(w1, w2)


class TestPaperGedArithmetic:
    def test_variant_swap_costs_two(self, zoo):
        """'swapping the model variant of one service instance incurs two
        GED'."""
        fam = zoo.family("efficientnet")
        c1 = uniform_config(fam, 1, 1, 4)
        c2 = uniform_config(fam, 1, 1, 3)
        g1 = ConfigGraph.from_config(c1, fam.num_variants)
        g2 = ConfigGraph.from_config(c2, fam.num_variants)
        assert g1.ged(g2) == 2

    def test_slice_switch_costs_two(self):
        """'switching a model copy to ... a different MIG slice type also
        incurs two GED'."""
        w1 = np.zeros((4, 5), dtype=np.int64)
        w2 = np.zeros((4, 5), dtype=np.int64)
        w1[0, 0] = 1  # variant 1 on 1g
        w2[0, 1] = 1  # variant 1 on 2g
        assert graph(w1).ged(graph(w2)) == 2

    def test_is_neighbor_threshold(self):
        w = np.zeros((4, 5), dtype=np.int64)
        w[0, 0] = 3
        g0 = graph(w)
        w2 = w.copy()
        w2[0, 0] = 1
        w2[1, 0] = 2
        assert g0.ged(graph(w2)) == 4
        assert g0.is_neighbor(graph(w2))
        w3 = w.copy()
        w3[0, 0] = 0
        w3[1, 1] = 3
        assert g0.ged(graph(w3)) == 6
        assert not g0.is_neighbor(graph(w3))

    def test_self_is_not_a_neighbor(self):
        g = graph(np.ones((4, 5), dtype=np.int64))
        assert not g.is_neighbor(g)


class TestAdditivity:
    @given(weights_st, weights_st)
    @settings(max_examples=50, deadline=None)
    def test_add_then_subtract_round_trips(self, w1, w2):
        """The paper's additivity property: adding GPUs adds edge weights;
        removing them subtracts."""
        a, b = graph(w1), graph(w2)
        assert (a + b) - b == a

    def test_add_matches_config_union(self, zoo):
        fam = zoo.family("efficientnet")
        c1 = uniform_config(fam, 2, 19, 1)
        c2 = uniform_config(fam, 3, 1, 4)
        g1 = ConfigGraph.from_config(c1, fam.num_variants)
        g2 = ConfigGraph.from_config(c2, fam.num_variants)
        union = ClusterConfig(
            family=fam.name, assignments=c1.assignments + c2.assignments
        )
        assert g1 + g2 == ConfigGraph.from_config(union, fam.num_variants)

    def test_subtract_below_zero_raises(self):
        small = graph(np.zeros((4, 5), dtype=np.int64))
        big = graph(np.ones((4, 5), dtype=np.int64))
        with pytest.raises(ValueError):
            small - big

    def test_family_mismatch_raises(self):
        a = ConfigGraph(family="x", weights=np.zeros((4, 5), dtype=np.int64))
        b = ConfigGraph(family="y", weights=np.zeros((4, 5), dtype=np.int64))
        with pytest.raises(ValueError):
            a.ged(b)


class TestViews:
    def test_histograms(self):
        w = np.zeros((4, 5), dtype=np.int64)
        w[0, 0] = 2
        w[3, 4] = 1
        g = graph(w)
        assert g.slice_histogram().tolist() == [2, 0, 0, 0, 1]
        assert g.variant_counts().tolist() == [2, 0, 0, 1]
        assert g.total_instances == 3

    def test_respects_memory(self, zoo):
        mask = zoo.memory_mask("albert")
        w = np.zeros((4, 5), dtype=np.int64)
        w[3, 0] = 1  # xxlarge on 1g: disabled edge
        g = ConfigGraph(family="albert", weights=w)
        assert not g.respects_memory(mask)
        w2 = np.zeros((4, 5), dtype=np.int64)
        w2[3, 1] = 1  # xxlarge on 2g: fine
        assert ConfigGraph(family="albert", weights=w2).respects_memory(mask)

    def test_key_distinguishes_graphs(self):
        w1 = np.zeros((4, 5), dtype=np.int64)
        w2 = w1.copy()
        w2[0, 0] = 1
        assert graph(w1).key() != graph(w2).key()

    def test_to_networkx_round_trip(self):
        w = np.zeros((4, 5), dtype=np.int64)
        w[0, 2] = 3
        w[2, 0] = 1
        nxg = graph(w).to_networkx()
        assert nxg.number_of_nodes() == 9  # 4 variants + 5 slices
        assert nxg["V1"]["3g"]["weight"] == 3
        assert nxg["V3"]["1g"]["weight"] == 1
        assert nxg.number_of_edges() == 2

    def test_module_level_alias(self):
        g = graph(np.zeros((4, 5), dtype=np.int64))
        assert graph_edit_distance(g, g) == 0
