"""Pod-based multi-application hosting."""

import pytest

from repro.core.pods import FleetReport, MultiApplicationService, PodSpec


@pytest.fixture(scope="module")
def small_fleet():
    return MultiApplicationService.create(
        pod_specs=(
            PodSpec("classification", n_gpus=2),
            PodSpec("language", n_gpus=2),
        ),
        scheme="clover",
        fidelity="smoke",
        seed=0,
    )


class TestCreate:
    def test_default_fleet_is_three_pods(self):
        fleet = MultiApplicationService.create(fidelity="smoke", seed=0)
        assert set(fleet.pods) == {"detection", "language", "classification"}

    def test_duplicate_application_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultiApplicationService.create(
                pod_specs=(PodSpec("language"), PodSpec("language")),
                fidelity="smoke",
            )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            MultiApplicationService.create(pod_specs=(), fidelity="smoke")
        with pytest.raises(ValueError):
            MultiApplicationService({})

    def test_pod_spec_validation(self):
        with pytest.raises(ValueError):
            PodSpec("language", n_gpus=0)


class TestRun:
    def test_fleet_report_aggregates(self, small_fleet):
        report = small_fleet.run(duration_h=6.0)
        assert set(report.per_pod) == {"classification", "language"}
        assert report.total_gpus == 4
        assert report.total_requests > 0
        assert report.total_carbon_g == pytest.approx(
            sum(r.total_carbon_g for r in report.per_pod.values())
        )

    def test_mean_accuracy_loss_is_per_model_average(self, small_fleet):
        report = small_fleet.run(duration_h=6.0)
        losses = [r.accuracy_loss_pct for r in report.per_pod.values()]
        assert report.mean_accuracy_loss_pct == pytest.approx(
            sum(losses) / len(losses)
        )

    def test_fleet_savings_vs_base_fleet(self):
        """The paper's aggregate claim at fleet level: Clover pods save big
        carbon against BASE pods on the identical workload."""
        kwargs = dict(
            pod_specs=(
                PodSpec("classification", n_gpus=2),
                PodSpec("language", n_gpus=2),
            ),
            fidelity="smoke",
            seed=0,
        )
        base = MultiApplicationService.create(scheme="base", **kwargs).run(
            duration_h=24.0
        )
        clover = MultiApplicationService.create(scheme="clover", **kwargs).run(
            duration_h=24.0
        )
        assert clover.carbon_saving_pct(base) > 40.0
        assert clover.mean_carbon_saving_pct(base) > 40.0

    def test_mean_saving_requires_matching_pods(self, small_fleet):
        report = small_fleet.run(duration_h=4.0)
        other = FleetReport(per_pod={"detection": next(iter(report.per_pod.values()))})
        with pytest.raises(KeyError):
            report.mean_carbon_saving_pct(other)

    def test_saving_requires_nonzero_baseline(self, small_fleet):
        report = small_fleet.run(duration_h=4.0)
        with pytest.raises(ValueError):
            report.carbon_saving_pct(FleetReport())
