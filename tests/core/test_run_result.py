"""RunResult aggregate properties on synthetic epoch records."""

import numpy as np
import pytest

from repro.core.controller import EpochRecord, RunResult


def make_epoch(
    index=0, t_h=0.0, requests=100.0, carbon_g=10.0, energy_j=1000.0,
    accuracy=80.0, p95_ms=30.0, sla_met=True, optimization_s=0.0,
    duration_s=600.0, f=20.0,
):
    return EpochRecord(
        index=index, t_h=t_h, duration_s=duration_s, ci=200.0,
        config_label="(1,)", num_instances=1, requests=requests,
        energy_j=energy_j, carbon_g=carbon_g, accuracy=accuracy,
        p95_ms=p95_ms, sla_met=sla_met, f_objective=f,
        delta_accuracy_pct=0.0, delta_carbon_pct=0.0, optimized=False,
        optimization_s=optimization_s, num_evaluations=0,
    )


def make_result(epochs):
    return RunResult(
        scheme_name="test", family="efficientnet", application="classification",
        n_gpus=1, rate_per_s=10.0, sla_target_ms=40.0, lambda_weight=0.5,
        a_base=84.3, c_base=0.002, trace_name="t", epochs=epochs,
    )


class TestAggregates:
    def test_totals_are_sums(self):
        r = make_result([make_epoch(carbon_g=5.0), make_epoch(carbon_g=7.0)])
        assert r.total_carbon_g == 12.0
        assert r.total_requests == 200.0
        assert r.carbon_g_per_request == pytest.approx(0.06)

    def test_mean_accuracy_is_request_weighted(self):
        r = make_result(
            [
                make_epoch(requests=300.0, accuracy=90.0),
                make_epoch(requests=100.0, accuracy=70.0),
            ]
        )
        assert r.mean_accuracy == pytest.approx(85.0)

    def test_accuracy_loss_sign(self):
        r = make_result([make_epoch(accuracy=84.3)])
        assert r.accuracy_loss_pct == pytest.approx(0.0)
        r2 = make_result([make_epoch(accuracy=80.0)])
        assert r2.accuracy_loss_pct > 0

    def test_p95_skips_infinite_epochs(self):
        r = make_result(
            [
                make_epoch(p95_ms=30.0),
                make_epoch(p95_ms=float("inf"), sla_met=False),
            ]
        )
        assert r.p95_ms == pytest.approx(30.0)
        assert r.worst_p95_ms == float("inf")

    def test_p95_all_overloaded_is_infinite(self):
        r = make_result([make_epoch(p95_ms=float("inf"), sla_met=False)])
        assert r.p95_ms == float("inf")

    def test_sla_violation_fraction_is_request_weighted(self):
        r = make_result(
            [
                make_epoch(requests=300.0, sla_met=True),
                make_epoch(requests=100.0, sla_met=False),
            ]
        )
        assert r.sla_violation_fraction == pytest.approx(0.25)

    def test_optimization_fraction(self):
        r = make_result(
            [
                make_epoch(optimization_s=60.0),
                make_epoch(optimization_s=0.0),
            ]
        )
        assert r.optimization_fraction == pytest.approx(60.0 / 1200.0)

    def test_window_breakdown_buckets_by_hour(self):
        epochs = [
            make_epoch(index=i, t_h=float(i), optimization_s=36.0 * (i < 8),
                       duration_s=3600.0)
            for i in range(16)
        ]
        r = make_result(epochs)
        windows = r.optimization_fraction_by_window(8.0)
        assert len(windows) == 2
        assert windows[0] == pytest.approx(0.01)
        assert windows[1] == 0.0

    def test_window_validation(self):
        r = make_result([make_epoch()])
        with pytest.raises(ValueError):
            r.optimization_fraction_by_window(0.0)

    def test_series_shapes(self):
        r = make_result([make_epoch(index=i, t_h=float(i)) for i in range(5)])
        t, f = r.objective_series()
        tc, c = r.carbon_series()
        assert t.shape == f.shape == tc.shape == c.shape == (5,)
        assert np.all(np.diff(t) > 0)
