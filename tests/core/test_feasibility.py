"""Graph-space feasibility and realization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import uniform_config
from repro.core.feasibility import graph_is_feasible, realize_graph
from repro.core.graph import ConfigGraph
from repro.core.moves import MoveGenerator


class TestGraphFeasibility:
    def test_config_graphs_are_feasible(self, zoo):
        fam = zoo.family("efficientnet")
        for pid in (1, 3, 10, 19):
            cfg = uniform_config(fam, 3, pid, 1)
            g = ConfigGraph.from_config(cfg, fam.num_variants)
            assert graph_is_feasible(g, 3, zoo.memory_mask(fam.name))

    def test_wrong_gpu_count_infeasible(self, zoo):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 3, 19, 1)
        g = ConfigGraph.from_config(cfg, fam.num_variants)
        assert not graph_is_feasible(g, 2)
        assert not graph_is_feasible(g, 4)

    def test_memory_mask_vetoes(self, zoo):
        w = np.zeros((4, 5), dtype=np.int64)
        w[3, 0] = 1  # albert-xxlarge on 1g
        w[0, 0] = 6
        g = ConfigGraph(family="albert", weights=w)
        assert not graph_is_feasible(g, 1, zoo.memory_mask("albert"))
        assert graph_is_feasible(g, 1)  # without the mask it decomposes


class TestRealizeGraph:
    def test_round_trip_preserves_graph(self, zoo):
        """realize(graph(config)) must map back to the identical graph."""
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 2, 10, 2)
        g = ConfigGraph.from_config(cfg, fam.num_variants)
        realized = realize_graph(g, 2)
        g2 = ConfigGraph.from_config(realized, fam.num_variants)
        assert g == g2

    def test_realization_is_deterministic(self, zoo):
        fam = zoo.family("efficientnet")
        cfg = uniform_config(fam, 3, 3, 1)
        g = ConfigGraph.from_config(cfg, fam.num_variants)
        assert realize_graph(g, 3) == realize_graph(g, 3)

    def test_unrealizable_graph_raises(self, zoo):
        fam = zoo.family("efficientnet")
        w = np.zeros((fam.num_variants, 5), dtype=np.int64)
        w[0, 4] = 3  # three 7g slices on two GPUs
        g = ConfigGraph(family=fam.name, weights=w)
        with pytest.raises(ValueError, match="not.*realizable|realizable"):
            realize_graph(g, 2)

    @given(seed=st.integers(0, 500), n_gpus=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_random_config_graphs_round_trip(self, zoo, seed, n_gpus):
        """Property: any raw-space config's graph realizes back to a config
        with the identical graph (the two representations are consistent)."""
        moves = MoveGenerator(zoo=zoo, family="efficientnet")
        cfg = moves.random_config(n_gpus, rng=seed)
        fam = zoo.family("efficientnet")
        g = ConfigGraph.from_config(cfg, fam.num_variants)
        realized = realize_graph(g, n_gpus)
        assert ConfigGraph.from_config(realized, fam.num_variants) == g
        realized.validate_against(zoo)
