"""Simulated annealing and random search: paper-pinned behaviour."""

import numpy as np
import pytest

from repro.core.annealing import (
    OptimizationCostModel,
    SAParams,
    random_search,
    simulated_annealing,
)
from repro.core.config import base_config, co2opt_config
from repro.core.evaluator import ConfigEvaluator
from repro.core.graph import ConfigGraph
from repro.core.moves import MoveGenerator
from repro.core.objective import ObjectiveSpec
from repro.serving.sla import SlaPolicy
from repro.serving.workload import default_rate


@pytest.fixture()
def setup(zoo, perf):
    fam = zoo.family("efficientnet")
    n_gpus = 3
    rate = default_rate(fam, perf, n_gpus)
    evaluator = ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=n_gpus,
        method="analytic",
    )
    base_eval = evaluator.evaluate(base_config(fam, n_gpus))
    objective = ObjectiveSpec(
        lambda_weight=0.5,
        a_base=fam.base_accuracy,
        c_base=0.002,
        sla=SlaPolicy(p95_target_ms=base_eval.p95_ms),
    )
    moves = MoveGenerator(zoo=zoo, family=fam.name)
    return fam, n_gpus, evaluator, objective, moves


class TestSAParams:
    def test_paper_schedule(self):
        p = SAParams()
        assert p.t_initial == 1.0
        assert p.cooling == 0.05
        assert p.t_min == 0.1
        assert p.no_improve_limit == 5
        assert p.time_budget_s == 300.0

    def test_temperature_cools_and_floors(self):
        p = SAParams()
        assert p.temperature(0) == 1.0
        assert p.temperature(10) == pytest.approx(0.5)
        assert p.temperature(18) == pytest.approx(0.1)
        assert p.temperature(100) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SAParams(t_min=2.0)
        with pytest.raises(ValueError):
            SAParams(no_improve_limit=0)
        with pytest.raises(ValueError):
            SAParams(time_budget_s=0.0)


class TestCostModel:
    def test_cold_start_cost(self, zoo):
        fam = zoo.family("efficientnet")
        cm = OptimizationCostModel()
        cfg = co2opt_config(fam, 2)  # 14 instances
        cost = cm.reconfiguration_s(None, cfg, ged=0)
        assert cost == pytest.approx(cm.repartition_s + 14 * cm.model_load_s)

    def test_identical_config_costs_nothing_to_reconfigure(self, zoo):
        fam = zoo.family("efficientnet")
        cm = OptimizationCostModel()
        cfg = base_config(fam, 2)
        assert cm.reconfiguration_s(cfg, cfg, ged=0) == 0.0

    def test_variant_swap_costs_one_reload(self, zoo):
        fam = zoo.family("efficientnet")
        cm = OptimizationCostModel()
        a = base_config(fam, 2)
        b = a.with_assignment(0, a.assignments[0].__class__(
            partition_id=1, variant_ordinals=(3,)
        ))
        assert cm.reconfiguration_s(a, b, ged=2) == pytest.approx(
            cm.model_load_s
        )

    def test_partition_change_adds_repartition(self, zoo):
        fam = zoo.family("efficientnet")
        cm = OptimizationCostModel()
        a = base_config(fam, 2)
        from repro.core.config import GpuAssignment

        b = a.with_assignment(
            0, GpuAssignment(partition_id=2, variant_ordinals=(4, 3))
        )
        cost = cm.reconfiguration_s(a, b, ged=3)
        assert cost == pytest.approx(cm.repartition_s + 1.5 * cm.model_load_s)

    def test_evaluation_adds_measure_window(self, zoo):
        fam = zoo.family("efficientnet")
        cm = OptimizationCostModel()
        cfg = base_config(fam, 1)
        assert cm.evaluation_s(cfg, cfg, 0) == pytest.approx(cm.measure_window_s)


class TestSimulatedAnnealing:
    def test_improves_over_base(self, setup):
        fam, n, evaluator, objective, moves = setup
        result = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=0,
        )
        first = result.evaluated[0]
        assert result.best_any.sa_energy <= first.sa_energy
        assert result.best_deployable is not None
        # The deployable best must beat BASE's objective at this ci.
        assert result.best_deployable.value.f > first.value.f

    def test_respects_sla_in_deployable(self, setup):
        fam, n, evaluator, objective, moves = setup
        result = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=1,
        )
        assert result.best_deployable.value.sla_met

    def test_terminates_on_no_improve(self, setup):
        fam, n, evaluator, objective, moves = setup
        params = SAParams(no_improve_limit=3, time_budget_s=1e9, max_evals=10_000)
        result = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=2, params=params,
        )
        assert result.termination in ("converged", "no_neighbors")

    def test_time_budget_enforced(self, setup):
        fam, n, evaluator, objective, moves = setup
        params = SAParams(no_improve_limit=10_000, time_budget_s=30.0)
        result = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=3, params=params,
        )
        # One evaluation may straddle the boundary; never two.
        assert result.elapsed_virtual_s < 30.0 + 60.0
        assert result.termination == "time_budget"

    def test_max_evals_enforced(self, setup):
        fam, n, evaluator, objective, moves = setup
        params = SAParams(
            no_improve_limit=10_000, time_budget_s=1e9, max_evals=7
        )
        result = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=4, params=params,
        )
        assert result.num_evaluations == 7
        assert result.termination == "max_evals"

    def test_reproducible(self, setup):
        fam, n, evaluator, objective, moves = setup
        r1 = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=5,
        )
        r2 = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=5,
        )
        assert r1.best_any.value.f == r2.best_any.value.f
        assert r1.num_evaluations == r2.num_evaluations

    def test_consecutive_evals_are_neighbors_cost_wise(self, setup, zoo):
        """Every explored candidate is one GED <= 4 step from the centre;
        consecutive *deployments* are therefore at most 2 x 4 GED apart
        (candidate -> centre -> next candidate), bounding per-eval cost."""
        fam, n, evaluator, objective, moves = setup
        result = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=6,
        )
        cm = OptimizationCostModel()
        worst = cm.repartition_s + cm.model_load_s * 4 + cm.measure_window_s
        for cand in result.evaluated[1:]:
            assert cand.virtual_cost_s <= worst + 1e-9


class TestRandomSearch:
    def test_finds_deployable_from_warm_start(self, setup):
        fam, n, evaluator, objective, moves = setup
        result = random_search(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=0,
        )
        assert result.best_deployable is not None

    def test_costs_more_per_eval_than_sa(self, setup):
        """The raw-space proposals reconfigure whole GPUs, so Blover's
        per-evaluation cost exceeds Clover's — the Fig. 12a mechanism."""
        fam, n, evaluator, objective, moves = setup
        sa = simulated_annealing(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=1,
        )
        rs = random_search(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=1,
        )
        sa_cost = sa.elapsed_virtual_s / sa.num_evaluations
        rs_cost = rs.elapsed_virtual_s / rs.num_evaluations
        assert rs_cost > 1.5 * sa_cost

    def test_same_termination_rule(self, setup):
        fam, n, evaluator, objective, moves = setup
        params = SAParams(no_improve_limit=4)
        result = random_search(
            base_config(fam, n), evaluator, objective, ci=250.0,
            moves=moves, rng=2, params=params,
        )
        assert result.termination in ("converged", "time_budget")
