"""Eqs. 1-3, 6, 7 — including the paper's Fig. 6 worked example."""

import math

import pytest

from repro.core.objective import ObjectiveSpec
from repro.serving.sla import SlaPolicy


def spec(**overrides):
    defaults = dict(
        lambda_weight=0.5,
        a_base=84.3,
        c_base=0.002,
        sla=SlaPolicy(p95_target_ms=40.0),
        pue=1.5,
    )
    defaults.update(overrides)
    return ObjectiveSpec(**defaults)


class TestEq1DeltaAccuracy:
    def test_base_accuracy_gives_zero(self):
        assert spec().delta_accuracy(84.3) == 0.0

    def test_loss_is_negative_percent(self):
        s = spec(a_base=100.0)
        assert s.delta_accuracy(96.0) == pytest.approx(-4.0)


class TestEq2DeltaCarbon:
    def test_zero_energy_gives_full_reduction(self):
        assert spec().delta_carbon(0.0, 200.0) == pytest.approx(100.0)

    def test_linear_in_ci(self):
        s = spec()
        d1 = s.delta_carbon(10.0, 100.0)
        d2 = s.delta_carbon(10.0, 200.0)
        # 100 - dC is proportional to ci.
        assert (100.0 - d2) == pytest.approx(2 * (100.0 - d1))

    def test_can_go_negative_above_baseline(self):
        s = spec(c_base=1e-6)
        assert s.delta_carbon(100.0, 500.0) < 0

    def test_invalid_ci_raises(self):
        with pytest.raises(ValueError):
            spec().delta_carbon(1.0, 0.0)


class TestFig6WorkedExample:
    """The paper's Fig. 6, reproduced to the digit (lambda=0.1,
    C_base=1000, PUE 1): config A (E=0.4, dAcc=-4), B (E=1.2, dAcc=-2)."""

    def setup_method(self):
        self.spec = ObjectiveSpec(
            lambda_weight=0.1,
            a_base=100.0,
            c_base=1000.0,
            sla=SlaPolicy(p95_target_ms=1.0),
            pue=1.0,
        )
        self.kwh = 3.6e6  # 1 abstract E unit = 1 kWh

    def test_config_a_at_ci_500(self):
        f = self.spec.f(96.0, 0.4 * self.kwh, 500.0)
        assert f == pytest.approx(4.4)

    def test_config_b_at_ci_500(self):
        # Eq. 3 gives 2.2; the paper's printed 3.2 is inconsistent with its
        # own formula (documented discrepancy).
        f = self.spec.f(98.0, 1.2 * self.kwh, 500.0)
        assert f == pytest.approx(2.2)

    def test_config_a_at_ci_100(self):
        assert self.spec.f(96.0, 0.4 * self.kwh, 100.0) == pytest.approx(6.0)

    def test_config_b_at_ci_100(self):
        assert self.spec.f(98.0, 1.2 * self.kwh, 100.0) == pytest.approx(7.0)

    def test_preference_flips_with_intensity(self):
        """High ci -> prefer the frugal config A; low ci -> the accurate B."""
        f = self.spec.f
        assert f(96.0, 0.4 * self.kwh, 500.0) > f(98.0, 1.2 * self.kwh, 500.0)
        assert f(98.0, 1.2 * self.kwh, 100.0) > f(96.0, 0.4 * self.kwh, 100.0)


class TestEq6SaEnergy:
    def test_energy_is_negated_f_when_sla_met(self):
        s = spec()
        v = s.score(accuracy=84.3, energy_per_request_j=0.0, p95_ms=30.0, ci=200.0)
        assert v.sa_energy == pytest.approx(-v.f)
        assert v.sla_met and v.deployable

    def test_violation_scales_energy_smoothly(self):
        s = spec()
        met = s.score(84.3, 0.0, p95_ms=40.0, ci=200.0)
        violated = s.score(84.3, 0.0, p95_ms=80.0, ci=200.0)
        assert violated.sa_energy == pytest.approx(-violated.f * 0.5)
        assert violated.sa_energy > met.sa_energy  # worse (SA minimizes)
        assert not violated.sla_met

    def test_infinite_latency_zeroes_energy(self):
        v = spec().score(84.3, 0.0, p95_ms=float("inf"), ci=200.0)
        assert v.sa_energy == 0.0
        assert not v.deployable


class TestAccuracyFloor:
    def test_floor_marks_nondeployable(self):
        s = spec(a_base=100.0, accuracy_floor_pct=1.0)
        ok = s.score(99.5, 0.0, 30.0, 200.0)
        bad = s.score(98.0, 0.0, 30.0, 200.0)
        assert ok.accuracy_ok and ok.deployable
        assert not bad.accuracy_ok and not bad.deployable

    def test_floor_penalizes_energy(self):
        s = spec(a_base=100.0, accuracy_floor_pct=1.0)
        at_floor = s.score(99.0, 0.0, 30.0, 200.0)
        below = s.score(95.0, 0.0, 30.0, 200.0)
        # Below the floor the energy is pulled toward zero (less attractive
        # than the same f with no violation would be).
        assert below.sa_energy > -below.f * 1.0001

        assert at_floor.accuracy_ok

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            spec(accuracy_floor_pct=-1.0)


class TestEq7Acceptance:
    def test_improvement_always_accepted(self):
        assert ObjectiveSpec.acceptance_probability(-5.0, -6.0, 1.0) == 1.0

    def test_equal_energy_accepted(self):
        assert ObjectiveSpec.acceptance_probability(-5.0, -5.0, 0.5) == 1.0

    def test_worse_follows_boltzmann(self):
        p = ObjectiveSpec.acceptance_probability(-5.0, -4.0, 0.5)
        assert p == pytest.approx(math.exp(-1.0 / 0.5))

    def test_colder_is_stricter(self):
        warm = ObjectiveSpec.acceptance_probability(-5.0, -4.0, 1.0)
        cold = ObjectiveSpec.acceptance_probability(-5.0, -4.0, 0.1)
        assert cold < warm

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            ObjectiveSpec.acceptance_probability(0.0, 1.0, 0.0)


class TestValidation:
    @pytest.mark.parametrize("lam", [-0.1, 1.1])
    def test_lambda_bounds(self, lam):
        with pytest.raises(ValueError):
            spec(lambda_weight=lam)

    def test_positive_bases_required(self):
        with pytest.raises(ValueError):
            spec(a_base=0.0)
        with pytest.raises(ValueError):
            spec(c_base=0.0)
