"""Per-profile wake energies (ROADMAP "hetero-aware pre-wake economics")."""

import pytest

from repro.fleet import FleetCoordinator, GatingPolicy, region_by_name
from repro.fleet.regional import RegionalService
from repro.gpu.profiles import (
    A100_PROFILE,
    DEVICE_PROFILES,
    DeviceProfile,
    DevicePool,
    H100_PROFILE,
    L4_PROFILE,
)


class TestProfileDefaults:
    def test_ordering_tracks_repaged_memory(self):
        """The satellite's calibration: H100 > A100 > L4."""
        assert (
            H100_PROFILE.wake_energy_j
            > A100_PROFILE.wake_energy_j
            > L4_PROFILE.wake_energy_j
        )

    def test_a100_default_is_the_seed_scalar(self):
        """The pre-per-profile gating default (2 kJ) was the A100 figure;
        homogeneous fleets must keep charging exactly it."""
        assert A100_PROFILE.wake_energy_j == 2000.0

    @pytest.mark.parametrize("name", sorted(DEVICE_PROFILES))
    def test_every_default_fits_its_static_ceiling(self, name):
        """Every profile's wake energy must fit under its own static draw
        over the default 60 s wake window, or the gated-never-out-spends
        invariant could not hold per device."""
        profile = DEVICE_PROFILES[name]
        ceiling = (
            profile.power.static_watts_per_gpu() * GatingPolicy().wake_latency_s
        )
        assert profile.wake_energy_j <= ceiling

    def test_negative_wake_energy_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DeviceProfile(
                name="bad",
                spec=A100_PROFILE.spec,
                power=A100_PROFILE.power,
                wake_energy_j=-1.0,
            )

    def test_pool_exposes_canonical_wake_energies(self):
        pool = DevicePool.of(("a100", "l4"))
        assert pool.wake_energies_j() == (
            L4_PROFILE.wake_energy_j,
            A100_PROFILE.wake_energy_j,
        )


class TestRegionalWakeEnergy:
    def _service(self, devices=None, n_gpus=2):
        return RegionalService.create(
            region=region_by_name("us-ciso", n_gpus=n_gpus, devices=devices),
            scheme="base",
            fidelity="smoke",
        )

    def test_implicit_fleet_matches_a100_defaults(self):
        svc = self._service()
        assert svc.device_wake_energies_j() == (2000.0, 2000.0)
        assert svc.wake_transition_energy_j(0, 2) == 4000.0

    def test_mixed_pool_charges_each_device_its_own(self):
        svc = self._service(devices=("a100", "l4"))
        # Pool-canonical order: the L4 (most efficient) comes first.
        assert svc.device_wake_energies_j() == (800.0, 2000.0)
        assert svc.wake_transition_energy_j(1, 2) == 2000.0  # the A100
        assert svc.wake_transition_energy_j(0, 1) == 800.0  # the L4

    def test_scalar_override_wins(self):
        svc = self._service(devices=("a100", "l4"))
        assert svc.wake_transition_energy_j(0, 2, override_j=500.0) == 1000.0

    def test_range_validated(self):
        svc = self._service()
        with pytest.raises(ValueError, match="wake range"):
            svc.wake_transition_energy_j(1, 3)


class TestGatedFleetUsesProfileDefaults:
    def _gated(self, wake_energy_j=None, seed=11):
        gating = GatingPolicy(
            target_utilization=0.75,
            wake_energy_j=wake_energy_j,
        )
        return FleetCoordinator.create(
            [
                region_by_name("us-ciso", n_gpus=2),
                region_by_name("nordic-hydro", n_gpus=2),
            ],
            scheme="base",
            router="carbon-greedy",
            fidelity="smoke",
            seed=seed,
            demand="diurnal",
            ramp_share_per_h=0.2,
            drain_share_per_h=0.3,
            gating=gating,
        ).run(duration_h=12.0)

    def test_default_none_equals_explicit_a100_scalar(self):
        """Regression: an all-A100 gated fleet charges exactly what the
        pre-per-profile scalar default charged."""
        profile_defaults = self._gated(wake_energy_j=None)
        explicit_scalar = self._gated(wake_energy_j=2000.0)
        assert (
            profile_defaults.total_energy_j == explicit_scalar.total_energy_j
        )
        assert (
            profile_defaults.total_carbon_g == explicit_scalar.total_carbon_g
        )

    def test_tighter_scalar_lowers_energy_when_wakes_happen(self):
        """The wake-energy knob is live: with any wakes recorded, halving
        the per-wake energy cannot raise total energy."""
        default = self._gated(wake_energy_j=2000.0)
        cheap = self._gated(wake_energy_j=1000.0)
        assert cheap.total_energy_j <= default.total_energy_j
