"""MIG slice-type table: the A100 geometry the whole system builds on."""

import pytest

from repro.gpu.slices import (
    COMPUTE_SLOTS_PER_GPU,
    MEMORY_GB_PER_SLICE,
    MEMORY_SLICES_PER_GPU,
    SLICE_NAME_TO_INDEX,
    SLICE_TYPES,
    slice_by_name,
)


class TestSliceTable:
    def test_five_slice_types(self):
        assert len(SLICE_TYPES) == 5

    def test_names_in_size_order(self):
        assert [s.name for s in SLICE_TYPES] == ["1g", "2g", "3g", "4g", "7g"]

    def test_indices_are_dense(self):
        assert [s.index for s in SLICE_TYPES] == [0, 1, 2, 3, 4]

    def test_compute_slots_match_g_number(self):
        for s in SLICE_TYPES:
            assert s.compute_slots == int(s.name[:-1])

    def test_3g_has_asymmetric_memory(self):
        # 3g takes 4 of the 8 memory slices for 3 of the 7 compute slots —
        # the quirk that limits 3g+3g layouts on a real A100.
        s = slice_by_name("3g")
        assert s.memory_slices == 4

    def test_7g_owns_the_whole_gpu(self):
        s = slice_by_name("7g")
        assert s.compute_slots == COMPUTE_SLOTS_PER_GPU
        assert s.memory_slices == MEMORY_SLICES_PER_GPU

    def test_memory_gb(self):
        assert slice_by_name("1g").memory_gb == pytest.approx(MEMORY_GB_PER_SLICE)
        assert slice_by_name("7g").memory_gb == pytest.approx(40.0)

    def test_compute_fraction_sums(self):
        assert slice_by_name("7g").compute_fraction == pytest.approx(1.0)
        assert slice_by_name("1g").compute_fraction == pytest.approx(1 / 7)


class TestLookup:
    def test_round_trip(self):
        for s in SLICE_TYPES:
            assert slice_by_name(s.name) is s

    def test_name_to_index(self):
        assert SLICE_NAME_TO_INDEX["3g"] == 2

    def test_unknown_name_raises_with_valid_options(self):
        with pytest.raises(KeyError, match="valid"):
            slice_by_name("5g")

    def test_ordering_is_by_compute(self):
        assert sorted(SLICE_TYPES) == list(SLICE_TYPES)
