"""Device profiles: registry, pool canonicalization, granularity."""

import pytest

from repro.gpu.cluster import GpuCluster
from repro.gpu.device import A100_40GB
from repro.gpu.partitions import FINEST_PARTITION_ID, NUM_PARTITIONS
from repro.gpu.power import PowerModel
from repro.gpu.profiles import (
    A100_PROFILE,
    DEVICE_NAMES,
    DevicePool,
    DeviceProfile,
    H100_PROFILE,
    L4_PROFILE,
    parse_devices,
    profile_by_name,
)
from repro.models.perf import PerfModel
from repro.models.zoo import default_zoo


class TestRegistry:
    def test_names(self):
        assert DEVICE_NAMES == ("a100", "h100", "l4")

    def test_lookup_is_case_insensitive(self):
        assert profile_by_name("A100") is A100_PROFILE
        assert profile_by_name("l4") is L4_PROFILE

    def test_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="a100, h100, l4"):
            profile_by_name("v100")

    def test_a100_profile_is_the_seed_hardware(self):
        """The A100 profile must reproduce the pre-heterogeneity model
        exactly: seed spec, default power model, unit throughput."""
        assert A100_PROFILE.spec is A100_40GB
        assert A100_PROFILE.power == PowerModel()
        assert A100_PROFILE.throughput_scale == 1.0
        assert A100_PROFILE.partition_granularity == NUM_PARTITIONS

    def test_l4_has_no_mig(self):
        assert not L4_PROFILE.mig_capable
        assert L4_PROFILE.partition_granularity == 1
        assert H100_PROFILE.mig_capable

    def test_efficiency_ordering(self):
        """The calibrated story: L4 < H100 < A100 joules per request."""
        zoo, perf = default_zoo(), PerfModel()
        fam = zoo.for_application("classification")
        energies = {
            name: profile_by_name(name).reference_energy_per_request_j(
                perf, fam.largest
            )
            for name in DEVICE_NAMES
        }
        assert energies["l4"] < energies["h100"] < energies["a100"]

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError, match="throughput scale"):
            DeviceProfile(
                name="x", spec=A100_40GB, power=PowerModel(), throughput_scale=0.0
            )
        with pytest.raises(ValueError, match="granularity"):
            DeviceProfile(
                name="x", spec=A100_40GB, power=PowerModel(),
                partition_granularity=NUM_PARTITIONS + 1,
            )


class TestPerfScaling:
    def test_a100_perf_is_bit_for_bit_base(self):
        base = PerfModel()
        scaled = A100_PROFILE.perf(base)
        zoo = default_zoo()
        v = zoo.for_application("classification").largest
        from repro.gpu.slices import SLICE_TYPES

        for s in SLICE_TYPES:
            assert scaled.latency_ms(v, s) == base.latency_ms(v, s)
            assert scaled.busy_watts(v, s) == base.busy_watts(v, s)

    def test_h100_is_faster_l4_slower(self):
        base = PerfModel()
        zoo = default_zoo()
        v = zoo.for_application("classification").largest
        from repro.gpu.slices import slice_by_name

        full = slice_by_name("7g")
        tau = base.latency_ms(v, full)
        assert H100_PROFILE.perf(base).latency_ms(v, full) == pytest.approx(
            tau / 1.9
        )
        assert L4_PROFILE.perf(base).latency_ms(v, full) == pytest.approx(
            tau / 0.4
        )

    def test_slowdown_is_device_invariant(self):
        base = PerfModel()
        zoo = default_zoo()
        fam = zoo.for_application("classification")
        from repro.gpu.slices import slice_by_name

        one_g = slice_by_name("1g")
        v = fam.smallest
        assert H100_PROFILE.perf(base).slowdown(v, one_g) == pytest.approx(
            base.slowdown(v, one_g)
        )


class TestDevicePool:
    def test_canonical_order_is_most_efficient_first(self):
        pool = DevicePool.of(("a100", "l4", "h100"))
        assert pool.names == ("l4", "h100", "a100")

    def test_uniform_and_default_detection(self):
        assert DevicePool.uniform("a100", 3).is_default_a100
        assert DevicePool.uniform("l4", 2).is_uniform
        assert not DevicePool.uniform("l4", 2).is_default_a100
        assert not DevicePool.of(("a100", "l4")).is_uniform

    def test_granularity_is_the_pool_minimum(self):
        assert DevicePool.uniform("a100", 2).partition_granularity == NUM_PARTITIONS
        assert DevicePool.of(("a100", "l4")).partition_granularity == 1

    def test_throughput_scale_sum(self):
        pool = DevicePool.of(("a100", "l4", "l4"))
        assert pool.throughput_scale_sum == pytest.approx(1.8)

    def test_counts_and_describe(self):
        pool = DevicePool.of(("l4", "a100", "l4"))
        assert pool.counts() == {"a100": 1, "l4": 2}
        assert pool.describe() == "1xa100+2xl4"

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one GPU"):
            DevicePool(profiles=())


class TestDeviceGranularityEnforcement:
    def test_l4_device_rejects_mig_repartition(self):
        dev = L4_PROFILE.make_device(0)
        with pytest.raises(ValueError, match="supports MIG partitions up to"):
            dev.repartition(FINEST_PARTITION_ID)
        assert dev.repartition(1) == 0.0  # same partition stays free

    def test_a100_device_unrestricted(self):
        dev = A100_PROFILE.make_device(0)
        assert dev.repartition(FINEST_PARTITION_ID) > 0.0

    def test_cluster_from_pool(self):
        pool = DevicePool.of(("a100", "l4"))
        cluster = GpuCluster(n_gpus=2, pool=pool)
        assert [d.spec.name for d in cluster.devices] == ["L4-24GB", "A100-40GB"]
        assert "1xa100+1xl4" in cluster.describe()
        with pytest.raises(ValueError, match="supports MIG"):
            cluster.apply_partitions([FINEST_PARTITION_ID, 1])

    def test_cluster_pool_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="pool has 2"):
            GpuCluster(n_gpus=3, pool=DevicePool.of(("a100", "l4")))


class TestParseDevices:
    def test_forms(self):
        assert parse_devices("a100") == ("a100",)
        assert parse_devices("a100,l4") == ("a100", "l4")
        assert parse_devices("a100:2,l4:2") == ("a100", "a100", "l4", "l4")
        assert parse_devices("H100:1") == ("h100",)

    def test_bad_specs_rejected(self):
        with pytest.raises(KeyError, match="unknown device"):
            parse_devices("v100")
        with pytest.raises(ValueError, match="count"):
            parse_devices("a100:zero")
        with pytest.raises(ValueError, match="positive"):
            parse_devices("a100:0")
        with pytest.raises(ValueError, match="no device names"):
            parse_devices(" , ")
