"""The 19 MIG partition configurations (paper Fig. 1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gpu.partitions import (
    ALL_PARTITION_HISTOGRAMS,
    FINEST_PARTITION_ID,
    FULL_GPU_PARTITION_ID,
    MIG_PARTITIONS,
    NUM_PARTITIONS,
    partition_by_id,
    partition_histogram,
    placement_feasible,
)
from repro.gpu.slices import SLICE_TYPES, slice_by_name


class TestTableStructure:
    def test_exactly_19_configurations(self):
        assert NUM_PARTITIONS == 19

    def test_config_ids_are_1_to_19(self):
        assert [p.config_id for p in MIG_PARTITIONS] == list(range(1, 20))

    def test_paper_anchor_1_is_full_gpu(self):
        p = partition_by_id(FULL_GPU_PARTITION_ID)
        assert [s.name for s in p.slices] == ["7g"]

    def test_paper_anchor_3_is_4g_2g_1g(self):
        # "C2 partitions the GPU into {4g, 2g, 1g}" (Fig. 3).
        p = partition_by_id(3)
        assert sorted(s.name for s in p.slices) == ["1g", "2g", "4g"]

    def test_paper_anchor_10_is_3g_2g_1g_1g(self):
        # "configuration number 10 ... partitions GPU into {1g, 1g, 2g, 3g}".
        p = partition_by_id(10)
        assert sorted(s.name for s in p.slices) == ["1g", "1g", "2g", "3g"]

    def test_paper_anchor_19_is_seven_1g(self):
        p = partition_by_id(FINEST_PARTITION_ID)
        assert [s.name for s in p.slices] == ["1g"] * 7

    def test_every_entry_is_placement_feasible(self):
        for p in MIG_PARTITIONS:
            assert placement_feasible(p.slices), p

    def test_all_entries_distinct_as_multisets(self):
        seen = {tuple(sorted(s.name for s in p.slices)) for p in MIG_PARTITIONS}
        assert len(seen) == 19

    def test_slices_ordered_largest_first(self):
        for p in MIG_PARTITIONS:
            slots = [s.compute_slots for s in p.slices]
            assert slots == sorted(slots, reverse=True), p

    def test_instance_count_bounds(self):
        for p in MIG_PARTITIONS:
            assert 1 <= p.num_instances <= 7

    def test_resource_budgets_respected(self):
        for p in MIG_PARTITIONS:
            assert p.compute_slots_used <= 7
            assert p.memory_slices_used <= 8


class TestExhaustiveness:
    def test_table_contains_every_placeable_multiset_it_should(self):
        """Brute-force all slice multisets; each placeable one whose
        further extension is impossible must map to a table entry or be a
        sub-multiset of one (the canonical 19 are NVIDIA's profiles;
        placeable sub-multisets are transient states, not configurations)."""
        names = ["1g", "2g", "3g", "4g", "7g"]
        table = {tuple(sorted(s.name for s in p.slices)) for p in MIG_PARTITIONS}
        # All multisets up to 7 slices.
        for r in range(1, 8):
            for combo in itertools.combinations_with_replacement(names, r):
                slices = tuple(slice_by_name(n) for n in combo)
                if not placement_feasible(slices):
                    assert tuple(sorted(combo)) not in table
    def test_maximal_placeable_multisets_are_all_in_table(self):
        names = ["1g", "2g", "3g", "4g", "7g"]
        table = {tuple(sorted(s.name for s in p.slices)) for p in MIG_PARTITIONS}
        for r in range(1, 8):
            for combo in itertools.combinations_with_replacement(names, r):
                slices = tuple(slice_by_name(n) for n in combo)
                if not placement_feasible(slices):
                    continue
                # Maximal: no single extra slice can be added.
                extendable = any(
                    placement_feasible(slices + (slice_by_name(n),))
                    for n in names
                )
                if not extendable:
                    assert tuple(sorted(combo)) in table, combo


class TestPlacementRules:
    def test_7g_must_be_alone(self):
        assert not placement_feasible(
            (slice_by_name("7g"), slice_by_name("1g"))
        )

    def test_two_4g_do_not_fit(self):
        assert not placement_feasible((slice_by_name("4g"),) * 2)

    def test_4g_plus_3g_fits(self):
        assert placement_feasible((slice_by_name("4g"), slice_by_name("3g")))

    def test_4g_plus_two_3g_does_not_fit(self):
        assert not placement_feasible(
            (slice_by_name("4g"), slice_by_name("3g"), slice_by_name("3g"))
        )

    def test_two_3g_plus_1g_blocked_by_memory(self):
        # 3g+3g consumes all 8 memory slices: no room for 1g's memory.
        assert not placement_feasible(
            (slice_by_name("3g"), slice_by_name("3g"), slice_by_name("1g"))
        )

    def test_three_2g_plus_one_1g_fits(self):
        # Config 13 in the table.
        assert placement_feasible(
            (slice_by_name("2g"),) * 3 + (slice_by_name("1g"),)
        )

    def test_four_2g_does_not_fit(self):
        # Only three aligned 2g starts exist (slots 0, 2, 4).
        assert not placement_feasible((slice_by_name("2g"),) * 4)

    def test_3g_2g_2g_fits(self):
        # Config 9: 3g right half, two 2g pairs in the left half.
        assert placement_feasible(
            (slice_by_name("3g"), slice_by_name("2g"), slice_by_name("2g"))
        )


class TestHistograms:
    def test_histogram_matrix_shape(self):
        assert ALL_PARTITION_HISTOGRAMS.shape == (19, 5)

    def test_histogram_matches_slices(self):
        for p in MIG_PARTITIONS:
            h = partition_histogram(p.config_id)
            assert h.sum() == p.num_instances
            for s in SLICE_TYPES:
                assert h[s.index] == sum(1 for x in p.slices if x is s)

    def test_histogram_matrix_readonly(self):
        with pytest.raises(ValueError):
            ALL_PARTITION_HISTOGRAMS[0, 0] = 5

    def test_partition_histogram_returns_copy(self):
        h = partition_histogram(1)
        h[0] = 99
        assert partition_histogram(1)[0] == 0


class TestLookupValidation:
    @pytest.mark.parametrize("bad_id", [0, 20, -3, 100])
    def test_out_of_range_ids_raise(self, bad_id):
        with pytest.raises(ValueError, match="config id"):
            partition_by_id(bad_id)

    @given(st.integers(min_value=1, max_value=19))
    def test_lookup_round_trip(self, config_id):
        assert partition_by_id(config_id).config_id == config_id

    def test_str_shows_id_and_slices(self):
        assert str(partition_by_id(3)) == "#3:{4g, 2g, 1g}"
