"""Node power model: static floor plus slice-proportional dynamic draw."""

import pytest

from repro.gpu.power import PowerModel
from repro.gpu.slices import slice_by_name


class TestPowerModel:
    def test_tdp_is_idle_plus_peak(self):
        pm = PowerModel(idle_watts=20.0, peak_dynamic_watts=360.0)
        assert pm.tdp_watts == pytest.approx(380.0)

    def test_static_includes_host_share(self):
        pm = PowerModel(idle_watts=20.0, host_watts_per_gpu=15.0)
        assert pm.static_watts_per_gpu() == pytest.approx(35.0)

    def test_slice_dynamic_scales_with_compute_fraction(self):
        pm = PowerModel()
        full = pm.slice_dynamic_watts(slice_by_name("7g"), intensity=1.0)
        small = pm.slice_dynamic_watts(slice_by_name("1g"), intensity=1.0)
        assert small == pytest.approx(full / 7)

    def test_intensity_scales_linearly(self):
        pm = PowerModel()
        s = slice_by_name("3g")
        assert pm.slice_dynamic_watts(s, 0.5) == pytest.approx(
            0.5 * pm.slice_dynamic_watts(s, 1.0)
        )

    @pytest.mark.parametrize("bad", [-0.5, 1.5])
    def test_intensity_out_of_range_raises(self, bad):
        with pytest.raises(ValueError):
            PowerModel().slice_dynamic_watts(slice_by_name("1g"), bad)

    def test_zero_intensity_is_legal_and_free(self):
        """Regression: a fully memory-bound model (intensity 0) used to
        raise instead of contributing 0 W of dynamic power."""
        assert PowerModel().slice_dynamic_watts(slice_by_name("3g"), 0.0) == 0.0

    def test_zero_utilization_slice_contributes_nothing(self):
        """Regression: a hosted-but-idle slice used to have its dynamic
        term evaluated anyway, so utilization 0 with intensity 0 raised."""
        pm = PowerModel()
        p = pm.gpu_power([(slice_by_name("7g"), 0.0, 0.0)])
        assert p == pytest.approx(pm.static_watts_per_gpu())

    def test_gpu_power_sums_busy_slices(self):
        pm = PowerModel()
        s1, s2 = slice_by_name("4g"), slice_by_name("2g")
        p = pm.gpu_power([(s1, 0.5, 1.0), (s2, 1.0, 0.8)])
        expected = (
            pm.static_watts_per_gpu()
            + 0.5 * pm.slice_dynamic_watts(s1, 1.0)
            + 1.0 * pm.slice_dynamic_watts(s2, 0.8)
        )
        assert p == pytest.approx(expected)

    def test_idle_gpu_draws_static_only(self):
        pm = PowerModel()
        assert pm.gpu_power([]) == pytest.approx(pm.static_watts_per_gpu())

    def test_gpu_power_rejects_bad_utilization(self):
        pm = PowerModel()
        with pytest.raises(ValueError):
            pm.gpu_power([(slice_by_name("1g"), 1.2, 1.0)])

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=-1.0)
        with pytest.raises(ValueError):
            PowerModel(peak_dynamic_watts=0.0)
        with pytest.raises(ValueError):
            PowerModel(host_watts_per_gpu=-5.0)

    def test_zero_idle_watts_is_legal(self):
        """Regression: the old "power parameters must be positive" check
        was wrong for ``idle_watts`` — an ideally-gated board may idle at
        exactly zero."""
        pm = PowerModel(idle_watts=0.0, sleep_watts=0.0)
        assert pm.static_watts_per_gpu() == pytest.approx(pm.host_watts_per_gpu)

    def test_idle_error_message_names_the_field(self):
        with pytest.raises(ValueError, match="idle power must be non-negative"):
            PowerModel(idle_watts=-1.0)


class TestSleepState:
    def test_sleep_draw_below_static(self):
        pm = PowerModel()
        assert 0.0 <= pm.sleep_watts_per_gpu() < pm.static_watts_per_gpu()

    def test_sleep_above_static_rejected(self):
        with pytest.raises(ValueError, match="sleep"):
            PowerModel(idle_watts=10.0, host_watts_per_gpu=5.0, sleep_watts=20.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError, match="sleep"):
            PowerModel(sleep_watts=-1.0)
