"""GPU device state and reconfiguration costs."""

import pytest

from repro.gpu.device import A100_40GB, GpuDevice, GpuSpec


class TestGpuSpec:
    def test_a100_constants(self):
        assert A100_40GB.memory_gb == 40.0
        assert A100_40GB.peak_tflops > 0

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ValueError):
            GpuSpec(name="bad", peak_tflops=0.0, memory_gb=40.0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            GpuSpec(
                name="bad", peak_tflops=1.0, memory_gb=1.0,
                repartition_seconds=-1.0,
            )


class TestGpuDevice:
    def test_starts_unpartitioned(self):
        dev = GpuDevice(gpu_id=0)
        assert dev.partition_id == 1
        assert dev.num_instances == 1
        assert [s.name for s in dev.slices] == ["7g"]

    def test_invalid_initial_partition_raises(self):
        with pytest.raises(ValueError):
            GpuDevice(gpu_id=0, partition_id=42)

    def test_repartition_changes_state_and_costs_time(self):
        dev = GpuDevice(gpu_id=0)
        downtime = dev.repartition(19)
        assert dev.partition_id == 19
        assert dev.num_instances == 7
        # MIG reconfig plus one model load per new slice.
        expected = A100_40GB.repartition_seconds + 7 * A100_40GB.model_load_seconds
        assert downtime == pytest.approx(expected)

    def test_repartition_to_same_config_is_free(self):
        dev = GpuDevice(gpu_id=0, partition_id=3)
        assert dev.repartition(3) == 0.0
        assert dev.reconfig_count == 0

    def test_reconfig_count_increments(self):
        dev = GpuDevice(gpu_id=0)
        dev.repartition(3)
        dev.repartition(19)
        dev.repartition(19)  # no-op
        assert dev.reconfig_count == 2

    def test_reload_models_cost(self):
        dev = GpuDevice(gpu_id=0, partition_id=3)  # 3 slices
        assert dev.reload_models(2) == pytest.approx(
            2 * A100_40GB.model_load_seconds
        )

    def test_reload_models_bounds(self):
        dev = GpuDevice(gpu_id=0, partition_id=3)
        with pytest.raises(ValueError):
            dev.reload_models(4)
        with pytest.raises(ValueError):
            dev.reload_models(-1)
