"""Cluster aggregation and slice-histogram decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.cluster import (
    GpuCluster,
    decompose_histogram,
    histogram_is_feasible,
    max_slices,
    min_slices,
)
from repro.gpu.partitions import ALL_PARTITION_HISTOGRAMS, partition_by_id


class TestDecompose:
    def test_single_gpu_identities(self):
        for pid in range(1, 20):
            h = ALL_PARTITION_HISTOGRAMS[pid - 1]
            result = decompose_histogram(h, 1)
            assert result is not None
            assert partition_by_id(result[0]).histogram().tolist() == h.tolist()

    def test_two_gpu_mixed(self):
        # One full GPU + seven 1g slices = configs 1 and 19.
        h = [7, 0, 0, 0, 1]
        result = decompose_histogram(h, 2)
        assert result is not None
        assert sorted(result) == [1, 19]

    def test_infeasible_when_too_many_slices(self):
        assert decompose_histogram([15, 0, 0, 0, 0], 2) is None

    def test_infeasible_when_too_few_slices(self):
        # 3 GPUs need at least 3 slices.
        assert decompose_histogram([0, 0, 0, 0, 2], 3) is None

    def test_zero_gpus_needs_empty_histogram(self):
        assert decompose_histogram([0, 0, 0, 0, 0], 0) == ()
        assert decompose_histogram([1, 0, 0, 0, 0], 0) is None

    def test_returned_ids_are_non_increasing(self):
        # Configs 1 + 3 + 19: {7g} + {4g,2g,1g} + {1g x 7}.
        result = decompose_histogram([8, 1, 0, 1, 1], 3)
        assert result is not None
        assert list(result) == sorted(result, reverse=True)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            decompose_histogram([-1, 0, 0, 0, 0], 1)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            decompose_histogram([1, 2, 3], 1)

    def test_rejects_negative_gpu_count(self):
        with pytest.raises(ValueError):
            decompose_histogram([0, 0, 0, 0, 0], -1)

    @given(
        ids=st.lists(st.integers(min_value=1, max_value=19), min_size=1, max_size=6)
    )
    @settings(max_examples=60, deadline=None)
    def test_sum_of_partitions_always_decomposes(self, ids):
        """Soundness+completeness on constructed instances: any histogram
        built as a sum of n partition histograms decomposes back into n
        partitions whose histograms sum to it."""
        h = np.zeros(5, dtype=np.int64)
        for pid in ids:
            h += ALL_PARTITION_HISTOGRAMS[pid - 1]
        result = decompose_histogram(h, len(ids))
        assert result is not None
        total = np.zeros(5, dtype=np.int64)
        for pid in result:
            total += ALL_PARTITION_HISTOGRAMS[pid - 1]
        assert np.array_equal(total, h)

    def test_feasibility_wrapper(self):
        assert histogram_is_feasible([7, 0, 0, 0, 0], 1)
        assert not histogram_is_feasible([7, 0, 0, 0, 0], 2)

    def test_slice_count_bounds(self):
        assert max_slices(10) == 70
        assert min_slices(10) == 10


class TestGpuCluster:
    def test_initial_state_unpartitioned(self):
        c = GpuCluster(n_gpus=4)
        assert c.partition_ids == (1, 1, 1, 1)
        assert c.total_instances == 4
        assert c.histogram().tolist() == [0, 0, 0, 0, 4]

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            GpuCluster(n_gpus=0)

    def test_apply_partitions_parallel_downtime(self):
        c = GpuCluster(n_gpus=2)
        downtime = c.apply_partitions([19, 1])
        # GPU 0 repartitions (expensive); GPU 1 stays (free); max applies.
        assert downtime > 0
        assert c.partition_ids == (19, 1)

    def test_apply_partitions_wrong_length(self):
        c = GpuCluster(n_gpus=2)
        with pytest.raises(ValueError):
            c.apply_partitions([1])

    def test_apply_partitions_is_atomic_on_invalid_id(self):
        """Regression: an invalid id midway used to raise only after the
        earlier GPUs had already repartitioned, leaving the cluster in a
        half-applied state."""
        c = GpuCluster(n_gpus=3)
        before = c.partition_ids
        with pytest.raises(Exception):
            c.apply_partitions([19, 99, 3])  # 99 is not a MIG config id
        assert c.partition_ids == before
        assert all(d.reconfig_count == 0 for d in c.devices)

    def test_slice_inventory_matches_histogram(self):
        c = GpuCluster(n_gpus=3)
        c.apply_partitions([1, 3, 19])
        inv = c.slice_inventory()
        assert len(inv) == c.total_instances == 1 + 3 + 7
        h = c.histogram()
        assert h.sum() == len(inv)

    def test_describe_mentions_spec_and_partitions(self):
        c = GpuCluster(n_gpus=1)
        text = c.describe()
        assert "A100" in text and "#1" in text


class TestAwakeMasks:
    def test_initially_all_awake(self):
        c = GpuCluster(n_gpus=3)
        assert c.awake_mask == (True, True, True)
        assert c.n_awake == 3

    def test_sleeping_shrinks_histogram_and_instances(self):
        c = GpuCluster(n_gpus=3)
        c.apply_partitions([1, 3, 19])
        c.set_awake_count(2)  # gates the highest gpu_id (config 19, 7x1g)
        assert c.awake_mask == (True, True, False)
        assert c.awake_instances == 1 + 3
        assert c.awake_histogram().sum() == 4
        assert c.histogram().sum() == 11  # the full inventory is untouched

    def test_awake_histogram_feasible_on_awake_count(self):
        c = GpuCluster(n_gpus=4)
        c.apply_partitions([1, 1, 3, 19])
        for k in (1, 2, 3, 4):
            c.set_awake_count(k)
            assert histogram_is_feasible(c.awake_histogram(), c.n_awake)

    def test_wake_pays_downtime_sleep_is_free(self):
        c = GpuCluster(n_gpus=2)
        assert c.set_awake_count(1) == 0.0  # sleeping costs nothing
        downtime = c.set_awake_count(2)  # waking reloads models
        assert downtime > 0.0
        assert c.devices[1].wake_count == 1

    def test_awake_count_bounds(self):
        c = GpuCluster(n_gpus=2)
        with pytest.raises(ValueError):
            c.set_awake_count(0)
        with pytest.raises(ValueError):
            c.set_awake_count(3)
