"""Model zoo registry and memory masks."""

import numpy as np
import pytest

from repro.models.families import EFFICIENTNET, ModelFamily
from repro.models.variants import ModelVariant
from repro.models.zoo import ModelZoo, default_zoo


class TestDefaultZoo:
    def test_contains_three_families(self, zoo):
        assert len(zoo.families) == 3

    def test_lookup_by_name(self, zoo):
        assert zoo.family("efficientnet") is EFFICIENTNET

    def test_lookup_by_application(self, zoo):
        assert zoo.for_application("Classification") is EFFICIENTNET

    def test_unknown_family_raises(self, zoo):
        with pytest.raises(KeyError, match="valid"):
            zoo.family("resnet")

    def test_unknown_application_raises(self, zoo):
        with pytest.raises(KeyError, match="valid"):
            zoo.for_application("speech")

    def test_variant_resolution(self, zoo):
        assert zoo.variant("albert", 4).name == "ALBERT-v2-xxlarge"


class TestMemoryMask:
    def test_shape(self, zoo):
        mask = zoo.memory_mask("albert")
        assert mask.shape == (4, 5)

    def test_oom_edges_disabled(self, zoo):
        mask = zoo.memory_mask("albert")
        # ALBERT-xxlarge (ordinal 4) does not fit 1g (index 0).
        assert not mask[3, 0]
        assert mask[3, 1]

    def test_full_gpu_column_all_true(self, zoo):
        for fam in zoo.families:
            mask = zoo.memory_mask(fam.name)
            assert np.all(mask[:, 4])

    def test_mask_is_readonly(self, zoo):
        mask = zoo.memory_mask("yolov5")
        with pytest.raises(ValueError):
            mask[0, 0] = False

    def test_feasible_variants_consistent_with_mask(self, zoo):
        for fam in zoo.families:
            mask = zoo.memory_mask(fam.name)
            for s in range(5):
                feas = zoo.feasible_variants(fam.name, s)
                assert feas == tuple(
                    v + 1 for v in range(fam.num_variants) if mask[v, s]
                )


class TestRegistration:
    def _family(self, name="custom", application="custom-app"):
        v = ModelVariant(
            ordinal=1, name="c1", family=name,
            params_millions=1.0, gflops=1.0, accuracy=70.0, memory_gb=1.0,
            fixed_latency_ms=1.0, compute_latency_ms=2.0,
            saturation=0.2, power_intensity=0.4,
        )
        return ModelFamily(
            name=name, application=application, dataset="d",
            architecture="arch", metric="acc", variants=(v,),
        )

    def test_register_custom_family(self):
        zoo = ModelZoo()
        zoo.register(self._family())
        assert zoo.family("custom").application == "custom-app"

    def test_duplicate_name_rejected(self):
        zoo = ModelZoo()
        zoo.register(self._family())
        with pytest.raises(ValueError, match="already registered"):
            zoo.register(self._family())

    def test_duplicate_application_rejected(self):
        zoo = ModelZoo()
        zoo.register(self._family(name="a"))
        with pytest.raises(ValueError, match="already served"):
            zoo.register(self._family(name="b"))

    def test_default_zoo_instances_are_independent(self):
        z1, z2 = default_zoo(), default_zoo()
        z1.register(self._family())
        with pytest.raises(KeyError):
            z2.family("custom")
