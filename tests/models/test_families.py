"""The Table-1 families: structure, published numbers, OOM edges."""

import pytest

from repro.gpu.slices import slice_by_name
from repro.models.families import (
    ALBERT,
    ALL_FAMILIES,
    APPLICATIONS,
    EFFICIENTNET,
    ModelFamily,
    YOLOV5,
    family_for_application,
)
from repro.models.variants import ModelVariant


class TestTable1Contents:
    def test_three_families(self):
        assert len(ALL_FAMILIES) == 3

    def test_yolo_variants_match_table1(self):
        assert [v.name for v in YOLOV5.variants] == [
            "YOLOv5l", "YOLOv5x", "YOLOv5x6",
        ]

    def test_albert_variants_match_table1(self):
        assert [v.name for v in ALBERT.variants] == [
            "ALBERT-v2-base", "ALBERT-v2-large",
            "ALBERT-v2-xlarge", "ALBERT-v2-xxlarge",
        ]

    def test_efficientnet_variants_match_table1(self):
        assert [v.name for v in EFFICIENTNET.variants] == [
            "EfficientNet-B1", "EfficientNet-B3",
            "EfficientNet-B5", "EfficientNet-B7",
        ]

    def test_applications_cover_paper(self):
        assert set(APPLICATIONS) == {"detection", "language", "classification"}

    def test_accuracy_increases_with_ordinal(self):
        for fam in ALL_FAMILIES:
            accs = [v.accuracy for v in fam.variants]
            assert accs == sorted(accs)
            assert accs[0] < accs[-1]

    def test_params_increase_with_ordinal(self):
        for fam in ALL_FAMILIES:
            params = [v.params_millions for v in fam.variants]
            assert params == sorted(params)

    def test_big_models_saturate_more(self):
        for fam in ALL_FAMILIES:
            sats = [v.saturation for v in fam.variants]
            assert sats == sorted(sats)

    def test_oom_edges_exist(self):
        """YOLOv5x6 and ALBERT-xxlarge must not fit a 1g slice —
        exercising the paper's OOM edge-disabling rule."""
        one_g = slice_by_name("1g")
        assert not YOLOV5.by_name("YOLOv5x6").fits(one_g)
        assert not ALBERT.by_name("ALBERT-v2-xxlarge").fits(one_g)

    def test_smallest_variant_always_fits_1g(self):
        one_g = slice_by_name("1g")
        for fam in ALL_FAMILIES:
            assert fam.smallest.fits(one_g)

    def test_every_variant_fits_a_full_gpu(self):
        full = slice_by_name("7g")
        for fam in ALL_FAMILIES:
            for v in fam.variants:
                assert v.fits(full)


class TestFamilyApi:
    def test_base_accuracy_is_largest_variant(self):
        assert EFFICIENTNET.base_accuracy == EFFICIENTNET.largest.accuracy

    def test_variant_lookup_by_ordinal(self):
        assert EFFICIENTNET.variant(2).name == "EfficientNet-B3"

    def test_bad_ordinal_raises(self):
        with pytest.raises(ValueError, match="variants 1..4"):
            EFFICIENTNET.variant(5)

    def test_by_name_case_insensitive(self):
        assert ALBERT.by_name("albert-v2-BASE").ordinal == 1

    def test_by_name_unknown_raises(self):
        with pytest.raises(KeyError, match="valid"):
            YOLOV5.by_name("YOLOv9")

    def test_iteration_yields_variants(self):
        assert list(YOLOV5) == list(YOLOV5.variants)

    def test_family_for_application(self):
        assert family_for_application("Language") is ALBERT

    def test_unknown_application_raises(self):
        with pytest.raises(KeyError, match="valid"):
            family_for_application("speech")


class TestFamilyValidation:
    def _variant(self, ordinal, family="f", accuracy=80.0):
        return ModelVariant(
            ordinal=ordinal, name=f"v{ordinal}", family=family,
            params_millions=1.0, gflops=1.0, accuracy=accuracy, memory_gb=1.0,
            fixed_latency_ms=1.0, compute_latency_ms=1.0,
            saturation=0.5, power_intensity=0.5,
        )

    def test_empty_family_raises(self):
        with pytest.raises(ValueError):
            ModelFamily(
                name="f", application="a", dataset="d",
                architecture="x", metric="m", variants=(),
            )

    def test_ordinals_must_be_dense(self):
        with pytest.raises(ValueError, match="ordinals"):
            ModelFamily(
                name="f", application="a", dataset="d", architecture="x",
                metric="m", variants=(self._variant(1), self._variant(3)),
            )

    def test_family_name_must_match(self):
        with pytest.raises(ValueError, match="declare family"):
            ModelFamily(
                name="other", application="a", dataset="d", architecture="x",
                metric="m", variants=(self._variant(1),),
            )

    def test_accuracy_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ModelFamily(
                name="f", application="a", dataset="d", architecture="x",
                metric="m",
                variants=(
                    self._variant(1, accuracy=90.0),
                    self._variant(2, accuracy=80.0),
                ),
            )
