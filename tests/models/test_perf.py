"""The analytical latency/power model: the MIG substitution's heart."""

import pytest

from repro.gpu.slices import SLICE_TYPES, slice_by_name
from repro.models.perf import OutOfMemoryError, PerfModel


class TestLatency:
    def test_full_gpu_latency_is_fixed_plus_compute(self, zoo, perf):
        v = zoo.variant("efficientnet", 4)  # B7
        lat = perf.latency_ms(v, slice_by_name("7g"))
        assert lat == pytest.approx(v.fixed_latency_ms + v.compute_latency_ms)

    def test_latency_flat_above_saturation(self, zoo, perf):
        """A small model is equally fast on any slice at/above its
        saturation fraction — the headroom effect the paper exploits."""
        v = zoo.variant("efficientnet", 1)  # B1, saturation 0.12 < 1/7
        lats = [
            perf.latency_ms(v, s) for s in SLICE_TYPES if v.fits(s)
        ]
        assert max(lats) == pytest.approx(min(lats))

    def test_latency_monotone_nonincreasing_in_slice_size(self, zoo, perf):
        for fam in zoo.families:
            for v in fam.variants:
                lats = [
                    perf.latency_ms(v, s) for s in SLICE_TYPES if v.fits(s)
                ]
                assert lats == sorted(lats, reverse=True)

    def test_big_model_slows_down_severalfold_on_1g(self, zoo, perf):
        """The paper's SLA tension: the largest EfficientNet slows >4x on a
        1g slice."""
        v = zoo.variant("efficientnet", 4)
        slowdown = perf.slowdown(v, slice_by_name("1g"))
        assert slowdown > 4.0

    def test_small_model_barely_slows_on_1g(self, zoo, perf):
        v = zoo.variant("efficientnet", 1)
        assert perf.slowdown(v, slice_by_name("1g")) == pytest.approx(1.0)

    def test_oom_placement_raises(self, zoo, perf):
        v = zoo.variant("yolov5", 3)  # YOLOv5x6, 7.5 GB
        with pytest.raises(OutOfMemoryError):
            perf.latency_ms(v, slice_by_name("1g"))

    def test_latency_s_consistent_with_ms(self, zoo, perf):
        v = zoo.variant("albert", 2)
        s = slice_by_name("3g")
        assert perf.latency_s(v, s) == pytest.approx(
            perf.latency_ms(v, s) / 1e3
        )


class TestPower:
    def test_busy_watts_increase_with_slice_size(self, zoo, perf):
        v = zoo.variant("efficientnet", 2)
        w = [perf.busy_watts(v, s) for s in SLICE_TYPES]
        assert w == sorted(w)

    def test_small_model_on_big_slice_wastes_power(self, zoo, perf):
        """The alpha term: B1 on a 7g slice draws more than on a 1g slice
        even though it computes no faster — the Fig. 3 carbon effect."""
        v = zoo.variant("efficientnet", 1)
        w_full = perf.busy_watts(v, slice_by_name("7g"))
        w_small = perf.busy_watts(v, slice_by_name("1g"))
        assert w_full > 2.0 * w_small
        # ... while latency is identical (saturation below 1g).
        assert perf.latency_ms(v, slice_by_name("7g")) == pytest.approx(
            perf.latency_ms(v, slice_by_name("1g"))
        )

    def test_oom_power_query_raises(self, zoo, perf):
        v = zoo.variant("albert", 4)
        with pytest.raises(OutOfMemoryError):
            perf.busy_watts(v, slice_by_name("1g"))

    def test_energy_per_request_positive(self, zoo, perf):
        for fam in zoo.families:
            for v in fam.variants:
                for s in SLICE_TYPES:
                    if v.fits(s):
                        assert perf.energy_per_request_j(v, s) > 0

    def test_dynamic_energy_per_request_on_small_slices_not_higher(
        self, zoo, perf
    ):
        """Partitioning must not increase per-request dynamic energy: the
        longer latency on a small slice is offset by the lower draw."""
        v = zoo.variant("efficientnet", 3)  # B5 saturates 0.45
        e_small = perf.energy_per_request_j(v, slice_by_name("1g"))
        e_full = perf.energy_per_request_j(v, slice_by_name("7g"))
        assert e_small <= e_full * 1.05

    def test_alpha_bounds_validated(self):
        with pytest.raises(ValueError):
            PerfModel(alpha=1.5)
        with pytest.raises(ValueError):
            PerfModel(alpha=-0.1)


class TestServiceRate:
    def test_rate_is_reciprocal_latency(self, zoo, perf):
        v = zoo.variant("yolov5", 1)
        s = slice_by_name("2g")
        assert perf.service_rate(v, s) == pytest.approx(
            1.0 / perf.latency_s(v, s)
        )
