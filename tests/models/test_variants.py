"""ModelVariant validation and memory-fit rules."""

import pytest

from repro.gpu.slices import slice_by_name
from repro.models.variants import ModelVariant


def make_variant(**overrides):
    defaults = dict(
        ordinal=1, name="test-v1", family="testfam",
        params_millions=10.0, gflops=5.0, accuracy=80.0, memory_gb=2.0,
        fixed_latency_ms=1.0, compute_latency_ms=5.0,
        saturation=0.3, power_intensity=0.5,
    )
    defaults.update(overrides)
    return ModelVariant(**defaults)


class TestValidation:
    def test_valid_variant_constructs(self):
        v = make_variant()
        assert v.name == "test-v1"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("ordinal", 0),
            ("accuracy", 0.0),
            ("accuracy", 101.0),
            ("params_millions", -1.0),
            ("gflops", 0.0),
            ("memory_gb", 0.0),
            ("compute_latency_ms", 0.0),
            ("fixed_latency_ms", -0.1),
            ("saturation", 0.0),
            ("saturation", 1.5),
            ("power_intensity", 0.0),
            ("power_intensity", 2.0),
        ],
    )
    def test_invalid_fields_raise(self, field, value):
        with pytest.raises(ValueError):
            make_variant(**{field: value})


class TestMemoryFit:
    def test_small_model_fits_everywhere(self):
        v = make_variant(memory_gb=1.0)
        for name in ("1g", "2g", "3g", "4g", "7g"):
            assert v.fits(slice_by_name(name))

    def test_boundary_exactly_fits(self):
        v = make_variant(memory_gb=5.0)
        assert v.fits(slice_by_name("1g"))

    def test_oversized_model_needs_bigger_slice(self):
        v = make_variant(memory_gb=5.1)
        assert not v.fits(slice_by_name("1g"))
        assert v.fits(slice_by_name("2g"))

    def test_ordering_is_by_ordinal(self):
        a = make_variant(ordinal=1)
        b = make_variant(ordinal=2, name="test-v2")
        assert a < b
