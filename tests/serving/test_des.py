"""Discrete-event simulator: correctness against a reference implementation
and queueing-theory sanity properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.des import simulate_fifo
from repro.serving.queueing import FifoQueue
from repro.serving.workload import PoissonWorkload


def reference_simulation(arrivals, service_means):
    """Readable event-driven specification of the serving pipeline.

    Explicit event calendar + the FifoQueue, dispatching the queue head to
    whichever instance frees first (idle instances ranked by how long they
    have been free).  Deterministic service times.
    """
    m = len(service_means)
    free_time = [0.0] * m
    busy = [False] * m
    queue = FifoQueue()
    start = np.zeros(len(arrivals))
    finish = np.zeros(len(arrivals))
    assigned = np.zeros(len(arrivals), dtype=int)

    def idle_candidates(now):
        return [i for i in range(m) if not busy[i] and free_time[i] <= now]

    events = [(t, "arrival", k) for k, t in enumerate(arrivals)]
    completions = []  # (time, instance, request)
    k_done = 0
    while events or completions:
        # Next event: earliest completion or arrival (completions first on tie
        # so a freed instance can grab a simultaneous arrival).
        next_arr = events[0] if events else (np.inf, "", -1)
        next_comp = min(completions) if completions else (np.inf, -1, -1)
        if next_comp[0] <= next_arr[0]:
            t, i, req = next_comp
            completions.remove(next_comp)
            busy[i] = False
            free_time[i] = t
            if queue:
                nxt = queue.get()
                start[nxt] = t
                finish[nxt] = t + service_means[i]
                assigned[nxt] = i
                busy[i] = True
                completions.append((finish[nxt], i, nxt))
        else:
            t, _, k = next_arr
            events.pop(0)
            cands = idle_candidates(t)
            if cands:
                i = min(cands, key=lambda j: (free_time[j], j))
                start[k] = t
                finish[k] = t + service_means[i]
                assigned[k] = i
                busy[i] = True
                completions.append((finish[k], i, k))
            else:
                queue.put(k)
            k_done += 1
    return start, finish, assigned


class TestAgainstReference:
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(1, 5),
        n=st.integers(1, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_event_driven_reference(self, seed, m, n):
        rng = np.random.default_rng(seed)
        arrivals = np.sort(rng.uniform(0, 5.0, n))
        service = rng.uniform(0.05, 0.5, m)
        batch = simulate_fifo(arrivals, service, jitter_cv=0.0, rng=0)
        ref_start, ref_finish, _ = reference_simulation(arrivals, service)
        # Start/finish times must agree exactly (assignment may differ only
        # between instances with identical free times).
        np.testing.assert_allclose(np.sort(batch.start_s), np.sort(ref_start))
        np.testing.assert_allclose(np.sort(batch.finish_s), np.sort(ref_finish))


class TestInvariants:
    def test_all_requests_served(self):
        wl = PoissonWorkload(50.0)
        arr = wl.arrivals(20.0, rng=1)
        batch = simulate_fifo(arr, np.array([0.01, 0.02]), rng=2)
        assert len(batch) == arr.size

    def test_times_ordered(self):
        arr = PoissonWorkload(100.0).arrivals(5.0, rng=3)
        batch = simulate_fifo(arr, np.full(4, 0.03), rng=4)
        assert np.all(batch.start_s >= batch.arrival_s)
        assert np.all(batch.finish_s > batch.start_s)

    def test_instance_never_overlaps(self):
        """Work conservation: one instance processes one request at a time."""
        arr = PoissonWorkload(200.0).arrivals(3.0, rng=5)
        batch = simulate_fifo(arr, np.array([0.01, 0.05, 0.1]), rng=6)
        for i in range(3):
            mask = batch.instance_index == i
            starts = batch.start_s[mask]
            finishes = batch.finish_s[mask]
            order = np.argsort(starts)
            assert np.all(starts[order][1:] >= finishes[order][:-1] - 1e-12)

    def test_fifo_start_order(self):
        """Requests begin service in arrival order (the FIFO discipline)."""
        arr = PoissonWorkload(300.0).arrivals(2.0, rng=7)
        batch = simulate_fifo(arr, np.array([0.02, 0.02]), rng=8)
        assert np.all(np.diff(batch.start_s) >= -1e-12)

    def test_no_artificial_idling(self):
        """An instance must not sit idle while the queue is non-empty: each
        request starts at its arrival or at some instance's previous finish."""
        arr = PoissonWorkload(150.0).arrivals(3.0, rng=11)
        batch = simulate_fifo(arr, np.array([0.05, 0.09]), jitter_cv=0.0, rng=0)
        finish_set = set(np.round(batch.finish_s, 12))
        for k in range(len(batch)):
            s = batch.start_s[k]
            assert (
                abs(s - batch.arrival_s[k]) < 1e-12
                or np.round(s, 12) in finish_set
            )

    def test_deterministic_with_seed(self):
        arr = PoissonWorkload(100.0).arrivals(3.0, rng=9)
        b1 = simulate_fifo(arr, np.array([0.01, 0.02]), rng=42)
        b2 = simulate_fifo(arr, np.array([0.01, 0.02]), rng=42)
        assert np.array_equal(b1.finish_s, b2.finish_s)

    def test_empty_arrivals(self):
        batch = simulate_fifo(np.array([]), np.array([0.01]), rng=0)
        assert len(batch) == 0


class TestQueueingBehaviour:
    def test_single_slow_server_builds_queue(self):
        # Deterministic arrivals faster than service: waits must grow.
        arr = np.arange(0.0, 1.0, 0.01)  # 100 req/s
        batch = simulate_fifo(arr, np.array([0.02]), jitter_cv=0.0, rng=0)  # 50/s
        waits = batch.wait_s
        assert waits[-1] > waits[10] > 0

    def test_underloaded_has_no_wait(self):
        arr = np.arange(0.0, 10.0, 0.1)  # 10 req/s
        batch = simulate_fifo(arr, np.array([0.01]), jitter_cv=0.0, rng=0)
        assert np.allclose(batch.wait_s, 0.0)

    def test_littles_law(self):
        """L = lambda * W within sampling tolerance at moderate load."""
        rate, tau, m = 120.0, 0.04, 8
        arr = PoissonWorkload(rate).arrivals_fixed_count(40_000, 13)
        batch = simulate_fifo(arr, np.full(m, tau), rng=14)
        w = batch.latency_s.mean()
        makespan = batch.finish_s.max() - batch.arrival_s.min()
        # Mean number in system via area under the occupancy curve.
        area = batch.latency_s.sum()
        l_measured = area / makespan
        assert l_measured == pytest.approx(rate * w, rel=0.05)

    def test_faster_instances_serve_more(self):
        """Under saturation, request shares become throughput-proportional."""
        arr = PoissonWorkload(500.0).arrivals_fixed_count(20_000, 15)
        service = np.array([0.01, 0.04])  # 4x speed difference
        batch = simulate_fifo(arr, service, jitter_cv=0.0, rng=0)
        counts = np.bincount(batch.instance_index, minlength=2)
        assert counts[0] / counts[1] == pytest.approx(4.0, rel=0.1)


class TestValidation:
    def test_unsorted_arrivals_raise(self):
        with pytest.raises(ValueError, match="sorted"):
            simulate_fifo(np.array([1.0, 0.5]), np.array([0.01]))

    def test_empty_service_raises(self):
        with pytest.raises(ValueError):
            simulate_fifo(np.array([0.0]), np.array([]))

    def test_nonpositive_service_raises(self):
        with pytest.raises(ValueError):
            simulate_fifo(np.array([0.0]), np.array([0.0]))
