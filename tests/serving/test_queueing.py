"""The producer/consumer FIFO queue."""

import pytest

from repro.serving.queueing import FifoQueue


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        for i in range(5):
            q.put(i)
        assert [q.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        q = FifoQueue()
        assert not q
        q.put("x")
        assert q and len(q) == 1

    def test_get_empty_raises(self):
        with pytest.raises(IndexError):
            FifoQueue().get()

    def test_peek_does_not_remove(self):
        q = FifoQueue()
        q.put(7)
        assert q.peek() == 7
        assert len(q) == 1

    def test_stats_track_watermark(self):
        q = FifoQueue()
        for i in range(4):
            q.put(i)
        q.get()
        q.put(9)
        s = q.stats
        assert s.enqueued == 5
        assert s.dequeued == 1
        assert s.max_depth == 4
        assert s.depth == 4
