"""Batched analytic estimator vs the scalar path, property-tested.

The vectorized paths (`erlang_c_batch`, `estimate_fifo_batch`) are the
optimizer's hot loop; the scalar functions stay the semantic reference.
The recursion is bit-for-bit identical; the batch estimate is allowed
summation-order noise only (<= 1e-9 relative, typically ~1e-14).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.analytic import (
    _erlang_c_cached,
    erlang_c,
    erlang_c_batch,
    estimate_fifo,
    estimate_fifo_batch,
)

RTOL = 1e-9

service_rows = st.lists(
    st.lists(
        st.floats(min_value=0.001, max_value=0.2),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
)


def _pad(rows):
    """Zero-pad ragged rows to a rectangle plus its validity mask."""
    width = max(len(r) for r in rows)
    service = np.zeros((len(rows), width))
    valid = np.zeros((len(rows), width), dtype=bool)
    for i, row in enumerate(rows):
        service[i, : len(row)] = row
        valid[i, : len(row)] = True
    return service, valid


def _assert_rows_match(batch, rows, rates):
    """Every batch row equals its scalar twin within summation noise."""
    for i, (row, rate) in enumerate(zip(rows, rates)):
        scalar = estimate_fifo(np.asarray(row), float(rate))
        assert bool(batch.overloaded[i]) == scalar.overloaded
        np.testing.assert_allclose(
            batch.utilization[i], scalar.utilization, rtol=RTOL
        )
        np.testing.assert_allclose(batch.p_wait[i], scalar.p_wait, rtol=RTOL)
        np.testing.assert_allclose(
            batch.mean_wait_s[i], scalar.mean_wait_s, rtol=RTOL
        )
        np.testing.assert_allclose(
            batch.mean_service_s[i], scalar.mean_service_s, rtol=RTOL
        )
        np.testing.assert_allclose(
            batch.shares[i, : len(row)], scalar.shares, rtol=RTOL, atol=1e-15
        )
        if not scalar.overloaded:
            np.testing.assert_allclose(
                batch.p95_ms()[i], scalar.p95_ms(), rtol=RTOL
            )
        else:
            assert batch.p95_ms()[i] == np.inf


class TestErlangCBatch:
    @given(
        cs=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=20),
        load_frac=st.floats(min_value=0.0, max_value=1.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_bitwise_equal_to_scalar(self, cs, load_frac):
        c = np.asarray(cs)
        a = load_frac * c  # spans empty, stable and overloaded regimes
        batch = erlang_c_batch(c, a)
        for i, (ci, ai) in enumerate(zip(c, a)):
            assert batch[i] == erlang_c(int(ci), float(ai))

    def test_broadcasts_scalar_c_over_loads(self):
        loads = np.linspace(0.0, 7.9, 17)
        batch = erlang_c_batch(8, loads)
        assert batch.shape == loads.shape
        for i, a in enumerate(loads):
            assert batch[i] == erlang_c(8, float(a))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            erlang_c_batch(np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            erlang_c_batch(np.array([2]), np.array([-0.1]))

    def test_empty_input(self):
        out = erlang_c_batch(np.zeros(0, dtype=int), np.zeros(0))
        assert out.shape == (0,)


class TestErlangCMemo:
    def test_cache_returns_identical_value(self):
        _erlang_c_cached.cache_clear()
        first = erlang_c(13, 9.25)
        misses = _erlang_c_cached.cache_info().misses
        second = erlang_c(13, 9.25)
        info = _erlang_c_cached.cache_info()
        assert second == first
        assert info.misses == misses  # second call was a hit
        assert info.hits >= 1

    def test_cached_matches_batch_recursion(self):
        # The memo must not change values, only skip recomputation.
        _erlang_c_cached.cache_clear()
        for c in (1, 3, 17):
            for a in (0.0, 0.4 * c, 0.95 * c):
                assert erlang_c(c, a) == float(
                    erlang_c_batch(np.array([c]), np.array([a]))[0]
                )


class TestEstimateFifoBatch:
    @given(rows=service_rows, load=st.floats(min_value=0.05, max_value=1.4))
    @settings(max_examples=60, deadline=None)
    def test_ragged_rows_match_scalar(self, rows, load):
        rates = np.array(
            [load * sum(1.0 / s for s in row) for row in rows]
        )
        service, valid = _pad(rows)
        mask = None if valid.all() else valid
        batch = estimate_fifo_batch(service, rates, valid=mask)
        _assert_rows_match(batch, rows, rates)

    def test_zero_rate_rejected_like_scalar(self):
        # Both paths refuse non-positive arrival rates identically.
        with pytest.raises(ValueError):
            estimate_fifo(np.array([0.01]), 0.0)
        with pytest.raises(ValueError):
            estimate_fifo_batch(np.array([[0.01], [0.01]]), np.array([5.0, 0.0]))

    @given(rows=service_rows)
    @settings(max_examples=30, deadline=None)
    def test_near_idle_rows(self, rows):
        rates = np.full(len(rows), 1e-9)  # effectively idle, still valid
        service, valid = _pad(rows)
        mask = None if valid.all() else valid
        batch = estimate_fifo_batch(service, rates, valid=mask)
        assert not batch.overloaded.any()
        _assert_rows_match(batch, rows, rates)

    def test_overloaded_rows_match_scalar(self):
        rows = [[0.01, 0.02], [0.05]]
        rates = np.array([1e6, 1e6])
        service, valid = _pad(rows)
        batch = estimate_fifo_batch(service, rates, valid=valid)
        assert batch.overloaded.all()
        _assert_rows_match(batch, rows, rates)

    def test_mixed_overload_in_one_batch(self):
        rows = [[0.01, 0.01], [0.01, 0.01]]
        service, valid = _pad(rows)
        rates = np.array([50.0, 1e6])
        batch = estimate_fifo_batch(service, rates, valid=valid)
        assert list(batch.overloaded) == [False, True]
        _assert_rows_match(batch, rows, rates)

    def test_valid_mask_validation(self):
        service = np.array([[0.01, 0.0]])
        rates = np.array([10.0])
        with pytest.raises(ValueError):
            estimate_fifo_batch(
                service, rates, valid=np.array([[True]])
            )  # shape mismatch
        with pytest.raises(ValueError):
            estimate_fifo_batch(
                service, rates, valid=np.array([[False, False]])
            )  # empty row
        with pytest.raises(ValueError):
            estimate_fifo_batch(
                service, rates, valid=np.array([[False, True]])
            )  # valid cell with non-positive service time
