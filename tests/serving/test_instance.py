"""Service instances and jitter sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.slices import slice_by_name
from repro.serving.instance import ServiceInstance, sample_jitter


class TestSampleJitter:
    def test_zero_cv_is_deterministic(self):
        assert np.all(sample_jitter(10, cv=0.0) == 1.0)

    def test_mean_is_one(self):
        j = sample_jitter(200_000, cv=0.1, rng=1)
        assert j.mean() == pytest.approx(1.0, abs=0.005)

    def test_cv_matches_request(self):
        j = sample_jitter(200_000, cv=0.2, rng=2)
        assert j.std() / j.mean() == pytest.approx(0.2, rel=0.05)

    def test_all_positive(self):
        assert np.all(sample_jitter(10_000, cv=0.5, rng=3) > 0)

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            sample_jitter(-1)
        with pytest.raises(ValueError):
            sample_jitter(1, cv=-0.1)

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_mean_one_for_any_cv(self, cv):
        j = sample_jitter(50_000, cv=cv, rng=0)
        assert abs(j.mean() - 1.0) < 0.05


class TestServiceInstance:
    def test_create_resolves_performance(self, zoo, perf):
        v = zoo.variant("efficientnet", 2)
        s = slice_by_name("2g")
        inst = ServiceInstance.create(0, 0, s, v, perf)
        assert inst.mean_service_s == pytest.approx(perf.latency_s(v, s))
        assert inst.busy_watts == pytest.approx(perf.busy_watts(v, s))
        assert inst.accuracy == v.accuracy

    def test_service_rate(self, zoo, perf):
        v = zoo.variant("albert", 1)
        inst = ServiceInstance.create(0, 0, slice_by_name("1g"), v, perf)
        assert inst.service_rate == pytest.approx(1.0 / inst.mean_service_s)

    def test_invalid_service_time_raises(self, zoo):
        v = zoo.variant("albert", 1)
        with pytest.raises(ValueError):
            ServiceInstance(
                instance_id=0, gpu_id=0, slice_type=slice_by_name("1g"),
                variant=v, mean_service_s=0.0, busy_watts=10.0,
            )

    def test_str_mentions_placement(self, zoo, perf):
        v = zoo.variant("yolov5", 1)
        inst = ServiceInstance.create(3, 1, slice_by_name("3g"), v, perf)
        text = str(inst)
        assert "gpu1" in text and "3g" in text and "YOLOv5l" in text
