"""Serving metrics: summaries of simulated batches."""

import numpy as np
import pytest

from repro.serving.des import simulate_fifo
from repro.serving.metrics import LatencySummary, summarize
from repro.serving.requests import RequestBatch
from repro.serving.workload import PoissonWorkload


def run_batch(rate=100.0, service=(0.01, 0.02), n=5000, seed=0):
    arr = PoissonWorkload(rate).arrivals_fixed_count(n, seed)
    return simulate_fifo(arr, np.asarray(service), rng=seed + 1)


class TestLatencySummary:
    def test_percentile_ordering(self):
        b = run_batch()
        s = LatencySummary.from_batch(b)
        assert s.p50_ms <= s.p95_ms <= s.p99_ms <= s.max_ms
        assert s.count == len(b)

    def test_empty_batch_raises(self):
        empty = RequestBatch(
            arrival_s=np.zeros(0), start_s=np.zeros(0),
            finish_s=np.zeros(0), instance_index=np.zeros(0, dtype=int),
        )
        with pytest.raises(ValueError):
            LatencySummary.from_batch(empty)


class TestSummarize:
    def test_shares_sum_to_one(self):
        m = summarize(run_batch(), n_instances=2)
        assert m.shares.sum() == pytest.approx(1.0)

    def test_idle_instance_gets_zero_share(self):
        # Third instance so slow it may serve almost nothing at light load.
        b = run_batch(rate=5.0, service=(0.001, 0.001, 10.0), n=300)
        m = summarize(b, n_instances=3)
        assert m.shares.size == 3

    def test_utilization_in_unit_interval(self):
        m = summarize(run_batch(), n_instances=2)
        assert np.all(m.utilization >= 0) and np.all(m.utilization <= 1)

    def test_throughput_near_rate_when_stable(self):
        m = summarize(run_batch(rate=100.0, n=20_000), n_instances=2)
        assert m.throughput_rps == pytest.approx(100.0, rel=0.05)

    def test_warmup_trimming(self):
        b = run_batch(n=1000)
        full = summarize(b, n_instances=2, warmup_fraction=0.0)
        trimmed = summarize(b, n_instances=2, warmup_fraction=0.5)
        assert trimmed.latency.count == 500
        assert full.latency.count == 1000

    def test_invalid_inputs(self):
        b = run_batch(n=100)
        with pytest.raises(ValueError):
            summarize(b, n_instances=0)
