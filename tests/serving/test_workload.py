"""Poisson workload generation and paper-style sizing."""

import numpy as np
import pytest

from repro.gpu.slices import slice_by_name
from repro.serving.workload import PoissonWorkload, default_rate


class TestPoissonWorkload:
    def test_arrivals_sorted_within_window(self, rng):
        wl = PoissonWorkload(rate_per_s=100.0)
        arr = wl.arrivals(10.0, rng)
        assert np.all(np.diff(arr) >= 0)
        assert arr.size == 0 or (arr[0] >= 0 and arr[-1] < 10.0)

    def test_mean_count_matches_rate(self):
        wl = PoissonWorkload(rate_per_s=50.0)
        counts = [wl.arrivals(10.0, seed).size for seed in range(30)]
        assert np.mean(counts) == pytest.approx(500.0, rel=0.1)

    def test_reproducible_with_seed(self):
        wl = PoissonWorkload(rate_per_s=20.0)
        assert np.array_equal(wl.arrivals(5.0, 7), wl.arrivals(5.0, 7))

    def test_fixed_count_has_exact_size(self, rng):
        wl = PoissonWorkload(rate_per_s=10.0)
        arr = wl.arrivals_fixed_count(123, rng)
        assert arr.size == 123
        assert np.all(np.diff(arr) >= 0)

    def test_fixed_count_gaps_are_exponential_mean(self):
        wl = PoissonWorkload(rate_per_s=100.0)
        arr = wl.arrivals_fixed_count(20000, 3)
        gaps = np.diff(arr)
        assert gaps.mean() == pytest.approx(1.0 / 100.0, rel=0.05)

    def test_expected_requests(self):
        assert PoissonWorkload(40.0).expected_requests(60.0) == 2400.0

    def test_zero_duration_is_empty(self, rng):
        assert PoissonWorkload(10.0).arrivals(0.0, rng).size == 0

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            PoissonWorkload(0.0)

    def test_negative_duration_raises(self, rng):
        with pytest.raises(ValueError):
            PoissonWorkload(1.0).arrivals(-1.0, rng)


class TestDefaultRate:
    def test_sizing_rule(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, n_gpus=10, utilization=0.65)
        capacity = 10 * perf.service_rate(fam.largest, slice_by_name("7g"))
        assert rate == pytest.approx(0.65 * capacity)

    def test_scales_with_gpus(self, zoo, perf):
        fam = zoo.family("albert")
        assert default_rate(fam, perf, 10) == pytest.approx(
            2 * default_rate(fam, perf, 5)
        )

    def test_invalid_utilization(self, zoo, perf):
        fam = zoo.family("yolov5")
        with pytest.raises(ValueError):
            default_rate(fam, perf, 10, utilization=1.0)

    def test_invalid_gpus(self, zoo, perf):
        with pytest.raises(ValueError):
            default_rate(zoo.family("yolov5"), perf, 0)
