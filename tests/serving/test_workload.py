"""Poisson workload generation and paper-style sizing."""

import numpy as np
import pytest

from repro.gpu.slices import slice_by_name
from repro.serving.workload import (
    NonstationaryPoissonWorkload,
    PoissonWorkload,
    default_rate,
)


class TestPoissonWorkload:
    def test_arrivals_sorted_within_window(self, rng):
        wl = PoissonWorkload(rate_per_s=100.0)
        arr = wl.arrivals(10.0, rng)
        assert np.all(np.diff(arr) >= 0)
        assert arr.size == 0 or (arr[0] >= 0 and arr[-1] < 10.0)

    def test_mean_count_matches_rate(self):
        wl = PoissonWorkload(rate_per_s=50.0)
        counts = [wl.arrivals(10.0, seed).size for seed in range(30)]
        assert np.mean(counts) == pytest.approx(500.0, rel=0.1)

    def test_reproducible_with_seed(self):
        wl = PoissonWorkload(rate_per_s=20.0)
        assert np.array_equal(wl.arrivals(5.0, 7), wl.arrivals(5.0, 7))

    def test_fixed_count_has_exact_size(self, rng):
        wl = PoissonWorkload(rate_per_s=10.0)
        arr = wl.arrivals_fixed_count(123, rng)
        assert arr.size == 123
        assert np.all(np.diff(arr) >= 0)

    def test_fixed_count_gaps_are_exponential_mean(self):
        wl = PoissonWorkload(rate_per_s=100.0)
        arr = wl.arrivals_fixed_count(20000, 3)
        gaps = np.diff(arr)
        assert gaps.mean() == pytest.approx(1.0 / 100.0, rel=0.05)

    def test_expected_requests(self):
        assert PoissonWorkload(40.0).expected_requests(60.0) == 2400.0

    def test_zero_duration_is_empty(self, rng):
        assert PoissonWorkload(10.0).arrivals(0.0, rng).size == 0

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            PoissonWorkload(0.0)

    def test_negative_duration_raises(self, rng):
        with pytest.raises(ValueError):
            PoissonWorkload(1.0).arrivals(-1.0, rng)


class TestNonstationaryPoisson:
    """Thinning (Lewis & Shedler): kept candidates follow rate(t)."""

    @staticmethod
    def ramp(max_rate=20.0, duration=100.0):
        return NonstationaryPoissonWorkload(
            rate_fn=lambda t: max_rate * t / duration, max_rate_per_s=max_rate
        )

    def test_arrivals_sorted_within_window(self, rng):
        arr = self.ramp().arrivals(100.0, rng)
        assert np.all(np.diff(arr) >= 0)
        assert arr.size == 0 or (arr[0] >= 0 and arr[-1] < 100.0)

    def test_mean_count_matches_rate_integral(self):
        wl = self.ramp(max_rate=20.0, duration=100.0)
        # Integral of a 0→20 ramp over 100 s = 1000 expected arrivals.
        counts = [wl.arrivals(100.0, seed).size for seed in range(30)]
        assert np.mean(counts) == pytest.approx(1000.0, rel=0.1)
        assert wl.expected_requests(100.0) == pytest.approx(1000.0, rel=1e-6)

    def test_counts_concentrate_where_the_rate_is(self):
        """A ramp rate puts ~3x the arrivals in the last half-window."""
        arr = self.ramp().arrivals(100.0, rng=7)
        late = float(np.sum(arr >= 50.0))
        early = float(np.sum(arr < 50.0))
        assert late / early == pytest.approx(3.0, rel=0.25)

    def test_constant_rate_matches_homogeneous_mean(self):
        wl = NonstationaryPoissonWorkload(
            rate_fn=lambda t: 50.0, max_rate_per_s=50.0
        )
        counts = [wl.arrivals(10.0, seed).size for seed in range(30)]
        assert np.mean(counts) == pytest.approx(500.0, rel=0.1)

    def test_reproducible_with_seed(self):
        wl = self.ramp()
        assert np.array_equal(wl.arrivals(50.0, 3), wl.arrivals(50.0, 3))

    def test_rate_above_envelope_raises(self, rng):
        wl = NonstationaryPoissonWorkload(
            rate_fn=lambda t: 30.0, max_rate_per_s=20.0
        )
        with pytest.raises(ValueError, match="envelope"):
            wl.arrivals(10.0, rng)

    @staticmethod
    def narrow_burst(critical=()):
        """1 req/s background with a 10-ms, 100 req/s spike at t=500 s.

        The spike dwarfs the 20 req/s envelope but is ~6000x narrower than
        the 60 s check grid and, at ~20 candidates/s, lands a thinning
        candidate only once every ~5 windows — the silent under-sampling
        regression.
        """
        return NonstationaryPoissonWorkload(
            rate_fn=lambda t: 100.0 if 500.0 <= t < 500.01 else 1.0,
            max_rate_per_s=20.0,
            critical_times_s=critical,
        )

    def test_narrow_burst_above_envelope_detected(self):
        """Regression: with the burst declared critical, the envelope
        violation raises deterministically — on every seed, before any
        candidate is drawn — instead of only when a random candidate
        happens to land inside the 10 ms burst."""
        wl = self.narrow_burst(critical=(500.0, 500.005, 500.01))
        for seed in range(5):
            with pytest.raises(ValueError, match="envelope"):
                wl.arrivals(1000.0, seed)

    def test_narrow_burst_was_silently_under_sampled(self):
        """The pre-fix behavior, pinned: without critical times, seeds
        whose candidates miss the 10 ms burst sample without raising."""
        wl = self.narrow_burst(critical=())
        escaped = 0
        for seed in range(5):
            try:
                wl.arrivals(1000.0, seed)
                escaped += 1
            except ValueError:
                pass
        assert escaped > 0

    def test_expected_requests_sees_narrow_burst(self):
        """A burst between quadrature nodes used to vanish from the
        integral; its critical edges now pin it."""
        burst_area = 99.0 * 0.01  # (100 - 1) req/s for 10 ms
        base = NonstationaryPoissonWorkload(
            rate_fn=lambda t: 1.0, max_rate_per_s=20.0
        )
        wl = self.narrow_burst(critical=(500.0, 500.005, 500.01))
        extra = wl.expected_requests(1000.0) - base.expected_requests(1000.0)
        assert extra == pytest.approx(burst_area, rel=0.05)

    def test_negative_rate_raises(self, rng):
        wl = NonstationaryPoissonWorkload(
            rate_fn=lambda t: -1.0, max_rate_per_s=20.0
        )
        with pytest.raises(ValueError, match="non-negative"):
            wl.arrivals(10.0, rng)

    def test_invalid_envelope_rejected(self):
        with pytest.raises(ValueError):
            NonstationaryPoissonWorkload(rate_fn=lambda t: 1.0, max_rate_per_s=0.0)

    def test_zero_duration_is_empty(self, rng):
        assert self.ramp().arrivals(0.0, rng).size == 0
        assert self.ramp().expected_requests(0.0) == 0.0

    def test_negative_duration_raises(self, rng):
        with pytest.raises(ValueError):
            self.ramp().arrivals(-1.0, rng)
        with pytest.raises(ValueError):
            self.ramp().expected_requests(-1.0)


class TestDefaultRate:
    def test_sizing_rule(self, zoo, perf):
        fam = zoo.family("efficientnet")
        rate = default_rate(fam, perf, n_gpus=10, utilization=0.65)
        capacity = 10 * perf.service_rate(fam.largest, slice_by_name("7g"))
        assert rate == pytest.approx(0.65 * capacity)

    def test_scales_with_gpus(self, zoo, perf):
        fam = zoo.family("albert")
        assert default_rate(fam, perf, 10) == pytest.approx(
            2 * default_rate(fam, perf, 5)
        )

    def test_invalid_utilization(self, zoo, perf):
        fam = zoo.family("yolov5")
        with pytest.raises(ValueError):
            default_rate(fam, perf, 10, utilization=1.0)

    def test_invalid_gpus(self, zoo, perf):
        with pytest.raises(ValueError):
            default_rate(zoo.family("yolov5"), perf, 0)
