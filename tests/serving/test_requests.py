"""Request records and batch views."""

import numpy as np
import pytest

from repro.serving.requests import Request, RequestBatch


def make_batch(n=5):
    arrival = np.arange(n, dtype=float)
    start = arrival + 0.5
    finish = start + 1.0
    inst = np.zeros(n, dtype=np.int64)
    return RequestBatch(
        arrival_s=arrival, start_s=start, finish_s=finish, instance_index=inst
    )


class TestRequest:
    def test_derived_times(self):
        r = Request(
            request_id=0, arrival_s=1.0, start_s=1.5, finish_s=2.5,
            instance_index=3,
        )
        assert r.wait_s == pytest.approx(0.5)
        assert r.service_s == pytest.approx(1.0)
        assert r.latency_s == pytest.approx(1.5)

    def test_misordered_times_raise(self):
        with pytest.raises(ValueError):
            Request(
                request_id=0, arrival_s=2.0, start_s=1.0, finish_s=3.0,
                instance_index=0,
            )


class TestRequestBatch:
    def test_len_and_vector_views(self):
        b = make_batch(4)
        assert len(b) == 4
        assert np.allclose(b.wait_s, 0.5)
        assert np.allclose(b.service_s, 1.0)
        assert np.allclose(b.latency_s, 1.5)
        assert np.allclose(b.latency_ms, 1500.0)

    def test_request_object_view(self):
        b = make_batch(3)
        r = b.request(2)
        assert r.request_id == 2
        assert r.arrival_s == 2.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            RequestBatch(
                arrival_s=np.zeros(3), start_s=np.zeros(2),
                finish_s=np.zeros(3), instance_index=np.zeros(3, dtype=int),
            )

    def test_misordered_times_raise(self):
        with pytest.raises(ValueError):
            RequestBatch(
                arrival_s=np.array([1.0]), start_s=np.array([0.5]),
                finish_s=np.array([2.0]), instance_index=np.array([0]),
            )

    def test_tail_drops_warmup(self):
        b = make_batch(10)
        t = b.tail(0.3)
        assert len(t) == 7
        assert t.arrival_s[0] == 3.0

    def test_tail_zero_is_identity(self):
        b = make_batch(4)
        assert len(b.tail(0.0)) == 4

    def test_tail_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_batch(4).tail(1.0)

    def test_empty_batch_allowed(self):
        b = RequestBatch(
            arrival_s=np.zeros(0), start_s=np.zeros(0),
            finish_s=np.zeros(0), instance_index=np.zeros(0, dtype=int),
        )
        assert len(b) == 0
