"""Analytical queue estimator, validated against the DES."""

import numpy as np
import pytest

from repro.serving.analytic import erlang_c, estimate_fifo
from repro.serving.des import simulate_fifo
from repro.serving.metrics import summarize
from repro.serving.workload import PoissonWorkload


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturated_always_waits(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_single_server_equals_rho(self):
        # M/M/1: P(wait) = rho.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_known_value(self):
        # Classic table value: c=5, a=4 -> C ~ 0.5541.
        assert erlang_c(5, 4.0) == pytest.approx(0.5541, abs=1e-3)

    def test_monotone_in_load(self):
        vals = [erlang_c(8, a) for a in np.linspace(0.5, 7.5, 20)]
        assert vals == sorted(vals)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -1.0)


class TestEstimateBasics:
    def test_utilization(self):
        est = estimate_fifo(np.array([0.01] * 4), rate_per_s=200.0)
        assert est.utilization == pytest.approx(0.5)
        assert not est.overloaded

    def test_overload_flag(self):
        est = estimate_fifo(np.array([0.01]), rate_per_s=150.0)
        assert est.overloaded
        assert est.p95_ms() == float("inf")
        assert est.mean_latency_s == float("inf")

    def test_shares_sum_to_one(self):
        est = estimate_fifo(np.array([0.01, 0.02, 0.05]), rate_per_s=50.0)
        assert est.shares.sum() == pytest.approx(1.0)

    def test_fast_instances_get_larger_share(self):
        est = estimate_fifo(np.array([0.01, 0.04]), rate_per_s=80.0)
        assert est.shares[0] > est.shares[1]

    def test_latency_cdf_monotone(self):
        est = estimate_fifo(np.array([0.01, 0.03]), rate_per_s=60.0)
        ts = np.linspace(0.0, 0.3, 50)
        cdf = [est.latency_cdf(t) for t in ts]
        assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))

    def test_quantile_inverts_cdf(self):
        est = estimate_fifo(np.array([0.02] * 3), rate_per_s=100.0)
        q95 = est.quantile_s(0.95)
        assert est.latency_cdf(q95) == pytest.approx(0.95, abs=0.01)

    def test_quantile_bounds_validated(self):
        est = estimate_fifo(np.array([0.02]), rate_per_s=10.0)
        with pytest.raises(ValueError):
            est.quantile_s(1.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_fifo(np.array([]), 1.0)
        with pytest.raises(ValueError):
            estimate_fifo(np.array([0.0]), 1.0)
        with pytest.raises(ValueError):
            estimate_fifo(np.array([0.1]), 0.0)


class TestAgainstDes:
    """The estimator must track the DES in the regimes the optimizer visits."""

    def _compare(self, service, rate, n=60_000, seed=0):
        est = estimate_fifo(np.asarray(service), rate)
        arr = PoissonWorkload(rate).arrivals_fixed_count(n, seed)
        batch = simulate_fifo(arr, np.asarray(service), rng=seed + 1)
        met = summarize(batch, n_instances=len(service))
        return est, met

    def test_p95_homogeneous_moderate_load(self):
        est, met = self._compare([0.035] * 10, rate := 0.65 * 10 / 0.035)
        assert est.p95_ms() == pytest.approx(met.latency.p95_ms, rel=0.15)

    def test_p95_heterogeneous(self):
        service = [0.005] * 6 + [0.024] * 2 + [0.05]
        rate = 0.5 / np.mean(service) * len(service) / 3
        est, met = self._compare(service, rate)
        assert est.p95_ms() == pytest.approx(met.latency.p95_ms, rel=0.2)

    def test_p95_light_load(self):
        est, met = self._compare([0.01] * 20, rate=200.0)
        assert est.p95_ms() == pytest.approx(met.latency.p95_ms, rel=0.15)

    def test_shares_track_des(self):
        service = [0.005, 0.005, 0.02, 0.04]
        rate = 0.6 * sum(1 / s for s in service)
        est, met = self._compare(service, rate)
        np.testing.assert_allclose(est.shares, met.shares, atol=0.06)

    def test_utilization_tracks_des(self):
        service = [0.02] * 5
        rate = 0.7 * 5 / 0.02
        est, met = self._compare(service, rate)
        assert est.utilization == pytest.approx(
            float(met.utilization.mean()), abs=0.05
        )
