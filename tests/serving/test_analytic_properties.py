"""Property-based tests of the analytical queue estimator.

The estimator sits in the optimizer's inner loop: its *ordering* behaviour
(more load → worse latency, more capacity → better) matters even more than
its point accuracy, because SA only compares candidates.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.analytic import estimate_fifo

service_times = st.lists(
    st.floats(min_value=0.001, max_value=0.2),
    min_size=1,
    max_size=30,
)


class TestCdfAndQuantiles:
    @given(service_times, st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=50, deadline=None)
    def test_quantiles_monotone_in_q(self, service, load):
        mu_total = sum(1.0 / s for s in service)
        est = estimate_fifo(np.asarray(service), load * mu_total)
        qs = [0.5, 0.9, 0.95, 0.99]
        values = [est.quantile_s(q) for q in qs]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @given(service_times, st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=50, deadline=None)
    def test_cdf_bounded_and_monotone(self, service, load):
        mu_total = sum(1.0 / s for s in service)
        est = estimate_fifo(np.asarray(service), load * mu_total)
        ts = np.linspace(0.0, max(service) * 5, 25)
        cdf = [est.latency_cdf(t) for t in ts]
        assert all(0.0 <= c <= 1.0 + 1e-12 for c in cdf)
        assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))

    @given(service_times)
    @settings(max_examples=50, deadline=None)
    def test_p95_at_least_service_floor(self, service):
        """End-to-end latency can never beat the fastest service time."""
        mu_total = sum(1.0 / s for s in service)
        est = estimate_fifo(np.asarray(service), 0.3 * mu_total)
        assert est.quantile_s(0.95) >= min(service) - 1e-12


class TestLoadOrdering:
    @given(
        tau=st.floats(min_value=0.001, max_value=0.2),
        m=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_p95_nondecreasing_in_load_homogeneous(self, tau, m):
        """Monotone-in-load holds for *homogeneous* fleets.  It is genuinely
        false for heterogeneous ones: as load rises, dispatch shifts from
        round-robin toward throughput-proportional, starving slow instances
        of requests — p95 can drop.  (Hypothesis found the counterexample;
        the DES exhibits the same behaviour.)"""
        arr = np.full(m, tau)
        mu_total = m / tau
        p95s = [
            estimate_fifo(arr, load * mu_total).quantile_s(0.95)
            for load in (0.2, 0.5, 0.8)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(p95s, p95s[1:]))

    @given(service_times, st.floats(min_value=0.1, max_value=0.8))
    @settings(max_examples=40, deadline=None)
    def test_more_servers_never_hurt_wait(self, service, load):
        """Adding a clone of the fastest instance cannot increase the mean
        wait (capacity strictly grows)."""
        mu_total = sum(1.0 / s for s in service)
        rate = load * mu_total
        base = estimate_fifo(np.asarray(service), rate)
        extended = estimate_fifo(
            np.asarray(service + [min(service)]), rate
        )
        assert extended.mean_wait_s <= base.mean_wait_s + 1e-9

    @given(service_times, st.floats(min_value=0.1, max_value=0.8))
    @settings(max_examples=40, deadline=None)
    def test_utilization_linear_in_rate(self, service, load):
        mu_total = sum(1.0 / s for s in service)
        a = estimate_fifo(np.asarray(service), load * mu_total)
        b = estimate_fifo(np.asarray(service), 0.5 * load * mu_total)
        assert a.utilization == pytest.approx(2 * b.utilization)


class TestShares:
    @given(service_times, st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=50, deadline=None)
    def test_shares_form_distribution(self, service, load):
        mu_total = sum(1.0 / s for s in service)
        est = estimate_fifo(np.asarray(service), load * mu_total)
        assert est.shares.sum() == pytest.approx(1.0)
        assert np.all(est.shares >= 0)

    @given(service_times, st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=50, deadline=None)
    def test_faster_never_gets_smaller_share(self, service, load):
        """Share is non-increasing in service time."""
        mu_total = sum(1.0 / s for s in service)
        est = estimate_fifo(np.asarray(service), load * mu_total)
        order = np.argsort(service)
        ordered_shares = est.shares[order]
        assert all(
            b <= a + 1e-12 for a, b in zip(ordered_shares, ordered_shares[1:])
        )
