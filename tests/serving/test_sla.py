"""SLA policy semantics (Eq. 5 and the Eq. 6 penalty)."""

import pytest

from repro.serving.sla import SlaPolicy


class TestSlaPolicy:
    def test_met_at_and_below_target(self):
        sla = SlaPolicy(p95_target_ms=50.0)
        assert sla.is_met(50.0)
        assert sla.is_met(10.0)
        assert not sla.is_met(50.1)

    def test_violation_factor(self):
        sla = SlaPolicy(p95_target_ms=40.0)
        assert sla.violation_factor(80.0) == pytest.approx(2.0)

    def test_sa_penalty_is_one_when_met(self):
        sla = SlaPolicy(p95_target_ms=40.0)
        assert sla.sa_penalty(30.0) == 1.0
        assert sla.sa_penalty(40.0) == 1.0

    def test_sa_penalty_shrinks_with_violation(self):
        """Eq. 6: the penalty is L_tail / L, smooth in the violation size."""
        sla = SlaPolicy(p95_target_ms=40.0)
        assert sla.sa_penalty(80.0) == pytest.approx(0.5)
        assert sla.sa_penalty(400.0) == pytest.approx(0.1)

    def test_sa_penalty_of_infinite_latency_is_zero(self):
        sla = SlaPolicy(p95_target_ms=40.0)
        assert sla.sa_penalty(float("inf")) == 0.0

    def test_headroom(self):
        sla = SlaPolicy(p95_target_ms=40.0)
        assert sla.headroom_ms(25.0) == pytest.approx(15.0)
        assert sla.headroom_ms(50.0) == pytest.approx(-10.0)

    def test_invalid_target_raises(self):
        with pytest.raises(ValueError):
            SlaPolicy(p95_target_ms=0.0)
