"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.command == "run"
        assert args.fidelity == "default"
        assert args.experiments == ["fig6"]

    def test_bad_fidelity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig6", "--fidelity", "warp"])


class TestListCommand:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig9" in out and "table1" in out and "savings" in out


class TestRunCommand:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "fig6", "--fidelity", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "4.4" in out  # the worked example's objective

    def test_unknown_experiment_fails_with_listing(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "valid" in err

    def test_multiple_experiments(self, capsys):
        assert main(["run", "table1", "fig3", "--fidelity", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig3" in out


class TestExportCommand:
    def test_export_csv(self, tmp_path, capsys):
        assert main(
            ["export", "table1", "--out", str(tmp_path), "--format", "csv"]
        ) == 0
        text = (tmp_path / "table1.csv").read_text()
        assert text.startswith("Application")

    def test_export_json(self, tmp_path):
        assert main(
            ["export", "fig6", "--out", str(tmp_path), "--format", "json"]
        ) == 0
        records = json.loads((tmp_path / "fig6.json").read_text())
        assert records[0]["Config"] == "A"

    def test_export_unknown_experiment(self, tmp_path, capsys):
        assert main(["export", "nope", "--out", str(tmp_path)]) == 2


class TestDemoCommand:
    def test_demo_runs_and_summarizes(self, capsys):
        assert main(["demo", "--hours", "2", "--scheme", "co2opt"]) == 0
        out = capsys.readouterr().out
        assert "scheme=co2opt" in out
        assert "carbon:" in out
        assert "p95 latency:" in out


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.router == "carbon-greedy"
        assert args.regions == "us-ciso,uk-eso,nordic-hydro"
        assert args.duration_h == 24.0

    def test_bad_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--router", "carrier-pigeon"])

    def test_fleet_runs_and_reports(self, capsys):
        assert main(
            [
                "fleet", "--regions", "us-ciso,nordic-hydro",
                "--n-gpus", "2", "--duration-h", "3", "--scheme", "co2opt",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "router=carbon-greedy" in out
        assert "us-ciso" in out and "nordic-hydro" in out
        assert "SLA attainment" in out
        assert "evaluator cache" in out

    def test_unknown_region_fails_with_listing(self, capsys):
        assert main(["fleet", "--regions", "atlantis"]) == 2
        err = capsys.readouterr().err
        assert "atlantis" in err and "valid" in err

    def test_fleet_listed_as_experiment(self, capsys):
        assert main(["list"]) == 0
        assert "fleet" in capsys.readouterr().out.split()


class TestDemandFlags:
    def test_parser_defaults_to_constant_demand(self):
        args = build_parser().parse_args(["fleet"])
        assert args.demand is None
        assert args.lookahead_h is None

    def test_bad_demand_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--demand", "chaotic"])

    def test_demand_fleet_prints_origin_table(self, capsys):
        assert main(
            [
                "fleet", "--regions", "us-ciso,uk-eso,apac-solar",
                "--n-gpus", "2", "--duration-h", "3",
                "--demand", "diurnal", "--router", "forecast-aware",
                "--ramp-share-per-h", "0.1", "--drain-share-per-h", "0.2",
                "--lookahead-h", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "demand origins" in out
        assert "asia-pacific" in out
        assert "user SLA" in out

    def test_demand_listed_as_experiment(self, capsys):
        assert main(["list"]) == 0
        assert "demand" in capsys.readouterr().out.split()
