"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.command == "run"
        # None = "default" for experiments, the file's own fidelity for
        # scenario paths (the CLI flag only overrides when given).
        assert args.fidelity is None
        assert args.seed is None
        assert args.experiments == ["fig6"]

    def test_bad_fidelity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig6", "--fidelity", "warp"])


class TestListCommand:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig9" in out and "table1" in out and "savings" in out


class TestRunCommand:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "fig6", "--fidelity", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "4.4" in out  # the worked example's objective

    def test_unknown_experiment_fails_with_listing(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "valid" in err

    def test_multiple_experiments(self, capsys):
        assert main(["run", "table1", "fig3", "--fidelity", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig3" in out


class TestExportCommand:
    def test_export_csv(self, tmp_path, capsys):
        assert main(
            ["export", "table1", "--out", str(tmp_path), "--format", "csv"]
        ) == 0
        text = (tmp_path / "table1.csv").read_text()
        assert text.startswith("Application")

    def test_export_json(self, tmp_path):
        assert main(
            ["export", "fig6", "--out", str(tmp_path), "--format", "json"]
        ) == 0
        records = json.loads((tmp_path / "fig6.json").read_text())
        assert records[0]["Config"] == "A"

    def test_export_unknown_experiment(self, tmp_path, capsys):
        assert main(["export", "nope", "--out", str(tmp_path)]) == 2


class TestDemoCommand:
    def test_demo_runs_and_summarizes(self, capsys):
        assert main(["demo", "--hours", "2", "--scheme", "co2opt"]) == 0
        out = capsys.readouterr().out
        assert "scheme=co2opt" in out
        assert "carbon:" in out
        assert "p95 latency:" in out


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.router == "carbon-greedy"
        assert args.regions == "us-ciso,uk-eso,nordic-hydro"
        assert args.duration_h == 24.0

    def test_bad_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--router", "carrier-pigeon"])

    def test_fleet_runs_and_reports(self, capsys):
        assert main(
            [
                "fleet", "--regions", "us-ciso,nordic-hydro",
                "--n-gpus", "2", "--duration-h", "3", "--scheme", "co2opt",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "router=carbon-greedy" in out
        assert "us-ciso" in out and "nordic-hydro" in out
        assert "SLA attainment" in out
        assert "evaluator cache" in out

    def test_unknown_region_fails_with_listing(self, capsys):
        assert main(["fleet", "--regions", "atlantis"]) == 2
        err = capsys.readouterr().err
        assert "atlantis" in err and "valid" in err

    def test_fleet_listed_as_experiment(self, capsys):
        assert main(["list"]) == 0
        assert "fleet" in capsys.readouterr().out.split()


class TestDemandFlags:
    def test_parser_defaults_to_constant_demand(self):
        args = build_parser().parse_args(["fleet"])
        assert args.demand is None
        assert args.lookahead_h is None

    def test_bad_demand_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--demand", "chaotic"])

    def test_demand_fleet_prints_origin_table(self, capsys):
        assert main(
            [
                "fleet", "--regions", "us-ciso,uk-eso,apac-solar",
                "--n-gpus", "2", "--duration-h", "3",
                "--demand", "diurnal", "--router", "forecast-aware",
                "--ramp-share-per-h", "0.1", "--drain-share-per-h", "0.2",
                "--lookahead-h", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "demand origins" in out
        assert "asia-pacific" in out
        assert "user SLA" in out

    def test_demand_listed_as_experiment(self, capsys):
        assert main(["list"]) == 0
        assert "demand" in capsys.readouterr().out.split()


SCENARIO_TOML = """\
name = "cli-test"
scheme = "base"
fidelity = "smoke"
n_gpus = 2
duration_h = 2.0

[[regions]]
name = "us-ciso"

[[regions]]
name = "nordic-hydro"
scheme = "co2opt"

[routing]
router = "carbon-greedy"
"""


class TestScenarioRun:
    """`repro run <scenario.toml>`: the declarative front door."""

    def _write(self, tmp_path, text=SCENARIO_TOML, name="scn.toml"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_runs_scenario_file(self, tmp_path, capsys):
        assert main(["run", self._write(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario: cli-test" in out
        assert "us-ciso" in out and "nordic-hydro" in out
        # The per-region scheme mix is surfaced.
        assert "nordic-hydro=co2opt" in out

    def test_repeat_runs_print_identical_tables(self, tmp_path, capsys):
        """Satellite bugfix: one --seed threads through scenario
        construction, so reruns of the same spec are reproducible end to
        end — byte-identical reports."""
        path = self._write(tmp_path)
        assert main(["run", path, "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["run", path, "--seed", "3"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "seed 3" in first

    def test_cli_fidelity_and_seed_override_the_file(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert main(["run", path, "--fidelity", "smoke", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "(smoke, seed 9)" in out

    def test_unknown_key_fails_actionably(self, tmp_path, capsys):
        path = self._write(
            tmp_path, SCENARIO_TOML + "\nbananas = 3\n", "bad.toml"
        )
        assert main(["run", path]) == 2
        err = capsys.readouterr().err
        assert "bananas" in err and "valid" in err

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.toml")]) == 2
        assert "no such scenario file" in capsys.readouterr().err

    def test_experiments_and_scenarios_mix_in_one_invocation(
        self, tmp_path, capsys
    ):
        assert main(["run", "fig6", self._write(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "scenario: cli-test" in out


class TestSweepCommand:
    def _write(self, tmp_path, extra=""):
        path = tmp_path / "sweep.toml"
        path.write_text(SCENARIO_TOML + extra)
        return str(path)

    def test_axis_flag_sweeps(self, tmp_path, capsys):
        assert main(
            [
                "sweep", self._write(tmp_path),
                "--axis", "routing.router=static,carbon-greedy",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 scenarios" in out
        assert "static" in out and "carbon-greedy" in out

    def test_file_sweep_section_with_workers(self, tmp_path, capsys):
        extra = (
            "\n[sweep]\nworkers = 2\n[sweep.axes]\nseed = [0, 1]\n"
        )
        assert main(["sweep", self._write(tmp_path, extra)]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 scenarios" in out
        assert "2 workers" in out

    def test_no_axes_fails_actionably(self, tmp_path, capsys):
        assert main(["sweep", self._write(tmp_path)]) == 2
        assert "nothing to sweep" in capsys.readouterr().err

    def test_bad_axis_fails(self, tmp_path, capsys):
        assert main(
            ["sweep", self._write(tmp_path), "--axis", "seed"]
        ) == 2
        assert "PATH=V1,V2" in capsys.readouterr().err


class TestFleetShimBuildsEqualSpecs:
    """Every legacy `fleet` invocation maps onto one ScenarioSpec."""

    def _spec(self, argv):
        from repro.cli import fleet_args_to_spec

        return fleet_args_to_spec(build_parser().parse_args(["fleet"] + argv))

    def test_default_invocation(self):
        from repro.scenarios import RegionSpec, RoutingSpec, ScenarioSpec

        assert self._spec([]) == ScenarioSpec(
            regions=(
                RegionSpec(name="us-ciso"),
                RegionSpec(name="uk-eso"),
                RegionSpec(name="nordic-hydro"),
            ),
            fidelity="smoke",
            n_gpus=4,
            duration_h=24.0,
            routing=RoutingSpec(router="carbon-greedy"),
        )

    def test_full_flag_surface(self):
        from repro.scenarios import (
            DemandSpec,
            GatingSpec,
            RegionSpec,
            RoutingSpec,
            ScenarioSpec,
        )

        argv = [
            "--regions", "us-ciso,apac-solar",
            "--router", "forecast-aware",
            "--scheme", "co2opt",
            "--n-gpus", "2",
            "--duration-h", "12",
            "--seed", "5",
            "--demand", "diurnal",
            "--ramp-share-per-h", "0.1",
            "--drain-share-per-h", "0.2",
            "--lookahead-h", "4",
            "--gating", "forecast",
            "--wake-energy-j", "900",
            "--devices", "us-ciso=a100,apac-solar=l4",
        ]
        assert self._spec(argv) == ScenarioSpec(
            regions=(
                RegionSpec(name="us-ciso", devices="a100"),
                RegionSpec(name="apac-solar", devices="l4"),
            ),
            scheme="co2opt",
            fidelity="smoke",
            seed=5,
            n_gpus=2,
            duration_h=12.0,
            routing=RoutingSpec(router="forecast-aware", lookahead_h=4.0),
            demand=DemandSpec(
                kind="diurnal", ramp_share_per_h=0.1, drain_share_per_h=0.2
            ),
            gating=GatingSpec(mode="forecast", wake_energy_j=900.0),
        )

    def test_intensity_only_maps_to_efficiency_flag(self):
        spec = self._spec(["--intensity-only"])
        assert spec.routing.efficiency_weighted is False

    def test_mixed_pool_devices_map_to_tuples(self):
        spec = self._spec(
            ["--regions", "us-ciso", "--n-gpus", "2",
             "--devices", "a100:1+l4:1"]
        )
        assert spec.regions[0].devices == ("a100", "l4")


class TestBatchFlags:
    def _spec(self, argv):
        from repro.cli import fleet_args_to_spec

        return fleet_args_to_spec(build_parser().parse_args(["fleet"] + argv))

    def test_parser_defaults_to_no_batch(self):
        args = build_parser().parse_args(["fleet"])
        assert args.batch is None
        assert self._spec([]).batch.enabled is False

    def test_batch_flags_map_to_batch_spec(self):
        from repro.scenarios import BatchSpec

        spec = self._spec(
            [
                "--batch", "120",
                "--batch-requests-per-job", "50",
                "--batch-deadline-h", "6",
                "--batch-arrival", "business-hours",
            ]
        )
        assert spec.batch == BatchSpec(
            jobs_per_h=120.0, requests_per_job=50.0, deadline_h=6.0,
            arrival="business-hours",
        )

    def test_batch_sub_flags_without_enabler_are_dropped(self):
        # Matches the gating flags' shim behavior: sub-flags without the
        # enabling flag leave the feature off rather than erroring.
        spec = self._spec(["--batch-deadline-h", "6"])
        assert spec.batch.enabled is False

    def test_bad_arrival_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "--batch", "120", "--batch-arrival", "bursty"]
            )

    def test_fleet_prints_batch_tables(self, capsys):
        assert main(
            [
                "fleet", "--regions", "nordic-hydro,us-ciso",
                "--n-gpus", "2", "--duration-h", "3",
                "--batch", "60", "--batch-requests-per-job", "30",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "batch workload" in out
        assert "batch deadlines:" in out
        assert "batch shift:" in out

    def test_zero_batch_output_has_no_batch_lines(self, capsys):
        assert main(
            [
                "fleet", "--regions", "nordic-hydro,us-ciso",
                "--n-gpus", "2", "--duration-h", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        # The evaluator cache's "Batch%" column is unrelated; none of the
        # batch-workload lines may appear.
        assert "batch workload" not in out
        assert "batch deadlines:" not in out
        assert "batch shift:" not in out


class TestLookaheadValidation:
    """Regression: a negative lookahead dies at the boundary with a clear
    message, not deep inside a router."""

    def test_negative_lookahead_exits_with_clear_error(self, capsys):
        assert main(["fleet", "--lookahead-h", "-1"]) == 2
        err = capsys.readouterr().err
        assert "lookahead must be non-negative" in err
        assert "-1" in err

    def test_negative_lookahead_rejected_in_scenario_files(self, tmp_path):
        from repro.scenarios import load_scenario_file

        path = tmp_path / "bad.toml"
        path.write_text(
            'n_gpus = 2\n[[regions]]\nname = "us-ciso"\n'
            "[routing]\nlookahead_h = -2.0\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="lookahead must be non-negative"):
            load_scenario_file(path)


class TestBench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.fidelity == "default"
        assert args.out is None and args.check is None

    def test_runs_and_checks_committed_baseline(self, capsys, tmp_path):
        from repro.perf import baseline_path

        out = tmp_path / "baseline.json"
        assert main([
            "bench", "--fidelity", "smoke",
            "--out", str(out),
            "--check", str(baseline_path()),
        ]) == 0
        printed = capsys.readouterr().out
        assert "batch_eval_1k" in printed
        assert "no regression" in printed
        written = json.loads(out.read_text())
        assert written["schema"] == 1
        assert set(written["scenarios"]) == {
            "batch_eval_1k", "sa_epoch", "routing_epoch", "shifting_epoch"
        }

    def test_check_fails_on_regression(self, capsys, tmp_path):
        # A fabricated baseline nothing real can match.
        impossible = tmp_path / "impossible.json"
        impossible.write_text(json.dumps({
            "schema": 1,
            "fidelity": "smoke",
            "calibration_ops_per_s": 1.0,
            "scenarios": {
                "batch_eval_1k": {
                    "ops_per_s": 1e15, "speedup_vs_scalar": 1e6,
                    "items": 1000, "seconds": 1.0, "scalar_seconds": 1.0,
                },
            },
        }))
        assert main([
            "bench", "--fidelity", "smoke", "--check", str(impossible)
        ]) == 1
        assert "regressions" in capsys.readouterr().out

    def test_missing_baseline_one_line_error(self, capsys):
        assert main(["bench", "--check", "/nope/missing.json"]) == 2
        err = capsys.readouterr().err
        assert "no such perf baseline" in err
        assert "Traceback" not in err

    def test_invalid_baseline_one_line_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 7}')
        assert main(["bench", "--check", str(bad)]) == 2
        assert "invalid perf baseline" in capsys.readouterr().err
