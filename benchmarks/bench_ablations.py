"""Ablations of Clover's design constants (DESIGN.md Sec. 7 extensions).

Not a paper figure: quantifies the knobs the paper fixes by fiat — the GED
neighbourhood radius, warm starting, the SA cooling rate and the 5%
re-optimization trigger.
"""

from repro.analysis.ablations import (
    ablate_cooling,
    ablate_ged_threshold,
    ablate_trigger_threshold,
    ablate_warm_start,
)
from repro.analysis.reporting import render

from benchmarks.conftest import once


def test_ablation_ged_threshold(benchmark):
    result = once(benchmark, ablate_ged_threshold)
    print()
    print(render(result, title="Ablation — GED neighbourhood radius"))

    r2 = result.by_setting("2")
    r4 = result.by_setting("4")
    # Radius 2 admits almost no repartitioning (a BASE-started search can
    # never leave {7g}), yet variant swaps alone already capture most of
    # the carbon saving — the mixed-quality effect (Fig. 2) dominates the
    # partitioning effect (Fig. 3).  What the paper's radius 4 buys is
    # *accuracy*: partitioned slices host mid-quality variants cheaply.
    assert r2.accuracy_loss_pct > r4.accuracy_loss_pct + 0.3
    assert r2.carbon_save_pct > r4.carbon_save_pct - 5.0
    # All radii meet the basic effectiveness bar.
    for p in result.points:
        assert p.carbon_save_pct > 20.0


def test_ablation_warm_start(benchmark):
    result = once(benchmark, ablate_warm_start)
    print()
    print(render(result, title="Ablation — warm starting invocations"))

    warm = result.by_setting("on (paper)")
    cold = result.by_setting("off")
    # Cold restarts (SA from BASE every invocation) cannot migrate far
    # enough before the 5-no-improve rule fires: far less carbon saved at
    # several times the optimization cost.  Warm starting is what lets
    # Clover "get more intelligent over time" (Fig. 13).
    assert warm.carbon_save_pct > cold.carbon_save_pct + 10.0
    assert warm.optimization_fraction < 0.5 * cold.optimization_fraction
    assert warm.evaluations < cold.evaluations


def test_ablation_cooling(benchmark):
    result = once(benchmark, ablate_cooling)
    print()
    print(render(result, title="Ablation — SA cooling schedule"))

    # The schedule is a robustness knob, not a cliff: every setting stays
    # within a few points of the paper's 0.05.
    saves = [p.carbon_save_pct for p in result.points]
    assert max(saves) - min(saves) < 12.0
    paper = result.by_setting("0.05 (paper)")
    assert paper.carbon_save_pct > 70.0


def test_ablation_trigger_threshold(benchmark):
    result = once(benchmark, ablate_trigger_threshold)
    print()
    print(render(result, title="Ablation — re-optimization trigger"))

    tight = result.by_setting("1%")
    paper = result.by_setting("5% (paper)")
    loose = result.by_setting("20%")
    # Tighter triggers cost more optimization time ...
    assert tight.optimization_fraction > paper.optimization_fraction
    # ... and looser triggers re-optimize (and evaluate) less.
    assert loose.evaluations < paper.evaluations
    # The paper's 5% keeps near-optimal carbon at moderate overhead.
    assert paper.carbon_save_pct > loose.carbon_save_pct - 3.0
