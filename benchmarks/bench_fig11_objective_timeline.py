"""Fig. 11: the Eq. 3 objective over 48 hours per scheme.

Paper shape: CLOVER's curve closely tracks ORACLE's; BLOVER sits below
CLOVER; CO2OPT is flat-footed (static config, objective moves only with
carbon intensity).
"""

import numpy as np

from repro.analysis.experiments import fig11_objective_timeline
from repro.analysis.reporting import format_series, render

from benchmarks.conftest import FIDELITY, SEED, once


def test_fig11_objective_timeline(benchmark, runner):
    result = once(
        benchmark, fig11_objective_timeline,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fig. 11 — objective f over time"))
    t, f = result.series[("classification", "clover")]
    print(format_series(t, f, label="clover/classification f(t)"))

    for app in result.applications:
        mean = {s: result.mean_objective(app, s) for s in result.schemes}
        # CLOVER tracks ORACLE (within 15% of its mean objective).
        assert mean["clover"] > 0.85 * mean["oracle"]
        # And stays above BLOVER.
        assert mean["clover"] > mean["blover"]

    # The objective responds to carbon intensity: within the CLOVER series
    # there must be meaningful variation over the 48 h.
    t, f = result.series[("classification", "clover")]
    assert f.max() - f.min() > 1.0
