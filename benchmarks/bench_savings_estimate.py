"""Sec. 5.2.1: the back-of-the-envelope daily savings estimate.

Paper: ~170 kg CO2/day at 25M requests/day — equivalent to a gasoline car
driving ~680 km or ~85 kg of coal.  Our absolute numbers differ with the
calibrated power model; the orders of magnitude and the equivalence
arithmetic are asserted.
"""

from repro.analysis.experiments import savings_estimate
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_savings_estimate(benchmark, runner):
    result = once(
        benchmark, savings_estimate, runner=runner, fidelity=FIDELITY, seed=SEED
    )
    print()
    print(render(result, title="Sec. 5.2.1 — physical significance"))

    # Same order of magnitude as the paper's 6.77e-3 g/request.
    assert 1e-4 < result.saving_g_per_request < 1e-1
    # Daily savings in the tens-to-hundreds of kg at 25M requests/day.
    assert 10.0 < result.kg_co2_per_day < 2000.0
    # The equivalences are pure arithmetic on the EPA factors.
    assert result.car_km_equivalent == result.kg_co2_per_day / 0.25
    assert result.coal_kg_equivalent == result.kg_co2_per_day / 2.0
