"""Table 1: the three applications, datasets, architectures and variants."""

from repro.analysis.experiments import table1
from repro.analysis.reporting import render

from benchmarks.conftest import once


def test_table1_applications(benchmark):
    result = once(benchmark, table1)
    print()
    print(render(result, title="Table 1 — ML inference applications"))
    headers, rows = result.table()
    assert len(rows) == 11  # 3 YOLOv5 + 4 ALBERT + 4 EfficientNet
    apps = {r[0] for r in rows}
    assert apps == {"detection", "language", "classification"}
