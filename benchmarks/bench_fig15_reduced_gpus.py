"""Fig. 15: serving the 10-GPU workload with 10, 4 and 2 GPUs.

Paper shape: BASE needs all 10 GPUs (normalized p95 explodes past 3 with
fewer); Clover meets the same SLA with 4 and even 2 GPUs thanks to
partitioning + mixed-quality models.
"""

import numpy as np

from repro.analysis.experiments import fig15_reduced_gpus
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_fig15_reduced_gpus(benchmark, runner):
    result = once(
        benchmark, fig15_reduced_gpus,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fig. 15 — reduced GPU provisioning"))

    for app in result.applications:
        # BASE: fine at 10 GPUs, overloaded (>3x) at 4 and 2.
        assert result.latency_norm[(app, "base", 10)] == 1.0
        assert result.latency_norm[(app, "base", 4)] > 3.0
        assert result.latency_norm[(app, "base", 2)] > 3.0
        # Clover: meets the 10-GPU SLA at every provisioning level.
        for n in result.gpu_counts:
            norm = result.latency_norm[(app, "clover", n)]
            assert np.isfinite(norm)
            assert norm <= 1.25  # p95 stays in the SLA's neighbourhood
