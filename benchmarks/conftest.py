"""Shared fixtures for the paper-reproduction benchmarks.

Each ``bench_figXX`` module regenerates one table/figure of the paper at
``default`` fidelity, prints the measured rows (compare against
EXPERIMENTS.md) and asserts the paper's qualitative shape.  The
session-scoped :class:`ExperimentRunner` memoizes the underlying runs, so
figures that share the CISO-March scheme matrix (Figs. 9-13) pay for it
once.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentRunner

#: Fidelity for all trace-driven benchmarks.
FIDELITY = "default"
SEED = 0


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment harness runs are deterministic and seconds-long; repeating
    them would only re-measure the memo cache.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
