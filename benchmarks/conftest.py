"""Shared fixtures for the paper-reproduction benchmarks.

Each ``bench_figXX`` module regenerates one table/figure of the paper at
``default`` fidelity, prints the measured rows (compare against
EXPERIMENTS.md) and asserts the paper's qualitative shape.  The
session-scoped :class:`ExperimentRunner` memoizes the underlying runs, so
figures that share the CISO-March scheme matrix (Figs. 9-13) pay for it
once.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import ExperimentRunner

#: Fidelity for all trace-driven benchmarks.  ``CLOVER_BENCH_FIDELITY=smoke``
#: drops to CI-speed fidelity — the shape assertions are tuned for
#: ``default``, so smoke runs are entry-point rot checks, not measurements
#: (see :func:`strict`).
FIDELITY = os.environ.get("CLOVER_BENCH_FIDELITY", "default")
SEED = 0


def strict() -> bool:
    """Whether quantitative shape assertions should be enforced.

    The paper-shape assertions (save percentages, orderings) are
    calibrated at ``default`` fidelity; at smoke fidelity the benchmarks
    still run end to end — catching import rot, API drift and crashes —
    but a coarse-grid measurement is not held to the calibrated bands.
    """
    return FIDELITY != "smoke"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment harness runs are deterministic and seconds-long; repeating
    them would only re-measure the memo cache.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
