"""Fig. 14: the lambda knob and the accuracy-threshold mode.

Paper shape: (a) raising lambda trades accuracy for carbon monotonically
(at a fixed 100 gCO2/kWh intensity); (b) with a hard accuracy floor of
0.2-0.8%, Clover still finds 60-75% carbon savings while honouring the
floor.
"""

from repro.analysis.experiments import fig14_lambda_and_threshold
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once, strict


def test_fig14_lambda_and_threshold(benchmark, runner):
    result = once(
        benchmark, fig14_lambda_and_threshold,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fig. 14 — lambda sweep and accuracy floors"))

    # (a) more lambda -> more carbon saved, no better accuracy (small
    # tolerance: 0.5 and 0.9 can converge to near-identical deployments).
    saves = [result.lambda_carbon_save_pct[l] for l in result.lambdas]
    gains = [result.lambda_accuracy_gain_pct[l] for l in result.lambdas]
    assert all(b >= a - 1.5 for a, b in zip(saves, saves[1:]))
    assert all(b <= a + 0.5 for a, b in zip(gains, gains[1:]))
    # Lambda 0.1 favours accuracy strongly, 0.9 saves far more carbon.
    assert gains[0] > -2.5
    assert saves[-1] > saves[0] + 5.0

    # (b) the floor is honoured (within measurement noise) and carbon
    # savings grow as the floor loosens.  The paper reports 60-75% savings
    # already at 0.2-0.8% floors; under our energy calibration those tight
    # floors leave less headroom (see EXPERIMENTS.md) — the monotone shape
    # and the 3.2% floor's ~70% savings reproduce.
    for floor in result.floors:
        assert result.floor_accuracy_loss_pct[floor] <= floor + 0.3
    f_saves = [result.floor_carbon_save_pct[f] for f in result.floors]
    assert all(b >= a - 2.0 for a, b in zip(f_saves, f_saves[1:]))
    if strict():  # the absolute bands are calibrated at default fidelity
        assert result.floor_carbon_save_pct[0.2] > 8.0
        assert result.floor_carbon_save_pct[0.8] > 30.0
        assert result.floor_carbon_save_pct[1.6] > 50.0
        assert result.floor_carbon_save_pct[3.2] > 65.0
