"""Fig. 16: geographic/seasonal robustness across the three traces.

Paper shape: Clover saves >60% carbon with limited accuracy loss on every
(trace, application) pair — California March/September and UK March.
"""

from repro.analysis.experiments import fig16_geographic
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_fig16_geographic(benchmark, runner):
    result = once(
        benchmark, fig16_geographic,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fig. 16 — regional/seasonal robustness"))

    for tr in result.trace_names:
        for app in result.applications:
            assert result.carbon_save_pct[(tr, app)] > 60.0
            assert (
                result.accuracy_loss_pct[(tr, app)]
                < 12.0  # never worse than the CO2OPT floor band
            )
    # Classification stays in the paper's tight loss band everywhere.
    for tr in result.trace_names:
        assert result.accuracy_loss_pct[(tr, "classification")] < 5.5
