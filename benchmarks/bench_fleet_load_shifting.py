"""Beyond the paper: multi-region carbon-aware load shifting.

Expected shape: the carbon-greedy router beats the static capacity split
on total fleet carbon by shifting request share toward the cleanest grid
(the Nordic hydro region), while global SLA attainment — measured against
network-latency-tightened targets — stays at or above the static baseline.
"""

from repro.analysis.experiments import fleet_load_shifting
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once, strict


def test_fleet_load_shifting(benchmark, runner):
    result = once(
        benchmark, fleet_load_shifting,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fleet — routing-policy comparison (3 regions)"))

    static = result.total_carbon_g["static"]
    greedy = result.total_carbon_g["carbon-greedy"]
    assert greedy < static
    assert result.carbon_save_vs_static_pct["carbon-greedy"] > 1.0
    assert (
        result.sla_attainment["carbon-greedy"]
        >= result.sla_attainment["static"]
    )
    # The shift is real: the clean region carries more than its static share
    # (at smoke fidelity the coarse epochs can leave the shares tied).
    if strict():
        assert (
            result.request_shares["carbon-greedy"]["nordic-hydro"]
            > result.request_shares["static"]["nordic-hydro"]
        )
    # Accuracy stays in the paper's loss band despite the routing.
    for router in result.routers:
        assert result.accuracy_loss_pct[router] < 5.5
