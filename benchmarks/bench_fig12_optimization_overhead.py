"""Fig. 12: optimization overhead and candidate SLA compliance.

Paper shape: Clover spends ~1.2% of the 48 h optimizing vs Blover's ~2.3%
(we assert the ratio and a <4% ceiling); the SA guides Clover's candidates
toward SLA-compliant neighbourhoods (~60% compliant), while Blover's
raw-space draws violate far more often.
"""

from repro.analysis.experiments import fig12_optimization_overhead
from repro.analysis.reporting import format_table, render

from benchmarks.conftest import FIDELITY, SEED, once


def test_fig12_optimization_overhead(benchmark, runner):
    result = once(
        benchmark, fig12_optimization_overhead,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fig. 12 — optimization overhead (classification)"))
    rows = [
        (scheme, *(f"{100 * w:.2f}" for w in result.opt_fraction_by_window[scheme]))
        for scheme in ("blover", "clover")
    ]
    windows = len(result.opt_fraction_by_window["clover"])
    print(
        format_table(
            ("Scheme", *[f"{8 * i}-{8 * i + 7}h" for i in range(windows)]),
            rows,
            title="Optimization time % per 8-hour window (Fig. 12a)",
        )
    )

    # Fig. 12a: Clover's total optimization share is small and well below
    # Blover's.
    assert result.opt_fraction["clover"] < 0.04
    assert result.opt_fraction["blover"] > 1.5 * result.opt_fraction["clover"]
    # Fig. 12b: Clover's candidates are mostly SLA-compliant (paper: ~60%),
    # Blover's mostly are not.
    clover_ok = result.evals_sla_met["clover"] / result.evaluations["clover"]
    blover_ok = result.evals_sla_met["blover"] / result.evaluations["blover"]
    assert clover_ok > 0.5
    assert clover_ok > blover_ok
    # Clover's absolute number of SLA-violating evaluations is lower.
    assert (
        result.evals_sla_violated["clover"] < result.evals_sla_violated["blover"]
    )
