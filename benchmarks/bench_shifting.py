"""Beyond the paper: temporal load shifting of deferrable batch work.

Expected shape: admitting the batch the epoch it arrives (spatial-only)
already prices it into the cleanest region with leftover capacity, but
the temporal scheduler can do better — holding lots until the forecast
says the window is clean drops *fleet* carbon below spatial-only at the
same 100% deadline attainment and no interactive SLA loss (the ISSUE-10
acceptance bar).  The gated pair is the interplay headline: reactive
gating sleeps GPUs through demand valleys, and the scheduler's hold
hints keep them awake exactly where the backlog needs the clean window —
batch keeps the fleet awake, but *clean*.
"""

import numpy as np

from repro.analysis.experiments import temporal_shifting
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once, strict


def test_temporal_shifting(benchmark, runner):
    result = once(
        benchmark, temporal_shifting,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Shifting — spatial vs temporal vs joint"))
    print(
        f"\njoint vs spatial-only: "
        f"{result.joint_saving_vs_spatial_pct:.2f}% fleet carbon saved"
    )

    carbon = result.total_carbon_g
    sla = result.sla_attainment
    awake = result.mean_awake_fraction

    # The tentpole acceptance: shifting *when* beats admit-on-arrival at
    # the same spatial router, with every deadline met and no SLA loss.
    assert carbon["joint"] <= carbon["spatial-only"]
    assert result.min_batch_attainment == 1.0
    assert sla["joint"] >= sla["no-batch"] - 1e-12

    # Deferring genuinely moved work in time for the deferred rows.
    assert result.mean_shift_h["spatial-only"] == 0.0
    assert result.mean_shift_h["joint"] > 0.0

    # The batch is never free: every batch row costs more fleet carbon
    # than serving no batch at all on the same fleet.
    for label in ("spatial-only", "temporal-only", "joint"):
        assert carbon[label] >= carbon["no-batch"]

    # Gating interplay: the gated fleet sleeps through demand valleys
    # without batch, and the scheduler's hold hints keep GPUs awake when
    # the backlog needs them.
    assert awake["gated no-batch"] < 1.0
    assert awake["joint+gating"] >= awake["gated no-batch"]
    assert np.isfinite(result.batch_attainment["joint+gating"])

    if strict():
        # Calibrated at default fidelity: the temporal lever is worth a
        # measurable fraction on top of the spatial one, and the
        # scheduler's per-request batch carbon beats admit-on-arrival.
        assert result.joint_saving_vs_spatial_pct > 0.5
        assert (
            result.batch_carbon_g_per_request["joint"]
            < result.batch_carbon_g_per_request["spatial-only"]
        )

    # Accuracy stays in the paper's loss band despite the batch load.
    for label in result.labels:
        assert result.accuracy_loss_pct[label] < 5.5
