"""The ScenarioSpec front door: mixed schemes and parallel sweeps.

Two headlines for the scenario layer:

* **Per-region schemes** (the ROADMAP "fleet-level scheme heterogeneity"
  item): running the accuracy-indifferent CO2OPT optimizer in the clean
  hydro region and CLOVER on the dirty grids lands between the two
  uniform fleets on *both* axes — less carbon than uniform CLOVER, less
  accuracy loss than uniform CO2OPT — a trade-off point neither uniform
  fleet can reach, unlocked by one spec field per region.
* **Parallel sweeps**: scenarios are independent simulations, so a
  process-pool sweep of a 4-scenario grid completes faster than running
  it serially — the right parallel grain for experiment campaigns (the
  per-epoch thread driver inside one run is GIL-bound; whole scenarios
  are not).
"""

import os
import time

from repro.analysis.runner import ExperimentRunner
from repro.scenarios import (
    RegionSpec,
    RoutingSpec,
    ScenarioSpec,
    expand,
    run_sweep,
)

from benchmarks.conftest import FIDELITY, SEED, once, strict

#: The mixed-scheme fleet: clean hydro first, two dirty grids after.
MIXED_REGIONS = ("nordic-hydro", "us-ciso", "uk-eso")


def _scheme_spec(schemes) -> ScenarioSpec:
    return ScenarioSpec(
        regions=tuple(
            RegionSpec(name=name, scheme=scheme)
            for name, scheme in zip(MIXED_REGIONS, schemes)
        ),
        fidelity=FIDELITY,
        seed=SEED,
        n_gpus=2,
        duration_h=24.0,
        routing=RoutingSpec(router="carbon-greedy"),
    )


def test_mixed_scheme_scenario(benchmark, runner: ExperimentRunner):
    """Headline: per-region CO2OPT/CLOVER beats both uniform fleets'
    trade-off frontiers from one declarative spec."""

    def compare():
        return {
            "clover": runner.run_scenario(_scheme_spec(("clover",) * 3)),
            "mixed": runner.run_scenario(
                _scheme_spec(("co2opt", "clover", "clover"))
            ),
            "co2opt": runner.run_scenario(_scheme_spec(("co2opt",) * 3)),
        }

    results = once(benchmark, compare)
    print()
    for label, r in results.items():
        print(
            f"  {label:7s} carbon={r.total_carbon_g:8,.0f} g  "
            f"accLoss={r.accuracy_loss_pct:5.2f}%  "
            f"SLA={100 * r.sla_attainment:5.1f}%  "
            f"schemes={r.scheme_name}"
        )

    mixed, clover, co2 = results["mixed"], results["clover"], results["co2opt"]
    # The mixed fleet really ran mixed (and end to end).
    assert mixed.scheme_name == "co2opt+clover"
    assert mixed.scheme_by_region["nordic-hydro"] == "co2opt"
    assert mixed.total_requests > 0 and mixed.total_carbon_g > 0

    if strict():
        # The trade-off sandwich, on both axes: carbon-wise the mixed
        # fleet sits at or below uniform CLOVER (the hydro region stopped
        # paying accuracy-guard joules), accuracy-wise at or below
        # uniform CO2OPT's loss (only the near-free region gave up
        # accuracy).
        assert mixed.total_carbon_g <= clover.total_carbon_g
        assert co2.total_carbon_g <= mixed.total_carbon_g
        assert mixed.accuracy_loss_pct >= clover.accuracy_loss_pct
        assert mixed.accuracy_loss_pct <= co2.accuracy_loss_pct
        # ... at no SLA cost relative to uniform CLOVER.
        assert mixed.sla_attainment >= clover.sla_attainment - 0.02


def _sweep_grid() -> list[ScenarioSpec]:
    from repro.scenarios import DemandSpec, GatingSpec

    base = ScenarioSpec(
        regions=tuple(
            RegionSpec(name=n)
            for n in ("us-ciso", "uk-eso", "apac-solar")
        ),
        scheme="clover",
        fidelity=FIDELITY,
        seed=SEED,
        n_gpus=2,
        duration_h=48.0,
        routing=RoutingSpec(router="carbon-greedy"),
        demand=DemandSpec(
            kind="diurnal", ramp_share_per_h=0.1, drain_share_per_h=0.2
        ),
        gating=GatingSpec(mode="reactive"),
    )
    return expand(
        base,
        {"routing.router": ["static", "carbon-greedy"], "seed": [0, 1]},
    )


def test_parallel_sweep_beats_serial(benchmark):
    """Acceptance: a >= 4-scenario sweep on 2 workers completes faster
    than the serial drive at default fidelity (identical results)."""
    grid = _sweep_grid()
    assert len(grid) == 4

    t0 = time.perf_counter()
    serial = run_sweep(grid, workers=None)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        return run_sweep(grid, workers=2)

    t0 = time.perf_counter()
    parallel = once(benchmark, parallel_run)
    parallel_s = time.perf_counter() - t0

    print(
        f"\n  serial {serial_s:6.1f}s vs parallel(2) {parallel_s:6.1f}s "
        f"({serial_s / max(parallel_s, 1e-9):.2f}x) over {len(grid)} scenarios"
    )
    for spec, result in zip(grid, serial):
        print(
            f"  {spec.routing.router:14s} seed={spec.seed}  "
            f"carbon={result.total_carbon_g:8,.0f} g"
        )

    # Parallel execution is a pure orchestration change.
    for s, p in zip(serial, parallel):
        assert p.total_carbon_g == s.total_carbon_g
        assert p.total_energy_j == s.total_energy_j

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        cores = os.cpu_count() or 1
    if strict() and cores >= 2:
        # The acceptance bar: at calibrated (default) fidelity the
        # process pool wins wall-clock on >= 2 workers.  The timing claim
        # needs >= 2 actual cores (a single-core box serializes the pool
        # and only pays its overhead) and calibrated fidelity (at smoke,
        # pool startup rivals the seconds-long scenarios).
        assert parallel_s < serial_s
    elif cores < 2:
        print(f"  (timing assertion skipped: {cores} core(s) available)")
