"""Extension: carbon-intensity forecasting quality (DESIGN.md §7).

Not a paper figure — the building block for the paper's future-work
direction (proactive, forecast-driven optimization).  Measures forecast MAE
on each evaluation grid at 1/6/12-hour horizons.
"""

from repro.analysis.reporting import format_table
from repro.carbon.forecast import (
    DiurnalForecaster,
    PersistenceForecaster,
    forecast_mae,
)
from repro.carbon.generator import CISO_MARCH, ESO_MARCH, generate_trace

from benchmarks.conftest import once


def _evaluate():
    rows = []
    results = {}
    for profile, seed in ((CISO_MARCH, 11), (ESO_MARCH, 12)):
        trace = generate_trace(profile, days=7.0, rng=seed)
        p = PersistenceForecaster(trace)
        d = DiurnalForecaster(trace)
        for horizon in (1.0, 6.0, 12.0):
            mae_p = forecast_mae(p, trace, horizon)
            mae_d = forecast_mae(d, trace, horizon)
            rows.append(
                (
                    profile.name, f"{horizon:g}h",
                    f"{mae_p:.1f}", f"{mae_d:.1f}",
                    f"{mae_p / mae_d:.2f}x",
                )
            )
            results[(profile.name, horizon)] = (mae_p, mae_d)
    return rows, results


def test_forecasting_quality(benchmark):
    rows, results = once(benchmark, _evaluate)
    print()
    print(
        format_table(
            ("Grid", "Horizon", "Persistence MAE", "Diurnal MAE", "Gain"),
            rows,
            title="Extension — carbon-intensity forecast error (gCO2/kWh)",
        )
    )

    for (grid, horizon), (mae_p, mae_d) in results.items():
        if horizon >= 6.0:
            # Diurnal structure dominates at multi-hour horizons.
            assert mae_d < mae_p, (grid, horizon)
    # Solar-dominated California is far more predictable than wind-driven UK.
    ciso_12 = results[("US CISO March", 12.0)][1]
    eso_12 = results[("UK ESO March", 12.0)][1]
    assert ciso_12 < eso_12
