"""Fig. 10: the scheme-comparison scatter (CO2OPT/BLOVER/CLOVER/ORACLE).

Paper shape: CO2OPT saves the most carbon with the worst accuracy; CLOVER
is the closest scheme to ORACLE; CLOVER beats BLOVER.
"""

import numpy as np

from repro.analysis.experiments import fig10_scheme_comparison
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_fig10_scheme_comparison(benchmark, runner):
    result = once(
        benchmark, fig10_scheme_comparison,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fig. 10 — scheme comparison vs BASE (48 h)"))

    for app in result.applications:
        save = {s: result.carbon_save_pct[(app, s)] for s in result.schemes}
        gain = {s: result.accuracy_gain_pct[(app, s)] for s in result.schemes}

        # CO2OPT: most carbon saved, worst accuracy.
        assert save["co2opt"] >= max(save.values()) - 1.0
        assert gain["co2opt"] == min(gain.values())
        # CLOVER within 8 points of ORACLE's carbon saving (paper: ~5).
        assert save["oracle"] - save["clover"] < 8.0
        # CLOVER beats BLOVER on carbon while keeping accuracy no worse
        # than CO2OPT's floor.
        assert save["clover"] > save["blover"]
        assert gain["clover"] >= gain["co2opt"]
        # CLOVER is the closest scheme to ORACLE in the 2-D plane — except
        # for detection, where the Eq. 3 optimum sits at the CO2OPT corner
        # under our energy calibration, making CO2OPT trivially closest
        # (see EXPERIMENTS.md).
        if app == "detection":
            assert result.closest_to_oracle(app) in ("clover", "co2opt")
        else:
            assert result.closest_to_oracle(app) == "clover"
