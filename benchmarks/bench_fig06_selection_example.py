"""Fig. 6: the worked objective-selection example, reproduced to the digit."""

from repro.analysis.experiments import fig6_selection_example
from repro.analysis.reporting import render

from benchmarks.conftest import once


def test_fig6_selection_example(benchmark):
    result = once(benchmark, fig6_selection_example)
    print()
    print(render(result, title="Fig. 6 — carbon-intensity-driven selection"))

    # High intensity -> the frugal config A; low intensity -> accurate B.
    assert result.preferred[500.0] == "A"
    assert result.preferred[100.0] == "B"
    _, rows = result.table()
    objectives = {(r[0], r[1]): float(r[5]) for r in rows}
    # Paper's computed cells (A@500 = 4.4, A@100 = 6.0, B@100 = 7.0; the
    # printed 3.2 for B@500 is inconsistent with Eq. 3, which gives 2.2).
    assert objectives[("500", "A")] == 4.4
    assert objectives[("500", "B")] == 2.2
    assert objectives[("100", "A")] == 6.0
    assert objectives[("100", "B")] == 7.0
