"""Fig. 3: MIG partitioning trade-off — carbon down ~25-30%, latency up.

C1 = full GPU (#1), C2 = {4g,2g,1g} (#3), C3 = seven 1g slices (#19).
"""

import pytest

from repro.analysis.experiments import fig3_partitioning
from repro.analysis.reporting import render

from benchmarks.conftest import once


@pytest.mark.parametrize(
    "application", ["detection", "language", "classification"]
)
def test_fig3_partitioning(benchmark, application):
    result = once(benchmark, fig3_partitioning, application)
    print()
    print(
        render(
            result,
            title=f"Fig. 3 — GPU partitioning ({application}: {result.variant_name})",
        )
    )
    c1, c2, c3 = result.carbon_norm
    l1, l2, l3 = result.latency_norm
    # Carbon decreases monotonically with partitioning granularity ...
    assert c1 == 1.0 and c3 < c2 < c1
    # ... by the paper's ~30% at C3 (we accept 20-40%) ...
    assert 0.60 <= c3 <= 0.80
    # ... while per-request latency increases monotonically.
    assert l1 == 1.0 and l3 > l2 > l1
