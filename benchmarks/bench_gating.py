"""Beyond the paper: elastic GPU capacity (power-gating) under demand.

Expected shape: with an always-on fleet, carbon-greedy routing beats the
static geo-DNS split by only the dynamic margin (~4%); once idle power
follows traffic, draining a dirty region also turns its idle draw off and
the same routing gap grows several-fold (the ISSUE-3 acceptance bar is
>= 2x).  The static split itself never drops a region low enough to gate —
gating and carbon-aware drain compound, neither works alone.  Reactive
wakes pay a latency window served at yesterday's capacity; forecast
pre-waking files the wake one epoch ahead from the router's lookahead
window and lands at equal-or-better user SLA for equal-or-lower carbon.
A gated fleet must never spend *more* energy than its always-on twin.
"""

from repro.analysis.experiments import gating_elasticity
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_gating_elasticity(benchmark, runner):
    result = once(
        benchmark, gating_elasticity,
        runner=runner, fidelity=FIDELITY, seed=SEED, n_gpus=2,
    )
    print()
    print(render(result, title="Gating — elastic capacity comparison"))
    print(
        f"\ncarbon-greedy-vs-static gap: {result.always_on_gap_pct:.2f}% "
        f"always-on -> {result.gated_gap_pct:.2f}% gated "
        f"({result.gap_growth:.1f}x)"
    )

    carbon = result.total_carbon_g
    sla = result.user_sla_attainment

    # The tentpole acceptance: gating multiplies the routing gap >= 2x.
    assert result.always_on_gap_pct > 0.0
    assert result.gated_gap_pct >= 2.0 * result.always_on_gap_pct

    # Gating never spends more energy than always-on, router by router.
    energy = result.total_energy_j
    assert energy["reactive/static"] <= energy["always-on/static"] * (1 + 1e-9)
    assert energy["reactive/greedy"] <= energy["always-on/greedy"] * (1 + 1e-9)

    # Idle power genuinely followed traffic for the carbon-aware policies.
    assert result.mean_awake_fraction["reactive/greedy"] < 1.0
    assert result.mean_awake_fraction["prewake/forecast"] < 1.0
    # ... but the static split had nothing to gate.
    assert result.mean_awake_fraction["reactive/static"] == 1.0

    # Forecast pre-wake beats reactive gating: user SLA no worse, carbon
    # no higher, and at least one of the two strictly better.
    assert sla["prewake/forecast"] >= sla["reactive/greedy"]
    assert carbon["prewake/forecast"] <= carbon["reactive/greedy"]
    assert (
        sla["prewake/forecast"] > sla["reactive/greedy"]
        or carbon["prewake/forecast"] < carbon["reactive/greedy"]
    )

    # Accuracy stays in the paper's loss band despite the gating.
    for label in result.labels:
        assert result.accuracy_loss_pct[label] < 5.5
