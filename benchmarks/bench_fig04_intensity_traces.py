"""Fig. 4 (14-day regional variation) and Fig. 8 (48-hour eval traces)."""

from repro.analysis.experiments import (
    fig4_intensity_variation,
    fig8_evaluation_traces,
)
from repro.analysis.reporting import format_series, render

from benchmarks.conftest import once


def test_fig4_fourteen_day_variation(benchmark):
    result = once(benchmark, fig4_intensity_variation)
    print()
    print(render(result, title="Fig. 4 — 14-day carbon intensity (gCO2/kWh)"))

    by_name = {s.name: s for s in result.stats}
    # Paper: swings of >200 gCO2/kWh within half a day occur.
    assert max(s.max_half_day_swing for s in result.stats) > 200.0
    # UK is wind-driven: noisier than California relative to its mean.
    assert (
        by_name["UK ESO March"].std_ci / by_name["UK ESO March"].mean_ci
        > by_name["US CISO March"].std_ci / by_name["US CISO March"].mean_ci
    )
    # All four stay in the plausible grid range.
    for s in result.stats:
        assert 10.0 <= s.min_ci and s.max_ci <= 600.0


def test_fig8_evaluation_traces(benchmark):
    result = once(benchmark, fig8_evaluation_traces)
    print()
    print(render(result, title="Fig. 8 — 48-hour evaluation traces"))
    for trace in result.traces:
        print(format_series(trace.times_h, trace.values, label=trace.name))

    assert len(result.traces) == 3
    for trace in result.traces:
        assert trace.span_h == 48.0
    by_name = {s.name: s for s in result.stats}
    # Fig. 8 axis ranges.
    assert 280 <= by_name["US CISO March"].max_ci <= 400
    assert by_name["UK ESO March"].min_ci <= 120
