"""Microbenchmarks of the hot substrate paths.

These are conventional pytest-benchmark timings (many rounds) of the three
inner loops whose performance bounds a full 48-hour run: the discrete-event
simulator, the analytical queue estimator, and the graph machinery
(GED + histogram decomposition) the optimizer calls per move.
"""

import numpy as np
import pytest

from repro.core.config import uniform_config
from repro.core.graph import ConfigGraph
from repro.core.moves import MoveGenerator
from repro.gpu.cluster import decompose_histogram
from repro.models.perf import PerfModel
from repro.models.zoo import default_zoo
from repro.serving.analytic import estimate_fifo
from repro.serving.des import simulate_fifo
from repro.serving.workload import PoissonWorkload


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


def test_des_10k_requests_70_instances(benchmark):
    """DES throughput: one measurement window of the full 70-slice cluster."""
    arrivals = PoissonWorkload(2000.0).arrivals_fixed_count(10_000, 0)
    service = np.random.default_rng(1).uniform(0.005, 0.05, 70)
    batch = benchmark(simulate_fifo, arrivals, service, 0.08, 2)
    assert len(batch) == 10_000


def test_analytic_estimator(benchmark):
    """The optimizer's per-candidate latency estimate."""
    service = np.random.default_rng(2).uniform(0.005, 0.05, 70)

    def run():
        est = estimate_fifo(service, rate_per_s=1000.0)
        return est.p95_ms()

    p95 = benchmark(run)
    assert np.isfinite(p95)


def test_graph_edit_distance(benchmark, zoo):
    fam = zoo.family("efficientnet")
    g1 = ConfigGraph.from_config(uniform_config(fam, 10, 19, 1), 4)
    g2 = ConfigGraph.from_config(uniform_config(fam, 10, 3, 3), 4)
    d = benchmark(g1.ged, g2)
    assert d > 0


def test_histogram_decomposition(benchmark):
    """Exact-cover feasibility for a 10-GPU histogram (memoized DP)."""
    h = (8, 1, 0, 1, 8)  # mixes of #19, #3 and #1

    def run():
        decompose_histogram.__wrapped__ if False else None
        return decompose_histogram(h, 10)

    result = benchmark(run)
    assert result is not None


def test_move_proposal(benchmark, zoo):
    """One SA neighbourhood proposal on the full 10-GPU cluster."""
    moves = MoveGenerator(zoo=zoo, family="efficientnet")
    fam = zoo.family("efficientnet")
    config = uniform_config(fam, 10, 3, 2)
    rng = np.random.default_rng(3)
    proposal = benchmark(moves.propose, config, rng)
    assert proposal is not None


def test_full_config_evaluation(benchmark, zoo):
    """End-to-end analytic evaluation of one candidate (the SA inner loop)."""
    from repro.core.evaluator import ConfigEvaluator
    from repro.serving.workload import default_rate

    perf = PerfModel()
    fam = zoo.family("efficientnet")
    rate = default_rate(fam, perf, 10)
    config = uniform_config(fam, 10, 19, 2)

    def run():
        # Fresh evaluator each call: measure the evaluation, not the cache.
        evaluator = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=10,
            method="analytic",
        )
        return evaluator.evaluate(config)

    ev = benchmark(run)
    assert not ev.overloaded
