"""The perf trajectory's pinned scenarios + committed-baseline gate.

Unlike the figure benches, these runs are *measurements with teeth*: the
scenario results are compared against the committed
``BENCH_perf_core.json`` (30% tolerance, calibration-normalized — see
:mod:`repro.perf.baseline`), and the headline 1k-candidate batch
evaluation must hold its >= 10x speedup over the scalar loop at strict
fidelity.  Regenerate the baseline after an intentional perf change
with::

    clover-repro bench --out BENCH_perf_core.json
"""

import pytest

from conftest import FIDELITY, once, strict
from repro.perf import (
    DEFAULT_TOLERANCE,
    baseline_path,
    check_regressions,
    load_baseline,
    run_suite,
    scenario_batch_eval_1k,
    scenario_routing_epoch,
    scenario_sa_epoch,
    scenario_shifting_epoch,
)

#: The ISSUE-pinned floor on the headline scenario (strict fidelity only;
#: smoke runs are gated by the committed baseline instead).
MIN_BATCH_EVAL_SPEEDUP = 10.0


def test_batch_eval_1k(benchmark):
    """1000 SA-walk candidates: evaluate_batch vs the scalar loop."""
    result = once(benchmark, scenario_batch_eval_1k, FIDELITY)
    print(
        f"\nbatch_eval_1k: {result.ops_per_s:,.0f} evals/s, "
        f"{result.speedup_vs_scalar:.1f}x vs scalar"
    )
    assert result.items == 1000
    if strict():
        assert result.speedup_vs_scalar >= MIN_BATCH_EVAL_SPEEDUP


def test_sa_epoch(benchmark):
    """One annealing invocation, batched neighbourhood vs scalar chain."""
    result = once(benchmark, scenario_sa_epoch, FIDELITY)
    print(
        f"\nsa_epoch: {result.ops_per_s:,.0f} evals/s, "
        f"{result.speedup_vs_scalar:.1f}x vs scalar"
    )
    if strict():
        assert result.speedup_vs_scalar > 1.0


def test_routing_epoch(benchmark):
    """A 5-region diurnal day of cell planning vs the scalar reference."""
    result = once(benchmark, scenario_routing_epoch, FIDELITY)
    print(
        f"\nrouting_epoch: {result.ops_per_s:,.0f} epochs/s, "
        f"{result.speedup_vs_scalar:.1f}x vs scalar"
    )
    if strict():
        assert result.speedup_vs_scalar > 1.0


def test_shifting_epoch(benchmark):
    """A day of fine-grained batch-slot planning vs the scalar reference."""
    result = once(benchmark, scenario_shifting_epoch, FIDELITY)
    print(
        f"\nshifting_epoch: {result.ops_per_s:,.0f} epochs/s, "
        f"{result.speedup_vs_scalar:.1f}x vs scalar"
    )
    if strict():
        assert result.speedup_vs_scalar > 1.0


def test_no_regression_vs_committed_baseline(benchmark):
    """The CI gate: a fresh suite must stay within the tolerance band."""
    path = baseline_path()
    if not path.exists():  # pragma: no cover - the baseline is committed
        pytest.fail(f"committed perf baseline missing: {path}")
    baseline = load_baseline(path)
    suite = once(benchmark, run_suite, FIDELITY)
    failures = check_regressions(suite, baseline, DEFAULT_TOLERANCE)
    assert not failures, "perf regression vs committed baseline:\n" + "\n".join(
        failures
    )
