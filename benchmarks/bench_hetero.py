"""Beyond the paper: heterogeneous GPU fleets with efficiency-aware routing.

Expected shape: on a mixed A100/L4 fleet (the dirty APAC grid runs cheap
low-power L4 inference cards, the A100 regions keep MIG) under diurnal
demand with reactive power-gating, ranking regions on *effective
gCO2/request* — grid intensity x the deployed configuration's marginal
joules/request — achieves strictly lower fleet carbon than the
intensity-only carbon-greedy ranking at equal-or-better user SLA.  The
intensity ranking's blind spot is silicon: it will happily dump load on a
clean grid whose devices burn more joules per request (or keep an
inefficient pool awake that the efficiency ranking would drain and gate).
On a homogeneous fleet the two rankings are identical by construction, so
every gram of the gap measured here is bought by pricing the device.
"""

from repro.analysis.experiments import hetero_fleet
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once, strict


def test_hetero_fleet(benchmark, runner):
    result = once(
        benchmark, hetero_fleet,
        runner=runner, fidelity=FIDELITY, seed=SEED, n_gpus=2,
    )
    print()
    print(render(result, title="Hetero — efficiency-aware vs intensity-only"))
    print(
        f"\nefficiency-aware saves {result.efficiency_saving_pct:.2f}% fleet "
        "carbon over intensity-only carbon-greedy on the same mixed fleet"
    )

    carbon = result.total_carbon_g
    sla = result.user_sla_attainment

    # The tentpole acceptance bar: efficiency-aware routing achieves
    # strictly lower fleet carbon than intensity-only carbon-greedy on the
    # mixed A100/L4 fleet, at equal-or-better user SLA attainment.
    assert carbon["greedy/efficiency"] < carbon["greedy/intensity"]
    assert (
        sla["greedy/efficiency"] >= sla["greedy/intensity"] - 1e-12
    )

    # Both greedy rankings beat the static geo-DNS baseline.
    assert carbon["greedy/efficiency"] < carbon["static"]
    assert carbon["greedy/intensity"] < carbon["static"]

    if strict():
        # The gap is bought by the device term alone; at calibrated
        # fidelity it is a solid margin, not a rounding artifact.
        assert result.efficiency_saving_pct >= 0.5

        # Efficiency-aware drains (and gates) the poorly-amortizing pool
        # harder: no more silicon awake than the intensity ranking keeps.
        assert (
            result.mean_awake_fraction["greedy/efficiency"]
            <= result.mean_awake_fraction["greedy/intensity"] + 1e-12
        )

        # The forecast-aware router composes the efficiency ranking with
        # lookahead pre-positioning without giving the gain back.
        assert carbon["forecast/efficiency"] <= carbon["greedy/intensity"]

    # Accuracy stays in the paper's loss band on every row.
    for label in result.labels:
        assert result.accuracy_loss_pct[label] < 5.5
