"""Fig. 9: Clover vs BASE — accuracy loss, carbon reduction, SLA latency.

Paper shape: large carbon savings for every application (paper: >75%;
we assert >60% at benchmark fidelity), modest accuracy loss (always below
the CO2OPT worst case), and normalized p95 below 1.
"""

from repro.analysis.experiments import fig9_effectiveness
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_fig9_effectiveness(benchmark, runner):
    result = once(
        benchmark, fig9_effectiveness, runner=runner, fidelity=FIDELITY, seed=SEED
    )
    print()
    print(render(result, title="Fig. 9 — Clover vs BASE (48 h, US CISO March)"))

    for app in result.applications:
        assert result.carbon_reduction_pct[app] > 60.0
        assert result.sla_latency_norm[app] < 1.0
        assert 0.0 < result.accuracy_loss_pct[app] < 12.0
    # Overall: the paper's "~80% carbon saving at ~3% accuracy loss"
    # aggregate — we hold the saving band and report the loss.
    assert result.overall_carbon_reduction_pct > 65.0
    # Classification lands in the paper's 2-4% loss band.
    assert 1.0 <= result.accuracy_loss_pct["classification"] <= 5.0
