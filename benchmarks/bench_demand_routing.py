"""Beyond the paper: geo-diurnal demand with forecast-driven routing.

Expected shape: under nonstationary per-origin demand with session-drain
inertia and per-(origin, region) SLA charging, the carbon-greedy router
beats the static geo-DNS split on total fleet carbon, and the
forecast-aware router matches or beats carbon-greedy by pre-positioning
share ahead of predicted intensity-trough edges — both at equal-or-better
user SLA attainment than static.  The forecast margin over myopic greedy
is structurally modest while the GPU fleet is always-on (idle power does
not follow traffic); see the ROADMAP's power-gating follow-up.
"""

from repro.analysis.experiments import demand_routing
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_demand_routing(benchmark, runner):
    result = once(
        benchmark, demand_routing,
        runner=runner, fidelity=FIDELITY, seed=SEED, n_gpus=2,
    )
    print()
    print(render(result, title="Demand — geo-diurnal routing comparison"))

    static = result.total_carbon_g["static"]
    greedy = result.total_carbon_g["carbon-greedy"]
    forecast = result.total_carbon_g["forecast-aware"]
    # The acceptance ordering: static > greedy >= forecast-aware.
    assert greedy < static
    assert forecast <= greedy
    assert result.carbon_save_vs_static_pct["carbon-greedy"] > 2.0
    # Pair-aware carbon routing keeps the user SLA at or above the
    # pair-blind static baseline.
    for router in ("carbon-greedy", "forecast-aware"):
        assert (
            result.user_sla_attainment[router]
            >= result.user_sla_attainment["static"]
        )
    # The shift is real: the dirty APAC grid sheds share.
    assert (
        result.request_shares["carbon-greedy"]["apac-solar"]
        < result.request_shares["static"]["apac-solar"]
    )
    # Accuracy stays in the paper's loss band despite the routing.
    for router in result.routers:
        assert result.accuracy_loss_pct[router] < 5.5
