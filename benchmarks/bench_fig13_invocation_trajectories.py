"""Fig. 13: what Clover explores at invocations I, II and the last.

Paper shape: the first invocation starts blind (some SLA-violating
candidates); later invocations warm-start from the previous best, evaluate
mostly SLA-compliant candidates, and converge in fewer evaluations.
"""

import numpy as np

from repro.analysis.experiments import fig13_invocation_trajectories
from repro.analysis.reporting import render

from benchmarks.conftest import FIDELITY, SEED, once


def test_fig13_invocation_trajectories(benchmark, runner):
    result = once(
        benchmark, fig13_invocation_trajectories,
        runner=runner, fidelity=FIDELITY, seed=SEED,
    )
    print()
    print(render(result, title="Fig. 13 — Clover exploration per invocation"))
    per_inv = np.asarray(result.evaluations_per_invocation, dtype=float)
    print(
        f"evaluations/invocation: first={per_inv[0]:.0f} "
        f"mean={per_inv.mean():.1f} last={per_inv[-1]:.0f}"
    )

    # Later invocations are cheaper than the first (warm start): the mean
    # over the last quarter is below the first invocation's count.
    last_quarter = per_inv[3 * len(per_inv) // 4:]
    assert last_quarter.mean() <= per_inv[0]

    # SLA compliance of evaluated candidates improves from invocation I to
    # the later ones ("its initial configuration is invocation (I)'s best").
    def compliance(label):
        traj = result.trajectories[label]
        return sum(1 for *_ , ok in traj if ok) / max(1, len(traj))

    assert compliance("last") >= compliance("I (first)")
