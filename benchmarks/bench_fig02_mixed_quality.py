"""Fig. 2: mixed-quality model mixtures on a 4-GPU system.

Paper shape: the star (highest-quality everywhere) anchors (0%, 1.0);
mixtures reach >60% carbon savings at <5% accuracy loss and >80% savings
at 10% loss.
"""

import numpy as np

from repro.analysis.experiments import fig2_mixed_quality
from repro.analysis.reporting import format_table

from benchmarks.conftest import once


def test_fig2_mixed_quality_frontier(benchmark):
    result = once(benchmark, fig2_mixed_quality)

    frontier = result.pareto_points()
    print()
    print(
        format_table(
            ("CarbonSave%", "Accuracy(norm)"),
            [(f"{c:.1f}", f"{a:.4f}") for c, a in frontier],
            title="Fig. 2 — Pareto frontier of variant mixtures (4 GPUs)",
        )
    )
    print(
        f"best saving @<=5% loss: {result.best_saving_within_loss(5.0):.1f}% | "
        f"@<=10% loss: {result.best_saving_within_loss(10.0):.1f}%"
    )

    # The paper's two headline numbers.
    assert result.best_saving_within_loss(5.0) > 60.0
    assert result.best_saving_within_loss(10.0) > 80.0
    # The anchor point.
    star = result.mixtures.index((4, 4, 4, 4))
    assert result.carbon_reduction_pct[star] == 0.0
    assert result.accuracy_norm[star] == 1.0
    # Trade-off direction: max saving comes with the worst accuracy.
    worst_acc = float(result.accuracy_norm.min())
    at_max_save = result.accuracy_norm[np.argmax(result.carbon_reduction_pct)]
    assert at_max_save == worst_acc
