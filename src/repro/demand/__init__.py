"""repro.demand — geo-diurnal demand: who asks, from where, and when.

The seed reproduction models demand as one constant global Poisson rate.
This package makes demand *geographic and diurnal*: a
:class:`~repro.demand.origins.GeoOrigin` registry places population-weighted
demand centres in coarse zones with UTC offsets; a
:class:`~repro.demand.diurnal.DiurnalDemandModel` turns them into
nonstationary per-origin arrival rates (sinusoidal day curve in local time,
weekend damping, burst events); a
:class:`~repro.demand.matrix.LatencyMatrix` prices the network hop of every
(origin, serving-region) pair and :func:`~repro.demand.matrix.assign_origin_traffic`
maps each epoch's origin demand onto the router's regional totals.

Quickstart::

    from repro.demand import DiurnalDemandModel, default_origins

    model = DiurnalDemandModel(
        origins=default_origins(), mean_total_rate_per_s=120.0
    )
    model.rates(t_h=20.0)       # per-origin req/s at hour 20 of the run
    model.total_rate(t_h=20.0)  # the fleet's global rate that epoch

The fleet coordinator accepts a demand model directly; see
:meth:`repro.fleet.FleetCoordinator.create`.
"""

from repro.demand.diurnal import (
    BurstEvent,
    ConstantDemandModel,
    DemandModel,
    DiurnalDemandModel,
    WEEKEND_DAYS,
    default_demand,
)
from repro.demand.matrix import (
    LatencyMatrix,
    ZONE_LATENCY_MS,
    assign_origin_traffic,
    default_latency_matrix,
)
from repro.demand.origins import (
    GeoOrigin,
    ORIGIN_NAMES,
    ZONES,
    default_origins,
    normalized_weights,
    origin_by_name,
)

__all__ = [
    "GeoOrigin",
    "ORIGIN_NAMES",
    "ZONES",
    "origin_by_name",
    "default_origins",
    "normalized_weights",
    "DemandModel",
    "ConstantDemandModel",
    "DiurnalDemandModel",
    "BurstEvent",
    "default_demand",
    "WEEKEND_DAYS",
    "LatencyMatrix",
    "ZONE_LATENCY_MS",
    "default_latency_matrix",
    "assign_origin_traffic",
]
