"""Origin→region network latency: a matrix, not a per-region scalar.

The PR-1 fleet charged each region one scalar network latency — implicitly
assuming all users sit in one place.  With geographic origins the latency a
user pays depends on the *(origin, serving region)* pair: a European request
served in Europe pays ~12 ms, the same request shipped to an APAC region
pays ~75 ms.  This module prices that matrix from the coarse zone of each
endpoint and provides the greedy minimum-latency *transport* that maps an
epoch's per-origin demand onto the router's per-region totals.

The zone-pair prices are one-way-equivalent WAN latencies calibrated to
published inter-continental RTT ranges (halved), rounded to keep the
arithmetic legible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.demand.origins import GeoOrigin, ZONES

__all__ = [
    "ZONE_LATENCY_MS",
    "LatencyMatrix",
    "default_latency_matrix",
    "assign_origin_traffic",
]

#: One-way-equivalent network latency between coarse zones, milliseconds.
#: Symmetric; the diagonal is the intra-zone (user → in-zone datacenter)
#: hop.  Cross-zone figures assume an anycast front door onto a private
#: backbone (roughly half the public-internet RTT/2 for each pair); they
#: matter a great deal, because a serving fleet's p95 budget is ~90 ms —
#: at these prices cross-zone serving is *feasible but expensive*, which
#: is the regime where latency-aware carbon routing is interesting at all.
ZONE_LATENCY_MS: dict[tuple[str, str], float] = {
    ("na", "na"): 10.0,
    ("eu", "eu"): 8.0,
    ("apac", "apac"): 14.0,
    ("na", "eu"): 35.0,
    ("na", "apac"): 55.0,
    ("eu", "apac"): 65.0,
}


def zone_latency_ms(zone_a: str, zone_b: str) -> float:
    """Latency between two zones (symmetric lookup)."""
    for z in (zone_a, zone_b):
        if z not in ZONES:
            raise KeyError(f"unknown zone {z!r}; valid: {', '.join(ZONES)}")
    try:
        return ZONE_LATENCY_MS[(zone_a, zone_b)]
    except KeyError:
        return ZONE_LATENCY_MS[(zone_b, zone_a)]


@dataclass(frozen=True)
class LatencyMatrix:
    """Network latency for every (origin, region) pair, milliseconds.

    Rows are origins, columns regions, both in fleet order.  The matrix is
    the SLA-charging authority of the demand subsystem: end-to-end latency
    of a request from origin ``o`` served in region ``r`` is the region's
    service latency plus ``latency_ms[o, r]``.
    """

    origin_names: tuple[str, ...]
    region_names: tuple[str, ...]
    latency_ms: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.latency_ms, dtype=np.float64)
        expected = (len(self.origin_names), len(self.region_names))
        if m.shape != expected:
            raise ValueError(
                f"latency matrix shape {m.shape} != (origins, regions) {expected}"
            )
        if np.any(m < 0):
            raise ValueError("network latencies must be non-negative")
        m.setflags(write=False)
        object.__setattr__(self, "latency_ms", m)

    def latency(self, origin: str, region: str) -> float:
        """The (origin, region) entry by name."""
        try:
            i = self.origin_names.index(origin)
        except ValueError:
            raise KeyError(f"unknown origin {origin!r}") from None
        try:
            j = self.region_names.index(region)
        except ValueError:
            raise KeyError(f"unknown region {region!r}") from None
        return float(self.latency_ms[i, j])

    def weighted_region_latency(self, origin_weights: np.ndarray) -> np.ndarray:
        """Demand-weighted mean latency into each region.

        The expected network hop of a region serving the full global
        traffic mix; the fleet reports use it as a diagnostic.
        """
        w = np.asarray(origin_weights, dtype=np.float64)
        if w.shape != (len(self.origin_names),):
            raise ValueError(
                f"{w.size} weights for {len(self.origin_names)} origins"
            )
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("origin weights must be non-negative, sum positive")
        return (w / w.sum()) @ self.latency_ms

    def nearest_origin_latency(self) -> np.ndarray:
        """Each region's hop from its nearest origin (column minima).

        The scalar a region's SLA baseline is tightened by at assembly
        time: a datacenter is provisioned for the users it sits next to,
        and the *extra* hop of farther origins routed there is charged per
        (origin, region) pair when attainment is judged — not by
        pre-shrinking the whole region's budget to the global mix's mean.
        """
        return self.latency_ms.min(axis=0)


def default_latency_matrix(
    origins: tuple[GeoOrigin, ...], regions
) -> LatencyMatrix:
    """Price every (origin, region) pair from the endpoints' zones.

    ``regions`` is any sequence of objects with ``name`` and ``zone``
    attributes (:class:`repro.fleet.regions.Region` qualifies; so does a
    test double).
    """
    matrix = np.array(
        [
            [zone_latency_ms(o.zone, r.zone) for r in regions]
            for o in origins
        ],
        dtype=np.float64,
    )
    return LatencyMatrix(
        origin_names=tuple(o.name for o in origins),
        region_names=tuple(r.name for r in regions),
        latency_ms=matrix,
    )


def assign_origin_traffic(
    origin_rates: np.ndarray,
    region_rates: np.ndarray,
    latency_ms: np.ndarray,
) -> np.ndarray:
    """Map per-origin supply onto per-region totals, nearest pairs first.

    Greedy minimum-latency transport: walk (origin, region) pairs in
    increasing latency, assigning ``min(remaining supply, remaining
    capacity)`` to each.  Because the router conserves the global rate
    (``sum(origin_rates) == sum(region_rates)``), the result ``M`` is a
    complete transport plan: ``M.sum(axis=1) == origin_rates`` and
    ``M.sum(axis=0) == region_rates``.  Ties break on (latency, origin,
    region) index order, so the plan is deterministic.

    This is how SLA tightening is *charged* per (origin, serving-region)
    pair: the plan says which origins' requests each region actually
    served, and the latency matrix prices each cell.
    """
    supply = np.asarray(origin_rates, dtype=np.float64).copy()
    demand = np.asarray(region_rates, dtype=np.float64).copy()
    lat = np.asarray(latency_ms, dtype=np.float64)
    if lat.shape != (supply.size, demand.size):
        raise ValueError(
            f"latency shape {lat.shape} != (origins, regions) "
            f"{(supply.size, demand.size)}"
        )
    if np.any(supply < 0) or np.any(demand < 0):
        raise ValueError("rates must be non-negative")
    total_supply, total_demand = float(supply.sum()), float(demand.sum())
    if not np.isclose(total_supply, total_demand, rtol=1e-6, atol=1e-9):
        raise ValueError(
            f"origin supply {total_supply:g} != region demand {total_demand:g}"
        )
    plan = np.zeros_like(lat)
    order = np.argsort(lat, axis=None, kind="stable")
    for flat in order:
        o, r = np.unravel_index(flat, lat.shape)
        take = min(supply[o], demand[r])
        if take > 0.0:
            plan[o, r] = take
            supply[o] -= take
            demand[r] -= take
    # Every pair was visited with take = min(supply, demand), so no end
    # state leaves both a positive supply and a positive demand: the plan
    # is complete up to the (tolerance-checked) totals mismatch.
    return plan
