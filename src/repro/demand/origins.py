"""GeoOrigin: where the fleet's user demand comes from.

The seed reproduction (and the PR-1 fleet) drive every region from one
constant global Poisson rate — demand has no geography and no clock.  Real
inference traffic originates from population centres whose users are awake
at different UTC hours, which is exactly what makes *geo-diurnal* routing
interesting: an origin's demand peak sweeps around the planet while each
grid's solar trough stays pinned to its own local noon.

An origin bundles the three facts the demand layer needs: a relative
population (demand) weight, a UTC offset that phases its day curve, and a
coarse geographic *zone* used to price origin→region network latency (see
:mod:`repro.demand.matrix`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GeoOrigin",
    "ORIGIN_NAMES",
    "ZONES",
    "origin_by_name",
    "default_origins",
    "normalized_weights",
]

#: Coarse geographic zones shared with :class:`repro.fleet.regions.Region`.
ZONES = ("na", "eu", "apac")


@dataclass(frozen=True)
class GeoOrigin:
    """One demand origin: a population centre aggregated to a coarse zone.

    Attributes
    ----------
    name:
        Registry key (``"north-america"``) — also labels per-origin reports.
    population_weight:
        Relative share of global demand this origin generates (weights are
        normalized across the origin set; only ratios matter).
    utc_offset_h:
        Local time = fleet time + offset.  Phases the origin's day curve:
        Asia's evening peak lands ~14 fleet-hours before North America's.
    zone:
        Coarse geographic zone (one of :data:`ZONES`) used by the
        origin→region latency matrix.
    """

    name: str
    population_weight: float
    utc_offset_h: float
    zone: str

    def __post_init__(self) -> None:
        if self.population_weight <= 0:
            raise ValueError(
                f"population weight must be positive, got {self.population_weight}"
            )
        if not -12.0 <= self.utc_offset_h <= 14.0:
            raise ValueError(
                f"UTC offset must be within [-12, +14] h, got {self.utc_offset_h}"
            )
        if self.zone not in ZONES:
            raise ValueError(
                f"unknown zone {self.zone!r}; valid: {', '.join(ZONES)}"
            )

    def local_hour(self, t_h: float) -> float:
        """Local hour-of-day at fleet time ``t_h`` (hours since run start)."""
        return (t_h + self.utc_offset_h) % 24.0


#: The default three-origin world: internet-population-weighted continents.
#: Weights follow the rough split of global internet users (APAC ~ half,
#: Europe and the Americas splitting the rest); offsets are the zones'
#: population-weighted centres.
_ORIGIN_SPECS: dict[str, tuple[float, float, str]] = {
    # name: (population weight, UTC offset hours, zone)
    "north-america": (0.25, -6.0, "na"),
    "europe": (0.30, 1.0, "eu"),
    "asia-pacific": (0.45, 8.0, "apac"),
}

ORIGIN_NAMES = tuple(sorted(_ORIGIN_SPECS))


def origin_by_name(name: str) -> GeoOrigin:
    """Build a registry origin (``"north-america"``, ``"europe"``, ...)."""
    key = name.lower()
    try:
        weight, offset, zone = _ORIGIN_SPECS[key]
    except KeyError:
        valid = ", ".join(ORIGIN_NAMES)
        raise KeyError(f"unknown origin {name!r}; valid: {valid}") from None
    return GeoOrigin(
        name=key, population_weight=weight, utc_offset_h=offset, zone=zone
    )


def default_origins() -> tuple[GeoOrigin, ...]:
    """The standard three-origin demand world, in registry order.

    >>> [o.zone for o in default_origins()]
    ['apac', 'eu', 'na']
    >>> all(o.population_weight > 0 for o in default_origins())
    True
    """
    return tuple(origin_by_name(name) for name in ORIGIN_NAMES)


def normalized_weights(origins: tuple[GeoOrigin, ...]) -> np.ndarray:
    """Population weights normalized to sum exactly 1 (single origin → 1.0)."""
    w = np.array([o.population_weight for o in origins], dtype=np.float64)
    return w / w.sum()
