"""Nonstationary per-origin demand: users sleep, weekends dip, news bursts.

The demand side of the geo-diurnal story.  A :class:`DiurnalDemandModel`
produces ``rate(origin, t_h)`` — a per-origin arrival rate that follows a
sinusoidal day curve in the *origin's local time* (peak mid-afternoon,
trough before dawn), damps on weekends, and can carry superimposed burst
events (a product launch, a viral moment).  The curve is normalized so a
weekday's time-average equals the configured mean rate, which keeps
demand-model runs comparable to the constant-rate seed methodology.

:class:`ConstantDemandModel` is the degenerate member of the family: every
origin emits its weight share of the mean at every instant.  Driving the
fleet with it reproduces the constant-rate path bit-for-bit (asserted in
the fleet tests), which is the regression anchor for the whole subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.demand.origins import GeoOrigin, default_origins, normalized_weights

__all__ = [
    "BurstEvent",
    "DemandModel",
    "ConstantDemandModel",
    "DiurnalDemandModel",
    "default_demand",
    "WEEKEND_DAYS",
]

#: Day-of-run indices treated as the weekend (runs start on a Monday).
WEEKEND_DAYS = (5, 6)


@dataclass(frozen=True)
class BurstEvent:
    """A transient demand surge at one origin (or fleet-wide).

    ``magnitude`` multiplies the origin's rate during
    ``[start_h, start_h + duration_h)``: 2.0 doubles it, 0.5 halves it
    (a regional outage is just a burst below 1).
    """

    start_h: float
    duration_h: float
    magnitude: float
    origin: str | None = None  # None: applies to every origin

    def __post_init__(self) -> None:
        if self.duration_h <= 0:
            raise ValueError(f"burst duration must be positive, got {self.duration_h}")
        if self.magnitude <= 0:
            raise ValueError(f"burst magnitude must be positive, got {self.magnitude}")

    def factor(self, origin_name: str, t_h: float) -> float:
        if self.origin is not None and self.origin != origin_name:
            return 1.0
        if self.start_h <= t_h < self.start_h + self.duration_h:
            return self.magnitude
        return 1.0


class DemandModel:
    """Per-origin arrival rates over time; see the module docstring.

    Subclasses implement :meth:`rates`; everything else derives from it.
    """

    origins: tuple[GeoOrigin, ...]

    @property
    def n_origins(self) -> int:
        return len(self.origins)

    @property
    def origin_names(self) -> tuple[str, ...]:
        return tuple(o.name for o in self.origins)

    def rates(self, t_h: float) -> np.ndarray:
        """Per-origin arrival rates (req/s) at fleet time ``t_h``."""
        raise NotImplementedError

    def rate(self, origin: str, t_h: float) -> float:
        """One origin's arrival rate (req/s) at fleet time ``t_h``."""
        try:
            idx = self.origin_names.index(origin)
        except ValueError:
            valid = ", ".join(self.origin_names)
            raise KeyError(f"unknown origin {origin!r}; valid: {valid}") from None
        return float(self.rates(t_h)[idx])

    def total_rate(self, t_h: float) -> float:
        """Global arrival rate (req/s) at fleet time ``t_h``."""
        return float(self.rates(t_h).sum())

    def peak_total_rate(self) -> float:
        """An upper bound on :meth:`total_rate` (thinning envelopes)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDemandModel(DemandModel):
    """Time-invariant demand: each origin emits its weight share, always.

    With a single origin the emitted rate is *exactly*
    ``mean_total_rate_per_s`` (no floating-point drift), which is what lets
    a constant-demand N=1 fleet reproduce the seed service bit-for-bit.
    """

    origins: tuple[GeoOrigin, ...]
    mean_total_rate_per_s: float

    def __post_init__(self) -> None:
        _validate(self.origins, self.mean_total_rate_per_s)

    def rates(self, t_h: float) -> np.ndarray:
        return self.mean_total_rate_per_s * normalized_weights(self.origins)

    def peak_total_rate(self) -> float:
        return self.mean_total_rate_per_s


@dataclass(frozen=True)
class DiurnalDemandModel(DemandModel):
    """Sinusoidal day curve per origin, weekend damping, optional bursts.

    The weekday shape in an origin's local time is
    ``1 + swing * cos(2*pi*(local - peak_local_h)/24)`` — time-average
    exactly 1, maximum at ``peak_local_h``, minimum twelve hours later.
    ``day_night_swing`` in [0, 1) keeps every rate strictly positive (a
    zero rate has no defined service measurement).

    Parameters
    ----------
    origins:
        The demand world; weights are normalized across it.
    mean_total_rate_per_s:
        Weekday time-average of the *global* rate (all origins summed).
    day_night_swing:
        Peak-to-mean amplitude of the day curve (0 = constant).
    peak_local_h:
        Local hour of maximum demand (mid-afternoon by default).
    weekend_damping:
        Fractional rate reduction on weekend days (0 = none).
    bursts:
        Superimposed :class:`BurstEvent` multipliers.
    """

    origins: tuple[GeoOrigin, ...]
    mean_total_rate_per_s: float
    day_night_swing: float = 0.55
    peak_local_h: float = 14.5
    weekend_damping: float = 0.25
    bursts: tuple[BurstEvent, ...] = ()

    def __post_init__(self) -> None:
        _validate(self.origins, self.mean_total_rate_per_s)
        if not 0.0 <= self.day_night_swing < 1.0:
            raise ValueError(
                f"day/night swing must be in [0, 1), got {self.day_night_swing}"
            )
        if not 0.0 <= self.weekend_damping < 1.0:
            raise ValueError(
                f"weekend damping must be in [0, 1), got {self.weekend_damping}"
            )

    def _shape(self, origin: GeoOrigin, t_h: float) -> float:
        local = origin.local_hour(t_h)
        shape = 1.0 + self.day_night_swing * np.cos(
            2.0 * np.pi * (local - self.peak_local_h) / 24.0
        )
        # The weekend is a *local* calendar fact: day index in local time.
        local_day = int(np.floor((t_h + origin.utc_offset_h) / 24.0)) % 7
        if local_day in WEEKEND_DAYS:
            shape *= 1.0 - self.weekend_damping
        for burst in self.bursts:
            shape *= burst.factor(origin.name, t_h)
        return float(shape)

    def rates(self, t_h: float) -> np.ndarray:
        weights = normalized_weights(self.origins)
        shapes = np.array([self._shape(o, t_h) for o in self.origins])
        return self.mean_total_rate_per_s * weights * shapes

    def peak_total_rate(self) -> float:
        """Upper bound: every origin at peak simultaneously, bursts stacked."""
        burst_cap = 1.0
        for b in self.bursts:
            burst_cap *= max(1.0, b.magnitude)
        return (
            self.mean_total_rate_per_s * (1.0 + self.day_night_swing) * burst_cap
        )

    def workload(self, origin: str, start_h: float = 0.0):
        """This origin's arrivals as a nonstationary Poisson process.

        Returns a :class:`~repro.serving.workload.NonstationaryPoissonWorkload`
        whose rate function is this model's ``rate(origin, ·)``,
        thinning-enveloped by the origin's share of the peak rate.  The
        sampler's window time (seconds from the window start) is mapped to
        fleet time as ``start_h + t_s / 3600`` — pass the window's fleet
        start hour or a mid-run window would be silently phase-shifted to
        midnight.  The closure binds the origin's precomputed weight share
        and evaluates only that origin's shape: the rate function runs
        once per thinning candidate, so a full ``rates()`` sweep per call
        would dominate the sampling cost.

        The bursts' edges and centers are declared as the workload's
        *critical times*, so the thinning-envelope check samples them
        deterministically — a burst far narrower than the check grid can
        no longer slip between grid points and silently under-sample.
        """
        from repro.serving.workload import NonstationaryPoissonWorkload

        idx = self.origin_names.index(origin)
        origin_obj = self.origins[idx]
        share = float(normalized_weights(self.origins)[idx])
        mean = self.mean_total_rate_per_s * share
        critical: list[float] = []
        for b in self.bursts:
            if b.origin is not None and b.origin != origin:
                continue
            edges_h = (b.start_h, b.start_h + 0.5 * b.duration_h,
                       b.start_h + b.duration_h)
            critical.extend((h - start_h) * 3600.0 for h in edges_h)
        return NonstationaryPoissonWorkload(
            rate_fn=lambda t_s: mean
            * self._shape(origin_obj, start_h + t_s / 3600.0),
            max_rate_per_s=share * self.peak_total_rate(),
            critical_times_s=tuple(critical),
        )


def _validate(origins: tuple[GeoOrigin, ...], mean_rate: float) -> None:
    if not origins:
        raise ValueError("a demand model needs at least one origin")
    names = [o.name for o in origins]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate origin names: {names}")
    if mean_rate <= 0:
        raise ValueError(f"mean rate must be positive, got {mean_rate}")


def default_demand(
    mean_total_rate_per_s: float, kind: str = "diurnal", **kwargs
) -> DemandModel:
    """Build a demand model over the default origins by kind name.

    >>> model = default_demand(30.0, kind="diurnal")
    >>> model.origin_names
    ('asia-pacific', 'europe', 'north-america')
    >>> rates = model.rates(12.0)          # per-origin req/s at t = 12 h
    >>> bool(float(rates.sum()) == model.total_rate(12.0) > 0.0)
    True
    >>> default_demand(30.0, kind="constant").total_rate(5.0)
    30.0
    """
    origins = kwargs.pop("origins", None) or default_origins()
    if kind == "constant":
        return ConstantDemandModel(
            origins=origins, mean_total_rate_per_s=mean_total_rate_per_s
        )
    if kind == "diurnal":
        return DiurnalDemandModel(
            origins=origins,
            mean_total_rate_per_s=mean_total_rate_per_s,
            **kwargs,
        )
    raise ValueError(f"unknown demand kind {kind!r}; valid: constant, diurnal")
