"""ASCII rendering of experiment results (the harness's "figures").

Everything the paper plots, this module prints: aligned tables for the
scalar comparisons and a tiny horizontal-bar renderer for time series, so
that benchmark logs are self-describing without matplotlib.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "render"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str | None = None
) -> str:
    """Monospace table with a header rule, sized to the widest cell."""
    str_rows = [tuple(str(c) for c in r) for r in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    head = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(head)
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    t: np.ndarray,
    values: np.ndarray,
    label: str = "",
    width: int = 48,
    samples: int = 12,
) -> str:
    """A compact bar sketch of a time series (one row per sample point)."""
    t = np.asarray(t, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape or t.size == 0:
        raise ValueError("series arrays must be non-empty and equal length")
    idx = np.linspace(0, t.size - 1, min(samples, t.size)).astype(int)
    lo, hi = float(np.nanmin(v)), float(np.nanmax(v))
    span = hi - lo if hi > lo else 1.0
    lines = [f"{label} [{lo:.2f} .. {hi:.2f}]"] if label else []
    for i in idx:
        filled = int(round((v[i] - lo) / span * width))
        lines.append(f"  t={t[i]:6.1f}h |{'#' * filled:<{width}}| {v[i]:8.2f}")
    return "\n".join(lines)


def render(result, title: str | None = None) -> str:
    """Render any experiment result exposing ``table()``."""
    headers, rows = result.table()
    return format_table(headers, rows, title=title)
