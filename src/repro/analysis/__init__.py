"""Experiment harness: reproduce every table and figure of the paper.

* :mod:`repro.analysis.runner` — memoized scheme x application x trace runs,
* :mod:`repro.analysis.experiments` — one entry point per table/figure,
* :mod:`repro.analysis.reporting` — ASCII tables and series sketches,
* :mod:`repro.analysis.ablations` — design-choice ablations beyond the paper.
"""

from repro.analysis.runner import (
    APPLICATIONS_UNDER_TEST,
    ExperimentRunner,
    FleetSpec,
    RunSpec,
    scenario_from_fleet_spec,
)
from repro.analysis.reporting import format_table, format_series, render
from repro.analysis.export import (
    table_to_csv,
    table_to_json,
    run_result_to_dict,
    write_json,
)
from repro.analysis.report import generate_report
from repro.analysis.ablations import (
    ablate_ged_threshold,
    ablate_warm_start,
    ablate_cooling,
    ablate_trigger_threshold,
)
from repro.analysis.experiments import (
    table1,
    fig2_mixed_quality,
    fig3_partitioning,
    fig4_intensity_variation,
    fig6_selection_example,
    fig8_evaluation_traces,
    fig9_effectiveness,
    fig10_scheme_comparison,
    fig11_objective_timeline,
    fig12_optimization_overhead,
    fig13_invocation_trajectories,
    fig14_lambda_and_threshold,
    fig15_reduced_gpus,
    fig16_geographic,
    savings_estimate,
    EXPERIMENT_REGISTRY,
)

__all__ = [
    "RunSpec",
    "FleetSpec",
    "scenario_from_fleet_spec",
    "ExperimentRunner",
    "APPLICATIONS_UNDER_TEST",
    "format_table",
    "format_series",
    "render",
    "table_to_csv",
    "table_to_json",
    "run_result_to_dict",
    "write_json",
    "generate_report",
    "ablate_ged_threshold",
    "ablate_warm_start",
    "ablate_cooling",
    "ablate_trigger_threshold",
    "table1",
    "fig2_mixed_quality",
    "fig3_partitioning",
    "fig4_intensity_variation",
    "fig6_selection_example",
    "fig8_evaluation_traces",
    "fig9_effectiveness",
    "fig10_scheme_comparison",
    "fig11_objective_timeline",
    "fig12_optimization_overhead",
    "fig13_invocation_trajectories",
    "fig14_lambda_and_threshold",
    "fig15_reduced_gpus",
    "fig16_geographic",
    "savings_estimate",
    "EXPERIMENT_REGISTRY",
]
