"""Export experiment results to CSV and JSON.

Every experiment result in :mod:`repro.analysis.experiments` exposes
``table() -> (headers, rows)``; these helpers serialize that uniform shape
(plus full :class:`~repro.core.controller.RunResult` records) so downstream
tooling — notebooks, plotting scripts, dashboards — can consume the
reproduction's numbers without importing the library.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

import numpy as np

from repro.core.controller import RunResult

__all__ = ["table_to_csv", "table_to_json", "run_result_to_dict", "write_json"]


def table_to_csv(result, path: str | Path | None = None) -> str:
    """Render a ``table()``-bearing result as CSV; optionally write it."""
    headers, rows = result.table()
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def table_to_json(result, path: str | Path | None = None) -> str:
    """Render a ``table()``-bearing result as a JSON list of row objects."""
    headers, rows = result.table()
    records = [dict(zip(headers, row)) for row in rows]
    text = json.dumps(records, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return None  # JSON has no Infinity; null marks overload
    return value


def run_result_to_dict(result: RunResult, include_epochs: bool = True) -> dict:
    """Full structured dump of one run (summary + per-epoch records)."""
    out = {
        "scheme": result.scheme_name,
        "application": result.application,
        "family": result.family,
        "trace": result.trace_name,
        "n_gpus": result.n_gpus,
        "rate_per_s": result.rate_per_s,
        "lambda": result.lambda_weight,
        "sla_target_ms": result.sla_target_ms,
        "duration_h": result.duration_h,
        "totals": {
            "requests": result.total_requests,
            "energy_j": result.total_energy_j,
            "carbon_g": result.total_carbon_g,
            "carbon_g_per_request": result.carbon_g_per_request,
            "mean_accuracy": result.mean_accuracy,
            "accuracy_loss_pct": result.accuracy_loss_pct,
            "p95_ms": _jsonable(result.p95_ms),
            "sla_violation_fraction": result.sla_violation_fraction,
            "optimization_fraction": result.optimization_fraction,
            "invocations": len(result.invocations),
            "evaluations": result.total_evaluations,
        },
    }
    if include_epochs:
        out["epochs"] = [
            {
                "t_h": e.t_h,
                "ci": e.ci,
                "carbon_g": e.carbon_g,
                "accuracy": e.accuracy,
                "p95_ms": _jsonable(e.p95_ms),
                "f": e.f_objective,
                "optimization_s": e.optimization_s,
                "config": e.config_label,
            }
            for e in result.epochs
        ]
    return out


def write_json(data: dict, path: str | Path) -> None:
    """Write a dict (e.g. from :func:`run_result_to_dict`) as JSON."""
    Path(path).write_text(json.dumps(data, indent=2, default=_jsonable))
