"""Experiment runner: execute scheme x application x trace combinations.

One thin layer over :class:`~repro.core.service.CarbonAwareInferenceService`
(and, for geographic experiments, the :mod:`repro.scenarios` layer) that
(a) applies the paper's evaluation methodology uniformly and (b) memoizes
completed runs within the process, because several figures reuse the same
underlying runs (Figs. 9-13 all read the CISO-March matrix).

Fleet experiments are described by
:class:`~repro.scenarios.spec.ScenarioSpec` and executed through
:meth:`ExperimentRunner.run_scenario`.  The historical :class:`FleetSpec`
remains as a thin shim: :func:`scenario_from_fleet_spec` maps it onto the
spec the scenario layer runs (tested field-for-field), so pre-scenario
callers keep working bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.traces import trace_by_name
from repro.core.controller import RunResult
from repro.core.service import (
    CarbonAwareInferenceService,
    FidelityProfile,
    PAPER_LAMBDA,
    PAPER_N_GPUS,
)
from repro.scenarios import (
    DemandSpec,
    GatingSpec,
    RegionSpec,
    RoutingSpec,
    Scenario,
    ScenarioSpec,
)

__all__ = [
    "RunSpec",
    "FleetSpec",
    "ExperimentRunner",
    "APPLICATIONS_UNDER_TEST",
    "scenario_from_fleet_spec",
]

#: The paper's three evaluation applications, in Table-1 order.
APPLICATIONS_UNDER_TEST = ("detection", "language", "classification")


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one run (and keys the memo cache)."""

    application: str
    scheme: str
    trace_name: str = "ciso-march"
    fidelity: str = "default"
    seed: int = 0
    n_gpus: int = PAPER_N_GPUS
    lambda_weight: float = PAPER_LAMBDA
    duration_h: float | None = None
    accuracy_floor_pct: float | None = None
    rate_per_s: float | None = None


@dataclass(frozen=True)
class FleetSpec:
    """Legacy flat description of one multi-region fleet run (shim).

    Superseded by :class:`~repro.scenarios.spec.ScenarioSpec` — the
    declarative, serializable spec every experiment now runs through.
    ``FleetSpec`` is kept so pre-scenario callers (and the ``repro
    fleet`` CLI semantics) keep working: :func:`scenario_from_fleet_spec`
    converts it, and :meth:`ExperimentRunner.run_fleet` delegates to the
    scenario path, bit for bit.

    ``net_latency_ms`` overrides every region's registry network latency;
    the paper-faithful experiments (Fig. 16) pin it to 0.0 because the
    paper has no network model, while the fleet experiments keep the
    registry values (``None``).

    The demand fields switch the run into geo-diurnal mode (see
    :meth:`repro.fleet.FleetCoordinator.create`): ``demand`` names a
    demand-model kind (``"constant"`` / ``"diurnal"``), ``demand_scale``
    sizes its mean against the fleet's nominal sizing, the ramp/drain
    shares bound per-hour traffic migration, and ``lookahead_h`` /
    ``forecaster`` configure forecast-aware routing.  ``gating`` turns on
    elastic GPU capacity (``"reactive"`` / ``"forecast"``; ``None`` keeps
    every GPU always on), and ``wake_energy_j`` overrides the gating
    policy's per-wake transition energy (fleets with low-power devices
    need a tighter bound than the A100 default).

    The heterogeneity fields: ``devices`` assigns GPU generations — one
    device spec for every region (``"l4"``) or a per-region tuple aligned
    with ``region_names`` (each entry a :func:`repro.gpu.parse_devices`
    spec, e.g. ``"a100:1,l4:1"`` for a mixed pool); ``None`` keeps the
    implicit all-A100 fleet.  ``efficiency_weighted=False`` downgrades
    the carbon-greedy / forecast-aware routers to their intensity-only
    rankings (the pre-heterogeneity behaviour, used as the ablation
    baseline by the ``hetero`` experiment).
    """

    region_names: tuple[str, ...]
    application: str = "classification"
    scheme: str = "clover"
    router: str = "static"
    fidelity: str = "default"
    seed: int = 0
    n_gpus: int = PAPER_N_GPUS
    lambda_weight: float = PAPER_LAMBDA
    duration_h: float | None = None
    net_latency_ms: float | None = None
    demand: str | None = None
    demand_scale: float = 0.8
    ramp_share_per_h: float | None = None
    drain_share_per_h: float | None = None
    lookahead_h: float | None = None
    forecaster: str = "diurnal"
    gating: str | None = None
    wake_energy_j: float | None = None
    devices: tuple[str, ...] | str | None = None
    efficiency_weighted: bool = True


def scenario_from_fleet_spec(spec: FleetSpec) -> ScenarioSpec:
    """The :class:`ScenarioSpec` a legacy :class:`FleetSpec` describes.

    Field-for-field: region names become :class:`RegionSpec` entries
    (device strings parsed exactly as the legacy path parsed them), the
    flat routing/demand/gating knobs land in their sub-specs.  Running
    the converted spec reproduces the legacy ``run_fleet`` execution bit
    for bit (golden-tested), which is what lets every legacy experiment
    and CLI flag become a thin shim over the scenario layer.
    """
    from repro.gpu.profiles import parse_region_devices

    if spec.devices is None or isinstance(spec.devices, str):
        device_specs: tuple[str | None, ...] = (spec.devices,) * len(
            spec.region_names
        )
    else:
        if len(spec.devices) != len(spec.region_names):
            raise ValueError(
                f"{len(spec.devices)} device specs for "
                f"{len(spec.region_names)} regions"
            )
        device_specs = spec.devices
    regions = tuple(
        RegionSpec(
            name=name,
            devices=None if dev is None else parse_region_devices(dev),
        )
        for name, dev in zip(spec.region_names, device_specs)
    )
    return ScenarioSpec(
        regions=regions,
        application=spec.application,
        scheme=spec.scheme,
        fidelity=spec.fidelity,
        seed=spec.seed,
        n_gpus=spec.n_gpus,
        lambda_weight=spec.lambda_weight,
        duration_h=spec.duration_h,
        net_latency_ms=spec.net_latency_ms,
        routing=RoutingSpec(
            router=spec.router,
            lookahead_h=spec.lookahead_h,
            forecaster=spec.forecaster,
            efficiency_weighted=spec.efficiency_weighted,
        ),
        demand=DemandSpec(
            # The scale only sizes a demand model; legacy specs carried
            # the default even for constant-demand runs.
            kind=spec.demand,
            scale=spec.demand_scale if spec.demand is not None else 0.8,
            ramp_share_per_h=spec.ramp_share_per_h,
            drain_share_per_h=spec.drain_share_per_h,
        ),
        gating=GatingSpec(
            mode=spec.gating,
            # Legacy semantics: the wake-energy override only applied
            # when gating was on.
            wake_energy_j=(
                spec.wake_energy_j if spec.gating is not None else None
            ),
        ),
    )


@dataclass
class ExperimentRunner:
    """Runs and memoizes service executions for the experiment harness."""

    _cache: dict[RunSpec, RunResult] = field(default_factory=dict)
    _scenario_cache: dict[ScenarioSpec, object] = field(default_factory=dict)
    _traces: dict[str, CarbonIntensityTrace] = field(default_factory=dict)

    def register_trace(self, name: str, trace: CarbonIntensityTrace) -> None:
        """Make a custom trace addressable by ``RunSpec.trace_name``."""
        self._traces[name] = trace

    def _resolve_trace(self, name: str) -> CarbonIntensityTrace:
        if name in self._traces:
            return self._traces[name]
        return trace_by_name(name)

    def run(self, spec: RunSpec) -> RunResult:
        """Execute (or recall) the run described by ``spec``."""
        hit = self._cache.get(spec)
        if hit is not None:
            return hit
        trace = self._resolve_trace(spec.trace_name)
        service = CarbonAwareInferenceService.create(
            application=spec.application,
            scheme=spec.scheme,
            n_gpus=spec.n_gpus,
            lambda_weight=spec.lambda_weight,
            trace=trace,
            accuracy_floor_pct=spec.accuracy_floor_pct,
            rate_per_s=spec.rate_per_s,
            fidelity=FidelityProfile.by_name(spec.fidelity),
            seed=spec.seed,
        )
        result = service.run(duration_h=spec.duration_h)
        self._cache[spec] = result
        return result

    def run_scenario(self, spec: ScenarioSpec):
        """Execute (or recall) the scenario described by ``spec``.

        The memo is keyed by the spec itself — two equal specs share one
        run, which is what lets experiments that compare overlapping
        scenario grids (fig16's base rows, the gating ladder) pay for
        each underlying simulation once.
        """
        hit = self._scenario_cache.get(spec)
        if hit is not None:
            return hit
        result = Scenario(spec).run()
        self._scenario_cache[spec] = result
        return result

    def run_fleet(self, spec: FleetSpec):
        """Legacy shim: convert ``spec`` and run it through the scenario path.

        Kept for pre-scenario callers; the conversion
        (:func:`scenario_from_fleet_spec`) is golden-tested to reproduce
        the historical execution bit for bit.
        """
        return self.run_scenario(scenario_from_fleet_spec(spec))

    def run_matrix(
        self,
        schemes: tuple[str, ...],
        applications: tuple[str, ...] = APPLICATIONS_UNDER_TEST,
        trace_name: str = "ciso-march",
        fidelity: str = "default",
        seed: int = 0,
        **kwargs,
    ) -> dict[tuple[str, str], RunResult]:
        """Run every (application, scheme) pair; keys are those pairs."""
        out: dict[tuple[str, str], RunResult] = {}
        for app in applications:
            for scheme in schemes:
                spec = RunSpec(
                    application=app,
                    scheme=scheme,
                    trace_name=trace_name,
                    fidelity=fidelity,
                    seed=seed,
                    **kwargs,
                )
                out[(app, scheme)] = self.run(spec)
        return out

    @staticmethod
    def carbon_saving_pct(result: RunResult, base: RunResult) -> float:
        """Total carbon reduction of ``result`` relative to a BASE run."""
        if base.total_carbon_g <= 0:
            raise ValueError("BASE run accumulated no carbon")
        return (1.0 - result.total_carbon_g / base.total_carbon_g) * 100.0

    @staticmethod
    def latency_norm(result: RunResult, base: RunResult) -> float:
        """Service p95 normalized to the BASE run's p95 (Fig. 9 right)."""
        return result.p95_ms / base.p95_ms
