"""Experiment runner: execute scheme x application x trace combinations.

One thin layer over :class:`~repro.core.service.CarbonAwareInferenceService`
(and, for geographic experiments, the :mod:`repro.fleet` coordinator) that
(a) applies the paper's evaluation methodology uniformly and (b) memoizes
completed runs within the process, because several figures reuse the same
underlying runs (Figs. 9-13 all read the CISO-March matrix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.traces import trace_by_name
from repro.core.controller import RunResult
from repro.core.service import (
    CarbonAwareInferenceService,
    FidelityProfile,
    PAPER_LAMBDA,
    PAPER_N_GPUS,
)

__all__ = ["RunSpec", "FleetSpec", "ExperimentRunner", "APPLICATIONS_UNDER_TEST"]

#: The paper's three evaluation applications, in Table-1 order.
APPLICATIONS_UNDER_TEST = ("detection", "language", "classification")


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one run (and keys the memo cache)."""

    application: str
    scheme: str
    trace_name: str = "ciso-march"
    fidelity: str = "default"
    seed: int = 0
    n_gpus: int = PAPER_N_GPUS
    lambda_weight: float = PAPER_LAMBDA
    duration_h: float | None = None
    accuracy_floor_pct: float | None = None
    rate_per_s: float | None = None


@dataclass(frozen=True)
class FleetSpec:
    """Everything that identifies one multi-region fleet run.

    ``net_latency_ms`` overrides every region's registry network latency;
    the paper-faithful experiments (Fig. 16) pin it to 0.0 because the
    paper has no network model, while the fleet experiments keep the
    registry values (``None``).

    The demand fields switch the run into geo-diurnal mode (see
    :meth:`repro.fleet.FleetCoordinator.create`): ``demand`` names a
    demand-model kind (``"constant"`` / ``"diurnal"``), ``demand_scale``
    sizes its mean against the fleet's nominal sizing, the ramp/drain
    shares bound per-hour traffic migration, and ``lookahead_h`` /
    ``forecaster`` configure forecast-aware routing.  ``gating`` turns on
    elastic GPU capacity (``"reactive"`` / ``"forecast"``; ``None`` keeps
    every GPU always on), and ``wake_energy_j`` overrides the gating
    policy's per-wake transition energy (fleets with low-power devices
    need a tighter bound than the A100 default).

    The heterogeneity fields: ``devices`` assigns GPU generations — one
    device spec for every region (``"l4"``) or a per-region tuple aligned
    with ``region_names`` (each entry a :func:`repro.gpu.parse_devices`
    spec, e.g. ``"a100:1,l4:1"`` for a mixed pool); ``None`` keeps the
    implicit all-A100 fleet.  ``efficiency_weighted=False`` downgrades
    the carbon-greedy / forecast-aware routers to their intensity-only
    rankings (the pre-heterogeneity behaviour, used as the ablation
    baseline by the ``hetero`` experiment).
    """

    region_names: tuple[str, ...]
    application: str = "classification"
    scheme: str = "clover"
    router: str = "static"
    fidelity: str = "default"
    seed: int = 0
    n_gpus: int = PAPER_N_GPUS
    lambda_weight: float = PAPER_LAMBDA
    duration_h: float | None = None
    net_latency_ms: float | None = None
    demand: str | None = None
    demand_scale: float = 0.8
    ramp_share_per_h: float | None = None
    drain_share_per_h: float | None = None
    lookahead_h: float | None = None
    forecaster: str = "diurnal"
    gating: str | None = None
    wake_energy_j: float | None = None
    devices: tuple[str, ...] | str | None = None
    efficiency_weighted: bool = True


@dataclass
class ExperimentRunner:
    """Runs and memoizes service executions for the experiment harness."""

    _cache: dict[RunSpec, RunResult] = field(default_factory=dict)
    _fleet_cache: dict[FleetSpec, object] = field(default_factory=dict)
    _traces: dict[str, CarbonIntensityTrace] = field(default_factory=dict)

    def register_trace(self, name: str, trace: CarbonIntensityTrace) -> None:
        """Make a custom trace addressable by ``RunSpec.trace_name``."""
        self._traces[name] = trace

    def _resolve_trace(self, name: str) -> CarbonIntensityTrace:
        if name in self._traces:
            return self._traces[name]
        return trace_by_name(name)

    def run(self, spec: RunSpec) -> RunResult:
        """Execute (or recall) the run described by ``spec``."""
        hit = self._cache.get(spec)
        if hit is not None:
            return hit
        trace = self._resolve_trace(spec.trace_name)
        service = CarbonAwareInferenceService.create(
            application=spec.application,
            scheme=spec.scheme,
            n_gpus=spec.n_gpus,
            lambda_weight=spec.lambda_weight,
            trace=trace,
            accuracy_floor_pct=spec.accuracy_floor_pct,
            rate_per_s=spec.rate_per_s,
            fidelity=FidelityProfile.by_name(spec.fidelity),
            seed=spec.seed,
        )
        result = service.run(duration_h=spec.duration_h)
        self._cache[spec] = result
        return result

    def run_fleet(self, spec: FleetSpec):
        """Execute (or recall) the fleet run described by ``spec``.

        Region names resolve through the fleet registry
        (:func:`repro.fleet.region_by_name`); the import is local so the
        single-cluster harness stays importable without the fleet package.
        """
        hit = self._fleet_cache.get(spec)
        if hit is not None:
            return hit
        from dataclasses import replace

        from repro.fleet import FleetCoordinator, make_gating_policy, region_by_name
        from repro.fleet.routing import make_router
        from repro.gpu.profiles import parse_region_devices

        device_specs: tuple[str | None, ...]
        if spec.devices is None or isinstance(spec.devices, str):
            device_specs = (spec.devices,) * len(spec.region_names)
        else:
            if len(spec.devices) != len(spec.region_names):
                raise ValueError(
                    f"{len(spec.devices)} device specs for "
                    f"{len(spec.region_names)} regions"
                )
            device_specs = spec.devices

        regions = tuple(
            region_by_name(
                name,
                n_gpus=spec.n_gpus,
                devices=None if dev is None else parse_region_devices(dev),
            )
            for name, dev in zip(spec.region_names, device_specs)
        )
        if spec.net_latency_ms is not None:
            regions = tuple(
                replace(r, net_latency_ms=spec.net_latency_ms) for r in regions
            )
        gating = spec.gating
        if gating is not None and spec.wake_energy_j is not None:
            gating = make_gating_policy(gating, wake_energy_j=spec.wake_energy_j)
        router = spec.router
        if not spec.efficiency_weighted:
            # The intensity-only ablation only exists for the rankings
            # that are efficiency-weighted in the first place.
            if spec.router not in ("carbon-greedy", "forecast-aware"):
                raise ValueError(
                    f"router {spec.router!r} has no intensity-only variant"
                )
            router = make_router(spec.router, efficiency_weighted=False)
        fleet = FleetCoordinator.create(
            regions,
            application=spec.application,
            scheme=spec.scheme,
            router=router,
            lambda_weight=spec.lambda_weight,
            fidelity=FidelityProfile.by_name(spec.fidelity),
            seed=spec.seed,
            demand=spec.demand,
            demand_scale=spec.demand_scale,
            ramp_share_per_h=spec.ramp_share_per_h,
            drain_share_per_h=spec.drain_share_per_h,
            lookahead_h=spec.lookahead_h,
            forecaster=spec.forecaster,
            gating=gating,
        )
        result = fleet.run(duration_h=spec.duration_h)
        self._fleet_cache[spec] = result
        return result

    def run_matrix(
        self,
        schemes: tuple[str, ...],
        applications: tuple[str, ...] = APPLICATIONS_UNDER_TEST,
        trace_name: str = "ciso-march",
        fidelity: str = "default",
        seed: int = 0,
        **kwargs,
    ) -> dict[tuple[str, str], RunResult]:
        """Run every (application, scheme) pair; keys are those pairs."""
        out: dict[tuple[str, str], RunResult] = {}
        for app in applications:
            for scheme in schemes:
                spec = RunSpec(
                    application=app,
                    scheme=scheme,
                    trace_name=trace_name,
                    fidelity=fidelity,
                    seed=seed,
                    **kwargs,
                )
                out[(app, scheme)] = self.run(spec)
        return out

    @staticmethod
    def carbon_saving_pct(result: RunResult, base: RunResult) -> float:
        """Total carbon reduction of ``result`` relative to a BASE run."""
        if base.total_carbon_g <= 0:
            raise ValueError("BASE run accumulated no carbon")
        return (1.0 - result.total_carbon_g / base.total_carbon_g) * 100.0

    @staticmethod
    def latency_norm(result: RunResult, base: RunResult) -> float:
        """Service p95 normalized to the BASE run's p95 (Fig. 9 right)."""
        return result.p95_ms / base.p95_ms
