"""Ablations of Clover's design choices (beyond the paper's evaluation).

The paper motivates several design constants without sweeping them; these
experiments quantify each one on the classification workload:

* **GED threshold** — the neighbourhood radius of Sec. 4.2 (paper: 4),
* **warm start** — whether an invocation's SA starts from the previous
  best configuration or from the currently deployed one,
* **cooling rate** — the SA temperature schedule (paper: 0.05/iteration),
* **re-optimization trigger** — the carbon-intensity change threshold
  (paper: 5%).

Each returns the same summary tuple so the ablation bench renders one
table: (setting, carbon saving vs BASE, accuracy loss, optimization time
fraction, evaluations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.monitor import CarbonIntensityMonitor
from repro.carbon.traces import ciso_march_48h
from repro.core.annealing import SAParams
from repro.core.controller import RunResult, ServiceController
from repro.core.moves import MoveGenerator
from repro.core.service import CarbonAwareInferenceService, FidelityProfile

__all__ = [
    "AblationPoint",
    "AblationResult",
    "ablate_ged_threshold",
    "ablate_warm_start",
    "ablate_cooling",
    "ablate_trigger_threshold",
]


@dataclass(frozen=True)
class AblationPoint:
    """One setting of the ablated knob and its measured outcomes."""

    setting: str
    carbon_save_pct: float
    accuracy_loss_pct: float
    optimization_fraction: float
    evaluations: int


@dataclass(frozen=True)
class AblationResult:
    knob: str
    points: tuple[AblationPoint, ...]

    def table(self):
        headers = (self.knob, "CarbonSave%", "AccLoss%", "OptTime%", "Evals")
        rows = [
            (
                p.setting,
                f"{p.carbon_save_pct:.1f}",
                f"{p.accuracy_loss_pct:.2f}",
                f"{100 * p.optimization_fraction:.2f}",
                str(p.evaluations),
            )
            for p in self.points
        ]
        return headers, rows

    def by_setting(self, setting: str) -> AblationPoint:
        for p in self.points:
            if p.setting == setting:
                return p
        raise KeyError(setting)


def _build(application: str, seed: int, **create_kwargs):
    return CarbonAwareInferenceService.create(
        application=application,
        scheme="clover",
        fidelity=FidelityProfile.default(),
        seed=seed,
        **create_kwargs,
    )


def _run_base(application: str, seed: int) -> RunResult:
    service = CarbonAwareInferenceService.create(
        application=application, scheme="base",
        fidelity=FidelityProfile.default(), seed=seed,
    )
    return service.run()


def _point(setting: str, result: RunResult, base: RunResult) -> AblationPoint:
    return AblationPoint(
        setting=setting,
        carbon_save_pct=(1 - result.total_carbon_g / base.total_carbon_g) * 100,
        accuracy_loss_pct=result.accuracy_loss_pct,
        optimization_fraction=result.optimization_fraction,
        evaluations=result.total_evaluations,
    )


def ablate_ged_threshold(
    application: str = "classification",
    thresholds: tuple[int, ...] = (2, 4, 8, 12),
    seed: int = 0,
) -> AblationResult:
    """Vary the GED neighbourhood radius (the paper fixes it at 4).

    Radius 2 admits only single variant swaps (no repartitioning moves at
    all — most partition pairs differ by 3+), so the search cannot change
    partitions; larger radii make moves coarser and reconfigurations more
    expensive per evaluation.
    """
    base = _run_base(application, seed)
    points = []
    for threshold in thresholds:
        service = _build(application, seed)
        scheme = service.scheme
        scheme.moves = MoveGenerator(
            zoo=scheme.zoo, family=scheme.family, threshold=threshold
        )
        result = service.run()
        points.append(_point(str(threshold), result, base))
    return AblationResult(knob="GED threshold", points=tuple(points))


def ablate_warm_start(
    application: str = "classification", seed: int = 0
) -> AblationResult:
    """Warm start on/off: does starting each invocation from the previous
    best matter?  (The Fig. 13 narrative says it does.)"""
    base = _run_base(application, seed)

    warm = _build(application, seed).run()

    cold_service = _build(application, seed)
    scheme = cold_service.scheme
    original_optimize = scheme.optimize

    def cold_optimize(ci, deployed):
        # Force every invocation's SA to restart from the BASE deployment
        # (clearing _last_best alone would fall back to the currently
        # deployed config, which *is* the previous best).
        scheme._last_best = scheme.initial_config()
        return original_optimize(ci, deployed)

    scheme.optimize = cold_optimize
    cold = cold_service.run()

    return AblationResult(
        knob="Warm start",
        points=(
            _point("on (paper)", warm, base),
            _point("off", cold, base),
        ),
    )


def ablate_cooling(
    application: str = "classification",
    coolings: tuple[float, ...] = (0.0, 0.05, 0.2),
    seed: int = 0,
) -> AblationResult:
    """Vary the SA cooling rate (paper: 0.05/iteration, floor 0.1).

    ``0.0`` keeps T=1 forever (almost-random walk acceptance); large rates
    drop to the floor immediately (greedy hill climbing).
    """
    base = _run_base(application, seed)
    points = []
    for cooling in coolings:
        service = _build(application, seed)
        fidelity = FidelityProfile.default()
        service.scheme.sa_params = SAParams(
            t_initial=fidelity.sa_params.t_initial,
            cooling=cooling,
            t_min=fidelity.sa_params.t_min,
            no_improve_limit=fidelity.sa_params.no_improve_limit,
            time_budget_s=fidelity.sa_params.time_budget_s,
            max_evals=fidelity.sa_params.max_evals,
        )
        result = service.run()
        label = {0.0: "none (T=1)", 0.05: "0.05 (paper)"}.get(
            cooling, f"{cooling:g}"
        )
        points.append(_point(label, result, base))
    return AblationResult(knob="Cooling rate", points=tuple(points))


def ablate_trigger_threshold(
    application: str = "classification",
    thresholds: tuple[float, ...] = (0.01, 0.05, 0.2),
    seed: int = 0,
) -> AblationResult:
    """Vary the re-optimization trigger (paper: 5% intensity change).

    Tighter triggers re-optimize constantly (more overhead, marginally
    better tracking); looser ones leave stale configurations deployed as
    the grid shifts.
    """
    base = _run_base(application, seed)
    points = []
    for threshold in thresholds:
        service = _build(application, seed)
        service.controller.monitor = CarbonIntensityMonitor(
            trace=ciso_march_48h(), threshold=threshold
        )
        result = service.run()
        label = f"{100 * threshold:g}%" + (" (paper)" if threshold == 0.05 else "")
        points.append(_point(label, result, base))
    return AblationResult(knob="Trigger threshold", points=tuple(points))
