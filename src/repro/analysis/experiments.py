"""One entry point per table and figure of the Clover paper's evaluation.

Every function returns a small result dataclass whose ``table()`` method
yields ``(headers, rows)`` for ASCII rendering (see
:mod:`repro.analysis.reporting`), and whose fields carry the raw series for
tests and benchmarks.  The mapping to the paper:

==========  ===========================================================
table1      the three applications and their model variants
fig2        mixed-quality mixtures: carbon reduction vs accuracy
fig3        MIG partitioning C1/C2/C3: carbon down, latency up
fig4        14-day carbon-intensity variation across regions/seasons
fig6        the worked objective-selection example
fig8        the three 48-hour evaluation traces
fig9        Clover vs BASE: accuracy / carbon / SLA latency
fig10       scheme comparison scatter (CO2OPT/BLOVER/CLOVER/ORACLE)
fig11       objective timelines over 48 hours
fig12       optimization overhead and candidate SLA compliance
fig13       per-invocation exploration trajectories
fig14       lambda sweep and accuracy-threshold mode
fig15       provisioning fewer GPUs under the 10-GPU SLA
fig16       geographic/seasonal robustness
savings     the back-of-the-envelope daily savings estimate (Sec. 5.2.1)
fleet       multi-region load shifting (beyond the paper: Sec. 6 futures)
demand      geo-diurnal demand + forecast-driven proactive routing
gating      elastic GPU capacity: always-on vs reactive vs forecast-pre-wake
hetero      heterogeneous GPU fleets: efficiency-aware vs intensity routing
shifting    temporal load shifting: deferrable batch into clean epochs
==========  ===========================================================

``fig16``, ``fleet``, ``demand``, ``gating`` and ``hetero`` run through
the :mod:`repro.scenarios` layer: each builds declarative
:class:`~repro.scenarios.spec.ScenarioSpec` values — fig16 as N=1
single-region scenarios (behavior-identical to the seed path), the rest
as multi-region comparison grids — and executes them via
:meth:`~repro.analysis.runner.ExperimentRunner.run_scenario` (memoized by
spec).  Every entry registers itself with the
:func:`~repro.scenarios.registry.experiment` decorator; the CLI and docs
index render from that registry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.carbon.accounting import DEFAULT_PUE, carbon_grams
from repro.carbon.generator import (
    CISO_MARCH,
    CISO_SEPTEMBER,
    ESO_MARCH,
    ESO_SEPTEMBER,
    generate_trace,
)
from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.traces import evaluation_traces
from repro.core.config import ClusterConfig, GpuAssignment, uniform_config
from repro.core.evaluator import ConfigEvaluator
from repro.core.objective import ObjectiveSpec
from repro.core.service import PAPER_N_GPUS
from repro.gpu.partitions import partition_by_id
from repro.models.families import ALL_FAMILIES
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo, default_zoo
from repro.serving.sla import SlaPolicy
from repro.serving.workload import default_rate
from repro.scenarios import (
    BatchSpec,
    DemandSpec,
    GatingSpec,
    RegionSpec,
    RoutingSpec,
    ScenarioSpec,
    experiment,
    experiment_registry,
)
from repro.analysis.runner import (
    APPLICATIONS_UNDER_TEST,
    ExperimentRunner,
    RunSpec,
)

__all__ = [
    "table1",
    "fig2_mixed_quality",
    "fig3_partitioning",
    "fig4_intensity_variation",
    "fig6_selection_example",
    "fig8_evaluation_traces",
    "fig9_effectiveness",
    "fig10_scheme_comparison",
    "fig11_objective_timeline",
    "fig12_optimization_overhead",
    "fig13_invocation_trajectories",
    "fig14_lambda_and_threshold",
    "fig15_reduced_gpus",
    "fig16_geographic",
    "fleet_load_shifting",
    "demand_routing",
    "gating_elasticity",
    "hetero_fleet",
    "temporal_shifting",
    "savings_estimate",
    "EXPERIMENT_REGISTRY",
]


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table1Result:
    rows_: tuple[tuple[str, ...], ...]

    def table(self):
        headers = (
            "Application", "Dataset", "Architecture", "Variant",
            "Params(M)", "GFLOPs", "Accuracy", "Mem(GB)",
        )
        return headers, self.rows_


@experiment("table1", "Table 1: applications, datasets, architectures, variants", takes_runner=False)
def table1(zoo: ModelZoo | None = None) -> Table1Result:
    """Table 1: the applications, datasets, architectures and variants."""
    zoo = zoo or default_zoo()
    rows = []
    for fam in zoo.families:
        for v in fam.variants:
            rows.append(
                (
                    fam.application, fam.dataset, fam.architecture, v.name,
                    f"{v.params_millions:g}", f"{v.gflops:g}",
                    f"{v.accuracy:g} {fam.metric}", f"{v.memory_gb:g}",
                )
            )
    return Table1Result(rows_=tuple(rows))


# --------------------------------------------------------------------- #
# Fig. 2 — mixed-quality opportunity
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig2Result:
    """Each point: one variant mixture on unpartitioned GPUs."""

    application: str
    n_gpus: int
    mixtures: tuple[tuple[int, ...], ...]
    carbon_reduction_pct: np.ndarray
    accuracy_norm: np.ndarray

    def pareto_points(self) -> list[tuple[float, float]]:
        """The non-dominated (carbon saving, accuracy) frontier."""
        pts = sorted(
            zip(self.carbon_reduction_pct, self.accuracy_norm), reverse=True
        )
        frontier, best_acc = [], -np.inf
        for c, a in pts:
            if a > best_acc:
                frontier.append((c, a))
                best_acc = a
        return frontier[::-1]

    def best_saving_within_loss(self, max_loss_pct: float) -> float:
        """Max carbon saving among mixtures losing <= ``max_loss_pct``."""
        ok = self.accuracy_norm >= 1.0 - max_loss_pct / 100.0
        if not ok.any():
            return 0.0
        return float(self.carbon_reduction_pct[ok].max())

    def table(self):
        headers = ("Mixture (ordinals)", "CarbonSave%", "Accuracy(norm)")
        rows = [
            (str(m), f"{c:.1f}", f"{a:.4f}")
            for m, c, a in zip(
                self.mixtures, self.carbon_reduction_pct, self.accuracy_norm
            )
        ]
        return headers, rows


@experiment("fig2", "mixed-quality variant mixtures: carbon saving vs accuracy", takes_runner=False)
def fig2_mixed_quality(
    application: str = "classification",
    n_gpus: int = 4,
    zoo: ModelZoo | None = None,
    perf: PerfModel | None = None,
) -> Fig2Result:
    """Fig. 2: every variant mixture on a 4-GPU system, no partitioning.

    Carbon intensity is held constant (the figure's methodology), so the
    carbon reduction equals the energy-per-request reduction vs hosting the
    highest-quality variant everywhere.
    """
    zoo = zoo or default_zoo()
    perf = perf or PerfModel()
    fam = zoo.for_application(application)
    rate = default_rate(fam, perf, n_gpus)
    evaluator = ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=n_gpus,
        method="analytic",
    )

    def eval_mixture(ordinals: tuple[int, ...]):
        assignments = tuple(
            GpuAssignment(partition_id=1, variant_ordinals=(o,))
            for o in ordinals
        )
        cfg = ClusterConfig(family=fam.name, assignments=assignments)
        return evaluator.evaluate(cfg)

    base = eval_mixture((fam.largest.ordinal,) * n_gpus)
    mixtures, savings, accs = [], [], []
    for combo in itertools.combinations_with_replacement(
        range(1, fam.num_variants + 1), n_gpus
    ):
        ev = eval_mixture(combo)
        mixtures.append(combo)
        savings.append(
            (1.0 - ev.energy_per_request_j / base.energy_per_request_j) * 100.0
        )
        accs.append(ev.accuracy / base.accuracy)
    return Fig2Result(
        application=application,
        n_gpus=n_gpus,
        mixtures=tuple(mixtures),
        carbon_reduction_pct=np.asarray(savings),
        accuracy_norm=np.asarray(accs),
    )


# --------------------------------------------------------------------- #
# Fig. 3 — partitioning opportunity
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig3Result:
    application: str
    variant_name: str
    labels: tuple[str, ...]
    partition_ids: tuple[int, ...]
    carbon_norm: np.ndarray
    latency_norm: np.ndarray

    def table(self):
        headers = ("Config", "Partition", "Carbon (norm C1)", "Latency (norm C1)")
        rows = [
            (lab, str(partition_by_id(pid)), f"{c:.3f}", f"{l:.3f}")
            for lab, pid, c, l in zip(
                self.labels, self.partition_ids, self.carbon_norm, self.latency_norm
            )
        ]
        return headers, rows


@experiment("fig3", "MIG partitioning C1/C2/C3: carbon down, latency up", takes_runner=False)
def fig3_partitioning(
    application: str = "classification",
    variant_ordinal: int | None = None,
    zoo: ModelZoo | None = None,
    perf: PerfModel | None = None,
    utilization: float = 0.65,
) -> Fig3Result:
    """Fig. 3: one GPU at C1 (#1), C2 (#3), C3 (#19), same variant everywhere.

    The default variant is the second-largest that fits a 1g slice — large
    enough to feel the smaller slices (the paper's latency degradation),
    small enough that C3 is hostable at all.

    The latency metric is the *mean service latency* of a request: the
    paper's Fig. 3 isolates the per-request slowdown of GPU sharing, while
    queueing-tail effects (which can favour many slow servers over one fast
    one) are the business of the full-system SLA evaluation.
    """
    zoo = zoo or default_zoo()
    perf = perf or PerfModel()
    fam = zoo.for_application(application)
    if variant_ordinal is None:
        one_g_ok = zoo.feasible_variants(fam.name, 0)
        variant_ordinal = (
            one_g_ok[-2] if len(one_g_ok) >= 2 else one_g_ok[-1]
        )
    variant = fam.variant(variant_ordinal)

    from repro.gpu.slices import slice_by_name

    rate = utilization * perf.service_rate(variant, slice_by_name("7g"))
    evaluator = ConfigEvaluator(
        zoo=zoo, perf=perf, family=fam.name, rate_per_s=rate, n_gpus=1,
        method="analytic",
    )
    labels = ("C1", "C2", "C3")
    pids = (1, 3, 19)
    energy, latency = [], []
    for pid in pids:
        partition = partition_by_id(pid)
        ev = evaluator.evaluate(uniform_config(fam, 1, pid, variant_ordinal))
        energy.append(ev.energy_per_request_j)
        # Mean service latency across the partition's slices, weighted by
        # the share of requests each slice serves (throughput-proportional).
        taus = np.array(
            [perf.latency_ms(variant, s) for s in partition.slices]
        )
        shares = (1.0 / taus) / (1.0 / taus).sum()
        latency.append(float(np.dot(shares, taus)))
    energy = np.asarray(energy)
    latency = np.asarray(latency)
    return Fig3Result(
        application=application,
        variant_name=variant.name,
        labels=labels,
        partition_ids=pids,
        carbon_norm=energy / energy[0],
        latency_norm=latency / latency[0],
    )


# --------------------------------------------------------------------- #
# Fig. 4 and Fig. 8 — carbon-intensity traces
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TraceStats:
    name: str
    min_ci: float
    max_ci: float
    mean_ci: float
    std_ci: float
    max_half_day_swing: float

    @classmethod
    def of(cls, trace: CarbonIntensityTrace) -> "TraceStats":
        v = trace.values
        # Largest change within any 12-hour window (the paper highlights
        # swings of > 200 gCO2/kWh within half a day).
        t = trace.times_h
        swing = 0.0
        for i in range(t.size):
            inside = (t >= t[i]) & (t <= t[i] + 12.0)
            if inside.sum() >= 2:
                w = v[inside]
                swing = max(swing, float(w.max() - w.min()))
        return cls(
            name=trace.name,
            min_ci=float(v.min()),
            max_ci=float(v.max()),
            mean_ci=float(v.mean()),
            std_ci=float(v.std()),
            max_half_day_swing=swing,
        )

    def row(self) -> tuple[str, ...]:
        return (
            self.name, f"{self.min_ci:.0f}", f"{self.max_ci:.0f}",
            f"{self.mean_ci:.0f}", f"{self.std_ci:.0f}",
            f"{self.max_half_day_swing:.0f}",
        )


@dataclass(frozen=True)
class TraceFigureResult:
    stats: tuple[TraceStats, ...]
    traces: tuple[CarbonIntensityTrace, ...]

    def table(self):
        headers = ("Trace", "Min", "Max", "Mean", "Std", "Max 12h swing")
        return headers, tuple(s.row() for s in self.stats)


@experiment("fig4", "14-day carbon-intensity variation across regions/seasons", takes_runner=False)
def fig4_intensity_variation(days: float = 14.0, seed: int = 2021) -> TraceFigureResult:
    """Fig. 4: 14-day spans for CISO/ESO in March and September."""
    profiles = (CISO_MARCH, CISO_SEPTEMBER, ESO_MARCH, ESO_SEPTEMBER)
    traces = tuple(
        generate_trace(p, days=days, step_h=1.0, rng=seed + i)
        for i, p in enumerate(profiles)
    )
    return TraceFigureResult(
        stats=tuple(TraceStats.of(t) for t in traces), traces=traces
    )


@experiment("fig8", "the three embedded 48-hour evaluation traces", takes_runner=False)
def fig8_evaluation_traces() -> TraceFigureResult:
    """Fig. 8: the three embedded 48-hour evaluation traces."""
    traces = tuple(evaluation_traces().values())
    return TraceFigureResult(
        stats=tuple(TraceStats.of(t) for t in traces), traces=traces
    )


# --------------------------------------------------------------------- #
# Fig. 6 — worked selection example
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig6Result:
    rows_: tuple[tuple[str, ...], ...]
    preferred: dict[float, str]

    def table(self):
        headers = (
            "ci", "Config", "E(x)*ci", "dCarbon%", "dAccuracy%",
            "Objective", "Preferred",
        )
        return headers, self.rows_


@experiment("fig6", "the worked objective-selection example", takes_runner=False)
def fig6_selection_example(
    lambda_weight: float = 0.1, c_base: float = 1000.0
) -> Fig6Result:
    """Fig. 6: configs A (E=0.4, dAcc=-4%) and B (E=1.2, dAcc=-2%).

    Uses the full :class:`ObjectiveSpec` machinery with PUE 1 and abstract
    energy units (E in kWh-equivalents so that ``E * ci`` reads directly in
    the figure's units).  Reproduces the computed objective values; the
    paper's printed 3.2 for config B at ci=500 is inconsistent with its own
    Eq. 3 (which gives 2.2) and is documented in DESIGN.md.
    """
    joules_per_unit = 3.6e6  # 1 abstract E unit == 1 kWh of IT energy
    sla = SlaPolicy(p95_target_ms=1.0)  # SLA not exercised in this example
    # a_base chosen so that accuracies 96 and 98 give exactly -4% and -2%.
    spec = ObjectiveSpec(
        lambda_weight=lambda_weight, a_base=100.0, c_base=c_base, sla=sla, pue=1.0
    )
    configs = {"A": (0.4, 96.0), "B": (1.2, 98.0)}
    rows, preferred = [], {}
    for ci in (500.0, 100.0):
        best_name, best_f = None, -np.inf
        for name, (e_units, acc) in configs.items():
            e_j = e_units * joules_per_unit
            d_c = spec.delta_carbon(e_j, ci)
            d_a = spec.delta_accuracy(acc)
            f = spec.f(acc, e_j, ci)
            rows.append(
                (
                    f"{ci:.0f}", name, f"{e_units * ci:.0f}", f"{d_c:.0f}",
                    f"{d_a:.1f}", f"{f:.1f}", "",
                )
            )
            if f > best_f:
                best_name, best_f = name, f
        preferred[ci] = best_name
        rows[-1] = rows[-1][:-1] + (f"-> {best_name}",)
    return Fig6Result(rows_=tuple(rows), preferred=preferred)


# --------------------------------------------------------------------- #
# Fig. 9 — Clover vs BASE
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig9Result:
    applications: tuple[str, ...]
    accuracy_loss_pct: dict[str, float]
    carbon_reduction_pct: dict[str, float]
    sla_latency_norm: dict[str, float]

    @property
    def overall_accuracy_loss_pct(self) -> float:
        return float(np.mean(list(self.accuracy_loss_pct.values())))

    @property
    def overall_carbon_reduction_pct(self) -> float:
        return float(np.mean(list(self.carbon_reduction_pct.values())))

    def table(self):
        headers = ("Application", "AccLoss%", "CarbonSave%", "SLA p95 (norm BASE)")
        rows = [
            (
                app,
                f"{self.accuracy_loss_pct[app]:.2f}",
                f"{self.carbon_reduction_pct[app]:.1f}",
                f"{self.sla_latency_norm[app]:.2f}",
            )
            for app in self.applications
        ]
        rows.append(
            (
                "overall",
                f"{self.overall_accuracy_loss_pct:.2f}",
                f"{self.overall_carbon_reduction_pct:.1f}",
                f"{np.mean(list(self.sla_latency_norm.values())):.2f}",
            )
        )
        return headers, rows


@experiment("fig9", "Clover vs BASE: accuracy / carbon / SLA latency")
def fig9_effectiveness(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    applications: tuple[str, ...] = APPLICATIONS_UNDER_TEST,
) -> Fig9Result:
    """Fig. 9: Clover vs BASE over 48 h of US CISO March."""
    runner = runner or ExperimentRunner()
    matrix = runner.run_matrix(
        ("base", "clover"), applications, fidelity=fidelity, seed=seed
    )
    acc, carbon, sla = {}, {}, {}
    for app in applications:
        base, clover = matrix[(app, "base")], matrix[(app, "clover")]
        acc[app] = clover.accuracy_loss_pct
        carbon[app] = runner.carbon_saving_pct(clover, base)
        sla[app] = runner.latency_norm(clover, base)
    return Fig9Result(
        applications=applications,
        accuracy_loss_pct=acc,
        carbon_reduction_pct=carbon,
        sla_latency_norm=sla,
    )


# --------------------------------------------------------------------- #
# Fig. 10 — scheme comparison
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig10Result:
    applications: tuple[str, ...]
    schemes: tuple[str, ...]
    carbon_save_pct: dict[tuple[str, str], float]
    accuracy_gain_pct: dict[tuple[str, str], float]

    def closest_to_oracle(self, app: str) -> str:
        """Which non-oracle scheme lands closest to ORACLE's point."""
        ox = self.carbon_save_pct[(app, "oracle")]
        oy = self.accuracy_gain_pct[(app, "oracle")]
        best, best_d = None, np.inf
        for s in self.schemes:
            if s in ("oracle", "base"):
                continue
            d = np.hypot(
                self.carbon_save_pct[(app, s)] - ox,
                self.accuracy_gain_pct[(app, s)] - oy,
            )
            if d < best_d:
                best, best_d = s, d
        return best

    def table(self):
        headers = ("Application", "Scheme", "CarbonSave%", "AccGain%")
        rows = [
            (
                app, s,
                f"{self.carbon_save_pct[(app, s)]:.1f}",
                f"{self.accuracy_gain_pct[(app, s)]:.2f}",
            )
            for app in self.applications
            for s in self.schemes
        ]
        return headers, rows


@experiment("fig10", "scheme comparison scatter (CO2OPT/BLOVER/CLOVER/ORACLE)")
def fig10_scheme_comparison(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    applications: tuple[str, ...] = APPLICATIONS_UNDER_TEST,
) -> Fig10Result:
    """Fig. 10: all schemes' (carbon save, accuracy gain) vs BASE."""
    runner = runner or ExperimentRunner()
    schemes = ("co2opt", "blover", "clover", "oracle")
    matrix = runner.run_matrix(
        ("base",) + schemes, applications, fidelity=fidelity, seed=seed
    )
    save, gain = {}, {}
    for app in applications:
        base = matrix[(app, "base")]
        for s in schemes:
            r = matrix[(app, s)]
            save[(app, s)] = runner.carbon_saving_pct(r, base)
            gain[(app, s)] = -r.accuracy_loss_pct
    return Fig10Result(
        applications=applications,
        schemes=schemes,
        carbon_save_pct=save,
        accuracy_gain_pct=gain,
    )


# --------------------------------------------------------------------- #
# Fig. 11 — objective timelines
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig11Result:
    applications: tuple[str, ...]
    schemes: tuple[str, ...]
    series: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]]

    def mean_objective(self, app: str, scheme: str) -> float:
        return float(self.series[(app, scheme)][1].mean())

    def table(self):
        headers = ("Application", "Scheme", "mean f", "min f", "max f")
        rows = []
        for app in self.applications:
            for s in self.schemes:
                f = self.series[(app, s)][1]
                rows.append(
                    (app, s, f"{f.mean():.1f}", f"{f.min():.1f}", f"{f.max():.1f}")
                )
        return headers, rows


@experiment("fig11", "objective timelines over 48 hours")
def fig11_objective_timeline(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    applications: tuple[str, ...] = APPLICATIONS_UNDER_TEST,
) -> Fig11Result:
    """Fig. 11: the Eq. 3 objective of the deployed config over 48 h."""
    runner = runner or ExperimentRunner()
    schemes = ("co2opt", "blover", "clover", "oracle")
    matrix = runner.run_matrix(schemes, applications, fidelity=fidelity, seed=seed)
    series = {
        (app, s): matrix[(app, s)].objective_series()
        for app in applications
        for s in schemes
    }
    return Fig11Result(applications=applications, schemes=schemes, series=series)


# --------------------------------------------------------------------- #
# Fig. 12 — optimization overhead
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig12Result:
    application: str
    opt_fraction: dict[str, float]
    opt_fraction_by_window: dict[str, list[float]]
    evaluations: dict[str, int]
    evals_sla_met: dict[str, int]
    evals_sla_violated: dict[str, int]

    @property
    def clover_saved_fraction(self) -> float:
        """Fig. 12b's "Saved": Clover's evaluation reduction vs Blover."""
        b = self.evaluations["blover"]
        if b == 0:
            return 0.0
        return max(0.0, 1.0 - self.evaluations["clover"] / b)

    def table(self):
        headers = ("Scheme", "Opt time %", "Evals", "SLA met", "SLA violated")
        rows = [
            (
                s,
                f"{100 * self.opt_fraction[s]:.2f}",
                str(self.evaluations[s]),
                str(self.evals_sla_met[s]),
                str(self.evals_sla_violated[s]),
            )
            for s in ("blover", "clover")
        ]
        return headers, rows


@experiment("fig12", "optimization overhead and candidate SLA compliance")
def fig12_optimization_overhead(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
) -> Fig12Result:
    """Fig. 12: time spent optimizing and SLA compliance of candidates."""
    runner = runner or ExperimentRunner()
    out_frac, out_win, out_n, out_met, out_bad = {}, {}, {}, {}, {}
    for scheme in ("blover", "clover"):
        r = runner.run(
            RunSpec(
                application=application, scheme=scheme, fidelity=fidelity, seed=seed
            )
        )
        out_frac[scheme] = r.optimization_fraction
        out_win[scheme] = r.optimization_fraction_by_window(8.0)
        out_n[scheme] = r.total_evaluations
        out_met[scheme] = r.evaluations_sla_met
        out_bad[scheme] = r.evaluations_sla_violated
    return Fig12Result(
        application=application,
        opt_fraction=out_frac,
        opt_fraction_by_window=out_win,
        evaluations=out_n,
        evals_sla_met=out_met,
        evals_sla_violated=out_bad,
    )


# --------------------------------------------------------------------- #
# Fig. 13 — invocation trajectories
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig13Result:
    application: str
    invocation_labels: tuple[str, ...]
    trajectories: dict[str, tuple[tuple[int, float, float, bool], ...]]
    evaluations_per_invocation: tuple[int, ...]

    def table(self):
        headers = ("Invocation", "Eval#", "CarbonSave%", "AccGain%", "SLA")
        rows = []
        for label in self.invocation_labels:
            for order, d_carbon, d_acc, sla in self.trajectories[label]:
                rows.append(
                    (
                        label, str(order), f"{d_carbon:.1f}", f"{d_acc:.2f}",
                        "met" if sla else "VIOLATED",
                    )
                )
        return headers, rows


@experiment("fig13", "per-invocation exploration trajectories")
def fig13_invocation_trajectories(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
) -> Fig13Result:
    """Fig. 13: configurations explored at invocations I, II and the last."""
    runner = runner or ExperimentRunner()
    r = runner.run(
        RunSpec(application=application, scheme="clover", fidelity=fidelity, seed=seed)
    )
    if not r.invocations:
        raise RuntimeError("the Clover run recorded no optimization invocations")
    picks = {
        "I (first)": r.invocations[0],
        "II (second)": r.invocations[min(1, len(r.invocations) - 1)],
        "last": r.invocations[-1],
    }
    trajectories = {
        label: tuple(
            (c.order, c.delta_carbon_pct, c.delta_accuracy_pct, c.sla_met)
            for c in inv.candidates
        )
        for label, inv in picks.items()
    }
    return Fig13Result(
        application=application,
        invocation_labels=tuple(picks),
        trajectories=trajectories,
        evaluations_per_invocation=tuple(
            inv.num_evaluations for inv in r.invocations
        ),
    )


# --------------------------------------------------------------------- #
# Fig. 14 — lambda sweep and accuracy-threshold mode
# --------------------------------------------------------------------- #


def _near_constant_trace(ci: float, span_h: float = 48.0) -> CarbonIntensityTrace:
    """A trace hovering at ``ci`` with a +/-7% wiggle.

    Fig. 14a studies lambda "at 100 gCO2/kWh"; a perfectly flat trace would
    fire the 5% re-optimization trigger exactly once, leaving Clover with a
    single warm-up invocation.  The small periodic wiggle keeps the mean at
    ``ci`` while letting the controller re-invoke as it would in production.
    """
    t = np.arange(0.0, span_h + 0.5, 0.5)
    values = ci * (1.0 + 0.07 * np.sin(2.0 * np.pi * t / 6.0))
    return CarbonIntensityTrace(
        times_h=t, values=values, name=f"constant-{ci:g}"
    )


@dataclass(frozen=True)
class Fig14Result:
    lambdas: tuple[float, ...]
    lambda_carbon_save_pct: dict[float, float]
    lambda_accuracy_gain_pct: dict[float, float]
    floors: tuple[float, ...]
    floor_carbon_save_pct: dict[float, float]
    floor_accuracy_loss_pct: dict[float, float]

    def table(self):
        headers = ("Mode", "Setting", "CarbonSave%", "AccGain%")
        rows = [
            (
                "lambda", f"{l:g}",
                f"{self.lambda_carbon_save_pct[l]:.1f}",
                f"{self.lambda_accuracy_gain_pct[l]:.2f}",
            )
            for l in self.lambdas
        ]
        rows += [
            (
                "floor", f"{fl:g}%",
                f"{self.floor_carbon_save_pct[fl]:.1f}",
                f"{-self.floor_accuracy_loss_pct[fl]:.2f}",
            )
            for fl in self.floors
        ]
        return headers, rows


@experiment("fig14", "lambda sweep and accuracy-threshold mode")
def fig14_lambda_and_threshold(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
    lambdas: tuple[float, ...] = (0.1, 0.5, 0.9),
    floors: tuple[float, ...] = (0.2, 0.4, 0.8, 1.6, 3.2),
    lambda_ci: float = 100.0,
) -> Fig14Result:
    """Fig. 14: (a) lambda sweep at 100 gCO2/kWh; (b) accuracy floors."""
    runner = runner or ExperimentRunner()
    runner.register_trace(
        f"constant-{lambda_ci:g}", _near_constant_trace(lambda_ci)
    )

    l_save, l_gain = {}, {}
    base_flat = runner.run(
        RunSpec(
            application=application, scheme="base",
            trace_name=f"constant-{lambda_ci:g}", fidelity=fidelity, seed=seed,
        )
    )
    for lam in lambdas:
        r = runner.run(
            RunSpec(
                application=application, scheme="clover",
                trace_name=f"constant-{lambda_ci:g}", fidelity=fidelity,
                seed=seed, lambda_weight=lam,
            )
        )
        l_save[lam] = runner.carbon_saving_pct(r, base_flat)
        l_gain[lam] = -r.accuracy_loss_pct

    f_save, f_loss = {}, {}
    base = runner.run(
        RunSpec(application=application, scheme="base", fidelity=fidelity, seed=seed)
    )
    for floor in floors:
        r = runner.run(
            RunSpec(
                application=application, scheme="clover", fidelity=fidelity,
                seed=seed, accuracy_floor_pct=floor,
            )
        )
        f_save[floor] = runner.carbon_saving_pct(r, base)
        f_loss[floor] = r.accuracy_loss_pct
    return Fig14Result(
        lambdas=lambdas,
        lambda_carbon_save_pct=l_save,
        lambda_accuracy_gain_pct=l_gain,
        floors=floors,
        floor_carbon_save_pct=f_save,
        floor_accuracy_loss_pct=f_loss,
    )


# --------------------------------------------------------------------- #
# Fig. 15 — provisioning fewer GPUs
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig15Result:
    applications: tuple[str, ...]
    gpu_counts: tuple[int, ...]
    latency_norm: dict[tuple[str, str, int], float]

    def table(self):
        headers = ("Application", "Scheme", "GPUs", "p95 (norm BASE@10)")
        rows = []
        for app in self.applications:
            for scheme in ("base", "clover"):
                for n in self.gpu_counts:
                    v = self.latency_norm[(app, scheme, n)]
                    rows.append(
                        (app, scheme, str(n), ">3" if v > 3 else f"{v:.2f}")
                    )
        return headers, rows


@experiment("fig15", "provisioning fewer GPUs under the 10-GPU SLA")
def fig15_reduced_gpus(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    applications: tuple[str, ...] = APPLICATIONS_UNDER_TEST,
    gpu_counts: tuple[int, ...] = (10, 4, 2),
    duration_h: float = 12.0,
) -> Fig15Result:
    """Fig. 15: serve the 10-GPU workload with 10, 4 and 2 GPUs.

    The workload rate and the SLA stay pinned to the 10-GPU BASE sizing; a
    normalized p95 above 1 violates the SLA and above 3 is reported as the
    paper's "> 3" overload marker.
    """
    from repro.core.service import derive_baseline
    from repro.models.perf import PerfModel
    from repro.models.zoo import default_zoo

    runner = runner or ExperimentRunner()
    zoo, perf = default_zoo(), PerfModel()
    norm: dict[tuple[str, str, int], float] = {}
    for app in applications:
        fam = zoo.for_application(app)
        rate10 = default_rate(fam, perf, PAPER_N_GPUS)
        spec10 = RunSpec(
            application=app, scheme="base", fidelity=fidelity, seed=seed,
            duration_h=duration_h,
        )
        base10 = runner.run(spec10)
        baseline = derive_baseline(
            zoo=zoo, perf=perf, family=fam.name, n_gpus=PAPER_N_GPUS,
            rate_per_s=rate10, ci_base=220.0, des_requests=12000, seed=seed,
        )
        for scheme in ("base", "clover"):
            for n in gpu_counts:
                if scheme == "base" and n == PAPER_N_GPUS:
                    norm[(app, scheme, n)] = 1.0
                    continue
                from repro.core.service import CarbonAwareInferenceService

                service = CarbonAwareInferenceService.create(
                    application=app, scheme=scheme, n_gpus=n,
                    rate_per_s=rate10, fidelity=fidelity, seed=seed,
                    baseline=baseline,
                )
                r = service.run(duration_h=duration_h)
                p95 = r.p95_ms
                norm[(app, scheme, n)] = (
                    float("inf") if not np.isfinite(p95) else p95 / base10.p95_ms
                )
    return Fig15Result(
        applications=applications, gpu_counts=gpu_counts, latency_norm=norm
    )


# --------------------------------------------------------------------- #
# Fig. 16 — geographic/seasonal robustness
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig16Result:
    applications: tuple[str, ...]
    trace_names: tuple[str, ...]
    accuracy_loss_pct: dict[tuple[str, str], float]
    carbon_save_pct: dict[tuple[str, str], float]

    def table(self):
        headers = ("Trace", "Application", "AccLoss%", "CarbonSave%")
        rows = [
            (
                tr, app,
                f"{self.accuracy_loss_pct[(tr, app)]:.2f}",
                f"{self.carbon_save_pct[(tr, app)]:.1f}",
            )
            for tr in self.trace_names
            for app in self.applications
        ]
        return headers, rows


#: Fig. 16 trace names mapped onto the fleet region registry.
_FIG16_REGIONS = {
    "ciso-march": "us-ciso",
    "ciso-september": "us-ciso-sept",
    "eso-march": "uk-eso",
}


@experiment("fig16", "geographic/seasonal robustness (N=1 scenarios)")
def fig16_geographic(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    applications: tuple[str, ...] = APPLICATIONS_UNDER_TEST,
    trace_names: tuple[str, ...] = ("ciso-march", "ciso-september", "eso-march"),
) -> Fig16Result:
    """Fig. 16: Clover vs BASE on all three regional/seasonal traces.

    The three paper traces run through the scenario layer as N=1
    single-region scenarios with the static router — behavior-identical
    to the seed single-cluster service (verified bit-for-bit in the fleet
    tests), but exercising the same coordinator the multi-region
    experiments use; the cost is that these runs are memoized per
    ScenarioSpec, not shared with the Figs. 9-13 matrix.  Relative
    metrics (carbon saving %, accuracy loss) are invariant to the
    registry regions' PUE, which cancels between Clover and BASE.  Custom
    traces registered on the runner fall back to the single-cluster path
    (they have no fleet region).
    """
    runner = runner or ExperimentRunner()
    acc, save = {}, {}
    for tr in trace_names:
        region = _FIG16_REGIONS.get(tr)
        for app in applications:
            if region is not None:
                base, clover = (
                    runner.run_scenario(
                        ScenarioSpec(
                            regions=(RegionSpec(name=region),),
                            application=app,
                            scheme=scheme,
                            fidelity=fidelity,
                            seed=seed,
                            net_latency_ms=0.0,  # the paper has no network
                            routing=RoutingSpec(router="static"),
                        )
                    )
                    for scheme in ("base", "clover")
                )
            else:
                matrix = runner.run_matrix(
                    ("base", "clover"), (app,), trace_name=tr,
                    fidelity=fidelity, seed=seed,
                )
                base, clover = matrix[(app, "base")], matrix[(app, "clover")]
            acc[(tr, app)] = clover.accuracy_loss_pct
            save[(tr, app)] = runner.carbon_saving_pct(clover, base)
    return Fig16Result(
        applications=applications,
        trace_names=trace_names,
        accuracy_loss_pct=acc,
        carbon_save_pct=save,
    )


# --------------------------------------------------------------------- #
# Fleet — multi-region load shifting (beyond the paper)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class FleetLoadShiftingResult:
    """Routing-policy comparison on one multi-region fleet."""

    application: str
    region_names: tuple[str, ...]
    routers: tuple[str, ...]
    total_carbon_g: dict[str, float]
    carbon_save_vs_static_pct: dict[str, float]
    accuracy_loss_pct: dict[str, float]
    sla_attainment: dict[str, float]
    request_shares: dict[str, dict[str, float]]
    cache_hit_rate: dict[str, float]

    def table(self):
        headers = (
            "Router", "Carbon(g)", "SaveVsStatic%", "AccLoss%", "SLA%",
            "CacheHit%", "Busiest region",
        )
        rows = []
        for r in self.routers:
            shares = self.request_shares[r]
            busiest = max(shares, key=shares.get)
            rows.append(
                (
                    r,
                    f"{self.total_carbon_g[r]:,.0f}",
                    f"{self.carbon_save_vs_static_pct[r]:.2f}",
                    f"{self.accuracy_loss_pct[r]:.2f}",
                    f"{100 * self.sla_attainment[r]:.1f}",
                    f"{100 * self.cache_hit_rate[r]:.1f}",
                    f"{busiest} ({100 * shares[busiest]:.1f}%)",
                )
            )
        return headers, rows


@experiment("fleet", "multi-region load shifting: routing-policy comparison")
def fleet_load_shifting(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
    region_names: tuple[str, ...] = ("us-ciso", "uk-eso", "nordic-hydro"),
    routers: tuple[str, ...] = ("static", "latency", "carbon-greedy"),
    scheme: str = "clover",
    n_gpus: int = PAPER_N_GPUS,
    duration_h: float | None = None,
) -> FleetLoadShiftingResult:
    """Route one global workload across three grids, one row per policy.

    The headline: carbon-greedy routing beats the static split on total
    carbon (it shifts share toward the currently-cleanest grid) without
    giving up global SLA attainment, because its shift is bounded by each
    region's capacity and network-latency-aware SLA cap.
    """
    runner = runner or ExperimentRunner()
    if "static" not in routers:
        raise ValueError("the router set must include 'static' (the baseline)")
    results = {
        r: runner.run_scenario(
            ScenarioSpec(
                regions=tuple(RegionSpec(name=n) for n in region_names),
                application=application,
                scheme=scheme,
                fidelity=fidelity,
                seed=seed,
                n_gpus=n_gpus,
                duration_h=duration_h,
                routing=RoutingSpec(router=r),
            )
        )
        for r in routers
    }
    static_carbon = results["static"].total_carbon_g
    return FleetLoadShiftingResult(
        application=application,
        region_names=region_names,
        routers=routers,
        total_carbon_g={r: res.total_carbon_g for r, res in results.items()},
        carbon_save_vs_static_pct={
            r: (1.0 - res.total_carbon_g / static_carbon) * 100.0
            for r, res in results.items()
        },
        accuracy_loss_pct={
            r: res.accuracy_loss_pct for r, res in results.items()
        },
        sla_attainment={r: res.sla_attainment for r, res in results.items()},
        request_shares={r: res.request_shares for r, res in results.items()},
        cache_hit_rate={
            r: res.cache_stats.hit_rate for r, res in results.items()
        },
    )


# --------------------------------------------------------------------- #
# Demand — geo-diurnal demand + forecast-driven routing (beyond the paper)
# --------------------------------------------------------------------- #

#: Demand-experiment defaults: how fast a region may gain share (admission
#: warm-up) and how fast resident sessions can be drained away, per hour.
DEMAND_RAMP_SHARE_PER_H = 0.10
DEMAND_DRAIN_SHARE_PER_H = 0.20
DEMAND_LOOKAHEAD_H = 6.0


@dataclass(frozen=True)
class DemandRoutingResult:
    """Routing-policy comparison under geo-diurnal demand.

    ``user_sla_attainment`` charges the network hop per (origin,
    serving-region) pair against the raw end-to-end target — the
    demand-layer metric a geo-DNS operator actually answers for.
    """

    application: str
    region_names: tuple[str, ...]
    origin_names: tuple[str, ...]
    routers: tuple[str, ...]
    total_carbon_g: dict[str, float]
    carbon_save_vs_static_pct: dict[str, float]
    accuracy_loss_pct: dict[str, float]
    user_sla_attainment: dict[str, float]
    mean_net_latency_ms: dict[str, float]
    request_shares: dict[str, dict[str, float]]
    origin_shares: dict[str, float]

    def table(self):
        headers = (
            "Router", "Carbon(g)", "SaveVsStatic%", "AccLoss%",
            "UserSLA%", "Net(ms)", "Busiest region",
        )
        rows = []
        for r in self.routers:
            shares = self.request_shares[r]
            busiest = max(shares, key=shares.get)
            rows.append(
                (
                    r,
                    f"{self.total_carbon_g[r]:,.0f}",
                    f"{self.carbon_save_vs_static_pct[r]:.2f}",
                    f"{self.accuracy_loss_pct[r]:.2f}",
                    f"{100 * self.user_sla_attainment[r]:.2f}",
                    f"{self.mean_net_latency_ms[r]:.1f}",
                    f"{busiest} ({100 * shares[busiest]:.1f}%)",
                )
            )
        return headers, rows


@experiment("demand", "geo-diurnal demand + forecast-driven proactive routing")
def demand_routing(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
    region_names: tuple[str, ...] = ("us-ciso", "uk-eso", "apac-solar"),
    routers: tuple[str, ...] = ("static", "carbon-greedy", "forecast-aware"),
    scheme: str = "clover",
    n_gpus: int = 2,
    duration_h: float = 48.0,
    lookahead_h: float = DEMAND_LOOKAHEAD_H,
) -> DemandRoutingResult:
    """The geo-diurnal demand experiment: who should serve whom, and when.

    The default is *small* regional clusters (2 GPUs) on purpose: the SLA
    target is BASE's measured p95, which shrinks with cluster size, and
    the experiment's regime needs an end-to-end budget (~90 ms here) in
    which intercontinental hops (35-65 ms one-way-equivalent) are feasible
    but expensive.  At the paper's 10-GPU scale the budget (~35 ms) makes
    every cross-zone pair SLA-infeasible and the routers are pinned to
    serving origins at home — a real effect, but not the one under study.

    One nonstationary global workload — three population-weighted origins
    whose day curves sweep the planet — is routed over three grids whose
    solar troughs are phase-shifted by geography (the APAC trough leads
    the fleet clock by 8 hours).  Session-drain inertia and admission
    ramps make traffic placement a *commitment*, and the SLA is charged
    per (origin, serving-region) network hop.

    The expected shape: carbon-greedy beats the static geo-DNS split on
    carbon while its pair-aware cell planner (unlike the pair-blind static
    baseline) keeps user SLA attainment at or above the static baseline;
    the forecast-aware router matches or beats carbon-greedy on carbon by
    pre-positioning load ahead of predicted trough edges instead of
    discovering them after the drain-speed limit makes exits expensive.
    The forecast margin over myopic greedy is structurally modest with a
    fixed always-on GPU fleet (idle power dominates and does not follow
    traffic) — GPU power-gating is the ROADMAP follow-up that widens it.
    """
    runner = runner or ExperimentRunner()
    if "static" not in routers:
        raise ValueError("the router set must include 'static' (the baseline)")
    results = {
        r: runner.run_scenario(
            ScenarioSpec(
                regions=tuple(RegionSpec(name=n) for n in region_names),
                application=application,
                scheme=scheme,
                fidelity=fidelity,
                seed=seed,
                n_gpus=n_gpus,
                duration_h=duration_h,
                routing=RoutingSpec(
                    router=r,
                    lookahead_h=(
                        lookahead_h if r == "forecast-aware" else None
                    ),
                ),
                demand=DemandSpec(
                    kind="diurnal",
                    ramp_share_per_h=DEMAND_RAMP_SHARE_PER_H,
                    drain_share_per_h=DEMAND_DRAIN_SHARE_PER_H,
                ),
            )
        )
        for r in routers
    }
    static_carbon = results["static"].total_carbon_g
    return DemandRoutingResult(
        application=application,
        region_names=region_names,
        origin_names=results["static"].origin_names,
        routers=routers,
        total_carbon_g={r: res.total_carbon_g for r, res in results.items()},
        carbon_save_vs_static_pct={
            r: (1.0 - res.total_carbon_g / static_carbon) * 100.0
            for r, res in results.items()
        },
        accuracy_loss_pct={
            r: res.accuracy_loss_pct for r, res in results.items()
        },
        user_sla_attainment={
            r: res.user_sla_attainment for r, res in results.items()
        },
        mean_net_latency_ms={
            r: res.mean_net_latency_ms for r, res in results.items()
        },
        request_shares={r: res.request_shares for r, res in results.items()},
        origin_shares=results["static"].origin_request_shares,
    )


# --------------------------------------------------------------------- #
# Gating — elastic GPU capacity (beyond the paper)
# --------------------------------------------------------------------- #

#: The gating experiment's comparison rows: label -> (router, gating mode,
#: lookahead).  Reactive gating pairs with the myopic carbon-greedy router
#: (wake after the shortfall is observed); forecast-pre-wake pairs with the
#: forecast-aware router whose lookahead window files the pre-wakes.
GATING_ROWS: tuple[tuple[str, str, str | None, bool], ...] = (
    ("always-on/static", "static", None, False),
    ("always-on/greedy", "carbon-greedy", None, False),
    ("reactive/static", "static", "reactive", False),
    ("reactive/greedy", "carbon-greedy", "reactive", False),
    ("reactive/forecast", "forecast-aware", "reactive", True),
    ("prewake/forecast", "forecast-aware", "forecast", True),
)


@dataclass(frozen=True)
class GatingResult:
    """Elastic-capacity comparison under geo-diurnal demand.

    Each row is one (router, gating mode) pair; the headline properties
    compare the carbon-greedy-vs-static gap with and without gating (the
    gap is the shiftable margin — always-on fleets only shift dynamic
    power, gated fleets shift the idle draw too) and reactive gating
    against forecast-driven pre-waking.
    """

    application: str
    region_names: tuple[str, ...]
    labels: tuple[str, ...]
    total_carbon_g: dict[str, float]
    total_energy_j: dict[str, float]
    user_sla_attainment: dict[str, float]
    accuracy_loss_pct: dict[str, float]
    mean_awake_fraction: dict[str, float]

    @property
    def always_on_gap_pct(self) -> float:
        """Carbon-greedy's saving over static, both always-on (PR-2's gap)."""
        static = self.total_carbon_g["always-on/static"]
        greedy = self.total_carbon_g["always-on/greedy"]
        return (1.0 - greedy / static) * 100.0

    @property
    def gated_gap_pct(self) -> float:
        """The same gap with reactive gating enabled for both policies."""
        static = self.total_carbon_g["reactive/static"]
        greedy = self.total_carbon_g["reactive/greedy"]
        return (1.0 - greedy / static) * 100.0

    @property
    def gap_growth(self) -> float:
        """How many times gating multiplies the routing gap."""
        base = self.always_on_gap_pct
        return self.gated_gap_pct / base if base > 0 else float("inf")

    def table(self):
        headers = (
            "Mode/Router", "Carbon(g)", "Energy(kWh)", "AwakeGPU%",
            "UserSLA%", "AccLoss%",
        )
        rows = [
            (
                label,
                f"{self.total_carbon_g[label]:,.0f}",
                f"{self.total_energy_j[label] / 3.6e6:.2f}",
                f"{100 * self.mean_awake_fraction[label]:.1f}",
                f"{100 * self.user_sla_attainment[label]:.2f}",
                f"{self.accuracy_loss_pct[label]:.2f}",
            )
            for label in self.labels
        ]
        rows.append(
            (
                "gap on/gated",
                f"{self.always_on_gap_pct:.2f}% vs {self.gated_gap_pct:.2f}%",
                "-", "-", "-", "-",
            )
        )
        return headers, rows


@experiment("gating", "elastic GPU capacity: always-on vs reactive vs pre-wake")
def gating_elasticity(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
    region_names: tuple[str, ...] = ("us-ciso", "uk-eso", "apac-solar"),
    scheme: str = "clover",
    n_gpus: int = 2,
    duration_h: float = 48.0,
    lookahead_h: float = DEMAND_LOOKAHEAD_H,
) -> GatingResult:
    """Elastic GPU capacity: always-on vs reactive vs forecast-pre-wake.

    The setup is the ``demand`` experiment's (same regions, diurnal
    demand, ramp/drain inertia, per-pair SLA charging); what varies is
    whether idle power follows traffic.  The expected shape:

    * The **static** split never drops a region low enough to gate — its
      reactive row reproduces its always-on row.  Gating without
      carbon-aware drain is worthless; the two levers compound.
    * The **carbon-greedy-vs-static gap** grows several-fold under
      gating: draining the dirty region now turns its idle draw off
      instead of leaving it burning coal, so routing finally moves the
      static margin, not just the dynamic one.
    * **Reactive gating** pays for its savings in SLA: wakes happen after
      the demand arrived, and the wake window serves at yesterday's
      capacity.  **Forecast pre-waking** files the wake one epoch early
      from the router's lookahead window — equal-or-lower carbon (its
      policy can afford deeper sleeps) at reactive-free SLA.
    """
    runner = runner or ExperimentRunner()
    results = {}
    for label, router, gating, needs_lookahead in GATING_ROWS:
        results[label] = runner.run_scenario(
            ScenarioSpec(
                regions=tuple(RegionSpec(name=n) for n in region_names),
                application=application,
                scheme=scheme,
                fidelity=fidelity,
                seed=seed,
                n_gpus=n_gpus,
                duration_h=duration_h,
                routing=RoutingSpec(
                    router=router,
                    lookahead_h=(lookahead_h if needs_lookahead else None),
                ),
                demand=DemandSpec(
                    kind="diurnal",
                    ramp_share_per_h=DEMAND_RAMP_SHARE_PER_H,
                    drain_share_per_h=DEMAND_DRAIN_SHARE_PER_H,
                ),
                gating=GatingSpec(mode=gating),
            )
        )
    labels = tuple(label for label, *_ in GATING_ROWS)
    return GatingResult(
        application=application,
        region_names=region_names,
        labels=labels,
        total_carbon_g={k: r.total_carbon_g for k, r in results.items()},
        total_energy_j={k: r.total_energy_j for k, r in results.items()},
        user_sla_attainment={
            k: r.user_sla_attainment for k, r in results.items()
        },
        accuracy_loss_pct={k: r.accuracy_loss_pct for k, r in results.items()},
        mean_awake_fraction={
            k: r.mean_awake_fraction for k, r in results.items()
        },
    )


# --------------------------------------------------------------------- #
# Hetero — heterogeneous GPU fleets (beyond the paper)
# --------------------------------------------------------------------- #

#: The hetero experiment's default fleet: the demand/gating regions, with
#: the dirty phase-shifted APAC grid provisioned with low-power L4
#: inference cards while the A100 regions keep MIG.  (EcoServe-style mixed
#: provisioning: cheap efficient silicon where the grid is worst.)
HETERO_DEVICES: tuple[str, ...] = ("a100", "a100", "l4")

#: Per-wake transition energy for gated hetero fleets.  Per-profile wake
#: energies (``DeviceProfile.wake_energy_j``) now make an override
#: unnecessary, but this experiment keeps its historical fleet-wide 1 kJ
#: scalar — which fits every registered device — so its calibrated
#: benchmark bands stay comparable across PRs.
HETERO_WAKE_ENERGY_J = 1000.0

#: Comparison rows: label -> (router, efficiency_weighted, needs lookahead).
HETERO_ROWS: tuple[tuple[str, str, bool, bool], ...] = (
    ("static", "static", True, False),
    ("greedy/intensity", "carbon-greedy", False, False),
    ("greedy/efficiency", "carbon-greedy", True, False),
    ("forecast/efficiency", "forecast-aware", True, True),
)


@dataclass(frozen=True)
class HeteroResult:
    """Efficiency-aware vs intensity-only routing on mixed silicon.

    The headline property is :attr:`efficiency_saving_pct`: how much fleet
    carbon efficiency-aware carbon-greedy saves over the intensity-only
    ranking on the *same* fleet — the value of pricing silicon, not just
    grids, into the routing decision.
    """

    application: str
    region_names: tuple[str, ...]
    region_devices: tuple[str, ...]
    labels: tuple[str, ...]
    total_carbon_g: dict[str, float]
    total_energy_j: dict[str, float]
    user_sla_attainment: dict[str, float]
    accuracy_loss_pct: dict[str, float]
    mean_awake_fraction: dict[str, float]
    request_shares: dict[str, dict[str, float]]

    @property
    def efficiency_saving_pct(self) -> float:
        """Carbon saved by pricing silicon into the greedy ranking."""
        intensity = self.total_carbon_g["greedy/intensity"]
        efficiency = self.total_carbon_g["greedy/efficiency"]
        return (1.0 - efficiency / intensity) * 100.0

    def table(self):
        headers = (
            "Router", "Carbon(g)", "Energy(kWh)", "AwakeGPU%",
            "UserSLA%", "AccLoss%", "Busiest region",
        )
        rows = []
        for label in self.labels:
            shares = self.request_shares[label]
            busiest = max(shares, key=shares.get)
            rows.append(
                (
                    label,
                    f"{self.total_carbon_g[label]:,.0f}",
                    f"{self.total_energy_j[label] / 3.6e6:.2f}",
                    f"{100 * self.mean_awake_fraction[label]:.1f}",
                    f"{100 * self.user_sla_attainment[label]:.2f}",
                    f"{self.accuracy_loss_pct[label]:.2f}",
                    f"{busiest} ({100 * shares[busiest]:.1f}%)",
                )
            )
        rows.append(
            (
                "efficiency gain",
                f"{self.efficiency_saving_pct:.2f}% vs intensity-only",
                "-", "-", "-", "-", "-",
            )
        )
        return headers, rows


@experiment("hetero", "heterogeneous GPU fleets: efficiency-aware vs intensity routing")
def hetero_fleet(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
    region_names: tuple[str, ...] = ("us-ciso", "uk-eso", "apac-solar"),
    devices: tuple[str, ...] = HETERO_DEVICES,
    scheme: str = "clover",
    n_gpus: int = 2,
    duration_h: float = 48.0,
    lookahead_h: float = DEMAND_LOOKAHEAD_H,
) -> HeteroResult:
    """Heterogeneous silicon: route by gCO2/request, not gCO2/kWh.

    The setup composes the ``demand`` and ``gating`` experiments (diurnal
    geo-origin demand, ramp/drain inertia, per-pair SLA charging, reactive
    power-gating) on a fleet whose regions run *different GPU
    generations*: the APAC region — the dirtiest grid — is provisioned
    with low-power L4 inference cards, the others with MIG-capable A100s.

    Carbon per request is grid intensity *times* joules per request, and
    the joules now differ per region: an L4 request is dynamically cheap
    but its unpartitionable GPU amortizes static draw poorly, while a
    MIG-partitioned A100 serving small variants is leaner than its BASE
    spec sheet suggests.  The intensity-only ranking (the pre-PR-4
    carbon-greedy, ``greedy/intensity``) sees none of this; the
    efficiency-aware ranking multiplies each region's intensity by its
    deployed configuration's marginal joules/request (static amortization
    included once gating makes idle power follow traffic).

    Expected shape: ``greedy/efficiency`` achieves strictly lower fleet
    carbon than ``greedy/intensity`` at equal-or-better user SLA — the
    benchmark's acceptance bar — and the forecast-aware row composes the
    efficiency ranking with lookahead pre-positioning.
    """
    from repro.gpu.profiles import parse_region_devices

    runner = runner or ExperimentRunner()
    if len(devices) != len(region_names):
        raise ValueError(
            f"{len(devices)} device specs for {len(region_names)} regions"
        )
    regions = tuple(
        RegionSpec(name=n, devices=parse_region_devices(d))
        for n, d in zip(region_names, devices)
    )
    results = {}
    for label, router, efficiency, needs_lookahead in HETERO_ROWS:
        results[label] = runner.run_scenario(
            ScenarioSpec(
                regions=regions,
                application=application,
                scheme=scheme,
                fidelity=fidelity,
                seed=seed,
                n_gpus=n_gpus,
                duration_h=duration_h,
                routing=RoutingSpec(
                    router=router,
                    lookahead_h=(lookahead_h if needs_lookahead else None),
                    efficiency_weighted=efficiency,
                ),
                demand=DemandSpec(
                    kind="diurnal",
                    ramp_share_per_h=DEMAND_RAMP_SHARE_PER_H,
                    drain_share_per_h=DEMAND_DRAIN_SHARE_PER_H,
                ),
                gating=GatingSpec(
                    mode="reactive", wake_energy_j=HETERO_WAKE_ENERGY_J
                ),
            )
        )
    labels = tuple(label for label, *_ in HETERO_ROWS)
    return HeteroResult(
        application=application,
        region_names=region_names,
        region_devices=devices,
        labels=labels,
        total_carbon_g={k: r.total_carbon_g for k, r in results.items()},
        total_energy_j={k: r.total_energy_j for k, r in results.items()},
        user_sla_attainment={
            k: r.user_sla_attainment for k, r in results.items()
        },
        accuracy_loss_pct={k: r.accuracy_loss_pct for k, r in results.items()},
        mean_awake_fraction={
            k: r.mean_awake_fraction for k, r in results.items()
        },
        request_shares={k: r.request_shares for k, r in results.items()},
    )


# --------------------------------------------------------------------- #
# Sec. 5.2.1 — physical-significance estimate
# --------------------------------------------------------------------- #

#: EPA greenhouse-gas equivalencies (the paper's reference [63]).
KG_CO2_PER_CAR_KM = 0.25
KG_CO2_PER_KG_COAL = 2.0


@dataclass(frozen=True)
class SavingsEstimate:
    saving_g_per_request: float
    requests_per_day: float
    kg_co2_per_day: float
    car_km_equivalent: float
    coal_kg_equivalent: float

    def table(self):
        headers = ("Quantity", "Value")
        rows = (
            ("saving per request", f"{self.saving_g_per_request:.2e} gCO2"),
            ("requests per day", f"{self.requests_per_day:.0f}"),
            ("daily saving", f"{self.kg_co2_per_day:.1f} kg CO2"),
            ("gasoline-car equivalent", f"{self.car_km_equivalent:.0f} km"),
            ("coal equivalent", f"{self.coal_kg_equivalent:.1f} kg"),
        )
        return headers, rows


@experiment("savings", "the Sec. 5.2.1 back-of-the-envelope daily-savings estimate")
def savings_estimate(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    requests_per_day: float = 25e6,
    us_avg_ci: float = 380.0,
    pue: float = DEFAULT_PUE,
) -> SavingsEstimate:
    """Sec. 5.2.1's back-of-the-envelope: daily savings at US scale.

    Takes the measured per-request energy saving of Clover vs BASE
    (averaged across the three applications), converts at the US-average
    carbon intensity and the paper's PUE, and expresses the result in the
    paper's physical equivalents.
    """
    runner = runner or ExperimentRunner()
    matrix = runner.run_matrix(
        ("base", "clover"), fidelity=fidelity, seed=seed
    )
    savings_j = []
    for app in APPLICATIONS_UNDER_TEST:
        base, clover = matrix[(app, "base")], matrix[(app, "clover")]
        e_base = base.total_energy_j / base.total_requests
        e_clover = clover.total_energy_j / clover.total_requests
        savings_j.append(e_base - e_clover)
    saving_g = carbon_grams(float(np.mean(savings_j)), us_avg_ci, pue)
    kg_day = saving_g * requests_per_day / 1e3
    return SavingsEstimate(
        saving_g_per_request=saving_g,
        requests_per_day=requests_per_day,
        kg_co2_per_day=kg_day,
        car_km_equivalent=kg_day / KG_CO2_PER_CAR_KM,
        coal_kg_equivalent=kg_day / KG_CO2_PER_KG_COAL,
    )


# --------------------------------------------------------------------- #
# Shifting — temporal load shifting (beyond the paper)
# --------------------------------------------------------------------- #

#: The shifting experiment's deferrable workload: ~16% of the default
#: two-region fleet's nominal rate (about half its leftover capacity
#: envelope, so deadlines stay feasible), each job a hundred-request
#: rescoring lot due within eight hours of arriving.
SHIFTING_JOBS_PER_H = 432.0
SHIFTING_REQUESTS_PER_JOB = 100.0
SHIFTING_DEADLINE_H = 8.0

#: Comparison rows: label -> (router, batch?, defer?, gating mode).
#: ``spatial-only`` admits every lot the epoch it arrives (the carbon
#: lever is *where*); ``temporal-only`` keeps the static split (the lever
#: is *when*); ``joint`` runs both.  The gated pair is the headline
#: interplay: ``gated no-batch`` sleeps GPUs through demand valleys,
#: ``joint+gating`` shows batch holds keeping them awake — but *clean*.
SHIFTING_ROWS: tuple[tuple[str, str, bool, bool, str | None], ...] = (
    ("no-batch", "carbon-greedy", False, True, None),
    ("spatial-only", "carbon-greedy", True, False, None),
    ("temporal-only", "static", True, True, None),
    ("joint", "carbon-greedy", True, True, None),
    ("gated no-batch", "carbon-greedy", False, True, "reactive"),
    ("joint+gating", "carbon-greedy", True, True, "reactive"),
)


@dataclass(frozen=True)
class ShiftingResult:
    """Spatial-only vs temporal-only vs joint shifting of batch work.

    The headline property is :attr:`joint_saving_vs_spatial_pct` — the
    fleet carbon the temporal scheduler saves over admitting the *same*
    batch workload the epoch it arrives — plus the guarantee columns:
    batch deadline attainment and interactive SLA, neither of which joint
    shifting may degrade.
    """

    application: str
    region_names: tuple[str, ...]
    labels: tuple[str, ...]
    total_carbon_g: dict[str, float]
    sla_attainment: dict[str, float]
    accuracy_loss_pct: dict[str, float]
    batch_attainment: dict[str, float]
    batch_completed: dict[str, float]
    batch_carbon_g_per_request: dict[str, float]
    mean_shift_h: dict[str, float]
    mean_awake_fraction: dict[str, float]

    @property
    def joint_saving_vs_spatial_pct(self) -> float:
        """Fleet carbon saved by shifting *when*, on top of *where*."""
        spatial = self.total_carbon_g["spatial-only"]
        joint = self.total_carbon_g["joint"]
        return (1.0 - joint / spatial) * 100.0

    @property
    def min_batch_attainment(self) -> float:
        """Worst batch deadline attainment across rows that ran batch."""
        decided = [
            v for v in self.batch_attainment.values() if np.isfinite(v)
        ]
        return min(decided) if decided else float("nan")

    def table(self):
        headers = (
            "Scenario", "Carbon(g)", "SLA%", "AccLoss%",
            "BatchReq", "BatchOnTime%", "Batch g/req", "Shift(h)", "Awake%",
        )
        rows = []
        for label in self.labels:
            batch_att = self.batch_attainment[label]
            has_batch = np.isfinite(batch_att)
            rows.append(
                (
                    label,
                    f"{self.total_carbon_g[label]:,.0f}",
                    f"{100 * self.sla_attainment[label]:.1f}",
                    f"{self.accuracy_loss_pct[label]:.2f}",
                    f"{self.batch_completed[label]:,.0f}" if has_batch else "-",
                    f"{100 * batch_att:.1f}" if has_batch else "-",
                    (
                        f"{self.batch_carbon_g_per_request[label]:.2e}"
                        if has_batch
                        else "-"
                    ),
                    f"{self.mean_shift_h[label]:.2f}" if has_batch else "-",
                    f"{100 * self.mean_awake_fraction[label]:.1f}",
                )
            )
        rows.append(
            (
                "joint vs spatial",
                f"{self.joint_saving_vs_spatial_pct:.2f}% saved",
                "-", "-", "-", "-", "-", "-", "-",
            )
        )
        return headers, rows


@experiment("shifting", "temporal load shifting: deferrable batch into clean epochs")
def temporal_shifting(
    runner: ExperimentRunner | None = None,
    fidelity: str = "default",
    seed: int = 0,
    application: str = "classification",
    region_names: tuple[str, ...] = ("nordic-hydro", "us-ciso"),
    scheme: str = "clover",
    n_gpus: int = 2,
    duration_h: float = 48.0,
    jobs_per_h: float = SHIFTING_JOBS_PER_H,
    requests_per_job: float = SHIFTING_REQUESTS_PER_JOB,
    deadline_h: float = SHIFTING_DEADLINE_H,
) -> ShiftingResult:
    """Temporal load shifting: the *when* lever next to the *where* lever.

    One deferrable batch class rides the diurnal interactive workload on
    a clean/dirty two-region fleet.  The expected shape:

    * **spatial-only** (admit on arrival) already prices batch into the
      cleanest *region* with leftover capacity, but must take whatever
      the grid looks like when a lot lands.
    * **joint** holds lots back until the forecast says the window is
      clean (or the deadline forces them), so fleet carbon drops below
      spatial-only at the *same* 100% deadline attainment and no
      interactive SLA loss.
    * **gated no-batch** vs **joint+gating** is the headline interplay:
      reactive gating sleeps GPUs through demand valleys, and the
      scheduler's hold hints keep them awake exactly where the batch
      backlog needs the clean window — batch work keeps the fleet awake
      but *clean*.
    """
    runner = runner or ExperimentRunner()
    results = {}
    for label, router, has_batch, defer, gating in SHIFTING_ROWS:
        results[label] = runner.run_scenario(
            ScenarioSpec(
                regions=tuple(RegionSpec(name=n) for n in region_names),
                application=application,
                scheme=scheme,
                fidelity=fidelity,
                seed=seed,
                n_gpus=n_gpus,
                duration_h=duration_h,
                routing=RoutingSpec(router=router),
                demand=DemandSpec(
                    kind="diurnal",
                    ramp_share_per_h=DEMAND_RAMP_SHARE_PER_H,
                    drain_share_per_h=DEMAND_DRAIN_SHARE_PER_H,
                ),
                gating=GatingSpec(mode=gating),
                batch=(
                    BatchSpec(
                        jobs_per_h=jobs_per_h,
                        requests_per_job=requests_per_job,
                        deadline_h=deadline_h,
                        defer=(None if defer else False),
                    )
                    if has_batch
                    else BatchSpec()
                ),
            )
        )
    labels = tuple(label for label, *_ in SHIFTING_ROWS)
    return ShiftingResult(
        application=application,
        region_names=region_names,
        labels=labels,
        total_carbon_g={k: r.total_carbon_g for k, r in results.items()},
        sla_attainment={k: r.sla_attainment for k, r in results.items()},
        accuracy_loss_pct={
            k: r.accuracy_loss_pct for k, r in results.items()
        },
        batch_attainment={
            k: (r.batch_deadline_attainment if r.has_batch else float("nan"))
            for k, r in results.items()
        },
        batch_completed={
            k: (r.batch_completed_requests if r.has_batch else float("nan"))
            for k, r in results.items()
        },
        batch_carbon_g_per_request={
            k: (r.batch_carbon_g_per_request if r.has_batch else float("nan"))
            for k, r in results.items()
        },
        mean_shift_h={
            k: (r.mean_shift_h if r.has_batch else float("nan"))
            for k, r in results.items()
        },
        mean_awake_fraction={
            k: r.mean_awake_fraction for k, r in results.items()
        },
    )


#: Registry for the CLI: experiment name -> callable(runner, fidelity, seed).
#: Populated by the ``@experiment`` decorations above (each entry is a
#: :class:`repro.scenarios.registry.Experiment`, callable with the same
#: three arguments the historical lambdas took).
EXPERIMENT_REGISTRY = experiment_registry()
