"""One-shot reproduction report: every experiment, one Markdown document.

``python -m repro report --out REPORT.md`` regenerates the full
paper-vs-measured record (the data behind EXPERIMENTS.md) in a single run,
with timings and the environment header a reviewer needs to re-check the
numbers.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path

from repro.analysis.experiments import EXPERIMENT_REGISTRY
from repro.analysis.reporting import render
from repro.analysis.runner import ExperimentRunner

__all__ = ["generate_report"]

#: Paper anchor each experiment reproduces, for the report's section headers.
_DESCRIPTIONS = {
    "table1": "Table 1 — applications and model variants",
    "fig2": "Fig. 2 — mixed-quality mixtures (carbon vs accuracy)",
    "fig3": "Fig. 3 — MIG partitioning trade-off",
    "fig4": "Fig. 4 — 14-day regional carbon-intensity variation",
    "fig6": "Fig. 6 — worked objective-selection example",
    "fig8": "Fig. 8 — the 48-hour evaluation traces",
    "fig9": "Fig. 9 — Clover vs BASE",
    "fig10": "Fig. 10 — scheme comparison",
    "fig11": "Fig. 11 — objective timelines",
    "fig12": "Fig. 12 — optimization overhead",
    "fig13": "Fig. 13 — invocation trajectories",
    "fig14": "Fig. 14 — lambda sweep and accuracy floors",
    "fig15": "Fig. 15 — provisioning fewer GPUs",
    "fig16": "Fig. 16 — geographic/seasonal robustness",
    "fleet": "Beyond the paper — multi-region carbon-aware load shifting",
    "savings": "Sec. 5.2.1 — physical-significance estimate",
}


def generate_report(
    fidelity: str = "default",
    seed: int = 0,
    experiments: tuple[str, ...] | None = None,
    out_path: str | Path | None = None,
) -> str:
    """Run the selected experiments and return the Markdown report.

    ``experiments`` defaults to every registered experiment; unknown names
    raise before anything runs (fail fast, not after an hour of sweeps).
    """
    names = (
        sorted(EXPERIMENT_REGISTRY) if experiments is None else list(experiments)
    )
    unknown = [n for n in names if n not in EXPERIMENT_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(EXPERIMENT_REGISTRY))}"
        )

    runner = ExperimentRunner()
    lines = [
        "# Clover (SC '23) — reproduction report",
        "",
        f"- fidelity: `{fidelity}`, seed: `{seed}`",
        f"- python: {platform.python_version()} on {platform.system()}",
        "- every table below is regenerable with "
        f"`python -m repro run <experiment> --fidelity {fidelity} --seed {seed}`",
        "- see EXPERIMENTS.md for the paper-vs-measured discussion of each",
        "",
    ]
    total_s = 0.0
    for name in names:
        t0 = time.perf_counter()
        result = EXPERIMENT_REGISTRY[name](runner, fidelity, seed)
        dt = time.perf_counter() - t0
        total_s += dt
        lines.append(f"## {_DESCRIPTIONS.get(name, name)}")
        lines.append("")
        lines.append(f"_experiment `{name}`, {dt:.1f}s_")
        lines.append("")
        lines.append("```")
        lines.append(render(result))
        lines.append("```")
        lines.append("")
    lines.append(f"_total runtime: {total_s:.1f}s_")
    text = "\n".join(lines)
    if out_path is not None:
        Path(out_path).write_text(text)
    return text
