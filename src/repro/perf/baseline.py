"""The committed perf baseline: JSON schema + regression check.

``BENCH_perf_core.json`` at the repo root is the trajectory's anchor: it
records each pinned scenario's ops/s and scalar-vs-batched speedup, plus
the recording host's :func:`repro.perf.core.calibration_ops_per_s`.  The
check compares

* **speedups** directly — dimensionless, same-machine ratios, portable
  as-is, and
* **ops/s** after normalizing both sides by their own host calibration —
  a slow CI runner is slow on the calibration kernel too, so the ratio
  cancels machine speed and leaves genuine hot-path regressions.

Both must stay within a tolerance band (default 30% below baseline) or
:func:`check_regressions` reports failures and ``repro bench --check``
(and the CI perf job) fail.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.perf.core import SuiteResult

#: Allowed fractional drop below the committed baseline.
DEFAULT_TOLERANCE = 0.30

#: The committed baseline's location, relative to the repo root.
BASELINE_FILENAME = "BENCH_perf_core.json"


def baseline_path() -> Path:
    """The default committed-baseline path (repo root)."""
    return Path(__file__).resolve().parents[3] / BASELINE_FILENAME


def write_baseline(result: SuiteResult, path: str | Path) -> Path:
    """Serialize a suite result as the committed-baseline JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_baseline(path: str | Path) -> dict:
    """Load and minimally validate a committed baseline."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != 1:
        raise ValueError(
            f"unsupported perf baseline schema {data.get('schema')!r}"
        )
    if "scenarios" not in data or "calibration_ops_per_s" not in data:
        raise ValueError("perf baseline is missing required keys")
    return data


def check_regressions(
    current: SuiteResult,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Compare a fresh run against the committed baseline.

    Returns a list of human-readable failures (empty = no regression).
    Scenarios present only on one side are skipped: adding a scenario
    must not fail the gate until its baseline is committed.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    failures: list[str] = []
    floor = 1.0 - tolerance
    base_cal = float(baseline["calibration_ops_per_s"])
    for scenario in current.scenarios:
        base = baseline["scenarios"].get(scenario.name)
        if base is None:
            continue
        base_speedup = float(base["speedup_vs_scalar"])
        if scenario.speedup_vs_scalar < floor * base_speedup:
            failures.append(
                f"{scenario.name}: speedup {scenario.speedup_vs_scalar:.2f}x "
                f"< {floor:.2f} * baseline {base_speedup:.2f}x"
            )
        base_norm = float(base["ops_per_s"]) / base_cal
        cur_norm = scenario.ops_per_s / current.calibration_ops_per_s
        if cur_norm < floor * base_norm:
            failures.append(
                f"{scenario.name}: calibrated ops/s {cur_norm:.4f} "
                f"< {floor:.2f} * baseline {base_norm:.4f} "
                f"(raw {scenario.ops_per_s:.1f} vs {base['ops_per_s']:.1f})"
            )
    return failures
