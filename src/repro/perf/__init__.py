"""Performance trajectory: pinned microbenchmarks + regression gating.

The repo's speed claims are measured, committed and CI-guarded rather
than asserted: :mod:`repro.perf.core` defines the pinned scenarios (an
SA epoch, a 1k-candidate batch evaluation, a 5-region diurnal routing
epoch, a fine-grained temporal batch-planning epoch) and
:mod:`repro.perf.baseline` the committed-JSON schema and the
tolerance-banded regression check that ``repro bench`` and the CI perf
job run against ``BENCH_perf_core.json``.
"""

from repro.perf.core import (
    ScenarioResult,
    SuiteResult,
    calibration_ops_per_s,
    run_suite,
    scenario_batch_eval_1k,
    scenario_routing_epoch,
    scenario_sa_epoch,
    scenario_shifting_epoch,
)
from repro.perf.baseline import (
    DEFAULT_TOLERANCE,
    baseline_path,
    check_regressions,
    load_baseline,
    write_baseline,
)

__all__ = [
    "ScenarioResult",
    "SuiteResult",
    "calibration_ops_per_s",
    "run_suite",
    "scenario_batch_eval_1k",
    "scenario_routing_epoch",
    "scenario_sa_epoch",
    "scenario_shifting_epoch",
    "DEFAULT_TOLERANCE",
    "baseline_path",
    "check_regressions",
    "load_baseline",
    "write_baseline",
]
