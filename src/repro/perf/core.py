"""Pinned performance scenarios for the vectorized evaluation core.

Three scenarios track the optimizer/router hot path end to end:

* ``batch_eval_1k`` — 1000 SA-walk candidates through
  :meth:`ConfigEvaluator.evaluate_batch` vs the scalar
  :meth:`~ConfigEvaluator.evaluate` loop on a cold twin evaluator.  The
  candidate count is pinned at 1000 at every fidelity: the headline
  speedup must mean the same thing in CI smoke runs and on developer
  machines.
* ``sa_epoch`` — one full :func:`simulated_annealing` invocation with a
  batched neighbourhood vs the single-proposal chain (ops = candidate
  evaluations).
* ``routing_epoch`` — a 5-region diurnal day of demand-mode
  :func:`plan_origin_cells` calls vs the scalar cell-by-cell reference.
* ``shifting_epoch`` — a day of temporal batch planning: EDF water-fill
  :func:`plan_batch_slots` over a 48-slot forecast window vs the scalar
  lot-by-lot reference.

Every scenario is deterministic (fixed seeds, fixed walks) so run-to-run
noise is timing noise only.  Raw ops/s are machine-dependent; the
:func:`calibration_ops_per_s` kernel measures the host's numpy speed so
a committed baseline can be compared across machines via the
calibration-normalized ratio, and the scalar-vs-batched *speedups* are
dimensionless and compare directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

SCENARIO_NAMES = ("batch_eval_1k", "sa_epoch", "routing_epoch", "shifting_epoch")

#: Candidate count of the headline batch-evaluation scenario — pinned at
#: every fidelity (the ISSUE's acceptance criterion is defined on it).
BATCH_EVAL_CANDIDATES = 1000


@dataclass(frozen=True)
class ScenarioResult:
    """One pinned scenario's measurement."""

    name: str
    ops_per_s: float
    speedup_vs_scalar: float
    items: int
    seconds: float
    scalar_seconds: float

    def to_json(self) -> dict:
        return {
            "ops_per_s": round(self.ops_per_s, 3),
            "speedup_vs_scalar": round(self.speedup_vs_scalar, 3),
            "items": self.items,
            "seconds": round(self.seconds, 6),
            "scalar_seconds": round(self.scalar_seconds, 6),
        }


@dataclass(frozen=True)
class SuiteResult:
    """All scenarios plus the host-speed calibration."""

    fidelity: str
    calibration_ops_per_s: float
    scenarios: tuple[ScenarioResult, ...] = field(default_factory=tuple)

    def scenario(self, name: str) -> ScenarioResult:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(name)

    def to_json(self) -> dict:
        return {
            "schema": 1,
            "fidelity": self.fidelity,
            "calibration_ops_per_s": round(self.calibration_ops_per_s, 3),
            "scenarios": {s.name: s.to_json() for s in self.scenarios},
        }


def calibration_ops_per_s(repeats: int = 5) -> float:
    """Host numpy speed on a fixed kernel, in kernel-ops per second.

    The kernel (an exp/sum mixture over a fixed 1000x32 block, the shape
    of a batched CDF pass) is what the hot path spends its time in, so
    normalizing a scenario's ops/s by this number yields a
    machine-portable ratio a committed baseline can be checked against.
    """
    x = (np.arange(32000, dtype=np.float64) % 97.0).reshape(1000, 32) / 97.0
    w = 1.0 - x[::-1]

    def kernel() -> float:
        acc = 0.0
        for k in range(1, 9):
            acc += float(np.sum(w * np.exp(-k * x), axis=1).sum())
        return acc

    kernel()  # warm
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        kernel()
        best = min(best, time.perf_counter() - t0)
    return 1.0 / best


def _family_setup():
    from repro.models.perf import PerfModel
    from repro.models.zoo import default_zoo

    zoo = default_zoo()
    perf = PerfModel()
    return zoo, perf, zoo.family("efficientnet")


def _candidate_walk(zoo, fam, n: int, n_gpus: int, seed: int = 7):
    """A deterministic SA-style random walk of ``n`` configurations."""
    from repro.core.config import base_config
    from repro.core.moves import MoveGenerator
    from repro.utils.rng import RngMixer

    moves = MoveGenerator(zoo=zoo, family=fam.name)
    gen = RngMixer(seed=seed).fork("perf-walk", 0)
    configs = [base_config(fam, n_gpus)]
    while len(configs) < n:
        nxt = moves.propose(configs[-1], gen)
        if nxt is None:  # pragma: no cover - the move space never dries up
            break
        configs.append(nxt)
    return configs


def scenario_batch_eval_1k(fidelity: str = "default") -> ScenarioResult:
    """1000 candidates: one ``evaluate_batch`` vs the scalar loop.

    Both sides start from a cold evaluator cache (twin instances) after a
    warm-up pass that fills the process-level projection/pricing memos —
    steady-state throughput is what the trajectory tracks.
    """
    from repro.core.evaluator import ConfigEvaluator

    zoo, perf, fam = _family_setup()
    n_gpus = 8
    configs = _candidate_walk(zoo, fam, BATCH_EVAL_CANDIDATES, n_gpus)

    def fresh() -> ConfigEvaluator:
        return ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=200.0,
            n_gpus=n_gpus, method="analytic",
        )

    fresh().evaluate_batch(configs)  # warm the process-level memos

    t0 = time.perf_counter()
    fresh().evaluate_batch(configs)
    batch_s = time.perf_counter() - t0

    evaluator = fresh()
    t0 = time.perf_counter()
    for config in configs:
        evaluator.evaluate(config)
    scalar_s = time.perf_counter() - t0

    return ScenarioResult(
        name="batch_eval_1k",
        ops_per_s=len(configs) / batch_s,
        speedup_vs_scalar=scalar_s / batch_s,
        items=len(configs),
        seconds=batch_s,
        scalar_seconds=scalar_s,
    )


def scenario_sa_epoch(fidelity: str = "default") -> ScenarioResult:
    """One annealing invocation, batched neighbourhood vs scalar chain.

    Ops are candidate evaluations; the speedup compares evaluations per
    second, not trajectories — for any neighbourhood k > 1 the proposal
    and acceptance draws interleave differently by construction.
    """
    from repro.core.annealing import SAParams, simulated_annealing
    from repro.core.config import base_config
    from repro.core.evaluator import ConfigEvaluator
    from repro.core.moves import MoveGenerator
    from repro.core.objective import ObjectiveSpec, SlaPolicy

    zoo, perf, fam = _family_setup()
    n_gpus = 6
    max_evals = 120 if fidelity == "smoke" else 400
    initial = base_config(fam, n_gpus)
    moves = MoveGenerator(zoo=zoo, family=fam.name)

    def run(neighborhood: int) -> tuple[int, float]:
        evaluator = ConfigEvaluator(
            zoo=zoo, perf=perf, family=fam.name, rate_per_s=150.0,
            n_gpus=n_gpus, method="analytic",
        )
        base_eval = evaluator.evaluate(initial)
        objective = ObjectiveSpec(
            lambda_weight=0.5,
            a_base=fam.base_accuracy,
            c_base=0.002,
            sla=SlaPolicy(p95_target_ms=base_eval.p95_ms),
        )
        params = SAParams(
            max_evals=max_evals,
            no_improve_limit=max_evals,  # time the full budget
            time_budget_s=1e9,
            neighborhood=neighborhood,
        )
        t0 = time.perf_counter()
        result = simulated_annealing(
            initial, evaluator, objective, ci=300.0, moves=moves,
            rng=11, params=params,
        )
        return result.num_evaluations, time.perf_counter() - t0

    run(8)  # warm the process-level memos
    evals, batch_s = run(8)
    scalar_evals, scalar_s = run(1)

    return ScenarioResult(
        name="sa_epoch",
        ops_per_s=evals / batch_s,
        speedup_vs_scalar=(scalar_s / scalar_evals) / (batch_s / evals),
        items=evals,
        seconds=batch_s,
        scalar_seconds=scalar_s,
    )


def scenario_routing_epoch(fidelity: str = "default") -> ScenarioResult:
    """A 5-region diurnal day of demand-mode cell planning.

    24 hourly epochs over 12 origins x 5 regions with sinusoidal origin
    demand, session retention chained through the day: the vectorized
    :func:`plan_origin_cells` vs its scalar ``place()`` reference, with
    an instant SLA-rate table so the measurement isolates the planner.
    """
    from repro.fleet.routing import (
        RoutingContext,
        _plan_origin_cells_scalar,
        plan_origin_cells,
    )

    n_r, n_o = 5, 12
    epochs = 24 if fidelity == "smoke" else 96
    base = np.linspace(20.0, 60.0, n_r)
    phase_r = np.linspace(0.0, 2.0 * np.pi, n_r, endpoint=False)
    phase_o = np.linspace(0.0, 2.0 * np.pi, n_o, endpoint=False)
    latency = 5.0 + 90.0 * (1.0 - np.cos(phase_o[:, None] - phase_r[None, :]))
    targets = np.full(n_r, 150.0)
    caps_by_budget = 0.9 * base.sum() / n_r

    def sla_rate_fn(r: int, budget_ms: float) -> float:
        return caps_by_budget * min(1.0, budget_ms / 120.0)

    def day(planner) -> float:
        prev_plan = None
        t0 = time.perf_counter()
        for e in range(epochs):
            t_h = 24.0 * e / epochs
            diurnal = 1.0 + 0.5 * np.sin(2.0 * np.pi * t_h / 24.0 + phase_o)
            origin_rates = 8.0 * diurnal
            global_rate = float(origin_rates.sum())
            ctx = RoutingContext(
                t_h=t_h,
                global_rate_per_s=global_rate,
                ci=np.linspace(50.0, 350.0, n_r),
                pue=np.full(n_r, 1.4),
                net_latency_ms=np.linspace(5.0, 45.0, n_r),
                nominal_rates=base,
                capacity_rates=1.3 * base,
                sla_cap_rates=np.full(n_r, np.inf),
                floor_rates=0.05 * base,
            )
            order = np.argsort(ctx.ci, kind="stable")
            prev_plan = planner(
                ctx, order, origin_rates, latency, targets, sla_rate_fn,
                prev_plan=prev_plan, session_keep_frac=0.6,
                resident_floor_share=0.1,
            )
        return time.perf_counter() - t0

    day(plan_origin_cells)  # warm
    batch_s = day(plan_origin_cells)
    scalar_s = day(_plan_origin_cells_scalar)

    return ScenarioResult(
        name="routing_epoch",
        ops_per_s=epochs / batch_s,
        speedup_vs_scalar=scalar_s / batch_s,
        items=epochs,
        seconds=batch_s,
        scalar_seconds=scalar_s,
    )


def scenario_shifting_epoch(fidelity: str = "default") -> ScenarioResult:
    """A day of fine-grained temporal batch planning (quarter-hour slots).

    Each epoch replans a deterministic backlog of 192 deferrable lots —
    staggered deadlines, mixed sizes — over a 288-slot (72 h x 15 min)
    forecast window whose capacity is tight enough that most lots
    genuinely water-fill across many slots: the vectorized EDF
    :func:`plan_batch_slots` vs its scalar lot-by-lot reference, in both
    preemptible and whole-lot modes.  Pure planner arithmetic, no fleet
    in the loop.
    """
    from repro.shifting import _plan_batch_slots_scalar, plan_batch_slots

    n_lots, n_slots = 192, 288
    epochs = 24 if fidelity == "smoke" else 96
    idx = np.arange(n_lots, dtype=np.float64)
    requests = 60.0 + 40.0 * np.cos(idx * 0.7) ** 2
    deadline_slots = (idx * 5.0).astype(np.intp) % n_slots
    slots = np.arange(n_slots, dtype=np.float64)
    caps_base = 40.0 * (1.0 + 0.5 * np.sin(2.0 * np.pi * slots / n_slots))

    def day(planner) -> float:
        t0 = time.perf_counter()
        for e in range(epochs):
            phase = 2.0 * np.pi * e / epochs
            scores = 200.0 + 150.0 * np.sin(2.0 * np.pi * slots / 24.0 + phase)
            caps = caps_base * (1.0 + 0.2 * np.cos(phase))
            planner(requests, deadline_slots, caps, scores)
            planner(requests, deadline_slots, caps, scores, preemptible=False)
        return time.perf_counter() - t0

    day(plan_batch_slots)  # warm
    batch_s = day(plan_batch_slots)
    scalar_s = day(_plan_batch_slots_scalar)

    return ScenarioResult(
        name="shifting_epoch",
        ops_per_s=epochs / batch_s,
        speedup_vs_scalar=scalar_s / batch_s,
        items=epochs,
        seconds=batch_s,
        scalar_seconds=scalar_s,
    )


_SCENARIOS = {
    "batch_eval_1k": scenario_batch_eval_1k,
    "sa_epoch": scenario_sa_epoch,
    "routing_epoch": scenario_routing_epoch,
    "shifting_epoch": scenario_shifting_epoch,
}


def run_suite(fidelity: str = "default") -> SuiteResult:
    """Run every pinned scenario plus the host calibration."""
    return SuiteResult(
        fidelity=fidelity,
        calibration_ops_per_s=calibration_ops_per_s(),
        scenarios=tuple(
            _SCENARIOS[name](fidelity) for name in SCENARIO_NAMES
        ),
    )
