"""repro.shifting — deferrable batch workloads and temporal load shifting.

Clover decides *where* and *at what accuracy* to serve; this layer adds
*when*.  A :class:`BatchJobClass` describes work that does not have to run
the epoch it arrives — training-data refreshes, offline re-scoring,
embedding backfills — only by a deadline some hours out.  The
:class:`TemporalScheduler` holds that work in a deadline-ordered backlog
and releases it into the epochs the grid is predicted to be cleanest,
falling back to earliest-deadline-first admission whenever waiting any
longer would risk a miss.  Per-region :class:`BacklogLedger` instances
record what each region carried, when, and how far the work moved.

The layer sits between :mod:`repro.demand` and :mod:`repro.fleet`:
it consumes carbon forecasts (:func:`repro.carbon.forecast.make_forecaster`)
and produces per-epoch admission rates the
:class:`~repro.fleet.FleetCoordinator` folds into its
gate→route→admit-batch→wake→step pipeline.
"""

from repro.shifting.batch import (
    ARRIVAL_PROFILES,
    BacklogLedger,
    BatchCompletion,
    BatchJobClass,
    BatchLot,
)
from repro.shifting.scheduler import (
    TemporalScheduler,
    _plan_batch_slots_scalar,
    plan_batch_slots,
)

__all__ = [
    "ARRIVAL_PROFILES",
    "BatchJobClass",
    "BatchLot",
    "BatchCompletion",
    "BacklogLedger",
    "TemporalScheduler",
    "plan_batch_slots",
    "_plan_batch_slots_scalar",
]
