"""The deferrable batch workload class and its backlog accounting.

A :class:`BatchJobClass` is the temporal analogue of the demand layer's
origin profiles: a deterministic arrival process for work that tolerates
delay.  Jobs arrive continuously (uniformly, or concentrated in business
hours), each job is ``requests_per_job`` inference requests, and every
request must complete within ``deadline_h`` hours of arriving.  The
workload joins the interactive traffic in a scenario's demand description
(``BatchSpec`` in :mod:`repro.scenarios.spec`); the epochs it actually
runs in are the :class:`~repro.shifting.scheduler.TemporalScheduler`'s
choice.

:class:`BacklogLedger` is the bookkeeping: one fleet-level instance holds
the queued lots still waiting for a clean window, and one instance per
region records the completions that region carried — requests, age at
admission (the "hours moved" of the shift histogram), and whether the
deadline held.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "ARRIVAL_PROFILES",
    "BatchJobClass",
    "BatchLot",
    "BatchCompletion",
    "BacklogLedger",
]

#: Arrival profiles a batch class may name.  ``uniform`` spreads arrivals
#: evenly; ``business-hours`` concentrates the same daily volume into
#: 09:00-17:00 (the shape of human-triggered offline work).
ARRIVAL_PROFILES = ("uniform", "business-hours")

#: Business-hours window (hours of day, [start, end)).
_BUSINESS_START_H = 9.0
_BUSINESS_END_H = 17.0


def _business_hours_overlap(t0_h: float, t1_h: float) -> float:
    """Hours of ``[t0_h, t1_h)`` falling inside 09:00-17:00 of any day.

    >>> _business_hours_overlap(0.0, 24.0)
    8.0
    >>> _business_hours_overlap(8.5, 9.5)
    0.5
    >>> _business_hours_overlap(17.0, 33.5)  # evening through next morning
    0.5
    """
    if t1_h <= t0_h:
        return 0.0
    total = 0.0
    day = math.floor(t0_h / 24.0)
    while day * 24.0 < t1_h:
        lo = day * 24.0 + _BUSINESS_START_H
        hi = day * 24.0 + _BUSINESS_END_H
        total += max(0.0, min(t1_h, hi) - max(t0_h, lo))
        day += 1
    return total


@dataclass(frozen=True)
class BatchJobClass:
    """One class of deferrable batch work: arrivals, size, flexibility.

    Attributes
    ----------
    jobs_per_h:
        Mean job arrival rate (jobs per hour, averaged over a day).
    requests_per_job:
        Inference requests each job amounts to; the scheduler plans in
        requests, so this is the jobs→requests exchange rate.
    deadline_h:
        Every request must complete within this many hours of arriving.
    arrival:
        Arrival profile name (see :data:`ARRIVAL_PROFILES`).
    preemptible:
        ``True`` (default) lets a lot split across epochs and regions;
        ``False`` forces each lot to run whole within a single epoch.
    accuracy_floor_pct:
        Optional floor on the serving accuracy batch work tolerates (% of
        base accuracy); the scheduler avoids admitting into regions whose
        deployed configuration last measured below it, unless a deadline
        forces the work out anyway.
    defer:
        ``False`` disables temporal shifting: every lot is admitted the
        epoch it arrives (the spatial-only ablation the benchmarks
        compare against).

    >>> job = BatchJobClass(jobs_per_h=60.0, requests_per_job=30.0)
    >>> job.mean_rate_per_s
    0.5
    >>> job.arrivals_requests(0.0, 2.0)  # two hours of uniform arrivals
    3600.0
    """

    jobs_per_h: float
    requests_per_job: float = 1.0
    deadline_h: float = 8.0
    arrival: str = "uniform"
    preemptible: bool = True
    accuracy_floor_pct: float | None = None
    defer: bool = True
    name: str = "batch"

    def __post_init__(self) -> None:
        if self.jobs_per_h <= 0.0:
            raise ValueError(
                f"batch jobs per hour must be positive, got {self.jobs_per_h}"
            )
        if self.requests_per_job <= 0.0:
            raise ValueError(
                f"requests per job must be positive, got {self.requests_per_job}"
            )
        if self.deadline_h <= 0.0:
            raise ValueError(
                f"batch deadline must be positive, got {self.deadline_h}"
            )
        if self.arrival not in ARRIVAL_PROFILES:
            raise ValueError(
                f"unknown arrival profile {self.arrival!r}; valid: "
                f"{', '.join(ARRIVAL_PROFILES)}"
            )
        if self.accuracy_floor_pct is not None and not (
            0.0 < self.accuracy_floor_pct <= 100.0
        ):
            raise ValueError(
                f"accuracy floor must be in (0, 100] %, got "
                f"{self.accuracy_floor_pct}"
            )

    @property
    def mean_rate_per_s(self) -> float:
        """Day-averaged batch request rate (requests per second)."""
        return self.jobs_per_h * self.requests_per_job / 3600.0

    def arrivals_requests(self, t0_h: float, t1_h: float) -> float:
        """Requests arriving in ``[t0_h, t1_h)`` (deterministic fluid flow).

        The uniform profile integrates the mean rate; business-hours
        concentrates each day's volume (``24 * jobs_per_h`` jobs) into
        the 8-hour window, so the *daily* total matches the uniform
        profile exactly and only the timing differs.
        """
        hours = max(0.0, t1_h - t0_h)
        per_hour = self.jobs_per_h * self.requests_per_job
        if self.arrival == "uniform":
            return per_hour * hours
        window = _BUSINESS_END_H - _BUSINESS_START_H
        return per_hour * (24.0 / window) * _business_hours_overlap(t0_h, t1_h)


@dataclass
class BatchLot:
    """One epoch's batch arrivals, tracked until fully admitted.

    ``requests`` counts down as slices of the lot are admitted;
    ``requests_total`` keeps the arrival size for reporting.
    """

    arrival_t_h: float
    deadline_t_h: float
    requests: float
    requests_total: float = 0.0

    def __post_init__(self) -> None:
        if self.requests_total == 0.0:
            self.requests_total = self.requests


@dataclass(frozen=True)
class BatchCompletion:
    """One admitted slice of a lot: what ran, where it sat, how it did."""

    epoch: int
    t_h: float
    requests: float
    #: Hours the work waited between arrival and admission — the shift.
    age_h: float
    on_time: bool


class BacklogLedger:
    """Queued batch work, deadlines and completions for one queue.

    The coordinator keeps one fleet-level ledger (the undispatched
    backlog the temporal scheduler plans over) plus one per region (the
    work that region actually carried).  The same class serves both
    roles: ``enqueue``/``pending`` for the queue side,
    ``record``/``completions`` for the execution side.

    >>> ledger = BacklogLedger("us-ciso")
    >>> ledger.enqueue(BatchLot(arrival_t_h=0.0, deadline_t_h=8.0,
    ...                         requests=100.0))
    >>> ledger.pending_requests
    100.0
    >>> ledger.record(epoch=3, t_h=3.0, requests=100.0, age_h=3.0,
    ...               on_time=True)
    >>> ledger.completed_requests, ledger.on_time_requests
    (100.0, 100.0)
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.pending: deque[BatchLot] = deque()
        self.completions: list[BatchCompletion] = []

    # -------------------------------------------------------------- #
    # queue side
    # -------------------------------------------------------------- #

    def enqueue(self, lot: BatchLot) -> None:
        self.pending.append(lot)

    @property
    def pending_requests(self) -> float:
        return float(sum(lot.requests for lot in self.pending))

    def overdue_requests(self, t_h: float) -> float:
        """Still-queued requests whose deadline has already passed."""
        return float(
            sum(
                lot.requests
                for lot in self.pending
                if lot.deadline_t_h <= t_h + 1e-9
            )
        )

    # -------------------------------------------------------------- #
    # execution side
    # -------------------------------------------------------------- #

    def record(
        self, epoch: int, t_h: float, requests: float, age_h: float,
        on_time: bool,
    ) -> None:
        self.completions.append(
            BatchCompletion(
                epoch=epoch, t_h=t_h, requests=requests, age_h=age_h,
                on_time=on_time,
            )
        )

    @property
    def completed_requests(self) -> float:
        return float(sum(c.requests for c in self.completions))

    @property
    def on_time_requests(self) -> float:
        return float(sum(c.requests for c in self.completions if c.on_time))

    def reset(self) -> None:
        self.pending.clear()
        self.completions.clear()
