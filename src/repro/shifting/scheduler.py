"""The carbon-aware temporal scheduler: slot planning plus EDF safety.

Each epoch the scheduler looks at every queued batch lot and the window
of future epochs ("slots") still inside its deadline, ranks the slots by
predicted effective gCO2/request, and water-fills each lot's requests
into the cleanest slots with estimated spare capacity —
earliest-deadline-first, so tight lots claim their (smaller) windows
before flexible ones.  Whatever lands in slot 0 is admitted *now*;
everything else stays queued and the plan is recomputed next epoch
against fresh forecasts (model-predictive replanning, the CarbonShiftML
slot/deadline shape).

The EDF ordering doubles as the no-miss guarantee: lots are processed in
deadline order and each only ever consumes capacity inside its own
window, so if a lot cannot be fully placed, the total demand due by its
deadline genuinely exceeds the window's capacity — greedy EDF placement
is feasibility-optimal for this nested-window structure (Hall's
condition; property-tested).  A lot whose deadline falls inside the
current epoch is *deadline-forced*: it is placed into slot 0 regardless
of how dirty the grid looks, up to whatever leftover capacity exists.

:func:`plan_batch_slots` is the vectorized hot loop (one cumulative-sum
water-fill per lot); :func:`_plan_batch_slots_scalar` keeps the explicit
per-slot loop as the semantic reference for the equivalence property
tests, mirroring the routing layer's ``_water_fill`` convention.
"""

from __future__ import annotations

import math

import numpy as np

from repro.shifting.batch import BacklogLedger, BatchJobClass, BatchLot

__all__ = [
    "plan_batch_slots",
    "_plan_batch_slots_scalar",
    "TemporalScheduler",
]


def plan_batch_slots(
    requests: np.ndarray,
    deadline_slots: np.ndarray,
    slot_caps: np.ndarray,
    slot_scores: np.ndarray,
    preemptible: bool = True,
) -> np.ndarray:
    """Assign each lot's requests to the cleanest slots inside its deadline.

    Parameters
    ----------
    requests:
        Per-lot request counts (floats, >= 0).
    deadline_slots:
        Per-lot index of the last slot the lot may run in (inclusive;
        slot 0 is the current epoch).
    slot_caps:
        Estimated spare capacity of each slot, in requests.
    slot_scores:
        Predicted effective gCO2/request of each slot (lower = cleaner).
    preemptible:
        ``True`` lets a lot split across slots; ``False`` places each lot
        whole into the cleanest single slot that fits (falling back to
        the roomiest eligible slot when none does).

    Returns the ``(n_lots, n_slots)`` allocation matrix.  Row sums can
    fall short of ``requests`` only when the lot's eligible slots lack
    capacity — the caller keeps the remainder queued.

    >>> alloc = plan_batch_slots(
    ...     np.array([10.0]), np.array([2]),
    ...     slot_caps=np.array([20.0, 20.0, 20.0]),
    ...     slot_scores=np.array([300.0, 100.0, 200.0]))
    >>> alloc[0].tolist()  # defers everything into the cleanest slot
    [0.0, 10.0, 0.0]
    """
    requests = np.asarray(requests, dtype=np.float64)
    deadline_slots = np.asarray(deadline_slots, dtype=np.int64)
    caps = np.array(slot_caps, dtype=np.float64)
    scores = np.asarray(slot_scores, dtype=np.float64)
    n_lots, n_slots = requests.size, caps.size
    if deadline_slots.size != n_lots:
        raise ValueError(
            f"{deadline_slots.size} deadlines for {n_lots} lots"
        )
    if scores.size != n_slots:
        raise ValueError(f"{scores.size} scores for {n_slots} slots")
    alloc = np.zeros((n_lots, n_slots), dtype=np.float64)
    # Cleanest slot first; stable sort prefers the *earlier* slot on
    # ties, so equal-score work is never deferred for nothing.
    slot_rank = np.argsort(scores, kind="stable")
    # EDF over lots: nested deadline windows mean earlier-due lots see a
    # subset of later lots' slots, so serving them first never strands
    # capacity a later lot could not also have used.
    for li in np.argsort(deadline_slots, kind="stable"):
        need = float(requests[li])
        if need <= 0.0:
            continue
        last = max(0, min(int(deadline_slots[li]), n_slots - 1))
        eligible = slot_rank[slot_rank <= last]
        if preemptible:
            room = caps[eligible]
            prior = np.cumsum(room) - room
            take = np.clip(need - prior, 0.0, room)
            alloc[li, eligible] = take
            caps[eligible] -= take
        else:
            fits = eligible[caps[eligible] >= need - 1e-12]
            # Fallback ties break toward the earliest slot (the eligible
            # set is exactly 0..last), matching the scalar reference.
            slot = (
                int(fits[0])
                if fits.size
                else int(np.argmax(caps[: last + 1]))
            )
            take = min(need, float(caps[slot]))
            alloc[li, slot] = take
            caps[slot] -= take
    return alloc


def _plan_batch_slots_scalar(
    requests: np.ndarray,
    deadline_slots: np.ndarray,
    slot_caps: np.ndarray,
    slot_scores: np.ndarray,
    preemptible: bool = True,
) -> np.ndarray:
    """The original lot-by-lot, slot-by-slot loop; the semantic reference
    for :func:`plan_batch_slots`'s equivalence property tests."""
    requests = np.asarray(requests, dtype=np.float64)
    deadline_slots = np.asarray(deadline_slots, dtype=np.int64)
    caps = [float(c) for c in np.asarray(slot_caps, dtype=np.float64)]
    scores = np.asarray(slot_scores, dtype=np.float64)
    n_lots, n_slots = requests.size, len(caps)
    alloc = np.zeros((n_lots, n_slots), dtype=np.float64)
    slot_rank = sorted(range(n_slots), key=lambda s: (scores[s], s))
    for li in sorted(range(n_lots), key=lambda l: (deadline_slots[l], l)):
        need = float(requests[li])
        if need <= 0.0:
            continue
        last = max(0, min(int(deadline_slots[li]), n_slots - 1))
        if preemptible:
            for s in slot_rank:
                if s > last or need <= 0.0:
                    continue
                take = min(need, caps[s])
                if take > 0.0:
                    alloc[li, s] = take
                    caps[s] -= take
                    need -= take
        else:
            chosen = None
            for s in slot_rank:
                if s <= last and caps[s] >= need - 1e-12:
                    chosen = s
                    break
            if chosen is None:
                eligible = [s for s in range(n_slots) if s <= last]
                chosen = max(eligible, key=lambda s: caps[s])
            take = min(need, caps[chosen])
            alloc[li, chosen] = take
            caps[chosen] -= take
    return alloc


class TemporalScheduler:
    """Per-epoch batch admission over a fleet's leftover capacity.

    Owns the fleet-level backlog (lots still waiting for a clean window)
    and one :class:`BacklogLedger` per region recording the work each
    region carried.  The coordinator drives it once per epoch:
    :meth:`observe_arrivals` folds in the epoch's new lots, then
    :meth:`plan_epoch` returns the per-region admission rates (and the
    capacity-hold hints that keep GPUs awake through clean valleys).
    """

    def __init__(
        self,
        job: BatchJobClass,
        step_s: float,
        region_names: tuple[str, ...] | list[str],
    ) -> None:
        if step_s <= 0.0:
            raise ValueError(f"epoch length must be positive, got {step_s}")
        self.job = job
        self.step_s = float(step_s)
        self.step_h = float(step_s) / 3600.0
        self.backlog = BacklogLedger("fleet")
        self.ledgers = [BacklogLedger(name) for name in region_names]
        #: Slots the planner looks ahead: every epoch a fresh lot could
        #: still run in and finish by its deadline (1 when shifting is
        #: disabled — admit-on-arrival).
        self.horizon_slots = (
            1
            if not job.defer
            else max(1, math.floor(job.deadline_h / self.step_h + 1e-9))
        )

    def reset(self) -> None:
        self.backlog.reset()
        for ledger in self.ledgers:
            ledger.reset()

    def observe_arrivals(self, t_h: float) -> float:
        """Queue the lot arriving during ``[t_h, t_h + step)``; its size."""
        requests = self.job.arrivals_requests(t_h, t_h + self.step_h)
        if requests > 0.0:
            self.backlog.enqueue(
                BatchLot(
                    arrival_t_h=t_h,
                    deadline_t_h=t_h + self.job.deadline_h,
                    requests=requests,
                )
            )
        return requests

    def _deadline_slot(self, lot: BatchLot, t_h: float) -> int:
        """Last slot index (0 = now) the lot may run in and still be on
        time — the last slot whose epoch *ends* by the deadline; overdue
        lots clamp to 0 (run ASAP, recorded as a miss)."""
        if not self.job.defer:
            return 0
        slack_h = lot.deadline_t_h - t_h
        return max(0, math.floor(slack_h / self.step_h + 1e-9) - 1)

    def plan_epoch(
        self,
        epoch: int,
        t_h: float,
        region_scores: np.ndarray,
        region_leftover_rates: np.ndarray,
        region_eligible: np.ndarray,
        slot_scores: np.ndarray,
        slot_caps: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Admit batch work into this epoch; plan the rest into the future.

        Parameters
        ----------
        region_scores:
            Current effective gCO2/request per region (spatial ranking).
        region_leftover_rates:
            Per-region spare serving rate this epoch (req/s) — awake,
            SLA-safe capacity minus the routed interactive rate.
        region_eligible:
            Accuracy-floor mask; ineligible regions receive batch work
            only when a deadline forces it out anyway.
        slot_scores, slot_caps:
            Per-slot predicted effective gCO2/request and estimated spare
            capacity (requests); slot 0 must hold the *actual* values.

        Returns ``(admitted_rates, hold_rates)`` in req/s per region:
        what to serve now, and the near-future rate (admission plus the
        next slot's planned volume) gating should hold capacity for.
        """
        n_regions = len(self.ledgers)
        admitted = np.zeros(n_regions, dtype=np.float64)
        hold = np.zeros(n_regions, dtype=np.float64)
        lots = sorted(
            self.backlog.pending, key=lambda l: (l.deadline_t_h, l.arrival_t_h)
        )
        if not lots:
            return admitted, hold
        requests = np.array([l.requests for l in lots], dtype=np.float64)
        deadlines = np.array(
            [self._deadline_slot(l, t_h) for l in lots], dtype=np.int64
        )
        alloc = plan_batch_slots(
            requests,
            deadlines,
            slot_caps,
            slot_scores,
            preemptible=self.job.preemptible,
        )
        # Spatial placement: fill the cleanest regions' leftover first.
        order = np.argsort(region_scores, kind="stable")
        room = region_leftover_rates * self.step_s
        epoch_end = t_h + self.step_h
        for li, lot in enumerate(lots):
            forced = deadlines[li] == 0
            # A deadline-forced lot takes whatever leftover exists — the
            # EDF fallback — while plannable work honors the slot-0
            # allocation and the accuracy-floor eligibility mask.
            target = float(lot.requests) if forced else float(alloc[li, 0])
            if target <= 0.0:
                continue
            placed_total = 0.0
            for r in order:
                if target <= 0.0:
                    break
                if not forced and not region_eligible[r]:
                    continue
                take = min(target, float(room[r]))
                if take <= 0.0:
                    continue
                room[r] -= take
                target -= take
                placed_total += take
                admitted[r] += take
                self.ledgers[r].record(
                    epoch=epoch,
                    t_h=t_h,
                    requests=take,
                    age_h=t_h - lot.arrival_t_h,
                    on_time=epoch_end <= lot.deadline_t_h + 1e-9,
                )
            lot.requests -= placed_total
        drained = [l for l in self.backlog.pending if l.requests > 1e-9]
        self.backlog.pending.clear()
        self.backlog.pending.extend(drained)
        admitted_rates = admitted / self.step_s
        # Hold hints: the rate each region should stay provisioned for
        # next epoch — this epoch's admission plus the next slot's
        # planned volume, placed against the remaining leftover.
        hold = admitted.copy()
        if alloc.shape[1] > 1:
            upcoming = float(alloc[:, 1].sum())
            for r in order:
                if upcoming <= 0.0:
                    break
                take = min(upcoming, float(room[r]))
                hold[r] += take
                upcoming -= take
            if upcoming > 0.0 and order.size:
                hold[order[0]] += upcoming
        return admitted_rates, hold / self.step_s
