"""Carbon-intensity forecasting (a paper-future-work building block).

Clover itself is purely reactive — it re-optimizes when the *observed*
intensity moves 5%.  Several follow-up systems (and the paper's related
work on carbon-aware batch scheduling) act on short-horizon *forecasts*
instead.  This module provides two reference forecasters over
:class:`~repro.carbon.intensity.CarbonIntensityTrace` histories:

* :class:`PersistenceForecaster` — "the next hours look like right now";
  the baseline every forecasting paper compares against,
* :class:`DiurnalForecaster` — hour-of-day climatology blended with a
  persistence anchor; grid intensity is strongly diurnal (solar), so this
  captures most of the predictable structure.

Accuracy is quantified with mean absolute error over a horizon; tests pin
that the diurnal forecaster beats persistence on solar-shaped grids at
multi-hour horizons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.intensity import CarbonIntensityTrace

__all__ = [
    "PersistenceForecaster",
    "DiurnalForecaster",
    "FORECASTER_NAMES",
    "make_forecaster",
    "forecast_mae",
]


@dataclass(frozen=True)
class PersistenceForecaster:
    """Predicts the current intensity for every future horizon."""

    trace: CarbonIntensityTrace

    def predict(self, t_h: float, horizon_h: float) -> float:
        """Forecast intensity at ``t_h + horizon_h`` given data up to ``t_h``."""
        if horizon_h < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon_h}")
        return float(self.trace.at(t_h))

    def predict_many(self, t_h: float, horizons_h) -> np.ndarray:
        """Vector form of :meth:`predict` (persistence: one value fits all)."""
        horizons = np.asarray(horizons_h, dtype=np.float64)
        if np.any(horizons < 0):
            raise ValueError("horizons must be non-negative")
        return np.full(horizons.shape, float(self.trace.at(t_h)))


@dataclass(frozen=True)
class DiurnalForecaster:
    """Hour-of-day climatology anchored to the current observation.

    The forecast is ``climatology(target hour) + decay * (now - climatology
    (current hour))``: at short horizons the current anomaly dominates
    (persistence-like); at long horizons the prediction relaxes to the
    historical mean profile.

    Parameters
    ----------
    trace:
        History the climatology is built from (only samples at or before
        the query time are used — no lookahead).
    anomaly_halflife_h:
        How fast the current anomaly decays toward climatology.
    """

    trace: CarbonIntensityTrace
    anomaly_halflife_h: float = 6.0

    def __post_init__(self) -> None:
        if self.anomaly_halflife_h <= 0:
            raise ValueError(
                f"halflife must be positive, got {self.anomaly_halflife_h}"
            )

    def _climatology(self, t_h: float) -> np.ndarray | None:
        """Mean intensity per hour-of-day over history up to ``t_h``.

        Returns ``None`` when only a single sample precedes the query —
        the short-history case where :meth:`predict` falls back to
        persistence.  With *no* samples at all there is nothing to anchor
        even persistence to, and the query is an error.
        """
        mask = self.trace.times_h <= t_h
        if mask.sum() == 0:
            raise ValueError("no history at or before the query time")
        if mask.sum() < 2:
            return None
        hours = self.trace.times_h[mask] % 24.0
        values = self.trace.values[mask]
        profile = np.empty(24)
        overall = values.mean()
        for h in range(24):
            sel = (hours >= h) & (hours < h + 1)
            profile[h] = values[sel].mean() if sel.any() else overall
        return profile

    def predict(self, t_h: float, horizon_h: float) -> float:
        """Forecast intensity at ``t_h + horizon_h`` using history <= t_h.

        With fewer than two historical samples (the run's first epoch)
        there is no climatology to relax toward, so the prediction falls
        back to persistence — the honest degenerate forecast.
        """
        if horizon_h < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon_h}")
        return float(self.predict_many(t_h, [horizon_h])[0])

    def predict_many(self, t_h: float, horizons_h) -> np.ndarray:
        """Forecasts for several horizons sharing one climatology build.

        The hour-of-day profile depends only on ``t_h``, so evaluating a
        whole lookahead window (the fleet coordinator samples eight
        offsets per epoch) costs one profile construction instead of one
        per offset.
        """
        horizons = np.asarray(horizons_h, dtype=np.float64)
        if np.any(horizons < 0):
            raise ValueError("horizons must be non-negative")
        profile = self._climatology(t_h)
        now = float(self.trace.at(t_h))
        if profile is None:
            return np.full(horizons.shape, now)
        hod_now = int(t_h % 24.0)
        hod_targets = ((t_h + horizons) % 24.0).astype(int)
        anomaly = now - profile[hod_now]
        decay = 0.5 ** (horizons / self.anomaly_halflife_h)
        return profile[hod_targets] + decay * anomaly


FORECASTER_NAMES = ("persistence", "diurnal")


def make_forecaster(name: str, trace: CarbonIntensityTrace, **kwargs):
    """Factory by forecaster name (``"persistence"``, ``"diurnal"``).

    The hook the fleet coordinator uses to provision one forecaster per
    region for forecast-aware routing.
    """
    classes = {
        "persistence": PersistenceForecaster,
        "diurnal": DiurnalForecaster,
    }
    try:
        cls = classes[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown forecaster {name!r}; valid: {', '.join(FORECASTER_NAMES)}"
        ) from None
    return cls(trace, **kwargs)


def forecast_mae(
    forecaster,
    trace: CarbonIntensityTrace,
    horizon_h: float,
    start_h: float | None = None,
    step_h: float = 1.0,
) -> float:
    """Mean absolute forecast error over the trace at a fixed horizon.

    Evaluates ``forecaster.predict(t, horizon_h)`` against the trace's true
    value at ``t + horizon_h`` for every ``t`` in the evaluation window.
    ``start_h`` defaults to one day in (so climatology has history).
    """
    if step_h <= 0:
        raise ValueError(f"step must be positive, got {step_h}")
    start = 24.0 if start_h is None else start_h
    end = trace.end_h - horizon_h
    if end <= start:
        raise ValueError("trace too short for the requested horizon/window")
    errors = []
    t = start
    while t <= end:
        predicted = forecaster.predict(t, horizon_h)
        actual = float(trace.at(t + horizon_h))
        errors.append(abs(predicted - actual))
        t += step_h
    return float(np.mean(errors))
