"""Carbon-intensity time series (gCO2/kWh) of a grid operator.

The "greenness" signal Clover reacts to.  A trace holds sampled intensity
values over time (hours) and answers point queries with either step or
linear interpolation — grid operators publish discrete (hourly or 5-minute)
averages, but the controller may query arbitrary times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CarbonIntensityTrace"]


@dataclass(frozen=True)
class CarbonIntensityTrace:
    """A named carbon-intensity series sampled at known times.

    Attributes
    ----------
    times_h:
        Sample times in hours since the trace start, strictly increasing.
    values:
        Carbon intensity in gCO2/kWh at each sample time; positive.
    name:
        Human-readable label (``"US CISO March"``).
    interpolation:
        ``"linear"`` (default; matches how sub-hourly queries behave on a
        slowly-varying grid signal) or ``"step"`` (previous published value
        holds until the next sample).
    """

    times_h: np.ndarray
    values: np.ndarray
    name: str = "trace"
    interpolation: str = "linear"
    _values_ro: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        times = np.asarray(self.times_h, dtype=np.float64)
        vals = np.asarray(self.values, dtype=np.float64)
        if times.ndim != 1 or vals.ndim != 1 or times.shape != vals.shape:
            raise ValueError("times_h and values must be 1-D arrays of equal length")
        if times.size < 2:
            raise ValueError("a trace needs at least two samples")
        if np.any(np.diff(times) <= 0):
            raise ValueError("times_h must be strictly increasing")
        if np.any(vals <= 0):
            raise ValueError("carbon intensity must be positive everywhere")
        if self.interpolation not in ("linear", "step"):
            raise ValueError(
                f"interpolation must be 'linear' or 'step', got {self.interpolation!r}"
            )
        times.setflags(write=False)
        vals.setflags(write=False)
        object.__setattr__(self, "times_h", times)
        object.__setattr__(self, "values", vals)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def start_h(self) -> float:
        return float(self.times_h[0])

    @property
    def end_h(self) -> float:
        return float(self.times_h[-1])

    @property
    def span_h(self) -> float:
        """Total covered duration in hours."""
        return self.end_h - self.start_h

    def at(self, t_h: float | np.ndarray) -> float | np.ndarray:
        """Carbon intensity at time(s) ``t_h`` (hours); clamped to the span."""
        t = np.clip(np.asarray(t_h, dtype=np.float64), self.start_h, self.end_h)
        if self.interpolation == "linear":
            out = np.interp(t, self.times_h, self.values)
        else:
            idx = np.searchsorted(self.times_h, t, side="right") - 1
            idx = np.clip(idx, 0, self.times_h.size - 1)
            out = self.values[idx]
        if np.isscalar(t_h) or np.ndim(t_h) == 0:
            return float(out)
        return out

    def mean(self) -> float:
        """Time-weighted mean intensity over the span (trapezoidal)."""
        return float(
            np.trapezoid(self.values, self.times_h) / self.span_h
        )

    def min(self) -> float:
        return float(self.values.min())

    def max(self) -> float:
        return float(self.values.max())

    def window(self, start_h: float, end_h: float) -> "CarbonIntensityTrace":
        """Sub-trace covering ``[start_h, end_h]`` (endpoints interpolated in)."""
        if not self.start_h <= start_h < end_h <= self.end_h:
            raise ValueError(
                f"window [{start_h}, {end_h}] outside trace span "
                f"[{self.start_h}, {self.end_h}]"
            )
        inside = (self.times_h > start_h) & (self.times_h < end_h)
        times = np.concatenate(([start_h], self.times_h[inside], [end_h]))
        vals = np.concatenate(
            ([self.at(start_h)], self.values[inside], [self.at(end_h)])
        )
        return CarbonIntensityTrace(
            times_h=times,
            values=vals,
            name=f"{self.name}[{start_h:g}h:{end_h:g}h]",
            interpolation=self.interpolation,
        )

    def __len__(self) -> int:
        return int(self.times_h.size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.span_h:g}h, "
            f"{self.min():.0f}-{self.max():.0f} gCO2/kWh"
        )
