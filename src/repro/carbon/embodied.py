"""Embodied-carbon accounting for provisioned hardware.

The paper's Fig. 15 take-away: "as Clover explicitly reduces the
operational carbon emission, it can also implicitly reduce the carbon
emission incurred in manufacturing, transporting, and cooling of the
unneeded server machines."  This module quantifies that implicit saving:
an amortization model of the manufacturing footprint of a GPU server,
charged per provisioned GPU-hour, in the style of ACT/Chasing-Carbon
(the paper's refs [2, 65]).

Used by the capacity-planning workflow: when Clover serves the same SLA
with fewer GPUs (Fig. 15), the avoided embodied carbon adds to the
operational saving.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EmbodiedCarbonModel", "TotalCarbonBreakdown"]

#: Literature-typical manufacturing footprint of one datacenter
#: accelerator + its server share, in kgCO2e (ACT-style estimates put a
#: full GPU server at ~1-3 tCO2e over 8 GPUs).
DEFAULT_KG_CO2E_PER_GPU = 150.0

#: Typical datacenter accelerator service lifetime.
DEFAULT_LIFETIME_YEARS = 4.0


@dataclass(frozen=True)
class EmbodiedCarbonModel:
    """Amortized manufacturing footprint of provisioned GPUs."""

    kg_co2e_per_gpu: float = DEFAULT_KG_CO2E_PER_GPU
    lifetime_years: float = DEFAULT_LIFETIME_YEARS

    def __post_init__(self) -> None:
        if self.kg_co2e_per_gpu <= 0:
            raise ValueError(
                f"embodied footprint must be positive, got {self.kg_co2e_per_gpu}"
            )
        if self.lifetime_years <= 0:
            raise ValueError(
                f"lifetime must be positive, got {self.lifetime_years}"
            )

    @property
    def grams_per_gpu_hour(self) -> float:
        """Manufacturing carbon attributed to one provisioned GPU-hour."""
        lifetime_hours = self.lifetime_years * 365.25 * 24.0
        return self.kg_co2e_per_gpu * 1e3 / lifetime_hours

    def embodied_g(self, n_gpus: int, duration_h: float) -> float:
        """Embodied carbon charged to ``n_gpus`` over ``duration_h`` hours."""
        if n_gpus < 0:
            raise ValueError(f"GPU count must be non-negative, got {n_gpus}")
        if duration_h < 0:
            raise ValueError(f"duration must be non-negative, got {duration_h}")
        return self.grams_per_gpu_hour * n_gpus * duration_h

    def breakdown(
        self, operational_g: float, n_gpus: int, duration_h: float
    ) -> "TotalCarbonBreakdown":
        """Combine a run's operational carbon with its embodied share."""
        return TotalCarbonBreakdown(
            operational_g=operational_g,
            embodied_g=self.embodied_g(n_gpus, duration_h),
            n_gpus=n_gpus,
            duration_h=duration_h,
        )


@dataclass(frozen=True)
class TotalCarbonBreakdown:
    """Operational + embodied carbon of one deployment window."""

    operational_g: float
    embodied_g: float
    n_gpus: int
    duration_h: float

    def __post_init__(self) -> None:
        if self.operational_g < 0 or self.embodied_g < 0:
            raise ValueError("carbon components must be non-negative")

    @property
    def total_g(self) -> float:
        return self.operational_g + self.embodied_g

    @property
    def embodied_fraction(self) -> float:
        """Share of the total that is manufacturing amortization."""
        if self.total_g == 0:
            return 0.0
        return self.embodied_g / self.total_g

    def saving_vs(self, other: "TotalCarbonBreakdown") -> float:
        """Total-carbon reduction of ``self`` relative to ``other``, in %."""
        if other.total_g <= 0:
            raise ValueError("reference deployment has no carbon")
        return (1.0 - self.total_g / other.total_g) * 100.0
