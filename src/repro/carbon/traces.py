"""The three 48-hour evaluation traces of the paper (Fig. 8).

The paper evaluates over a 48-hour span of the US CISO March trace (all of
Sec. 5.2), then repeats with US CISO September and UK ESO March for
geographic/seasonal robustness (Fig. 16).  Real grid data is unavailable
offline, so these are generated from the calibrated grid profiles in
:mod:`repro.carbon.generator` with *fixed seeds* — every run of the
reproduction sees byte-identical traces, which is what "embedded" means
here.

Trace shape checks against Fig. 8 live in ``tests/carbon/test_traces.py``
(range, diurnal trough/peak placement, volatility ordering ESO > CISO).
"""

from __future__ import annotations

from functools import lru_cache

from repro.carbon.generator import (
    CISO_MARCH,
    CISO_SEPTEMBER,
    ESO_MARCH,
    generate_trace,
)
from repro.carbon.intensity import CarbonIntensityTrace

__all__ = [
    "ciso_march_48h",
    "ciso_september_48h",
    "eso_march_48h",
    "evaluation_traces",
    "trace_by_name",
    "EVALUATION_SPAN_HOURS",
]

#: The paper's evaluation window: "we set the trace span to be 48 hours".
EVALUATION_SPAN_HOURS = 48.0

_SEEDS = {"ciso-march": 20210301, "ciso-september": 20210901, "eso-march": 20210315}


@lru_cache(maxsize=None)
def ciso_march_48h() -> CarbonIntensityTrace:
    """US CISO (California), March — the trace used throughout Sec. 5.2."""
    return generate_trace(CISO_MARCH, days=2.0, step_h=1.0, rng=_SEEDS["ciso-march"])


@lru_cache(maxsize=None)
def ciso_september_48h() -> CarbonIntensityTrace:
    """US CISO (California), September — seasonal robustness (Fig. 16)."""
    return generate_trace(
        CISO_SEPTEMBER, days=2.0, step_h=1.0, rng=_SEEDS["ciso-september"]
    )


@lru_cache(maxsize=None)
def eso_march_48h() -> CarbonIntensityTrace:
    """UK ESO, March — geographic robustness (Fig. 16)."""
    return generate_trace(ESO_MARCH, days=2.0, step_h=1.0, rng=_SEEDS["eso-march"])


def evaluation_traces() -> dict[str, CarbonIntensityTrace]:
    """All three evaluation traces keyed by their short names."""
    return {
        "ciso-march": ciso_march_48h(),
        "ciso-september": ciso_september_48h(),
        "eso-march": eso_march_48h(),
    }


def trace_by_name(name: str) -> CarbonIntensityTrace:
    """Look an evaluation trace up by short name (``"ciso-march"``)."""
    traces = evaluation_traces()
    try:
        return traces[name.lower()]
    except KeyError:
        valid = ", ".join(sorted(traces))
        raise KeyError(f"unknown trace {name!r}; valid: {valid}") from None
