"""Carbon-intensity change detection (the Clover controller's trigger).

The paper re-invokes optimization "whenever Clover detects more than a 5%
change in the carbon intensity compared to the previous optimization run".
:class:`CarbonIntensityMonitor` implements exactly that stateful rule: the
reference point is the intensity *at the last optimization*, not the last
observation — small drifts accumulate until they cross the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.intensity import CarbonIntensityTrace

__all__ = ["CarbonIntensityMonitor", "DEFAULT_CHANGE_THRESHOLD"]

#: The paper's re-optimization trigger: a 5% relative intensity change.
DEFAULT_CHANGE_THRESHOLD = 0.05


@dataclass
class CarbonIntensityMonitor:
    """Watches a trace and reports when re-optimization should trigger."""

    trace: CarbonIntensityTrace
    threshold: float = DEFAULT_CHANGE_THRESHOLD
    reference_ci: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")

    def observe(self, t_h: float) -> float:
        """Read the current carbon intensity at trace time ``t_h`` (hours)."""
        return float(self.trace.at(t_h))

    def should_trigger(self, t_h: float) -> bool:
        """Whether intensity moved > threshold since the last optimization.

        The very first observation always triggers (the service must be
        configured before it can run).
        """
        ci = self.observe(t_h)
        if self.reference_ci is None:
            return True
        return abs(ci - self.reference_ci) / self.reference_ci > self.threshold

    def mark_optimized(self, t_h: float) -> float:
        """Record that an optimization ran at ``t_h``; returns the new reference."""
        self.reference_ci = self.observe(t_h)
        return self.reference_ci

    def reset(self) -> None:
        """Forget the reference (e.g. when the SLA or lambda parameter changes)."""
        self.reference_ci = None

    def trigger_times(self, times_h: np.ndarray) -> np.ndarray:
        """Offline preview: which of ``times_h`` would trigger, in sequence.

        Simulates the stateful rule over the given observation times without
        touching this monitor's live state.  Useful for sizing experiments
        (how many optimizations will a trace cause?).
        """
        times = np.asarray(times_h, dtype=np.float64)
        triggered = np.zeros(times.size, dtype=bool)
        ref: float | None = None
        for i, t in enumerate(times):
            ci = float(self.trace.at(t))
            if ref is None or abs(ci - ref) / ref > self.threshold:
                triggered[i] = True
                ref = ci
        return triggered
