"""Carbon substrate: intensity traces, accounting, and change detection.

Replaces the paper's live grid feeds (CISO/ESO) and carbontracker meter:

* :mod:`repro.carbon.intensity` — the trace abstraction (gCO2/kWh over time),
* :mod:`repro.carbon.generator` — calibrated synthetic grid profiles,
* :mod:`repro.carbon.traces` — the three fixed 48-hour evaluation traces,
* :mod:`repro.carbon.accounting` — energy → carbon arithmetic with PUE,
* :mod:`repro.carbon.monitor` — the 5% change re-optimization trigger,
* :mod:`repro.carbon.embodied` — manufacturing-carbon amortization,
* :mod:`repro.carbon.forecast` — intensity forecasting building blocks.
"""

from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.generator import (
    GridProfile,
    generate_trace,
    CISO_MARCH,
    CISO_SEPTEMBER,
    ESO_MARCH,
)
from repro.carbon.traces import (
    ciso_march_48h,
    ciso_september_48h,
    eso_march_48h,
    evaluation_traces,
    trace_by_name,
    EVALUATION_SPAN_HOURS,
)
from repro.carbon.accounting import (
    DEFAULT_PUE,
    joules_to_kwh,
    carbon_grams,
    CarbonAccountant,
)
from repro.carbon.monitor import CarbonIntensityMonitor, DEFAULT_CHANGE_THRESHOLD
from repro.carbon.embodied import EmbodiedCarbonModel, TotalCarbonBreakdown
from repro.carbon.forecast import (
    PersistenceForecaster,
    DiurnalForecaster,
    forecast_mae,
)

__all__ = [
    "CarbonIntensityTrace",
    "GridProfile",
    "generate_trace",
    "CISO_MARCH",
    "CISO_SEPTEMBER",
    "ESO_MARCH",
    "ciso_march_48h",
    "ciso_september_48h",
    "eso_march_48h",
    "evaluation_traces",
    "trace_by_name",
    "EVALUATION_SPAN_HOURS",
    "DEFAULT_PUE",
    "joules_to_kwh",
    "carbon_grams",
    "CarbonAccountant",
    "CarbonIntensityMonitor",
    "DEFAULT_CHANGE_THRESHOLD",
    "EmbodiedCarbonModel",
    "TotalCarbonBreakdown",
    "PersistenceForecaster",
    "DiurnalForecaster",
    "forecast_mae",
]
