"""Synthetic grid carbon-intensity generator.

The paper evaluates on real traces from the California ISO and the UK
Electricity System Operator; no network access is available here, so this
module synthesizes traces with the same structure (documented substitution,
see DESIGN.md):

* a **solar trough** — the midday "duck curve" dip as solar floods the grid
  (deep in California, shallower in the UK),
* **morning and evening ramps** — fossil peakers covering the demand peaks,
* **wind volatility** — an AR(1) noise process with tunable correlation
  (dominant in the UK trace, where intensity can swing 200 gCO2/kWh within
  half a day, exactly the behaviour Fig. 4 highlights),
* seasonal parameters (September solar is stronger than March in CA).

All magnitudes are calibrated to the ranges visible in the paper's Fig. 4
and Fig. 8 axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.intensity import CarbonIntensityTrace
from repro.utils.rng import as_generator

__all__ = [
    "GridProfile",
    "generate_trace",
    "CISO_MARCH",
    "CISO_SEPTEMBER",
    "ESO_MARCH",
    "ESO_SEPTEMBER",
    "NORDIC_HYDRO",
    "APAC_COAL_SOLAR",
]


@dataclass(frozen=True)
class GridProfile:
    """Shape parameters of one grid region/season.

    All intensities in gCO2/kWh, times in local hours.
    """

    name: str
    base: float                 # mean fossil baseline
    solar_depth: float          # midday dip magnitude
    solar_center_h: float       # hour of deepest solar production
    solar_width_h: float        # half-width of the solar window
    morning_peak: float         # morning ramp bump magnitude
    evening_peak: float         # evening ramp bump magnitude
    noise_std: float            # stationary std of the AR(1) wind term
    noise_corr: float           # AR(1) one-hour autocorrelation in [0, 1)
    floor: float = 20.0         # physical lower bound of the mix
    #: Demand-ramp bump centres.  Defaults match the original hardcoded
    #: values; regions whose local clock is offset from the fleet clock
    #: (the geo-diurnal fleet) express all three centres in fleet hours.
    morning_center_h: float = 7.0
    evening_center_h: float = 19.5

    def __post_init__(self) -> None:
        if self.base <= 0 or self.floor <= 0:
            raise ValueError("base and floor intensities must be positive")
        if not 0.0 <= self.noise_corr < 1.0:
            raise ValueError(f"noise_corr must be in [0, 1), got {self.noise_corr}")
        if self.solar_width_h <= 0:
            raise ValueError("solar window width must be positive")


def _bump(hours: np.ndarray, center: float, width: float) -> np.ndarray:
    """Periodic (24 h) Gaussian bump centred at ``center`` hours."""
    delta = (hours - center + 12.0) % 24.0 - 12.0
    return np.exp(-0.5 * (delta / width) ** 2)


def generate_trace(
    profile: GridProfile,
    days: float,
    step_h: float = 1.0,
    rng: int | np.random.Generator | None = None,
) -> CarbonIntensityTrace:
    """Generate a carbon-intensity trace for ``days`` days of ``profile``.

    Fully vectorized: the diurnal template is evaluated on the whole time
    grid and the AR(1) wind term is built with a single scan.
    """
    if days <= 0:
        raise ValueError(f"days must be positive, got {days}")
    if step_h <= 0:
        raise ValueError(f"step must be positive, got {step_h}")
    gen = as_generator(rng)

    t = np.arange(0.0, days * 24.0 + 0.5 * step_h, step_h)
    hod = t % 24.0

    diurnal = (
        profile.base
        - profile.solar_depth * _bump(hod, profile.solar_center_h, profile.solar_width_h)
        + profile.morning_peak * _bump(hod, profile.morning_center_h, 1.5)
        + profile.evening_peak * _bump(hod, profile.evening_center_h, 2.0)
    )

    # AR(1) wind noise with stationary std = noise_std at the hourly scale.
    phi = profile.noise_corr ** step_h
    innovations = gen.normal(0.0, profile.noise_std * np.sqrt(1 - phi * phi), t.size)
    noise = np.empty(t.size)
    acc = gen.normal(0.0, profile.noise_std)
    for i, e in enumerate(innovations):
        acc = phi * acc + e
        noise[i] = acc

    values = np.maximum(diurnal + noise, profile.floor)
    return CarbonIntensityTrace(times_h=t, values=values, name=profile.name)


#: California ISO, March: moderate solar, strong evening ramp.
CISO_MARCH = GridProfile(
    name="US CISO March",
    base=240.0,
    solar_depth=130.0,
    solar_center_h=12.5,
    solar_width_h=3.2,
    morning_peak=40.0,
    evening_peak=90.0,
    noise_std=18.0,
    noise_corr=0.75,
)

#: California ISO, September: stronger solar, hotter evenings.
CISO_SEPTEMBER = GridProfile(
    name="US CISO September",
    base=215.0,
    solar_depth=110.0,
    solar_center_h=13.0,
    solar_width_h=3.6,
    morning_peak=30.0,
    evening_peak=70.0,
    noise_std=14.0,
    noise_corr=0.7,
)

#: UK ESO, March: weak solar, wind-dominated volatility.
ESO_MARCH = GridProfile(
    name="UK ESO March",
    base=180.0,
    solar_depth=55.0,
    solar_center_h=12.0,
    solar_width_h=2.8,
    morning_peak=35.0,
    evening_peak=45.0,
    noise_std=55.0,
    noise_corr=0.9,
)

#: Hydro-dominated Nordic grid: low, flat intensity with mild demand bumps.
#: Calibrated to the NO/SE zones' published ranges (20-60 gCO2/kWh); the
#: fleet experiments use it as the "clean but far away" routing target.
NORDIC_HYDRO = GridProfile(
    name="Nordic Hydro",
    base=42.0,
    solar_depth=6.0,
    solar_center_h=12.0,
    solar_width_h=3.0,
    morning_peak=5.0,
    evening_peak=8.0,
    noise_std=4.0,
    noise_corr=0.8,
)

#: Coal-heavy Asia-Pacific grid with fast-growing utility solar: very dirty
#: baseline with a pronounced midday dip (India/Australia-like ranges).
#: The demand experiments use it as the "users are here, carbon is not"
#: region: its origin generates much of the load the routers must decide
#: whether to serve locally (cheap network, dirty grid) or ship out.
#: All bump centres are expressed in *fleet* hours: the region's local
#: clock runs 8 h ahead of the fleet clock the paper traces share, so its
#: local-noon solar trough lands at fleet hour 12.5 - 8 = 4.5 — this phase
#: offset is what makes the fleet's cleanest-region ordering rotate with
#: the sun instead of every grid dipping simultaneously.
APAC_COAL_SOLAR = GridProfile(
    name="APAC Coal+Solar",
    base=560.0,
    solar_depth=330.0,
    solar_center_h=4.5,
    solar_width_h=3.4,
    morning_peak=35.0,
    evening_peak=110.0,
    noise_std=25.0,
    noise_corr=0.8,
    morning_center_h=23.0,
    evening_center_h=11.5,
)

#: UK ESO, September: somewhat stronger solar, still wind-dominated.
ESO_SEPTEMBER = GridProfile(
    name="UK ESO September",
    base=170.0,
    solar_depth=70.0,
    solar_center_h=12.5,
    solar_width_h=3.0,
    morning_peak=30.0,
    evening_peak=40.0,
    noise_std=50.0,
    noise_corr=0.88,
)
