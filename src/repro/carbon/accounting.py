"""Energy-to-carbon accounting (the carbontracker substitute).

The paper measures node energy with a modified carbontracker and converts it
to emissions as ``Carbon = Energy x Carbon Intensity`` (Sec. 2), scaled by a
datacenter PUE of 1.5.  This module implements the same arithmetic on the
simulated power model's output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_PUE",
    "joules_to_kwh",
    "carbon_grams",
    "CarbonAccountant",
]

#: Paper's assumed power-usage-effectiveness (Uptime Institute survey value).
DEFAULT_PUE = 1.5

_JOULES_PER_KWH = 3.6e6


def joules_to_kwh(energy_j: float) -> float:
    """Convert joules to kilowatt-hours."""
    return energy_j / _JOULES_PER_KWH


def carbon_grams(
    energy_j: float, carbon_intensity: float, pue: float = DEFAULT_PUE
) -> float:
    """Operational carbon of ``energy_j`` joules of IT energy, in gCO2.

    ``carbon_intensity`` is in gCO2/kWh; the PUE multiplies IT energy into
    facility energy (cooling, distribution losses).
    """
    if energy_j < 0:
        raise ValueError(f"energy must be non-negative, got {energy_j}")
    if carbon_intensity <= 0:
        raise ValueError(
            f"carbon intensity must be positive, got {carbon_intensity}"
        )
    if pue < 1.0:
        raise ValueError(f"PUE cannot be below 1.0, got {pue}")
    return joules_to_kwh(energy_j) * pue * carbon_intensity


@dataclass
class CarbonAccountant:
    """Accumulates energy and carbon over a run, epoch by epoch.

    The runner calls :meth:`record` once per simulation epoch with the
    epoch's IT energy and the prevailing carbon intensity; totals and
    per-request averages feed the paper's Figs. 9/10/16.
    """

    pue: float = DEFAULT_PUE
    total_energy_j: float = field(default=0.0, init=False)
    total_carbon_g: float = field(default=0.0, init=False)
    total_requests: float = field(default=0.0, init=False)
    epochs: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError(f"PUE cannot be below 1.0, got {self.pue}")

    def record(
        self, energy_j: float, carbon_intensity: float, requests: float = 0.0
    ) -> float:
        """Account one epoch; returns the epoch's carbon in gCO2."""
        if requests < 0:
            raise ValueError(f"request count must be non-negative, got {requests}")
        grams = carbon_grams(energy_j, carbon_intensity, self.pue)
        self.total_energy_j += energy_j
        self.total_carbon_g += grams
        self.total_requests += requests
        self.epochs += 1
        return grams

    @property
    def grams_per_request(self) -> float:
        """Average gCO2 per served request (the paper's C metric)."""
        if self.total_requests <= 0:
            raise ValueError("no requests recorded yet")
        return self.total_carbon_g / self.total_requests

    @property
    def joules_per_request(self) -> float:
        """Average IT energy per served request."""
        if self.total_requests <= 0:
            raise ValueError("no requests recorded yet")
        return self.total_energy_j / self.total_requests
