"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (Poisson workload, simulated
annealing, random search, latency jitter) receives an explicit
:class:`numpy.random.Generator`.  This module centralizes how generators are
created and how child streams are derived so that

* a single top-level seed reproduces an entire 48-hour experiment bit-for-bit,
* independent components (e.g. the workload and the optimizer) never share a
  stream, so adding randomness to one cannot perturb the other.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["as_generator", "spawn_child", "RngMixer", "stable_hash"]


def stable_hash(tag: str | bytes) -> int:
    """Process-independent 32-bit hash of a label.

    Python's built-in ``hash`` is salted per process (PYTHONHASHSEED), which
    would make "seeded" runs differ between interpreter invocations; CRC32
    is stable, fast, and good enough for stream separation.
    """
    data = tag.encode() if isinstance(tag, str) else bytes(tag)
    return zlib.crc32(data) & 0x7FFFFFFF


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator (fresh OS entropy); an
    ``int`` seeds a PCG64 stream; an existing generator is passed through
    unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, tag: str) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` labelled by ``tag``.

    The tag is hashed into the jump so that the same parent produces the same
    child for the same tag, regardless of the order in which children are
    requested for *different* tags.
    """
    # Fold the tag into entropy drawn once from the parent.  Drawing a single
    # 64-bit word keeps the parent stream's consumption independent of the
    # tag content.
    base = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng((base, stable_hash(tag)))


@dataclass
class RngMixer:
    """A registry that hands out named, reproducible child generators.

    Components ask for streams by name (``mixer.stream("workload")``); the
    same name always yields the same stream for a given root seed, and every
    distinct name yields a statistically independent stream.
    """

    seed: int | None = None
    _root: np.random.Generator = field(init=False, repr=False)
    _children: dict[str, np.random.Generator] = field(
        init=False, default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self._root = np.random.default_rng(self.seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator registered under ``name``, creating it lazily."""
        if name not in self._children:
            seq = np.random.SeedSequence(
                entropy=self.seed if self.seed is not None else 0,
                spawn_key=(stable_hash(name),),
            )
            self._children[name] = np.random.default_rng(seq)
        return self._children[name]

    def fork(self, name: str, index: int) -> np.random.Generator:
        """Return an indexed sub-stream, e.g. one per optimization invocation."""
        seq = np.random.SeedSequence(
            entropy=self.seed if self.seed is not None else 0,
            spawn_key=(stable_hash(name), int(index)),
        )
        return np.random.default_rng(seq)
