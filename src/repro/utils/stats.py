"""Small statistics helpers shared across the serving and analysis layers."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "exact_percentile",
    "weighted_mean",
    "normalize",
    "running_mean",
    "percentile_ci",
]


def exact_percentile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """Return the ``q``-th percentile of ``values`` (q in [0, 100]).

    Uses the "lower-of-the-two" (inverted CDF) definition so that the result
    is always an observed sample — the convention used by tail-latency SLAs,
    where "p95 latency" means a latency some request actually experienced.

    Raises ``ValueError`` on empty input: an SLA over zero requests is
    meaningless and silently returning 0 would hide starvation bugs.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of zero samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q, method="inverted_cdf"))


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    """Weighted average; raises if the total weight is zero."""
    v = np.asarray(list(values), dtype=np.float64)
    w = np.asarray(list(weights), dtype=np.float64)
    if v.shape != w.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {w.shape}")
    total = w.sum()
    if total <= 0:
        raise ValueError("total weight must be positive")
    return float((v * w).sum() / total)


def normalize(values: Sequence[float], reference: float) -> np.ndarray:
    """Divide ``values`` by ``reference`` (used for 'normalized to BASE' plots)."""
    if reference == 0:
        raise ValueError("reference value must be nonzero")
    return np.asarray(values, dtype=np.float64) / reference


def running_mean(values: Sequence[float], window: int) -> np.ndarray:
    """Simple centered-ish running mean used to smooth plotted time series."""
    arr = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    if window == 1 or arr.size == 0:
        return arr.copy()
    kernel = np.ones(min(window, arr.size)) / min(window, arr.size)
    return np.convolve(arr, kernel, mode="same")


def percentile_ci(
    values: Sequence[float] | np.ndarray,
    q: float,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: int | np.random.Generator | None = 0,
) -> tuple[float, float]:
    """Bootstrap confidence interval for the ``q``-th percentile.

    Tail-latency estimates from a finite DES window carry sampling error;
    this quantifies it (scipy's BCa bootstrap).  Used when comparing a
    measured p95 against the SLA boundary: a config is only *confidently*
    violating if the whole interval sits above the target.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 10:
        raise ValueError(
            f"need at least 10 samples for a bootstrap CI, got {arr.size}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    result = _scipy_stats.bootstrap(
        (arr,),
        lambda a, axis=-1: np.percentile(a, q, axis=axis),
        confidence_level=confidence,
        n_resamples=n_resamples,
        method="percentile",
        random_state=np.random.default_rng(rng) if not isinstance(
            rng, np.random.Generator
        ) else rng,
    )
    return (
        float(result.confidence_interval.low),
        float(result.confidence_interval.high),
    )
