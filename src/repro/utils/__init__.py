"""Shared utilities: seeded RNG plumbing and statistics helpers."""

from repro.utils.rng import RngMixer, as_generator, spawn_child, stable_hash
from repro.utils.stats import (
    exact_percentile,
    weighted_mean,
    normalize,
    running_mean,
    percentile_ci,
)

__all__ = [
    "RngMixer",
    "as_generator",
    "spawn_child",
    "stable_hash",
    "exact_percentile",
    "weighted_mean",
    "normalize",
    "running_mean",
    "percentile_ci",
]
