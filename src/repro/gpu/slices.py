"""MIG slice types of an NVIDIA A100-40GB.

An A100 exposes 7 compute slots and 8 memory slices (5 GB each).  The five
MIG profiles ("slice types" in the Clover paper, Fig. 1) consume fixed
numbers of each:

============  =============  ============  ==========
profile       compute slots  mem slices    memory
============  =============  ============  ==========
``1g.5gb``    1              1             5 GB
``2g.10gb``   2              2             10 GB
``3g.20gb``   3              4             20 GB
``4g.20gb``   4              4             20 GB
``7g.40gb``   7              8             40 GB
============  =============  ============  ==========

(The asymmetric memory of 3g — 4 memory slices for 3 compute slots — is what
makes two ``3g.20gb`` instances exhaust the GPU's memory and is why the real
A100 cannot add a 1g slice next to a 3g+3g split.)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SliceType",
    "SLICE_TYPES",
    "SLICE_NAME_TO_INDEX",
    "slice_by_name",
    "COMPUTE_SLOTS_PER_GPU",
    "MEMORY_SLICES_PER_GPU",
    "MEMORY_GB_PER_SLICE",
]

COMPUTE_SLOTS_PER_GPU = 7
MEMORY_SLICES_PER_GPU = 8
MEMORY_GB_PER_SLICE = 5.0


@dataclass(frozen=True, order=True)
class SliceType:
    """One MIG profile.

    Attributes
    ----------
    compute_slots:
        Number of the GPU's 7 compute slots the profile occupies.  Also the
        profile's "g number" (1g, 2g, ...).
    memory_slices:
        Number of the GPU's 8 memory slices (5 GB each) the profile occupies.
    name:
        Short name used throughout the paper's figures: ``"1g"`` .. ``"7g"``.
    index:
        Dense index 0..4 used for vectorized weight matrices (graph edges).
    """

    compute_slots: int
    memory_slices: int
    name: str
    index: int

    @property
    def compute_fraction(self) -> float:
        """Fraction of the full GPU's compute this slice provides."""
        return self.compute_slots / COMPUTE_SLOTS_PER_GPU

    @property
    def memory_gb(self) -> float:
        """Dedicated memory of the slice in GB."""
        return self.memory_slices * MEMORY_GB_PER_SLICE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


SLICE_TYPES: tuple[SliceType, ...] = (
    SliceType(compute_slots=1, memory_slices=1, name="1g", index=0),
    SliceType(compute_slots=2, memory_slices=2, name="2g", index=1),
    SliceType(compute_slots=3, memory_slices=4, name="3g", index=2),
    SliceType(compute_slots=4, memory_slices=4, name="4g", index=3),
    SliceType(compute_slots=7, memory_slices=8, name="7g", index=4),
)

SLICE_NAME_TO_INDEX: dict[str, int] = {s.name: s.index for s in SLICE_TYPES}


def slice_by_name(name: str) -> SliceType:
    """Look a slice type up by its short name (``"3g"``)."""
    try:
        return SLICE_TYPES[SLICE_NAME_TO_INDEX[name]]
    except KeyError:
        valid = ", ".join(s.name for s in SLICE_TYPES)
        raise KeyError(f"unknown MIG slice type {name!r}; valid: {valid}") from None
