"""Power model for an A100 GPU node.

The model is deliberately simple but reproduces the energy structure the
Clover paper exploits:

* a GPU draws a constant **idle** power whether or not its slices are busy,
* each busy slice adds **dynamic** power proportional to the slice's compute
  fraction and the hosted model's compute intensity,
* the host (CPUs, memory, NIC) adds a constant per-GPU share, as measured by
  carbontracker-style meters,
* the datacenter multiplies everything by a PUE (paper uses 1.5).

Because idle power is paid per *GPU* rather than per *slice*, packing many
small busy slices onto one GPU amortizes the idle draw over more requests —
this is exactly the Fig. 3 effect (finer partitioning lowers carbon per
request at fixed load).

Sleep-state calibration
-----------------------
The elastic-capacity subsystem (:mod:`repro.fleet.capacity`) can put whole
GPUs into a deep sleep state when routed traffic falls.  A sleeping GPU
draws :attr:`PowerModel.sleep_watts` *total* — board rails gated down plus
the residual host-side share (its DRAM refresh, fan floor and NIC keep-alive
are attributed to the awake pool).  The 6 W default is calibrated the same
way as the rest of the model: datacenter-class accelerators report low
single-digit watts in their deepest runtime-managed sleep states, and the
value is chosen so that sleeping a GPU recovers ~80-85% of its awake static
draw (``idle_watts + host_watts_per_gpu`` = 35 W by default).  Waking is not
free: the capacity manager charges a configurable transition energy (model
weights are re-paged into every slice) and a wake-up latency during which
the GPU serves nothing — that latency is the real price of reactive
capacity scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.slices import SliceType

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Parameters of the node power model.

    Defaults are calibrated for the reproduction, not measured from
    hardware: the dynamic range (TDP 380 W, deep power gating at idle)
    is chosen so that the scheme-level carbon-saving magnitudes land in
    the bands the paper reports (BASE vs CO2OPT ~80-87% energy ratio);
    DESIGN.md documents this calibration.  The *structure* — static draw
    per GPU, dynamic draw per busy slice — is what the trade-offs depend
    on, and it is faithful.

    Attributes
    ----------
    idle_watts:
        GPU idle draw (MIG enabled, no kernels running).  Zero is legal:
        an ideally power-gated board idles for free.
    peak_dynamic_watts:
        Additional draw of a fully-utilized full GPU (so TDP = idle + peak).
    host_watts_per_gpu:
        Host-side (CPU/DRAM/NIC) draw attributed to each GPU.
    sleep_watts:
        Total draw of a GPU in the deep sleep state (board residuals plus
        its share of host keep-alive); see the module docstring for the
        calibration.  Must not exceed the awake static draw.
    """

    idle_watts: float = 20.0
    peak_dynamic_watts: float = 360.0
    host_watts_per_gpu: float = 15.0
    sleep_watts: float = 6.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError(
                f"idle power must be non-negative, got {self.idle_watts}"
            )
        if self.peak_dynamic_watts <= 0:
            raise ValueError(
                f"peak dynamic power must be positive, got {self.peak_dynamic_watts}"
            )
        if self.host_watts_per_gpu < 0:
            raise ValueError("host power must be non-negative")
        if self.sleep_watts < 0:
            raise ValueError(
                f"sleep power must be non-negative, got {self.sleep_watts}"
            )
        if self.sleep_watts > self.idle_watts + self.host_watts_per_gpu:
            raise ValueError(
                f"sleep power ({self.sleep_watts} W) cannot exceed the awake "
                f"static draw ({self.idle_watts + self.host_watts_per_gpu} W)"
            )

    @property
    def tdp_watts(self) -> float:
        """Board power at full utilization."""
        return self.idle_watts + self.peak_dynamic_watts

    def slice_dynamic_watts(self, slice_type: SliceType, intensity: float) -> float:
        """Dynamic power of one busy slice.

        Parameters
        ----------
        slice_type:
            The MIG slice hosting the work.
        intensity:
            Model-specific compute intensity in [0, 1]; a memory-bound or
            tiny model does not drive the SMs at peak power, and a fully
            memory-bound model (intensity 0) adds no dynamic draw at all.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        return self.peak_dynamic_watts * slice_type.compute_fraction * intensity

    def static_watts_per_gpu(self) -> float:
        """Always-on draw attributable to one awake GPU (idle + host share)."""
        return self.idle_watts + self.host_watts_per_gpu

    def sleep_watts_per_gpu(self) -> float:
        """Total draw attributable to one sleeping GPU."""
        return self.sleep_watts

    def gpu_power(
        self,
        busy_slices: list[tuple[SliceType, float, float]],
    ) -> float:
        """Total instantaneous power of one awake GPU.

        ``busy_slices`` holds ``(slice_type, utilization, intensity)`` per
        hosted slice; ``utilization`` in [0, 1] is the fraction of time the
        slice is processing a request.  A slice with zero utilization is
        hosted but idle and contributes nothing beyond the static draw.
        """
        power = self.static_watts_per_gpu()
        for slice_type, utilization, intensity in busy_slices:
            if not 0.0 <= utilization <= 1.0:
                raise ValueError(f"utilization must be in [0, 1], got {utilization}")
            if utilization == 0.0:
                continue
            power += utilization * self.slice_dynamic_watts(slice_type, intensity)
        return power
