"""Simulated MIG-capable GPU substrate.

This package models the hardware the Clover paper runs on: NVIDIA A100-40GB
GPUs with Multi-Instance GPU (MIG) partitioning.  It provides

* the five MIG slice types (:mod:`repro.gpu.slices`),
* the 19 valid partition configurations of an A100 (:mod:`repro.gpu.partitions`),
* a stateful GPU device with repartitioning costs (:mod:`repro.gpu.device`),
* the idle + dynamic power model (:mod:`repro.gpu.power`),
* a multi-GPU cluster with slice-histogram feasibility (:mod:`repro.gpu.cluster`), and
* heterogeneous device generations — A100 / H100 / L4 profiles with
  distinct power curves, throughput scalars, wake latencies and partition
  granularities (:mod:`repro.gpu.profiles`).
"""

from repro.gpu.slices import SliceType, SLICE_TYPES, slice_by_name
from repro.gpu.partitions import (
    MigPartition,
    MIG_PARTITIONS,
    partition_by_id,
    partition_histogram,
    FULL_GPU_PARTITION_ID,
    FINEST_PARTITION_ID,
    NUM_PARTITIONS,
)
from repro.gpu.device import GpuDevice, GpuSpec, A100_40GB
from repro.gpu.power import PowerModel
from repro.gpu.cluster import GpuCluster, decompose_histogram, histogram_is_feasible
from repro.gpu.profiles import (
    A100_PROFILE,
    DEVICE_NAMES,
    DEVICE_PROFILES,
    DevicePool,
    DeviceProfile,
    H100_PROFILE,
    L4_PROFILE,
    parse_devices,
    profile_by_name,
)

__all__ = [
    "SliceType",
    "SLICE_TYPES",
    "slice_by_name",
    "MigPartition",
    "MIG_PARTITIONS",
    "partition_by_id",
    "partition_histogram",
    "FULL_GPU_PARTITION_ID",
    "FINEST_PARTITION_ID",
    "NUM_PARTITIONS",
    "GpuDevice",
    "GpuSpec",
    "A100_40GB",
    "PowerModel",
    "GpuCluster",
    "decompose_histogram",
    "histogram_is_feasible",
    "DeviceProfile",
    "DevicePool",
    "DEVICE_PROFILES",
    "DEVICE_NAMES",
    "A100_PROFILE",
    "H100_PROFILE",
    "L4_PROFILE",
    "profile_by_name",
    "parse_devices",
]
