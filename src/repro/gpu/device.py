"""A single simulated MIG-capable GPU device.

The device tracks its current partition and models the operational cost of
repartitioning (the paper includes "the time taken to re-partition the
hardware and reinitialize the new service instances" in all reported
results).  Repartitioning an A100 requires destroying the existing GPU
instances, creating new ones, and reloading model weights into each slice —
tens of seconds in practice.

It also tracks an **awake/asleep** state for the elastic-capacity
subsystem: a sleeping GPU keeps its MIG partition (nothing is destroyed)
but serves no traffic and draws only the power model's sleep-state watts.
Going to sleep is free (power gating down is near-instant); waking pays the
wake latency plus one model load per hosted slice, because weights must be
re-paged into every instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.partitions import (
    FULL_GPU_PARTITION_ID,
    MigPartition,
    partition_by_id,
)
from repro.gpu.slices import SliceType

__all__ = ["GpuSpec", "GpuDevice", "A100_40GB"]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU model.

    ``peak_tflops`` is the dense FP16/TF32 tensor throughput used by the
    analytical latency model; ``memory_gb`` bounds model residency.
    """

    name: str
    peak_tflops: float
    memory_gb: float
    repartition_seconds: float = 12.0
    model_load_seconds: float = 4.0
    wake_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0 or self.memory_gb <= 0:
            raise ValueError("GPU spec must have positive throughput and memory")
        if (
            self.repartition_seconds < 0
            or self.model_load_seconds < 0
            or self.wake_seconds < 0
        ):
            raise ValueError("reconfiguration costs must be non-negative")


#: The testbed GPU of the paper: A100-40GB (19.5 TF32 TFLOPs sustained).
A100_40GB = GpuSpec(name="A100-40GB", peak_tflops=19.5, memory_gb=40.0)


@dataclass
class GpuDevice:
    """A stateful GPU: identity, spec, and current MIG partition.

    ``max_partition_id`` bounds the MIG configurations this silicon can
    realize (device generations differ: an L4 has no MIG and accepts only
    the full-GPU partition #1).  ``None`` — the default — means every
    A100-class partition is available, the pre-heterogeneity behaviour.
    """

    gpu_id: int
    spec: GpuSpec = A100_40GB
    partition_id: int = FULL_GPU_PARTITION_ID
    awake: bool = True
    max_partition_id: int | None = None
    reconfig_count: int = field(default=0, init=False)
    wake_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        partition_by_id(self.partition_id)  # validates the id
        if self.max_partition_id is not None:
            partition_by_id(self.max_partition_id)
            self.check_supported(self.partition_id)

    def check_supported(self, partition_id: int) -> None:
        """Raise unless this device's silicon can realize ``partition_id``."""
        if (
            self.max_partition_id is not None
            and partition_id > self.max_partition_id
        ):
            raise ValueError(
                f"GPU {self.gpu_id} ({self.spec.name}) supports MIG "
                f"partitions up to #{self.max_partition_id}, "
                f"got #{partition_id}"
            )

    @property
    def partition(self) -> MigPartition:
        """The currently applied MIG partition."""
        return partition_by_id(self.partition_id)

    @property
    def slices(self) -> tuple[SliceType, ...]:
        """Slice types currently exposed by this GPU, largest first."""
        return self.partition.slices

    @property
    def num_instances(self) -> int:
        """How many service instances the current partition hosts."""
        return self.partition.num_instances

    def repartition(self, new_partition_id: int) -> float:
        """Apply a new MIG configuration; returns the downtime in seconds.

        Repartitioning to the *same* configuration is free (Clover does not
        touch GPUs whose assignment is unchanged); otherwise the device is
        down for the MIG reconfiguration plus one model load per new slice.
        """
        new_partition = partition_by_id(new_partition_id)
        if new_partition_id == self.partition_id:
            return 0.0
        self.check_supported(new_partition_id)
        self.partition_id = new_partition_id
        self.reconfig_count += 1
        return (
            self.spec.repartition_seconds
            + self.spec.model_load_seconds * new_partition.num_instances
        )

    def sleep(self) -> float:
        """Power-gate the device; returns the transition time in seconds.

        Sleeping keeps the MIG partition intact (waking does not require a
        repartition) and is modeled as free: gating rails down completes in
        milliseconds, far below the control-epoch resolution.  Sleeping an
        already-sleeping device is a no-op.
        """
        self.awake = False
        return 0.0

    def wake(self) -> float:
        """Bring a sleeping device back online; returns the downtime.

        The cost is the spec's wake latency plus one model load per hosted
        slice — weights were evicted when the rails gated down.  Waking an
        already-awake device is free.
        """
        if self.awake:
            return 0.0
        self.awake = True
        self.wake_count += 1
        return (
            self.spec.wake_seconds
            + self.spec.model_load_seconds * self.num_instances
        )

    def reload_models(self, num_slices_changed: int) -> float:
        """Cost of swapping model variants without repartitioning."""
        if num_slices_changed < 0 or num_slices_changed > self.num_instances:
            raise ValueError(
                f"cannot reload {num_slices_changed} of {self.num_instances} slices"
            )
        return self.spec.model_load_seconds * num_slices_changed
