"""Device profiles: heterogeneous GPU generations as first-class hardware.

Until PR 4 the whole codebase carried an implicit single-device assumption:
every cluster was ``n`` identical A100-40GB boards, so "capacity" was a GPU
*count* and energy-per-request depended only on the configuration.  Real
fleets are heterogeneous — EcoServe (Li et al., 2025) shows that
provisioning mixed GPU generations and steering load by energy-per-request
is a first-order carbon lever, and CarbonEdge makes the same argument for
heterogeneous edge silicon.  This module makes the device explicit:

* :class:`DeviceProfile` — one GPU generation: its :class:`~repro.gpu.device.GpuSpec`
  (memory, wake latency, reconfiguration costs), its
  :class:`~repro.gpu.power.PowerModel` (peak / idle / sleep watts), a
  **throughput scalar** relative to the A100 reference (the analytical
  latency model divides service times by it), and a **partition
  granularity** (which MIG configurations the silicon supports — the L4
  has no MIG at all).
* :class:`DevicePool` — an ordered multiset of profiles: one region's GPU
  fleet, canonically sorted most-carbon-efficient first.  The canonical
  order is load-bearing: the evaluator maps canonical configuration
  assignments onto pool positions (big partitions land on efficient
  silicon), and the elastic-capacity layer sleeps from the *tail* — the
  least-efficient awake device is always the first one gated.

Three profiles are registered (A100 / H100 / L4).  Like every other
hardware number in this reproduction the figures are *calibrated, not
measured*: the A100 profile reproduces the seed power model exactly (an
all-A100 pool is bit-for-bit the pre-heterogeneity code path, tested), the
H100 is faster and slightly more efficient per request, and the L4 is a
slow, low-power inference card — fewer joules per request than an A100 but
a fraction of its capacity, and no MIG.  The resulting efficiency ordering
(L4 < H100 < A100 joules/request at the reference operating point) is what
gives efficiency-aware routing something real to exploit.

>>> profile_by_name("l4").mig_capable
False
>>> pool = DevicePool.of(("a100", "l4", "a100"))
>>> pool.names  # canonical order: most efficient silicon first
('l4', 'a100', 'a100')
>>> pool.partition_granularity  # an L4 in the pool pins the search to full GPUs
1
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpu.device import A100_40GB, GpuDevice, GpuSpec
from repro.gpu.partitions import NUM_PARTITIONS
from repro.gpu.power import PowerModel

__all__ = [
    "DeviceProfile",
    "DevicePool",
    "DEVICE_PROFILES",
    "DEVICE_NAMES",
    "A100_PROFILE",
    "H100_PROFILE",
    "L4_PROFILE",
    "profile_by_name",
    "parse_devices",
    "parse_region_devices",
]

#: Operating point of the family-independent efficiency ranking: the
#: compute intensity and utilization at which devices are compared when a
#: pool is put into canonical order.  (Per-family energies are computed
#: exactly by :meth:`DeviceProfile.reference_energy_per_request_j`; the
#: rank key only needs a fixed, reproducible ordering.)
_RANK_INTENSITY = 0.8
_RANK_UTILIZATION = 0.65


@dataclass(frozen=True)
class DeviceProfile:
    """One GPU generation: spec, power curve, speed, and MIG support.

    Attributes
    ----------
    name:
        Registry key (``"a100"``, ``"h100"``, ``"l4"``).
    spec:
        The stateful-device spec (memory, repartition / model-load / wake
        seconds).  Wake latency is per-profile: gating an L4 back online is
        slower than an H100.
    power:
        The node power model of this generation (idle / peak-dynamic /
        host / sleep watts).  The A100 profile carries the seed defaults.
    throughput_scale:
        Service-rate multiplier relative to the A100 reference: the
        analytical latency model divides every service time by it, so
        ``2.0`` means "every variant runs twice as fast on every slice".
    partition_granularity:
        Highest supported MIG partition config id (1..19).  ``1`` means
        the device cannot partition at all (full-GPU deployments only);
        :data:`~repro.gpu.partitions.NUM_PARTITIONS` means every A100-class
        MIG configuration is available.
    wake_energy_j:
        Transition energy of gating this device back online (rail
        un-gating, HBM scrub, re-paging model weights into every slice).
        Bigger boards re-page more weights, so H100 > A100 > L4.  The
        elastic-capacity layer charges this per woken device when the
        :class:`~repro.fleet.capacity.GatingPolicy` does not override it
        with a fleet-wide scalar; each default is sized below the device's
        own static draw over the default 60 s wake window, so the
        gated-never-out-spends-always-on invariant holds per device.
    """

    name: str
    spec: GpuSpec
    power: PowerModel
    throughput_scale: float = 1.0
    partition_granularity: int = NUM_PARTITIONS
    wake_energy_j: float = 2_000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device profile needs a name")
        if self.throughput_scale <= 0:
            raise ValueError(
                f"throughput scale must be positive, got {self.throughput_scale}"
            )
        if not 1 <= self.partition_granularity <= NUM_PARTITIONS:
            raise ValueError(
                f"partition granularity must be in [1, {NUM_PARTITIONS}], "
                f"got {self.partition_granularity}"
            )
        if self.wake_energy_j < 0:
            raise ValueError(
                f"wake energy must be non-negative, got {self.wake_energy_j}"
            )

    @property
    def mig_capable(self) -> bool:
        """Whether the device supports any partitioned configuration."""
        return self.partition_granularity > 1

    def perf(self, base: "PerfModel") -> "PerfModel":
        """The device-scaled performance oracle.

        Swaps in this profile's power model and compounds its throughput
        scalar onto ``base``.  With the A100 profile and default ``base``
        this returns a model that evaluates bit-for-bit like ``base``.
        """
        return replace(
            base,
            power=self.power,
            throughput_scale=base.throughput_scale * self.throughput_scale,
        )

    def supports_partition(self, partition_id: int) -> bool:
        """Whether the device can realize MIG partition ``partition_id``."""
        return 1 <= partition_id <= self.partition_granularity

    def reference_energy_per_request_j(
        self, base, variant, utilization: float = _RANK_UTILIZATION
    ) -> float:
        """Joules one request costs on this device, statics amortized.

        The closed form prices a request of ``variant`` served on an
        unpartitioned slice of this device at the sizing ``utilization``:
        the slice's dynamic energy plus the board's static draw amortized
        over the requests that utilization implies.  This is the
        per-region efficiency signal routing ranks on (grid intensity x
        this = gCO2 per marginal request at the device).
        """
        from repro.gpu.slices import slice_by_name

        if not 0.0 < utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        perf = self.perf(base)
        full = slice_by_name("7g")
        tau_s = perf.latency_s(variant, full)
        dynamic_w = perf.busy_watts(variant, full)
        static_w = self.power.static_watts_per_gpu() / utilization
        return (dynamic_w + static_w) * tau_s

    def efficiency_rank_key(self) -> tuple[float, str]:
        """Family-independent sort key: lower = more efficient silicon.

        The watts term prices a device at the reference operating point;
        dividing by the throughput scalar converts it to energy per unit
        of work.  The name tiebreaks so pool canonicalization is total.
        """
        watts = (
            self.power.peak_dynamic_watts * _RANK_INTENSITY
            + self.power.static_watts_per_gpu() / _RANK_UTILIZATION
        )
        return (watts / self.throughput_scale, self.name)

    def make_device(self, gpu_id: int) -> GpuDevice:
        """A stateful :class:`GpuDevice` of this generation."""
        return GpuDevice(
            gpu_id=gpu_id,
            spec=self.spec,
            max_partition_id=self.partition_granularity,
        )


#: The seed testbed device: the A100 profile *is* the pre-heterogeneity
#: model — seed spec, seed power defaults, unit throughput, full MIG.
A100_PROFILE = DeviceProfile(
    name="a100",
    spec=A100_40GB,
    power=PowerModel(),
    throughput_scale=1.0,
    partition_granularity=NUM_PARTITIONS,
    # The seed gating default: 2 kJ fits under the A100's 35 W static
    # draw over the 60 s wake window (2.1 kJ ceiling).
    wake_energy_j=2_000.0,
)

#: Hopper: ~1.9x the A100's service rate at a higher board power — faster
#: *and* slightly fewer joules per request, with full MIG support and a
#: quicker wake (calibrated, not measured; see the module docstring).
H100_PROFILE = DeviceProfile(
    name="h100",
    spec=GpuSpec(
        name="H100-80GB",
        peak_tflops=37.1,
        memory_gb=80.0,
        repartition_seconds=10.0,
        model_load_seconds=4.0,
        wake_seconds=4.0,
    ),
    power=PowerModel(
        idle_watts=30.0,
        peak_dynamic_watts=610.0,
        host_watts_per_gpu=15.0,
        sleep_watts=8.0,
    ),
    throughput_scale=1.9,
    partition_granularity=NUM_PARTITIONS,
    # 80 GB of HBM re-paged per wake: the heaviest transition in the
    # registry, still under the 45 W x 60 s = 2.7 kJ static ceiling.
    wake_energy_j=2_500.0,
)

#: Ada inference card: ~0.4x the A100's service rate at a fraction of the
#: power — the cheapest joules per request in the registry, but slow, slow
#: to wake, and with no MIG at all (full-GPU deployments only).
L4_PROFILE = DeviceProfile(
    name="l4",
    spec=GpuSpec(
        name="L4-24GB",
        peak_tflops=30.3,
        memory_gb=24.0,
        repartition_seconds=12.0,
        model_load_seconds=3.0,
        wake_seconds=8.0,
    ),
    power=PowerModel(
        idle_watts=8.0,
        peak_dynamic_watts=64.0,
        host_watts_per_gpu=10.0,
        sleep_watts=3.0,
    ),
    throughput_scale=0.4,
    partition_granularity=1,
    # A small board with little memory to re-page; well under the L4's
    # 18 W x 60 s = 1.08 kJ static ceiling.
    wake_energy_j=800.0,
)

DEVICE_PROFILES: dict[str, DeviceProfile] = {
    p.name: p for p in (A100_PROFILE, H100_PROFILE, L4_PROFILE)
}

DEVICE_NAMES = tuple(sorted(DEVICE_PROFILES))


def profile_by_name(name: str) -> DeviceProfile:
    """Look a device profile up by registry name (``"a100"``, ``"l4"``)."""
    try:
        return DEVICE_PROFILES[name.lower()]
    except KeyError:
        valid = ", ".join(DEVICE_NAMES)
        raise KeyError(
            f"unknown device profile {name!r}; valid: {valid}"
        ) from None


@dataclass(frozen=True)
class DevicePool:
    """One cluster's GPU fleet, canonically ordered best-silicon-first.

    Build with :meth:`of` (which sorts) rather than the constructor; the
    canonical order is what ties the three layers together:

    * the evaluator maps the canonical configuration's ``i``-th GPU
      assignment onto ``profiles[i]`` — coarse partitions (which
      canonicalization sorts first) land on the most efficient silicon,
    * the capacity manager's awake set is always a canonical *prefix*, so
      sleeping trims the least-efficient devices first,
    * routing's marginal-device efficiency signal reads the last awake
      position.
    """

    profiles: tuple[DeviceProfile, ...]

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("a device pool needs at least one GPU")

    @classmethod
    def of(cls, devices) -> "DevicePool":
        """Canonical pool from profiles or registry names (any order)."""
        resolved = tuple(
            d if isinstance(d, DeviceProfile) else profile_by_name(d)
            for d in devices
        )
        return cls(
            profiles=tuple(
                sorted(resolved, key=lambda p: p.efficiency_rank_key())
            )
        )

    @classmethod
    def uniform(cls, name: str, n_gpus: int) -> "DevicePool":
        """A homogeneous pool of ``n_gpus`` devices of one profile."""
        if n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {n_gpus}")
        return cls(profiles=(profile_by_name(name),) * n_gpus)

    @property
    def n_gpus(self) -> int:
        return len(self.profiles)

    @property
    def names(self) -> tuple[str, ...]:
        """Profile names in canonical order (doubles as the cache key)."""
        return tuple(p.name for p in self.profiles)

    @property
    def is_uniform(self) -> bool:
        return len(set(self.names)) == 1

    @property
    def is_default_a100(self) -> bool:
        """Whether this pool is the implicit pre-heterogeneity fleet.

        Callers normalize such pools to ``None`` so the all-A100 path
        stays bit-for-bit the seed code path (same cache keys, same
        arithmetic order).
        """
        return all(p is A100_PROFILE or p == A100_PROFILE for p in self.profiles)

    @property
    def partition_granularity(self) -> int:
        """Highest partition id every device in the pool supports.

        A mixed pool is searched conservatively: the optimizer only
        explores partitions *all* its devices can realize, so one non-MIG
        L4 pins a mixed pool to full-GPU deployments.
        """
        return min(p.partition_granularity for p in self.profiles)

    @property
    def throughput_scale_sum(self) -> float:
        """Pool capacity in A100-equivalents (sizes the nominal rate)."""
        return float(sum(p.throughput_scale for p in self.profiles))

    def throughput_scales(self) -> tuple[float, ...]:
        """Per-device throughput scalars, canonical order."""
        return tuple(p.throughput_scale for p in self.profiles)

    def wake_energies_j(self) -> tuple[float, ...]:
        """Per-device wake transition energies, canonical order."""
        return tuple(p.wake_energy_j for p in self.profiles)

    def counts(self) -> dict[str, int]:
        """Device-name multiset, e.g. ``{"a100": 2, "l4": 2}``."""
        out: dict[str, int] = {}
        for name in self.names:
            out[name] = out.get(name, 0) + 1
        return out

    def describe(self) -> str:
        """Human-readable mix, e.g. ``"2xa100+2xl4"``."""
        return "+".join(
            f"{count}x{name}" for name, count in sorted(self.counts().items())
        )

    def make_devices(self) -> list[GpuDevice]:
        """Stateful devices for a :class:`~repro.gpu.cluster.GpuCluster`."""
        return [p.make_device(i) for i, p in enumerate(self.profiles)]


def parse_region_devices(spec: str) -> str | tuple[str, ...]:
    """Parse one region's device spec into :attr:`Region.devices` form.

    A single-name spec collapses to the bare name (broadcast to the
    region's GPU count); multi-entry specs stay an explicit per-GPU tuple
    whose length must match the region's ``n_gpus``.

    >>> parse_region_devices("l4")
    'l4'
    >>> parse_region_devices("a100:1,l4:1")
    ('a100', 'l4')
    """
    names = parse_devices(spec)
    return names[0] if len(names) == 1 else names


def parse_devices(spec: str) -> tuple[str, ...]:
    """Parse a CLI device-mix string into per-GPU profile names.

    Accepts a bare name (``"a100"`` — uniform, broadcast by the caller), a
    comma list (``"a100,l4"``), and counted entries (``"a100:2,l4:2"``).
    Names are validated against the registry.

    >>> parse_devices("a100:2,l4:2")
    ('a100', 'a100', 'l4', 'l4')
    >>> parse_devices("h100")
    ('h100',)
    """
    names: list[str] = []
    for part in spec.split(","):
        part = part.strip().lower()
        if not part:
            continue
        if ":" in part:
            name, _, count_s = part.partition(":")
            try:
                count = int(count_s)
            except ValueError:
                raise ValueError(
                    f"bad device count in {part!r} (want name:count)"
                ) from None
            if count <= 0:
                raise ValueError(f"device count must be positive in {part!r}")
        else:
            name, count = part, 1
        profile_by_name(name)  # raises KeyError on an unknown name
        names.extend([name] * count)
    if not names:
        raise ValueError(f"no device names in {spec!r}")
    return tuple(names)
