"""The 19 MIG partition configurations of an NVIDIA A100 (paper Fig. 1).

A *partition configuration* is a multiset of slice types that can be placed
simultaneously on one GPU.  Placement feasibility on the A100 requires

* total compute slots <= 7,
* total memory slices <= 8,
* a geometric placement: ``4g`` occupies compute slots 0-3, ``3g`` occupies
  slots 0-2 or 4-6, ``2g`` occupies an aligned pair {0-1, 2-3, 4-5}, ``1g``
  any single slot, ``7g`` everything.

The Clover paper (and NVIDIA's MIG guide it redraws) enumerates **19**
configurations.  The paper pins four of them to indices we honour exactly:

* config **1**  = ``{7g}``                       (full GPU, "C1" in Fig. 3)
* config **3**  = ``{4g, 2g, 1g}``               ("C2" in Fig. 3)
* config **10** = ``{3g, 2g, 1g, 1g}``           (example in Sec. 2)
* config **19** = ``{1g} * 7``                   ("C3" in Fig. 3, CO2OPT)

Our table lists every placement-valid multiset, ordered by coarsest slice
descending and then by partition count, which reproduces all four anchors.
The enumeration is validated structurally by the test-suite (placement
feasibility of each entry, anchor positions, and exhaustiveness of the
maximal configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.slices import (
    COMPUTE_SLOTS_PER_GPU,
    MEMORY_SLICES_PER_GPU,
    SLICE_TYPES,
    SliceType,
    slice_by_name,
)

__all__ = [
    "MigPartition",
    "MIG_PARTITIONS",
    "NUM_PARTITIONS",
    "FULL_GPU_PARTITION_ID",
    "FINEST_PARTITION_ID",
    "partition_by_id",
    "partition_histogram",
    "placement_feasible",
    "ALL_PARTITION_HISTOGRAMS",
]


@dataclass(frozen=True)
class MigPartition:
    """One of the 19 MIG partition configurations.

    Attributes
    ----------
    config_id:
        1-based index matching the paper's Fig. 1 numbering.
    slices:
        The slice types of the partition, largest first.
    """

    config_id: int
    slices: tuple[SliceType, ...]

    @property
    def num_instances(self) -> int:
        """Number of service instances this partition can host (one per slice)."""
        return len(self.slices)

    @property
    def compute_slots_used(self) -> int:
        return sum(s.compute_slots for s in self.slices)

    @property
    def memory_slices_used(self) -> int:
        return sum(s.memory_slices for s in self.slices)

    def histogram(self) -> np.ndarray:
        """Counts of each slice type, indexed by ``SliceType.index`` (len 5)."""
        h = np.zeros(len(SLICE_TYPES), dtype=np.int64)
        for s in self.slices:
            h[s.index] += 1
        return h

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(s.name for s in self.slices)
        return f"#{self.config_id}:{{{inner}}}"


def placement_feasible(slices: tuple[SliceType, ...]) -> bool:
    """Check whether a multiset of slices can be placed on one A100.

    Encodes the A100 geometry: the 7 compute slots split into a left half
    (slots 0-3: hosts ``4g``, up to two ``2g``, or ``1g``s) and a right half
    (slots 4-6: hosts ``3g``, one ``2g``, or ``1g``s).  ``3g`` may also sit in
    the left half (slots 0-2).  ``7g`` must be alone.
    """
    counts = {name: 0 for name in ("1g", "2g", "3g", "4g", "7g")}
    for s in slices:
        counts[s.name] += 1

    compute = sum(s.compute_slots for s in slices)
    memory = sum(s.memory_slices for s in slices)
    if compute > COMPUTE_SLOTS_PER_GPU or memory > MEMORY_SLICES_PER_GPU:
        return False
    if counts["7g"] > 0:
        return len(slices) == 1
    if counts["4g"] > 1 or counts["3g"] > 2:
        return False
    if counts["4g"] == 1 and counts["3g"] > 1:
        return False  # 4g takes the whole left half; only one 3g fits right

    # Left half (4 slots) and right half (3 slots).  4g -> left only;
    # one 3g can take either half; 2g pairs: two fit left, one fits right.
    if counts["4g"] == 1:
        left_free, right_free = 0, 3
        threes_right = counts["3g"]
    elif counts["3g"] == 2:
        left_free, right_free = 1, 0  # 3g left (0-2) + 3g right (4-6); slot 3 free
        threes_right = 0
    elif counts["3g"] == 1:
        left_free, right_free = 4, 0  # place the 3g right; left fully free
        threes_right = 0
    else:
        left_free, right_free = 4, 3
        threes_right = 0
    del threes_right

    twos = counts["2g"]
    # 2g placements: left half supports floor(left_free/2) aligned pairs,
    # right half supports one pair (slots 4-5) when fully free.
    twos_left_cap = left_free // 2
    twos_right_cap = 1 if right_free == 3 else 0
    if twos > twos_left_cap + twos_right_cap:
        return False
    twos_left = min(twos, twos_left_cap)
    twos_right = twos - twos_left
    ones_cap = (left_free - 2 * twos_left) + (right_free - 2 * twos_right)
    return counts["1g"] <= ones_cap


def _build_partitions() -> tuple[MigPartition, ...]:
    """Construct the canonical 19-entry table (see module docstring)."""
    raw: list[tuple[str, ...]] = [
        ("7g",),                                   # 1  (paper anchor: full GPU)
        ("4g", "3g"),                              # 2
        ("4g", "2g", "1g"),                        # 3  (paper anchor: C2)
        ("4g", "2g"),                              # 4
        ("4g", "1g", "1g", "1g"),                  # 5
        ("4g", "1g", "1g"),                        # 6
        ("4g", "1g"),                              # 7
        ("3g", "3g"),                              # 8
        ("3g", "2g", "2g"),                        # 9
        ("3g", "2g", "1g", "1g"),                  # 10 (paper anchor: Sec. 2)
        ("3g", "2g", "1g"),                        # 11
        ("3g", "1g", "1g", "1g", "1g"),            # 12
        ("2g", "2g", "2g", "1g"),                  # 13
        ("2g", "2g", "2g"),                        # 14
        ("2g", "2g", "1g", "1g", "1g"),            # 15
        ("2g", "2g", "1g", "1g"),                  # 16
        ("2g", "1g", "1g", "1g", "1g", "1g"),      # 17
        ("1g",) * 6,                               # 18
        ("1g",) * 7,                               # 19 (paper anchor: C3)
    ]
    partitions = []
    for i, names in enumerate(raw, start=1):
        slices = tuple(slice_by_name(n) for n in names)
        if not placement_feasible(slices):  # defensive: table must be valid
            raise AssertionError(f"partition table entry {i} is not placeable")
        partitions.append(MigPartition(config_id=i, slices=slices))
    return tuple(partitions)


MIG_PARTITIONS: tuple[MigPartition, ...] = _build_partitions()
NUM_PARTITIONS = len(MIG_PARTITIONS)
FULL_GPU_PARTITION_ID = 1
FINEST_PARTITION_ID = 19

#: (19, 5) int matrix: row c-1 is the slice-type histogram of config c.
ALL_PARTITION_HISTOGRAMS: np.ndarray = np.stack(
    [p.histogram() for p in MIG_PARTITIONS]
)
ALL_PARTITION_HISTOGRAMS.setflags(write=False)


def partition_by_id(config_id: int) -> MigPartition:
    """Return the partition for a 1-based config id (paper Fig. 1 numbering)."""
    if not 1 <= config_id <= NUM_PARTITIONS:
        raise ValueError(
            f"MIG config id must be in [1, {NUM_PARTITIONS}], got {config_id}"
        )
    return MIG_PARTITIONS[config_id - 1]


def partition_histogram(config_id: int) -> np.ndarray:
    """Slice-type histogram (len-5 int array) of a 1-based config id."""
    return ALL_PARTITION_HISTOGRAMS[config_id - 1].copy()
