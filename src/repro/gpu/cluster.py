"""Multi-GPU cluster and slice-histogram feasibility.

Clover's graph representation collapses a cluster configuration into a
slice-type histogram (how many ``1g`` .. ``7g`` slices exist cluster-wide).
The histogram is only *realizable* if it can be written as the sum of exactly
``n`` per-GPU partition histograms, one of the 19 MIG configurations per GPU.
:func:`decompose_histogram` solves that exact-cover problem with a memoized
depth-first search; :func:`histogram_is_feasible` is the boolean wrapper the
optimizer uses to reject unrealizable graphs.

The search de-duplicates GPU orderings by forcing the chosen partition ids to
be non-increasing, which keeps the memo small: for the paper's 10-GPU testbed
the full reachable state space is a few thousand entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.gpu.device import A100_40GB, GpuDevice, GpuSpec
from repro.gpu.partitions import (
    ALL_PARTITION_HISTOGRAMS,
    NUM_PARTITIONS,
    partition_by_id,
)
from repro.gpu.slices import SLICE_TYPES

__all__ = [
    "GpuCluster",
    "decompose_histogram",
    "histogram_is_feasible",
    "max_slices",
    "min_slices",
]

#: Histogram rows as plain tuples, indexed by config_id - 1 (cache-friendly).
_PARTITION_HISTS: tuple[tuple[int, ...], ...] = tuple(
    tuple(int(x) for x in row) for row in ALL_PARTITION_HISTOGRAMS
)

#: Instance count of each partition, indexed by config_id - 1.
_PARTITION_SIZES: tuple[int, ...] = tuple(sum(h) for h in _PARTITION_HISTS)

_MAX_SLICES_PER_GPU = max(_PARTITION_SIZES)
_MIN_SLICES_PER_GPU = min(_PARTITION_SIZES)


def max_slices(n_gpus: int) -> int:
    """Most service instances ``n_gpus`` can host (config 19 everywhere)."""
    return n_gpus * _MAX_SLICES_PER_GPU


def min_slices(n_gpus: int) -> int:
    """Fewest service instances ``n_gpus`` can host (one 7g slice per GPU)."""
    return n_gpus * _MIN_SLICES_PER_GPU


def _normalize_histogram(histogram) -> tuple[int, ...]:
    h = tuple(int(x) for x in np.asarray(histogram).ravel())
    if len(h) != len(SLICE_TYPES):
        raise ValueError(
            f"histogram must have {len(SLICE_TYPES)} entries (1g..7g), got {len(h)}"
        )
    if any(x < 0 for x in h):
        raise ValueError(f"histogram counts must be non-negative, got {h}")
    return h


@lru_cache(maxsize=200_000)
def _decompose(h: tuple[int, ...], n: int, max_id: int) -> tuple[int, ...] | None:
    """Write ``h`` as the sum of ``n`` partition histograms with ids <= max_id.

    Returns the chosen (non-increasing) partition ids, or ``None``.
    """
    total = sum(h)
    if n == 0:
        return () if total == 0 else None
    # Every GPU hosts between 1 and 7 slices, so the remaining instance count
    # brackets the remaining GPU count.
    if total < n * _MIN_SLICES_PER_GPU or total > n * _MAX_SLICES_PER_GPU:
        return None
    for pid in range(max_id, 0, -1):
        ph = _PARTITION_HISTS[pid - 1]
        if all(hc >= pc for hc, pc in zip(h, ph)):
            rest = _decompose(
                tuple(hc - pc for hc, pc in zip(h, ph)), n - 1, pid
            )
            if rest is not None:
                return (pid,) + rest
    return None


def decompose_histogram(
    histogram, n_gpus: int, max_partition_id: int = NUM_PARTITIONS
) -> tuple[int, ...] | None:
    """Split a cluster slice histogram into per-GPU MIG partition ids.

    Parameters
    ----------
    histogram:
        Length-5 counts of slice types (index = ``SliceType.index``,
        i.e. ``[#1g, #2g, #3g, #4g, #7g]``).
    n_gpus:
        Number of GPUs that must each receive exactly one partition.
    max_partition_id:
        Highest partition config id any GPU may receive — the pool's
        partition granularity (see
        :attr:`repro.gpu.profiles.DevicePool.partition_granularity`); the
        default admits every MIG configuration.

    Returns
    -------
    A tuple of ``n_gpus`` partition config ids (non-increasing) whose
    histograms sum to ``histogram``, or ``None`` if no decomposition exists.
    """
    if n_gpus < 0:
        raise ValueError(f"n_gpus must be non-negative, got {n_gpus}")
    if not 1 <= max_partition_id <= NUM_PARTITIONS:
        raise ValueError(
            f"max partition id must be in [1, {NUM_PARTITIONS}], "
            f"got {max_partition_id}"
        )
    h = _normalize_histogram(histogram)
    return _decompose(h, n_gpus, max_partition_id)


def histogram_is_feasible(
    histogram, n_gpus: int, max_partition_id: int = NUM_PARTITIONS
) -> bool:
    """Whether ``histogram`` is realizable on exactly ``n_gpus`` GPUs."""
    return decompose_histogram(histogram, n_gpus, max_partition_id) is not None


@dataclass
class GpuCluster:
    """A pool of MIG-capable GPUs (the paper's testbed is 10 x A100).

    The cluster owns the devices and exposes aggregate views the serving and
    optimization layers need: the flattened slice inventory and the
    cluster-wide slice histogram.

    By default every device is an identical ``spec`` GPU (the seed path).
    Passing ``pool`` — a :class:`repro.gpu.profiles.DevicePool` — builds a
    heterogeneous cluster instead: one device per pool profile, in the
    pool's canonical most-efficient-first order, each enforcing its own
    partition granularity (an L4 device rejects MIG repartitions).
    """

    n_gpus: int
    spec: GpuSpec = A100_40GB
    pool: "object | None" = None
    devices: list[GpuDevice] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise ValueError(f"cluster needs at least one GPU, got {self.n_gpus}")
        if self.pool is not None:
            if self.pool.n_gpus != self.n_gpus:
                raise ValueError(
                    f"device pool has {self.pool.n_gpus} GPUs, "
                    f"cluster declares {self.n_gpus}"
                )
            self.devices = self.pool.make_devices()
        else:
            self.devices = [
                GpuDevice(gpu_id=i, spec=self.spec) for i in range(self.n_gpus)
            ]

    @property
    def partition_ids(self) -> tuple[int, ...]:
        """Current MIG configuration id of every GPU."""
        return tuple(d.partition_id for d in self.devices)

    def apply_partitions(self, partition_ids: list[int] | tuple[int, ...]) -> float:
        """Repartition every GPU; returns the worst-case downtime in seconds.

        GPUs repartition in parallel (each has its own MIG control), so the
        service-visible downtime is the maximum over devices, not the sum.

        The call is atomic: every partition id is validated *before* any
        device is touched, so an invalid id midway can never leave the
        cluster half-repartitioned.
        """
        if len(partition_ids) != self.n_gpus:
            raise ValueError(
                f"expected {self.n_gpus} partition ids, got {len(partition_ids)}"
            )
        for dev, pid in zip(self.devices, partition_ids):
            partition_by_id(pid)  # raises on an unknown id, pre-mutation
            # Device-granularity check, also pre-mutation: a non-MIG
            # device midway through the list must not leave the cluster
            # half-repartitioned.
            if pid != dev.partition_id:
                dev.check_supported(pid)
        downtimes = [
            dev.repartition(pid) for dev, pid in zip(self.devices, partition_ids)
        ]
        return max(downtimes, default=0.0)

    def slice_inventory(self):
        """All slices in the cluster as ``(gpu_id, slice_type)`` pairs."""
        return [
            (dev.gpu_id, s) for dev in self.devices for s in dev.partition.slices
        ]

    def histogram(self) -> np.ndarray:
        """Cluster-wide slice-type histogram (len-5 int array)."""
        h = np.zeros(len(SLICE_TYPES), dtype=np.int64)
        for dev in self.devices:
            h += dev.partition.histogram()
        return h

    # ------------------------------------------------------------------ #
    # awake / asleep masks (elastic capacity)
    # ------------------------------------------------------------------ #

    @property
    def awake_mask(self) -> tuple[bool, ...]:
        """Per-device awake flags, in ``gpu_id`` order."""
        return tuple(d.awake for d in self.devices)

    @property
    def n_awake(self) -> int:
        """How many devices are currently awake (serving-capable)."""
        return sum(1 for d in self.devices if d.awake)

    def set_awake_count(self, n_awake: int) -> float:
        """Sleep or wake devices so exactly ``n_awake`` are online.

        Devices sleep from the highest ``gpu_id`` down and wake from the
        lowest up, so the awake set is always a ``gpu_id`` prefix.  (The
        serving path's :class:`~repro.core.evaluator.ConfigEvaluator`
        works one level up, on placement-free canonical configurations —
        it keeps the first awake *canonical* assignments; map canonical
        order onto ``gpu_id`` order when driving physical devices from an
        evaluator decision.)  Returns the wake downtime in seconds (max
        over woken devices; they wake in parallel), 0.0 when only
        sleeping.
        """
        if not 1 <= n_awake <= self.n_gpus:
            raise ValueError(
                f"awake count must be in [1, {self.n_gpus}], got {n_awake}"
            )
        downtimes = [0.0]
        for i, dev in enumerate(self.devices):
            if i < n_awake:
                downtimes.append(dev.wake())
            else:
                dev.sleep()
        return max(downtimes)

    def awake_histogram(self) -> np.ndarray:
        """Slice-type histogram over *awake* devices only.

        This is the histogram the feasibility layer must use while GPUs
        sleep: a slice on a gated GPU exists but cannot serve, so the
        feasible cluster-wide histogram shrinks to the awake subset
        (``histogram_is_feasible(awake_histogram(), n_awake)``).
        """
        h = np.zeros(len(SLICE_TYPES), dtype=np.int64)
        for dev in self.devices:
            if dev.awake:
                h += dev.partition.histogram()
        return h

    @property
    def total_instances(self) -> int:
        """Number of service instances the current partitioning hosts."""
        return sum(d.num_instances for d in self.devices)

    @property
    def awake_instances(self) -> int:
        """Service instances hosted on awake devices (serving capacity)."""
        return sum(d.num_instances for d in self.devices if d.awake)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``'10xA100-40GB [#1, #1, ...]'``."""
        parts = ", ".join(str(partition_by_id(p)) for p in self.partition_ids)
        if self.pool is not None and not self.pool.is_uniform:
            return f"{self.pool.describe()} [{parts}]"
        name = (
            self.pool.profiles[0].spec.name
            if self.pool is not None
            else self.spec.name
        )
        return f"{self.n_gpus}x{name} [{parts}]"
