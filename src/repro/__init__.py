"""repro — a from-scratch reproduction of Clover (SC '23).

Clover is a carbon-aware ML inference serving runtime that jointly chooses
mixed-quality model variants and MIG GPU partitions to trade carbon
emissions against accuracy under a p95 tail-latency SLA, re-optimizing
online as grid carbon intensity changes.

Quickstart::

    from repro import CarbonAwareInferenceService

    service = CarbonAwareInferenceService.create(
        application="classification", scheme="clover", seed=0
    )
    report = service.run(duration_h=48.0)
    print(f"carbon: {report.total_carbon_g:.0f} g, "
          f"accuracy loss: {report.accuracy_loss_pct:.1f}%")

Multi-region::

    from repro import FleetCoordinator, default_fleet_regions

    fleet = FleetCoordinator.create(
        default_fleet_regions(), router="carbon-greedy", seed=0
    )
    report = fleet.run(duration_h=48.0)
    print(f"fleet carbon: {report.total_carbon_g:.0f} g, "
          f"SLA attainment: {100 * report.sla_attainment:.1f}%")

Geo-diurnal demand with forecast-driven proactive routing and elastic
GPU capacity (idle power follows traffic)::

    from repro import FleetCoordinator, region_by_name

    regions = [region_by_name(n, n_gpus=4)
               for n in ("us-ciso", "uk-eso", "apac-solar")]
    fleet = FleetCoordinator.create(
        regions, router="forecast-aware", demand="diurnal",
        ramp_share_per_h=0.10, drain_share_per_h=0.20, lookahead_h=6.0,
        gating="forecast",
    )
    report = fleet.run(duration_h=48.0)
    print(f"user SLA (per origin-region pair): "
          f"{100 * report.user_sla_attainment:.1f}%, "
          f"GPUs awake: {100 * report.mean_awake_fraction:.0f}%")

Heterogeneous GPU generations (routing ranks on gCO2/request)::

    from repro import FleetCoordinator, region_by_name

    regions = [region_by_name("us-ciso", n_gpus=2, devices="a100"),
               region_by_name("apac-solar", n_gpus=2, devices="l4")]
    fleet = FleetCoordinator.create(regions, router="carbon-greedy")
    report = fleet.run(duration_h=48.0)

Packages: :mod:`repro.gpu` (MIG substrate), :mod:`repro.models` (Table-1
model zoo), :mod:`repro.serving` (queueing + DES), :mod:`repro.carbon`
(traces + accounting + forecasting), :mod:`repro.core` (the Clover
system), :mod:`repro.fleet` (multi-region coordination and routing),
:mod:`repro.demand` (geo-diurnal demand origins and latency matrix),
:mod:`repro.scenarios` (the declarative ScenarioSpec front door: specs,
TOML/JSON round-trips, sweeps, the experiment registry), and
:mod:`repro.analysis` (paper-figure experiment harness).
"""

from repro.core.service import CarbonAwareInferenceService, FidelityProfile
from repro.core.controller import RunResult
from repro.demand import (
    DiurnalDemandModel,
    GeoOrigin,
    LatencyMatrix,
    default_origins,
)
from repro.fleet import (
    FleetCoordinator,
    FleetResult,
    GatingPolicy,
    Region,
    default_fleet_regions,
    region_by_name,
)
from repro.gpu.profiles import DevicePool, DeviceProfile, profile_by_name
from repro.models.zoo import default_zoo
from repro.models.perf import PerfModel
from repro.carbon.traces import evaluation_traces, trace_by_name
from repro.scenarios import (
    RegionSpec,
    Scenario,
    ScenarioSpec,
    run_sweep,
)

__version__ = "1.3.0"

__all__ = [
    "CarbonAwareInferenceService",
    "FidelityProfile",
    "RunResult",
    "FleetCoordinator",
    "FleetResult",
    "GatingPolicy",
    "Region",
    "default_fleet_regions",
    "region_by_name",
    "GeoOrigin",
    "DiurnalDemandModel",
    "LatencyMatrix",
    "default_origins",
    "DeviceProfile",
    "DevicePool",
    "profile_by_name",
    "default_zoo",
    "PerfModel",
    "evaluation_traces",
    "trace_by_name",
    "ScenarioSpec",
    "RegionSpec",
    "Scenario",
    "run_sweep",
    "__version__",
]
