"""The three Table-1 model families of the Clover paper.

============  ==================  ===============  =============================
Application   Dataset             Architecture     Variants
============  ==================  ===============  =============================
detection     MS COCO             YOLOv5           YOLOv5l, YOLOv5x, YOLOv5x6
language      SQuADv2             ALBERT           v2-base/large/xlarge/xxlarge
classification ImageNet           EfficientNet     B1, B3, B5, B7
============  ==================  ===============  =============================

Accuracy, parameter counts and GFLOPs come from the public repositories the
paper cites (Ultralytics YOLOv5, google-research/albert, EfficientNet-PyTorch).
Latency/saturation/power profiles are calibrated for the simulated A100 (see
:mod:`repro.models.variants` and DESIGN.md): they are synthetic but shaped so
that (a) large variants saturate the GPU and slow several-fold on 1g slices
while small variants barely notice, and (b) the largest YOLOv5 and ALBERT
variants exceed the 5 GB of a 1g slice, exercising the paper's OOM edge rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.variants import ModelVariant

__all__ = [
    "ModelFamily",
    "YOLOV5",
    "ALBERT",
    "EFFICIENTNET",
    "ALL_FAMILIES",
    "APPLICATIONS",
    "family_for_application",
]


@dataclass(frozen=True)
class ModelFamily:
    """A model architecture family: ordered variants plus task metadata."""

    name: str
    application: str
    dataset: str
    architecture: str
    metric: str
    variants: tuple[ModelVariant, ...]

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"family {self.name!r} must have at least one variant")
        ordinals = [v.ordinal for v in self.variants]
        if ordinals != list(range(1, len(self.variants) + 1)):
            raise ValueError(
                f"family {self.name!r} variants must have ordinals 1..{len(self.variants)}"
                f" in order, got {ordinals}"
            )
        if any(v.family != self.name for v in self.variants):
            raise ValueError(f"all variants must declare family {self.name!r}")
        accs = [v.accuracy for v in self.variants]
        if accs != sorted(accs):
            raise ValueError(
                f"family {self.name!r} accuracy must be non-decreasing in ordinal"
            )

    @property
    def num_variants(self) -> int:
        return len(self.variants)

    @property
    def smallest(self) -> ModelVariant:
        """The lowest-quality variant (CO2OPT's choice)."""
        return self.variants[0]

    @property
    def largest(self) -> ModelVariant:
        """The highest-quality variant (the BASE scheme and ``A_base``)."""
        return self.variants[-1]

    @property
    def base_accuracy(self) -> float:
        """``A_base`` of Eq. 1: accuracy of the highest-quality variant."""
        return self.largest.accuracy

    def variant(self, ordinal: int) -> ModelVariant:
        """Look a variant up by its 1-based ordinal encoding."""
        if not 1 <= ordinal <= len(self.variants):
            raise ValueError(
                f"{self.name!r} has variants 1..{len(self.variants)}, got {ordinal}"
            )
        return self.variants[ordinal - 1]

    def by_name(self, name: str) -> ModelVariant:
        """Look a variant up by its published name (case-insensitive)."""
        for v in self.variants:
            if v.name.lower() == name.lower():
                return v
        valid = ", ".join(v.name for v in self.variants)
        raise KeyError(f"unknown variant {name!r} in {self.name!r}; valid: {valid}")

    def __iter__(self):
        return iter(self.variants)


YOLOV5 = ModelFamily(
    name="yolov5",
    application="detection",
    dataset="MS COCO",
    architecture="YOLOv5",
    metric="mAP50-95",
    variants=(
        ModelVariant(
            ordinal=1, name="YOLOv5l", family="yolov5",
            params_millions=46.5, gflops=109.1, accuracy=49.0, memory_gb=2.8,
            fixed_latency_ms=2.5, compute_latency_ms=12.0,
            saturation=0.40, power_intensity=0.70,
        ),
        ModelVariant(
            ordinal=2, name="YOLOv5x", family="yolov5",
            params_millions=86.7, gflops=205.7, accuracy=50.7, memory_gb=4.2,
            fixed_latency_ms=3.0, compute_latency_ms=22.0,
            saturation=0.42, power_intensity=0.80,
        ),
        ModelVariant(
            ordinal=3, name="YOLOv5x6", family="yolov5",
            params_millions=140.7, gflops=839.4, accuracy=55.0, memory_gb=7.5,
            fixed_latency_ms=4.0, compute_latency_ms=65.0,
            saturation=0.70, power_intensity=0.95,
        ),
    ),
)

ALBERT = ModelFamily(
    name="albert",
    application="language",
    dataset="SQuADv2",
    architecture="ALBERT",
    metric="F1",
    variants=(
        ModelVariant(
            ordinal=1, name="ALBERT-v2-base", family="albert",
            params_millions=11.8, gflops=45.0, accuracy=82.1, memory_gb=1.2,
            fixed_latency_ms=2.0, compute_latency_ms=6.0,
            saturation=0.18, power_intensity=0.50,
        ),
        ModelVariant(
            ordinal=2, name="ALBERT-v2-large", family="albert",
            params_millions=17.7, gflops=160.0, accuracy=84.9, memory_gb=1.8,
            fixed_latency_ms=2.5, compute_latency_ms=15.0,
            saturation=0.30, power_intensity=0.62,
        ),
        ModelVariant(
            ordinal=3, name="ALBERT-v2-xlarge", family="albert",
            params_millions=58.8, gflops=640.0, accuracy=87.9, memory_gb=3.4,
            fixed_latency_ms=3.0, compute_latency_ms=45.0,
            saturation=0.45, power_intensity=0.78,
        ),
        ModelVariant(
            ordinal=4, name="ALBERT-v2-xxlarge", family="albert",
            params_millions=222.6, gflops=1280.0, accuracy=90.2, memory_gb=6.2,
            fixed_latency_ms=4.0, compute_latency_ms=110.0,
            saturation=0.70, power_intensity=0.95,
        ),
    ),
)

EFFICIENTNET = ModelFamily(
    name="efficientnet",
    application="classification",
    dataset="ImageNet",
    architecture="EfficientNet",
    metric="top-1",
    variants=(
        ModelVariant(
            ordinal=1, name="EfficientNet-B1", family="efficientnet",
            params_millions=7.8, gflops=0.70, accuracy=79.1, memory_gb=1.0,
            fixed_latency_ms=1.5, compute_latency_ms=3.5,
            saturation=0.12, power_intensity=0.45,
        ),
        ModelVariant(
            ordinal=2, name="EfficientNet-B3", family="efficientnet",
            params_millions=12.0, gflops=1.8, accuracy=81.6, memory_gb=1.4,
            fixed_latency_ms=1.8, compute_latency_ms=6.0,
            saturation=0.22, power_intensity=0.55,
        ),
        ModelVariant(
            ordinal=3, name="EfficientNet-B5", family="efficientnet",
            params_millions=30.0, gflops=9.9, accuracy=83.6, memory_gb=2.6,
            fixed_latency_ms=2.2, compute_latency_ms=14.0,
            saturation=0.45, power_intensity=0.75,
        ),
        ModelVariant(
            ordinal=4, name="EfficientNet-B7", family="efficientnet",
            params_millions=66.0, gflops=37.0, accuracy=84.3, memory_gb=4.8,
            fixed_latency_ms=3.0, compute_latency_ms=32.0,
            saturation=0.80, power_intensity=0.95,
        ),
    ),
)

ALL_FAMILIES: tuple[ModelFamily, ...] = (YOLOV5, ALBERT, EFFICIENTNET)

#: Application name (as used throughout the paper's figures) -> family.
APPLICATIONS: dict[str, ModelFamily] = {f.application: f for f in ALL_FAMILIES}


def family_for_application(application: str) -> ModelFamily:
    """Resolve a paper application name (``"detection"`` etc.) to its family."""
    try:
        return APPLICATIONS[application.lower()]
    except KeyError:
        valid = ", ".join(sorted(APPLICATIONS))
        raise KeyError(
            f"unknown application {application!r}; valid: {valid}"
        ) from None
