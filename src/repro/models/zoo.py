"""The model zoo: a registry of model families keyed by name or application.

The zoo is the single lookup point the rest of the system uses to resolve
``(family, ordinal)`` pairs to :class:`~repro.models.variants.ModelVariant`
objects, and to answer memory-feasibility questions ("can variant v be hosted
on slice s at all?").  A default zoo ships with the paper's three Table-1
families; users can register their own families (see
``examples/custom_family.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.slices import SLICE_TYPES
from repro.models.families import ALL_FAMILIES, ModelFamily
from repro.models.variants import ModelVariant

__all__ = ["ModelZoo", "default_zoo"]


@dataclass
class ModelZoo:
    """Registry of model families, with vectorized feasibility masks."""

    _families: dict[str, ModelFamily] = field(default_factory=dict)

    def register(self, family: ModelFamily) -> None:
        """Add a family; rejects duplicate names or application labels."""
        if family.name in self._families:
            raise ValueError(f"family {family.name!r} already registered")
        for existing in self._families.values():
            if existing.application == family.application:
                raise ValueError(
                    f"application {family.application!r} already served by "
                    f"{existing.name!r}"
                )
        self._families[family.name] = family

    def family(self, name: str) -> ModelFamily:
        """Look up a family by its name (``"efficientnet"``)."""
        try:
            return self._families[name]
        except KeyError:
            valid = ", ".join(sorted(self._families))
            raise KeyError(f"unknown family {name!r}; valid: {valid}") from None

    def for_application(self, application: str) -> ModelFamily:
        """Look up a family by application label (``"classification"``)."""
        for fam in self._families.values():
            if fam.application == application.lower():
                return fam
        valid = ", ".join(sorted(f.application for f in self._families.values()))
        raise KeyError(f"unknown application {application!r}; valid: {valid}")

    @property
    def families(self) -> tuple[ModelFamily, ...]:
        """All registered families, in registration order."""
        return tuple(self._families.values())

    @property
    def applications(self) -> tuple[str, ...]:
        return tuple(f.application for f in self._families.values())

    def variant(self, family: str, ordinal: int) -> ModelVariant:
        """Resolve the paper's ordinal encoding to a variant object."""
        return self.family(family).variant(ordinal)

    def memory_mask(self, family: str) -> np.ndarray:
        """(V, 5) boolean matrix: ``mask[v-1, s]`` = variant v fits slice s.

        This is the paper's "disable the edge connection between corresponding
        variant and slice vertices if out-of-memory errors would occur" rule,
        in the exact layout of the configuration-graph weight matrix.
        """
        fam = self.family(family)
        mask = np.zeros((fam.num_variants, len(SLICE_TYPES)), dtype=bool)
        for v in fam.variants:
            for s in SLICE_TYPES:
                mask[v.ordinal - 1, s.index] = v.fits(s)
        mask.setflags(write=False)
        return mask

    def feasible_variants(self, family: str, slice_index: int) -> tuple[int, ...]:
        """Ordinals of the variants that fit the slice type at ``slice_index``."""
        fam = self.family(family)
        s = SLICE_TYPES[slice_index]
        return tuple(v.ordinal for v in fam.variants if v.fits(s))


def default_zoo() -> ModelZoo:
    """The paper's Table-1 zoo: YOLOv5, ALBERT and EfficientNet families."""
    zoo = ModelZoo()
    for fam in ALL_FAMILIES:
        zoo.register(fam)
    return zoo
