"""Model variants: the unit of "quality" in Clover's mixed-quality serving.

A *variant* is one member of a model architecture family (Sec. 2 of the
paper): same task, different parameter count, hence different accuracy,
latency, memory footprint, and power draw.  Clover encodes variants as
ordinal values (``1`` = smallest) and mixes them across MIG slices.

Because no GPU is available in this reproduction, each variant carries a
calibrated analytical performance profile instead of real kernels:

``fixed_latency_ms``
    Per-request overhead that does not scale with compute (pre/post
    processing, kernel launches, framework dispatch).
``compute_latency_ms``
    Pure compute time of one inference on a slice large enough to saturate
    the model (i.e. on any slice with ``compute_fraction >= saturation``).
``saturation``
    The fraction of a full A100 the model can actually keep busy.  Small
    models cannot fill a 7g slice (so they barely slow down on small slices);
    big models need most of the GPU (so a 1g slice slows them several fold).
    This single knob reproduces the latency structure MIG measurement papers
    report and is the source of the paper's SLA-vs-partitioning tension.
``power_intensity``
    How hard the model drives the silicon it occupies, in (0, 1] — scales
    the dynamic power of the hosting slice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.slices import SliceType

__all__ = ["ModelVariant"]


@dataclass(frozen=True, order=True)
class ModelVariant:
    """One member of a model family, ordered by ``ordinal`` (1 = smallest).

    ``accuracy`` is the task metric on the family's benchmark dataset in
    percent (COCO mAP, SQuADv2 F1, or ImageNet top-1), taken from the public
    model repositories exactly as the paper does.
    """

    ordinal: int
    name: str
    family: str
    params_millions: float
    gflops: float
    accuracy: float
    memory_gb: float
    fixed_latency_ms: float
    compute_latency_ms: float
    saturation: float
    power_intensity: float

    def __post_init__(self) -> None:
        if self.ordinal < 1:
            raise ValueError(f"ordinal must be >= 1, got {self.ordinal}")
        if not 0.0 < self.accuracy <= 100.0:
            raise ValueError(f"accuracy must be in (0, 100], got {self.accuracy}")
        if self.params_millions <= 0 or self.gflops <= 0:
            raise ValueError("params and gflops must be positive")
        if self.memory_gb <= 0:
            raise ValueError(f"memory footprint must be positive, got {self.memory_gb}")
        if self.fixed_latency_ms < 0 or self.compute_latency_ms <= 0:
            raise ValueError("latency components must be positive")
        if not 0.0 < self.saturation <= 1.0:
            raise ValueError(f"saturation must be in (0, 1], got {self.saturation}")
        if not 0.0 < self.power_intensity <= 1.0:
            raise ValueError(
                f"power_intensity must be in (0, 1], got {self.power_intensity}"
            )

    def fits(self, slice_type: SliceType) -> bool:
        """Whether the variant's weights + activations fit the slice's memory.

        This is the paper's OOM rule: the configuration graph disables the
        edge between a variant vertex and a slice vertex when hosting would
        run out of memory.
        """
        return self.memory_gb <= slice_type.memory_gb

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
