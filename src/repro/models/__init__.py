"""Model-zoo substrate: the paper's Table-1 families and their performance.

Provides the mixed-quality model variants Clover optimizes over:

* :mod:`repro.models.variants` — the :class:`ModelVariant` record,
* :mod:`repro.models.families` — YOLOv5 / ALBERT / EfficientNet families,
* :mod:`repro.models.zoo` — the registry with memory-feasibility masks,
* :mod:`repro.models.perf` — analytical latency & power on MIG slices.
"""

from repro.models.variants import ModelVariant
from repro.models.families import (
    ModelFamily,
    YOLOV5,
    ALBERT,
    EFFICIENTNET,
    ALL_FAMILIES,
    APPLICATIONS,
    family_for_application,
)
from repro.models.zoo import ModelZoo, default_zoo
from repro.models.perf import PerfModel, OutOfMemoryError

__all__ = [
    "ModelVariant",
    "ModelFamily",
    "YOLOV5",
    "ALBERT",
    "EFFICIENTNET",
    "ALL_FAMILIES",
    "APPLICATIONS",
    "family_for_application",
    "ModelZoo",
    "default_zoo",
    "PerfModel",
    "OutOfMemoryError",
]
