"""Analytical performance model: latency and power of a variant on a slice.

This module is the substitute for running real kernels on a real MIG A100.
It maps a ``(ModelVariant, SliceType)`` pair to

* **service latency** — a saturation-aware roofline:

  .. math::

      \\tau(v, s) = \\tau_{fixed}(v) + \\tau_{comp}(v) \\cdot
                    \\frac{\\sigma(v)}{\\min(frac(s), \\sigma(v))}

  When the slice offers at least the model's saturation fraction
  :math:`\\sigma(v)` of the GPU, compute time is flat (extra SMs sit idle).
  Below that, latency scales inversely with the slice's compute fraction.
  This reproduces the MIG measurements the paper builds on: small models are
  nearly free to shrink, big models slow several-fold on 1g.

* **dynamic power while busy** — a partially slice-proportional draw:

  .. math::

      P_{dyn}(v, s) = P_{peak} \\cdot \\kappa(v) \\cdot
          \\big(\\alpha \\cdot frac(s) +
                (1-\\alpha) \\cdot \\min(frac(s), \\sigma(v))\\big)

  An :math:`\\alpha` share of a slice's power scales with its size no matter
  how little of it the model uses (clocking, scheduling, uncore); the rest
  follows actual SM occupancy.  This term is why hosting a small model on a
  huge slice wastes energy — the effect behind the paper's Fig. 3 carbon
  savings from partitioning.

All parameters are calibrated, not measured; DESIGN.md documents the
substitution and the bands the calibration is tuned to hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.power import PowerModel
from repro.gpu.slices import SliceType
from repro.models.variants import ModelVariant

__all__ = ["PerfModel", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """Raised when a variant is placed on a slice it cannot fit in.

    The optimizer must never produce such placements (the configuration graph
    disables OOM edges); reaching this exception indicates a bug upstream, so
    it is an error rather than a soft infeasibility signal.
    """


@dataclass(frozen=True)
class PerfModel:
    """Latency/power oracle for variant-on-slice placements.

    Attributes
    ----------
    power:
        Node power model (idle + dynamic + host draw).
    alpha:
        Share of a slice's dynamic power that scales with slice size rather
        than actual use (see module docstring), in [0, 1].
    throughput_scale:
        Device-generation speed multiplier relative to the A100 reference
        calibration: every service latency is divided by it (an H100-class
        profile sets ~1.9, an L4-class ~0.4).  The default of 1.0 is the
        seed A100 model, bit for bit (x / 1.0 == x in IEEE arithmetic).
        Device profiles build scaled models via
        :meth:`repro.gpu.profiles.DeviceProfile.perf`.
    """

    power: PowerModel = field(default_factory=PowerModel)
    alpha: float = 0.3
    throughput_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.throughput_scale <= 0.0:
            raise ValueError(
                f"throughput scale must be positive, got {self.throughput_scale}"
            )

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #

    def latency_ms(self, variant: ModelVariant, slice_type: SliceType) -> float:
        """Mean service latency of one inference, in milliseconds."""
        if not variant.fits(slice_type):
            raise OutOfMemoryError(
                f"{variant.name} needs {variant.memory_gb:g} GB but slice "
                f"{slice_type.name} has {slice_type.memory_gb:g} GB"
            )
        effective = min(slice_type.compute_fraction, variant.saturation)
        return (
            variant.fixed_latency_ms
            + variant.compute_latency_ms * variant.saturation / effective
        ) / self.throughput_scale

    def latency_s(self, variant: ModelVariant, slice_type: SliceType) -> float:
        """Mean service latency in seconds (convenience for the DES)."""
        return self.latency_ms(variant, slice_type) / 1e3

    def slowdown(self, variant: ModelVariant, slice_type: SliceType) -> float:
        """Latency on ``slice_type`` relative to a full (7g) GPU.

        Device-generation speed cancels out of the ratio: the slowdown is
        a property of the slice, identical on every profile.
        """
        full = (
            variant.fixed_latency_ms + variant.compute_latency_ms
        ) / self.throughput_scale
        return self.latency_ms(variant, slice_type) / full

    # ------------------------------------------------------------------ #
    # power
    # ------------------------------------------------------------------ #

    def busy_watts(self, variant: ModelVariant, slice_type: SliceType) -> float:
        """Dynamic power of the slice while it is processing a request."""
        if not variant.fits(slice_type):
            raise OutOfMemoryError(
                f"{variant.name} does not fit on slice {slice_type.name}"
            )
        frac = slice_type.compute_fraction
        effective = (
            self.alpha * frac
            + (1.0 - self.alpha) * min(frac, variant.saturation)
        )
        return self.power.peak_dynamic_watts * variant.power_intensity * effective

    def energy_per_request_j(
        self, variant: ModelVariant, slice_type: SliceType
    ) -> float:
        """Dynamic energy of a single inference (excludes static/idle draw)."""
        return self.busy_watts(variant, slice_type) * self.latency_s(
            variant, slice_type
        )

    # ------------------------------------------------------------------ #
    # throughput
    # ------------------------------------------------------------------ #

    def service_rate(self, variant: ModelVariant, slice_type: SliceType) -> float:
        """Requests per second one instance sustains at 100% utilization."""
        return 1.0 / self.latency_s(variant, slice_type)
