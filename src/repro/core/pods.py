"""Pod-based multi-application hosting (Sec. 4.3 / 5.1 of the paper).

The paper notes that datacenters "may prefer a more practical approach,
such as managing separate pods of servers, where each pod serves a specific
model type", and reports aggregate savings as "the average of the three
models".  :class:`MultiApplicationService` is that deployment style as a
first-class API: one independent Clover controller per application pod, a
shared carbon-intensity feed, and aggregate accounting across pods.

Pods are fully isolated (own GPUs, own workload, own SLA), exactly the
"avoid unpredictable performance and networking interference among
different model types" rationale of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.intensity import CarbonIntensityTrace
from repro.core.controller import RunResult
from repro.core.service import CarbonAwareInferenceService, PAPER_N_GPUS

__all__ = ["PodSpec", "FleetReport", "MultiApplicationService"]


@dataclass(frozen=True)
class PodSpec:
    """One application pod's sizing."""

    application: str
    n_gpus: int = PAPER_N_GPUS
    rate_per_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise ValueError(f"pod needs at least one GPU, got {self.n_gpus}")


@dataclass
class FleetReport:
    """Aggregate of the per-pod run results."""

    per_pod: dict[str, RunResult] = field(default_factory=dict)

    @property
    def applications(self) -> tuple[str, ...]:
        return tuple(self.per_pod)

    @property
    def total_carbon_g(self) -> float:
        return sum(r.total_carbon_g for r in self.per_pod.values())

    @property
    def total_energy_j(self) -> float:
        return sum(r.total_energy_j for r in self.per_pod.values())

    @property
    def total_requests(self) -> float:
        return sum(r.total_requests for r in self.per_pod.values())

    @property
    def total_gpus(self) -> int:
        return sum(r.n_gpus for r in self.per_pod.values())

    @property
    def mean_accuracy_loss_pct(self) -> float:
        """The paper's aggregate: the *average* of the per-model losses
        ("our aggregate savings represent the average of the three
        models"), not a request-weighted pool across different metrics."""
        losses = [r.accuracy_loss_pct for r in self.per_pod.values()]
        return float(np.mean(losses))

    def carbon_saving_pct(self, baseline: "FleetReport") -> float:
        """Fleet-level carbon reduction vs a baseline fleet run."""
        if baseline.total_carbon_g <= 0:
            raise ValueError("baseline fleet accumulated no carbon")
        return (1.0 - self.total_carbon_g / baseline.total_carbon_g) * 100.0

    def mean_carbon_saving_pct(self, baseline: "FleetReport") -> float:
        """The paper's per-model average saving."""
        savings = []
        for app, run in self.per_pod.items():
            base = baseline.per_pod.get(app)
            if base is None:
                raise KeyError(f"baseline fleet has no pod for {app!r}")
            savings.append(1.0 - run.total_carbon_g / base.total_carbon_g)
        return float(np.mean(savings)) * 100.0

    def sla_met_everywhere(self) -> bool:
        """Whether every pod's measured p95 stayed within its own SLA."""
        return all(
            np.isfinite(r.p95_ms) and r.p95_ms <= r.sla_target_ms
            for r in self.per_pod.values()
        )


class MultiApplicationService:
    """A fleet of per-application Clover pods sharing one carbon feed."""

    def __init__(self, pods: dict[str, CarbonAwareInferenceService]) -> None:
        if not pods:
            raise ValueError("a fleet needs at least one pod")
        self.pods = pods

    @classmethod
    def create(
        cls,
        pod_specs: tuple[PodSpec, ...] = (
            PodSpec("detection"),
            PodSpec("language"),
            PodSpec("classification"),
        ),
        scheme: str = "clover",
        trace: CarbonIntensityTrace | None = None,
        fidelity: str = "default",
        seed: int = 0,
        **service_kwargs,
    ) -> "MultiApplicationService":
        """Build one pod per spec (paper default: the three Table-1 apps).

        Each pod gets an independent seed substream so cross-pod randomness
        never couples, but the whole fleet is reproducible from ``seed``.
        """
        if not pod_specs:
            raise ValueError("need at least one pod spec")
        seen = set()
        for spec in pod_specs:
            if spec.application in seen:
                raise ValueError(
                    f"duplicate pod for application {spec.application!r}"
                )
            seen.add(spec.application)
        pods = {}
        for i, spec in enumerate(pod_specs):
            pods[spec.application] = CarbonAwareInferenceService.create(
                application=spec.application,
                scheme=scheme,
                n_gpus=spec.n_gpus,
                rate_per_s=spec.rate_per_s,
                trace=trace,
                fidelity=fidelity,
                seed=seed + 1000 * i,
                **service_kwargs,
            )
        return cls(pods)

    def run(self, duration_h: float | None = None) -> FleetReport:
        """Run every pod over the shared trace window."""
        report = FleetReport()
        for app, service in self.pods.items():
            report.per_pod[app] = service.run(duration_h=duration_h)
        return report
