"""Clover's optimization objective (Eqs. 1-3) and SA energy (Eq. 6).

All deltas are expressed in **percent**, matching the paper's worked example
(Fig. 6): with ``lambda = 0.1``, ``C_base = 1000`` and config A's
``E * ci = 200``, ``DeltaCarbon = 80`` and the objective is
``0.1 * 80 + 0.9 * (-4.0) = 4.4``.

Known paper inconsistency (documented in DESIGN.md): Fig. 6 prints 3.2 for
config B at ``ci = 500``, but Eq. 3 with the stated inputs gives
``0.1 * 40 + 0.9 * (-2.0) = 2.2``.  We reproduce the computed values — the
preference ordering between the example configs is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp

from repro.carbon.accounting import DEFAULT_PUE, carbon_grams
from repro.serving.sla import SlaPolicy

__all__ = ["ObjectiveSpec", "ObjectiveValue"]


@dataclass(frozen=True)
class ObjectiveValue:
    """The scored components of one configuration at one carbon intensity."""

    delta_accuracy_pct: float
    delta_carbon_pct: float
    f: float
    sa_energy: float
    sla_met: bool
    accuracy_ok: bool

    @property
    def deployable(self) -> bool:
        """Whether this configuration may be deployed (hard constraints)."""
        return self.sla_met and self.accuracy_ok


@dataclass(frozen=True)
class ObjectiveSpec:
    """The service provider's objective: Eq. 3 plus the Eq. 5 constraint.

    Attributes
    ----------
    lambda_weight:
        The paper's ``lambda`` in [0, 1]: weight of carbon vs accuracy.
    a_base:
        Baseline accuracy ``A_base`` — the highest-quality variant's metric.
    c_base:
        Baseline carbon per request in gCO2 (BASE energy per request at the
        baseline carbon intensity, including PUE).  Configurable; it only
        rescales ``DeltaCarbon`` and never changes the argmax at fixed ci.
    sla:
        The p95 tail-latency constraint.
    pue:
        Facility multiplier applied when converting energy to carbon.
    accuracy_floor_pct:
        Optional hard cap on accuracy loss in percent (Fig. 14b's
        "allowed accuracy loss" mode): configurations with
        ``DeltaAccuracy < -accuracy_floor_pct`` are not deployable.
    """

    lambda_weight: float
    a_base: float
    c_base: float
    sla: SlaPolicy
    pue: float = DEFAULT_PUE
    accuracy_floor_pct: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.lambda_weight <= 1.0:
            raise ValueError(
                f"lambda must be in [0, 1], got {self.lambda_weight}"
            )
        if self.a_base <= 0:
            raise ValueError(f"A_base must be positive, got {self.a_base}")
        if self.c_base <= 0:
            raise ValueError(f"C_base must be positive, got {self.c_base}")
        if self.accuracy_floor_pct is not None and self.accuracy_floor_pct < 0:
            raise ValueError(
                f"accuracy floor must be non-negative, got {self.accuracy_floor_pct}"
            )

    # ------------------------------------------------------------------ #
    # Eq. 1 and Eq. 2
    # ------------------------------------------------------------------ #

    def delta_accuracy(self, accuracy: float) -> float:
        """Eq. 1: relative accuracy change vs ``A_base``, in percent (<= 0)."""
        return (accuracy - self.a_base) / self.a_base * 100.0

    def carbon_per_request(self, energy_per_request_j: float, ci: float) -> float:
        """``E(x) * ci`` in gCO2 per request (with PUE), the Eq. 2 numerator."""
        return carbon_grams(energy_per_request_j, ci, self.pue)

    def delta_carbon(self, energy_per_request_j: float, ci: float) -> float:
        """Eq. 2: relative carbon reduction vs ``C_base``, in percent."""
        if ci <= 0:
            raise ValueError(f"carbon intensity must be positive, got {ci}")
        c = self.carbon_per_request(energy_per_request_j, ci)
        return (self.c_base - c) / self.c_base * 100.0

    # ------------------------------------------------------------------ #
    # Eq. 3 and Eq. 6
    # ------------------------------------------------------------------ #

    def f(self, accuracy: float, energy_per_request_j: float, ci: float) -> float:
        """Eq. 3: ``lambda * DeltaCarbon + (1 - lambda) * DeltaAccuracy``."""
        return (
            self.lambda_weight * self.delta_carbon(energy_per_request_j, ci)
            + (1.0 - self.lambda_weight) * self.delta_accuracy(accuracy)
        )

    def score(
        self,
        accuracy: float,
        energy_per_request_j: float,
        p95_ms: float,
        ci: float,
    ) -> ObjectiveValue:
        """Full scoring of a configuration: Eqs. 1-3 plus Eq. 6's energy.

        ``sa_energy`` is ``h(x) = -f(x) * min(1, L_tail / L(x))`` — the
        quantity simulated annealing minimizes.  When the optional accuracy
        floor is active, a violating configuration receives an analogous
        smooth multiplicative penalty and is marked non-deployable.
        """
        d_acc = self.delta_accuracy(accuracy)
        d_carbon = self.delta_carbon(energy_per_request_j, ci)
        f = self.lambda_weight * d_carbon + (1.0 - self.lambda_weight) * d_acc

        sla_met = self.sla.is_met(p95_ms)
        penalty = self.sla.sa_penalty(p95_ms)

        accuracy_ok = True
        if self.accuracy_floor_pct is not None and d_acc < -self.accuracy_floor_pct:
            accuracy_ok = False
            floor_accuracy = self.a_base * (1.0 - self.accuracy_floor_pct / 100.0)
            if accuracy > 0:
                penalty *= min(1.0, accuracy / floor_accuracy)

        return ObjectiveValue(
            delta_accuracy_pct=d_acc,
            delta_carbon_pct=d_carbon,
            f=f,
            sa_energy=-f * penalty,
            sla_met=sla_met,
            accuracy_ok=accuracy_ok,
        )

    # ------------------------------------------------------------------ #
    # Eq. 7 (Metropolis acceptance)
    # ------------------------------------------------------------------ #

    @staticmethod
    def acceptance_probability(
        h_current: float, h_candidate: float, temperature: float
    ) -> float:
        """Eq. 7: ``P = exp(-(h' - h) / T)``, clipped to [0, 1]."""
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if h_candidate <= h_current:
            return 1.0
        return exp(-(h_candidate - h_current) / temperature)
