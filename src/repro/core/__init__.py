"""Clover's core: the paper's contribution (Sec. 4).

* :mod:`repro.core.config` — the ``(x_p, x_v)`` optimization variables,
* :mod:`repro.core.graph` — the configuration graph and GED (Sec. 4.2),
* :mod:`repro.core.feasibility` — graph ↔ concrete deployment bridging,
* :mod:`repro.core.objective` — Eqs. 1-3 and the SA energy (Eq. 6),
* :mod:`repro.core.evaluator` — config → (accuracy, energy, p95), cached,
* :mod:`repro.core.moves` — GED ≤ 4 neighbourhood sampling,
* :mod:`repro.core.annealing` — simulated annealing and random search,
* :mod:`repro.core.schemes` — BASE / CO2OPT / BLOVER / CLOVER / ORACLE,
* :mod:`repro.core.controller` — the monitor → optimize → deploy loop,
* :mod:`repro.core.service` — the public facade.
"""

from repro.core.config import (
    ClusterConfig,
    GpuAssignment,
    uniform_config,
    base_config,
    co2opt_config,
)
from repro.core.graph import ConfigGraph, graph_edit_distance
from repro.core.feasibility import graph_is_feasible, realize_graph
from repro.core.objective import ObjectiveSpec, ObjectiveValue
from repro.core.evaluator import ConfigEvaluator, Evaluation
from repro.core.moves import MoveGenerator, partition_neighbors, GED_THRESHOLD
from repro.core.annealing import (
    SAParams,
    OptimizationCostModel,
    EvaluatedCandidate,
    OptimizationResult,
    simulated_annealing,
    random_search,
)
from repro.core.schemes import (
    Scheme,
    BaseScheme,
    Co2OptScheme,
    BloverScheme,
    CloverScheme,
    OracleScheme,
    make_scheme,
    SCHEME_NAMES,
    InvocationOutcome,
    enumerate_standardized_configs,
)
from repro.core.controller import (
    ServiceController,
    RunResult,
    EpochRecord,
    InvocationRecord,
    CandidateRecord,
)
from repro.core.pods import MultiApplicationService, PodSpec, FleetReport
from repro.core.service import (
    CarbonAwareInferenceService,
    FidelityProfile,
    Baseline,
    derive_baseline,
    PAPER_N_GPUS,
    PAPER_LAMBDA,
)

__all__ = [
    "ClusterConfig",
    "GpuAssignment",
    "uniform_config",
    "base_config",
    "co2opt_config",
    "ConfigGraph",
    "graph_edit_distance",
    "graph_is_feasible",
    "realize_graph",
    "ObjectiveSpec",
    "ObjectiveValue",
    "ConfigEvaluator",
    "Evaluation",
    "MoveGenerator",
    "partition_neighbors",
    "GED_THRESHOLD",
    "SAParams",
    "OptimizationCostModel",
    "EvaluatedCandidate",
    "OptimizationResult",
    "simulated_annealing",
    "random_search",
    "Scheme",
    "BaseScheme",
    "Co2OptScheme",
    "BloverScheme",
    "CloverScheme",
    "OracleScheme",
    "make_scheme",
    "SCHEME_NAMES",
    "InvocationOutcome",
    "enumerate_standardized_configs",
    "ServiceController",
    "RunResult",
    "EpochRecord",
    "InvocationRecord",
    "CandidateRecord",
    "MultiApplicationService",
    "PodSpec",
    "FleetReport",
    "CarbonAwareInferenceService",
    "FidelityProfile",
    "Baseline",
    "derive_baseline",
    "PAPER_N_GPUS",
    "PAPER_LAMBDA",
]
