"""Configuration evaluation: ``(x_p, x_v)`` → accuracy, energy, tail latency.

The evaluator is the bridge between a candidate configuration and the three
quantities Clover's objective consumes:

* **accuracy** ``A(x)`` — the request-share-weighted average of the hosted
  variants' accuracies (requests served by a bigger variant count with that
  variant's accuracy),
* **energy per request** ``E(x)`` — cluster average power (static per GPU +
  per-slice dynamic x utilization) divided by throughput,
* **p95 latency** ``L(x)`` — from the analytical queueing estimator
  (optimizer inner loop) or the discrete-event simulator (measurement).

Evaluations depend only on the configuration *graph* (the multiset of
variant-on-slice-type placements plus the GPU count) and the arrival rate —
physical placement is irrelevant under MIG isolation, exactly the paper's
compaction argument — so results are cached by ``(graph key, rate)``.  The
cache is what makes ORACLE's exhaustive profiling and repeated SA
invocations affordable, and the hit/miss counters (:attr:`cache_stats`)
quantify how much work it saves.

The arrival rate is fixed at construction, but every evaluation accepts a
``rate_per_s`` override so a fleet router can probe a deployed
configuration at candidate rates (SLA-feasibility bisection) without
rebuilding the evaluator or losing the shared cache.

Elastic capacity (GPU power-gating) enters here through
:attr:`ConfigEvaluator.awake_gpus`: when set below ``n_gpus``, every
evaluation is capped to the awake subset — the configuration is trimmed to
its first ``awake_gpus`` canonical per-GPU assignments (sleeping GPUs keep
their partition but serve nothing) and static power is charged for awake
GPUs only.  Sleeping GPUs' reduced draw and wake transitions are charged by
the fleet coordinator, not here.  With ``awake_gpus`` unset (or equal to
``n_gpus``) the code path, cache keys and results are bit-for-bit identical
to the always-on evaluator.

Device heterogeneity enters through :attr:`ConfigEvaluator.device_pool`: a
:class:`~repro.gpu.profiles.DevicePool` prices every evaluation on that
pool's silicon.  Placement then matters — a slice on an H100 is faster and
draws different power than the same slice on an L4 — which would break the
paper's placement-free compaction argument, so the pool path pins placement
deterministically: the graph is materialized through
:func:`~repro.core.feasibility.realize_graph` and its ``i``-th canonical
assignment runs on the pool's ``i``-th device (pools are canonically
ordered most-efficient-first, so coarse partitions land on efficient
silicon).  Evaluations are therefore still a pure function of
``(graph, rate, awake, pool)`` and stay cacheable; the cache key includes
the pool's device names so identical graphs on different silicon can never
share an entry.  An all-A100 pool is normalized away at construction — its
code path, cache keys and results are bit-for-bit the seed evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.feasibility import realize_graph
from repro.core.graph import ConfigGraph
from repro.gpu.profiles import DevicePool
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo
from repro.serving.analytic import estimate_fifo
from repro.serving.des import simulate_fifo
from repro.serving.instance import DEFAULT_JITTER_CV
from repro.serving.metrics import summarize
from repro.serving.workload import PoissonWorkload
from repro.utils.rng import RngMixer

__all__ = ["Evaluation", "CacheStats", "ConfigEvaluator"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one evaluator's configuration cache."""

    hits: int
    misses: int
    size: int

    @property
    def evaluations(self) -> int:
        """Total evaluation requests answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0 when never queried)."""
        return self.hits / self.evaluations if self.evaluations else 0.0


@dataclass(frozen=True)
class Evaluation:
    """Carbon-intensity-independent measurements of one configuration.

    ``accuracy`` in the family's metric units, ``energy_per_request_j`` in
    joules of IT energy (PUE applied later, in the objective), ``p95_ms``
    end-to-end.  ``overloaded`` flags arrival rates beyond capacity — p95 is
    infinite and the SLA can never be met.
    """

    accuracy: float
    energy_per_request_j: float
    p95_ms: float
    power_watts: float
    utilization: float
    overloaded: bool
    num_instances: int

    @property
    def feasible_latency(self) -> bool:
        return not self.overloaded and np.isfinite(self.p95_ms)


@dataclass
class ConfigEvaluator:
    """Evaluates configurations of one family at one arrival rate.

    Parameters
    ----------
    zoo, perf:
        Model zoo and performance model (the simulated testbed).
    family:
        Model family name being served.
    rate_per_s:
        Poisson arrival rate of user queries.
    n_gpus:
        Cluster size; static power scales with it.
    method:
        ``"analytic"`` (closed-form; the optimizer's inner loop) or
        ``"des"`` (discrete-event simulation; measurement-grade).
    des_requests:
        Sample size per DES evaluation.
    jitter_cv:
        Service-time jitter for the DES.
    seed:
        Root seed for DES arrival/jitter streams; each distinct
        configuration graph gets its own deterministic substream.
    awake_gpus:
        When set below ``n_gpus``, evaluations are capped to the awake
        GPU subset (see the module docstring); ``None`` means fully awake.
    device_pool:
        The cluster's device generations (see the module docstring).
        ``None`` — or an all-A100 pool, which is normalized to ``None`` —
        is the seed single-device path, bit for bit.
    """

    zoo: ModelZoo
    perf: PerfModel
    family: str
    rate_per_s: float
    n_gpus: int
    method: str = "analytic"
    des_requests: int = 4000
    jitter_cv: float = DEFAULT_JITTER_CV
    seed: int = 0
    awake_gpus: int | None = None
    device_pool: DevicePool | None = None
    _cache: dict[tuple, Evaluation] = field(default_factory=dict, repr=False)
    _hits: int = field(default=0, init=False, repr=False)
    _misses: int = field(default=0, init=False, repr=False)
    _num_variants: int = field(init=False, repr=False)
    _device_perfs: tuple[PerfModel, ...] | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.method not in ("analytic", "des"):
            raise ValueError(
                f"method must be 'analytic' or 'des', got {self.method!r}"
            )
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_s}")
        if self.n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {self.n_gpus}")
        if self.des_requests <= 0:
            raise ValueError(
                f"des_requests must be positive, got {self.des_requests}"
            )
        if self.awake_gpus is not None:
            self.set_awake_gpus(self.awake_gpus)  # validates the range
        if self.device_pool is not None:
            if self.device_pool.n_gpus != self.n_gpus:
                raise ValueError(
                    f"device pool has {self.device_pool.n_gpus} GPUs, "
                    f"evaluator sized for {self.n_gpus}"
                )
            if self.device_pool.is_default_a100:
                # The implicit seed fleet: drop to the single-device path
                # so cache keys and arithmetic stay bit-for-bit identical.
                self.device_pool = None
            else:
                self._device_perfs = tuple(
                    p.perf(self.perf) for p in self.device_pool.profiles
                )
        self._num_variants = self.zoo.family(self.family).num_variants

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def evaluate(
        self, config: ClusterConfig, rate_per_s: float | None = None
    ) -> Evaluation:
        """Evaluate a configuration (cached by configuration graph and rate).

        ``rate_per_s`` overrides the construction-time arrival rate for this
        evaluation only (used by fleet routing to probe a deployed
        configuration at candidate rates).
        """
        if config.family != self.family:
            raise ValueError(
                f"evaluator serves {self.family!r}, got a {config.family!r} config"
            )
        if config.n_gpus != self.n_gpus:
            raise ValueError(
                f"evaluator sized for {self.n_gpus} GPUs, got {config.n_gpus}"
            )
        awake = self._effective_awake()
        if awake is not None:
            config = self._trim_to_awake(config, awake)
        graph = ConfigGraph.from_config(config, self._num_variants)
        return self._cached_evaluate(graph, self._resolve_rate(rate_per_s), awake)

    def evaluate_graph(
        self, graph: ConfigGraph, rate_per_s: float | None = None
    ) -> Evaluation:
        """Evaluate directly from a configuration graph (cached)."""
        if graph.family != self.family:
            raise ValueError(
                f"evaluator serves {self.family!r}, got a {graph.family!r} graph"
            )
        if self._effective_awake() is not None:
            raise ValueError(
                "graph-level evaluation does not support a partially-awake "
                "cluster (a bare graph has no per-GPU structure to trim); "
                "evaluate the concrete ClusterConfig instead"
            )
        return self._cached_evaluate(graph, self._resolve_rate(rate_per_s), None)

    @property
    def pool_key(self) -> tuple[str, ...] | None:
        """The device-pool component of this evaluator's cache keys.

        ``None`` on the single-device (implicit A100) path — those keys
        must stay byte-identical to the seed evaluator's.  Pool-aware
        keys append the canonical device-name tuple, so the same graph at
        the same rate on different silicon can never share a cache entry.
        """
        return None if self.device_pool is None else self.device_pool.names

    def set_awake_gpus(self, awake_gpus: int | None) -> None:
        """Cap subsequent evaluations to ``awake_gpus`` GPUs.

        ``None`` (or the full cluster size) restores the always-on path,
        whose cache keys and results are untouched by gating.
        """
        if awake_gpus is not None and not 1 <= awake_gpus <= self.n_gpus:
            raise ValueError(
                f"awake GPUs must be in [1, {self.n_gpus}], got {awake_gpus}"
            )
        self.awake_gpus = awake_gpus

    def _effective_awake(self) -> int | None:
        """The awake count, normalized so fully-awake means ``None``."""
        if self.awake_gpus is None or self.awake_gpus >= self.n_gpus:
            return None
        return self.awake_gpus

    @staticmethod
    def _trim_to_awake(config: ClusterConfig, awake: int) -> ClusterConfig:
        """The awake sub-cluster: the first ``awake`` canonical assignments.

        Canonical order sorts GPUs by (partition id, variant ordinals), so
        sleeping always gates the canonically-last GPUs — the finest
        partitions with the smallest variants, the cheapest capacity to
        take offline.  The rule is deterministic, which keeps DES
        substreams and cache keys reproducible.
        """
        canon = config.canonical()
        return ClusterConfig(
            family=canon.family, assignments=canon.assignments[:awake]
        )

    def adopt_cache(self, cache: dict) -> None:
        """Share ``cache`` (another evaluator's store) as this one's.

        The fleet layer pools analytic evaluators of regions with an
        identical family, cluster size and device pool behind one
        dictionary: evaluations are pure functions of the full cache key
        (graph, rate, awake, pool), so sharing changes no result — only
        how often each region recomputes one.  Hit/miss counters stay
        per-evaluator, so per-region cache stats remain meaningful.  DES
        evaluators must never share (their samples are seed-dependent);
        :func:`repro.fleet.coordinator.share_evaluator_caches` enforces
        that, this method just swaps the store.
        """
        existing = self._cache
        self._cache = cache
        # Entries computed before adoption stay usable by the group.
        for key, value in existing.items():
            cache.setdefault(key, value)

    @property
    def cache_store(self) -> dict:
        """The underlying cache dictionary (for cross-region pooling)."""
        return self._cache

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def cache_hits(self) -> int:
        return self._hits

    @property
    def cache_misses(self) -> int:
        return self._misses

    @property
    def cache_stats(self) -> CacheStats:
        """Counters snapshot: how much evaluation work the cache saved."""
        return CacheStats(hits=self._hits, misses=self._misses, size=len(self._cache))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _resolve_rate(self, rate_per_s: float | None) -> float:
        if rate_per_s is None:
            return self.rate_per_s
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        return rate_per_s

    def _cached_evaluate(
        self, graph: ConfigGraph, rate: float, awake: int | None
    ) -> Evaluation:
        # Fully-awake evaluations keep the seed's 2-tuple key; gated ones
        # append the awake count, because a trimmed graph can collide with
        # a full configuration of the same multiset while owing a
        # different static draw.  Pool-aware evaluations additionally
        # append the device names: identical graphs at identical rates on
        # different silicon are different measurements.
        key = (graph.key(), rate) if awake is None else (graph.key(), rate, awake)
        if self.device_pool is not None:
            key = key + (self.device_pool.names,)
        hit = self._cache.get(key)
        if hit is not None:
            self._hits += 1
            return hit
        self._misses += 1
        result = self._evaluate_graph(graph, rate, awake)
        self._cache[key] = result
        return result

    def _instance_arrays(
        self, graph: ConfigGraph
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten a graph to per-instance (service_s, busy_watts, accuracy)."""
        fam = self.zoo.family(self.family)
        from repro.gpu.slices import SLICE_TYPES

        service, watts, acc = [], [], []
        for v_idx, s_idx in zip(*np.nonzero(graph.weights)):
            variant = fam.variant(int(v_idx) + 1)
            slice_type = SLICE_TYPES[int(s_idx)]
            count = int(graph.weights[v_idx, s_idx])
            service.extend([self.perf.latency_s(variant, slice_type)] * count)
            watts.extend([self.perf.busy_watts(variant, slice_type)] * count)
            acc.extend([variant.accuracy] * count)
        if not service:
            raise ValueError("configuration hosts no instances")
        return (
            np.asarray(service, dtype=np.float64),
            np.asarray(watts, dtype=np.float64),
            np.asarray(acc, dtype=np.float64),
        )

    def _pool_instance_arrays(
        self, graph: ConfigGraph, n_powered: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-instance arrays priced on the device pool's silicon.

        The graph is materialized deterministically (``realize_graph``)
        and its ``i``-th canonical assignment is priced on the pool's
        ``i``-th device — canonical order sorts coarse partitions first
        and pools sort efficient silicon first, so full-GPU slices land
        on the best devices and sleeping (which trims the canonical tail)
        always gates the least-efficient silicon.
        """
        fam = self.zoo.family(self.family)
        config = realize_graph(
            graph, n_powered,
            max_partition_id=self.device_pool.partition_granularity,
        )
        service, watts, acc = [], [], []
        for perf, assignment in zip(self._device_perfs, config.assignments):
            for slice_type, ordinal in assignment.instances():
                variant = fam.variant(ordinal)
                service.append(perf.latency_s(variant, slice_type))
                watts.append(perf.busy_watts(variant, slice_type))
                acc.append(variant.accuracy)
        if not service:
            raise ValueError("configuration hosts no instances")
        return (
            np.asarray(service, dtype=np.float64),
            np.asarray(watts, dtype=np.float64),
            np.asarray(acc, dtype=np.float64),
        )

    def _evaluate_graph(
        self, graph: ConfigGraph, rate: float, awake: int | None = None
    ) -> Evaluation:
        n_powered = self.n_gpus if awake is None else awake
        if self.device_pool is None:
            service, watts, acc = self._instance_arrays(graph)
            static_watts = self.perf.power.static_watts_per_gpu() * n_powered
        else:
            service, watts, acc = self._pool_instance_arrays(graph, n_powered)
            static_watts = float(
                sum(
                    p.power.static_watts_per_gpu()
                    for p in self.device_pool.profiles[:n_powered]
                )
            )

        if self.method == "analytic":
            return self._evaluate_analytic(service, watts, acc, static_watts, rate)
        return self._evaluate_des(graph, service, watts, acc, static_watts, rate)

    def _evaluate_analytic(
        self,
        service: np.ndarray,
        watts: np.ndarray,
        acc: np.ndarray,
        static_watts: float,
        rate: float,
    ) -> Evaluation:
        est = estimate_fifo(service, rate, self.jitter_cv)
        if est.overloaded:
            # Saturated: every instance busy; throughput capped at capacity.
            capacity = float((1.0 / service).sum())
            power = static_watts + float(watts.sum())
            mu = 1.0 / service
            shares = mu / mu.sum()
            return Evaluation(
                accuracy=float(np.dot(shares, acc)),
                energy_per_request_j=power / capacity,
                p95_ms=float("inf"),
                power_watts=power,
                utilization=est.utilization,
                overloaded=True,
                num_instances=int(service.size),
            )
        per_instance_rate = rate * est.shares
        inst_util = np.clip(per_instance_rate * service, 0.0, 1.0)
        power = static_watts + float(np.dot(inst_util, watts))
        return Evaluation(
            accuracy=float(np.dot(est.shares, acc)),
            energy_per_request_j=power / rate,
            p95_ms=est.p95_ms(),
            power_watts=power,
            utilization=est.utilization,
            overloaded=False,
            num_instances=int(service.size),
        )

    def _evaluate_des(
        self,
        graph: ConfigGraph,
        service: np.ndarray,
        watts: np.ndarray,
        acc: np.ndarray,
        static_watts: float,
        rate: float,
    ) -> Evaluation:
        # Deterministic per-graph substream: the same configuration always
        # sees the same arrivals, so cache hits and misses agree exactly
        # (stable_hash keeps this reproducible across processes).  The rate
        # scales the exponential gaps but not the underlying stream, so a
        # rate override preserves the paper's common-random-numbers setup.
        from repro.utils.rng import stable_hash

        mixer = RngMixer(seed=self.seed)
        rng = mixer.fork("des-eval", stable_hash(graph.key()))

        workload = PoissonWorkload(rate)
        arrivals = workload.arrivals_fixed_count(self.des_requests, rng)
        batch = simulate_fifo(arrivals, service, self.jitter_cv, rng)
        metrics = summarize(batch, n_instances=service.size)

        # Overload diagnosis: the queue grows without bound iff capacity is
        # below the arrival rate; finite simulations always "finish".
        capacity = float((1.0 / service).sum())
        overloaded = rate >= capacity

        power = static_watts + float(np.dot(metrics.utilization, watts))
        throughput = min(metrics.throughput_rps, rate)
        return Evaluation(
            accuracy=float(np.dot(metrics.shares, acc)),
            energy_per_request_j=power / throughput,
            p95_ms=float("inf") if overloaded else metrics.latency.p95_ms,
            power_watts=power,
            utilization=float(metrics.mean_utilization),
            overloaded=overloaded,
            num_instances=int(service.size),
        )
