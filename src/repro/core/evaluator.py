"""Configuration evaluation: ``(x_p, x_v)`` → accuracy, energy, tail latency.

The evaluator is the bridge between a candidate configuration and the three
quantities Clover's objective consumes:

* **accuracy** ``A(x)`` — the request-share-weighted average of the hosted
  variants' accuracies (requests served by a bigger variant count with that
  variant's accuracy),
* **energy per request** ``E(x)`` — cluster average power (static per GPU +
  per-slice dynamic x utilization) divided by throughput,
* **p95 latency** ``L(x)`` — from the analytical queueing estimator
  (optimizer inner loop) or the discrete-event simulator (measurement).

Evaluations depend only on the configuration *graph* (the multiset of
variant-on-slice-type placements plus the GPU count) and the arrival rate —
physical placement is irrelevant under MIG isolation, exactly the paper's
compaction argument — so results are cached by ``(graph key, rate)``.  The
cache is what makes ORACLE's exhaustive profiling and repeated SA
invocations affordable, and the hit/miss counters (:attr:`cache_stats`)
quantify how much work it saves.

The arrival rate is fixed at construction, but every evaluation accepts a
``rate_per_s`` override so a fleet router can probe a deployed
configuration at candidate rates (SLA-feasibility bisection) without
rebuilding the evaluator or losing the shared cache.

Elastic capacity (GPU power-gating) enters here through
:attr:`ConfigEvaluator.awake_gpus`: when set below ``n_gpus``, every
evaluation is capped to the awake subset — the configuration is trimmed to
its first ``awake_gpus`` canonical per-GPU assignments (sleeping GPUs keep
their partition but serve nothing) and static power is charged for awake
GPUs only.  Sleeping GPUs' reduced draw and wake transitions are charged by
the fleet coordinator, not here.  With ``awake_gpus`` unset (or equal to
``n_gpus``) the code path, cache keys and results are bit-for-bit identical
to the always-on evaluator.

Device heterogeneity enters through :attr:`ConfigEvaluator.device_pool`: a
:class:`~repro.gpu.profiles.DevicePool` prices every evaluation on that
pool's silicon.  Placement then matters — a slice on an H100 is faster and
draws different power than the same slice on an L4 — which would break the
paper's placement-free compaction argument, so the pool path pins placement
deterministically: the graph is materialized through
:func:`~repro.core.feasibility.realize_graph` and its ``i``-th canonical
assignment runs on the pool's ``i``-th device (pools are canonically
ordered most-efficient-first, so coarse partitions land on efficient
silicon).  Evaluations are therefore still a pure function of
``(graph, rate, awake, pool)`` and stay cacheable; the cache key includes
the pool's device names so identical graphs on different silicon can never
share an entry.  An all-A100 pool is normalized away at construction — its
code path, cache keys and results are bit-for-bit the seed evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.feasibility import realize_graph
from repro.core.graph import ConfigGraph
from repro.gpu.profiles import DevicePool
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo
from repro.serving.analytic import BatchQueueEstimate, estimate_fifo, estimate_fifo_batch
from repro.serving.des import simulate_fifo
from repro.serving.instance import DEFAULT_JITTER_CV
from repro.serving.metrics import summarize
from repro.serving.workload import PoissonWorkload
from repro.utils.rng import RngMixer

__all__ = ["Evaluation", "CacheStats", "ConfigEvaluator"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one evaluator's configuration cache.

    ``batched`` counts the evaluations *computed* through the vectorized
    batch paths (:meth:`ConfigEvaluator.evaluate_batch` /
    :meth:`~ConfigEvaluator.evaluate_rates`) — a subset of ``misses``, so
    it surfaces how much of the cache-filling work ran at array speed
    rather than one scalar estimate at a time.
    """

    hits: int
    misses: int
    size: int
    batched: int = 0

    @property
    def evaluations(self) -> int:
        """Total evaluation requests answered (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0 when never queried)."""
        return self.hits / self.evaluations if self.evaluations else 0.0

    @property
    def batch_rate(self) -> float:
        """Fraction of cache-filling work done at array speed (0 when
        nothing missed)."""
        return self.batched / self.misses if self.misses else 0.0


@dataclass(frozen=True)
class Evaluation:
    """Carbon-intensity-independent measurements of one configuration.

    ``accuracy`` in the family's metric units, ``energy_per_request_j`` in
    joules of IT energy (PUE applied later, in the objective), ``p95_ms``
    end-to-end.  ``overloaded`` flags arrival rates beyond capacity — p95 is
    infinite and the SLA can never be met.
    """

    accuracy: float
    energy_per_request_j: float
    p95_ms: float
    power_watts: float
    utilization: float
    overloaded: bool
    num_instances: int

    @property
    def feasible_latency(self) -> bool:
        return not self.overloaded and np.isfinite(self.p95_ms)


@dataclass
class ConfigEvaluator:
    """Evaluates configurations of one family at one arrival rate.

    Parameters
    ----------
    zoo, perf:
        Model zoo and performance model (the simulated testbed).
    family:
        Model family name being served.
    rate_per_s:
        Poisson arrival rate of user queries.
    n_gpus:
        Cluster size; static power scales with it.
    method:
        ``"analytic"`` (closed-form; the optimizer's inner loop) or
        ``"des"`` (discrete-event simulation; measurement-grade).
    des_requests:
        Sample size per DES evaluation.
    jitter_cv:
        Service-time jitter for the DES.
    seed:
        Root seed for DES arrival/jitter streams; each distinct
        configuration graph gets its own deterministic substream.
    awake_gpus:
        When set below ``n_gpus``, evaluations are capped to the awake
        GPU subset (see the module docstring); ``None`` means fully awake.
    device_pool:
        The cluster's device generations (see the module docstring).
        ``None`` — or an all-A100 pool, which is normalized to ``None`` —
        is the seed single-device path, bit for bit.
    """

    zoo: ModelZoo
    perf: PerfModel
    family: str
    rate_per_s: float
    n_gpus: int
    method: str = "analytic"
    des_requests: int = 4000
    jitter_cv: float = DEFAULT_JITTER_CV
    seed: int = 0
    awake_gpus: int | None = None
    device_pool: DevicePool | None = None
    _cache: dict[tuple, Evaluation] = field(default_factory=dict, repr=False)
    _hits: int = field(default=0, init=False, repr=False)
    _misses: int = field(default=0, init=False, repr=False)
    _batched: int = field(default=0, init=False, repr=False)
    _num_variants: int = field(init=False, repr=False)
    _device_perfs: tuple[PerfModel, ...] | None = field(
        default=None, init=False, repr=False
    )
    # Lazily-built (variant x slice-type) lookup tables; cells are filled
    # on first use because some combinations are infeasible (OOM) and must
    # only be priced when a graph actually hosts them.
    _svc_table: np.ndarray | None = field(default=None, init=False, repr=False)
    _watts_table: np.ndarray | None = field(default=None, init=False, repr=False)
    _acc_vec: np.ndarray | None = field(default=None, init=False, repr=False)
    _filled: np.ndarray | None = field(default=None, init=False, repr=False)
    # Per-graph instance arrays, keyed by graph key: bisections probe the
    # same deployed graph at dozens of rates, and the flattening is pure.
    _arrays_cache: dict[bytes, tuple] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.method not in ("analytic", "des"):
            raise ValueError(
                f"method must be 'analytic' or 'des', got {self.method!r}"
            )
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_s}")
        if self.n_gpus <= 0:
            raise ValueError(f"n_gpus must be positive, got {self.n_gpus}")
        if self.des_requests <= 0:
            raise ValueError(
                f"des_requests must be positive, got {self.des_requests}"
            )
        if self.awake_gpus is not None:
            self.set_awake_gpus(self.awake_gpus)  # validates the range
        if self.device_pool is not None:
            if self.device_pool.n_gpus != self.n_gpus:
                raise ValueError(
                    f"device pool has {self.device_pool.n_gpus} GPUs, "
                    f"evaluator sized for {self.n_gpus}"
                )
            if self.device_pool.is_default_a100:
                # The implicit seed fleet: drop to the single-device path
                # so cache keys and arithmetic stay bit-for-bit identical.
                self.device_pool = None
            else:
                self._device_perfs = tuple(
                    p.perf(self.perf) for p in self.device_pool.profiles
                )
        self._num_variants = self.zoo.family(self.family).num_variants

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def evaluate(
        self, config: ClusterConfig, rate_per_s: float | None = None
    ) -> Evaluation:
        """Evaluate a configuration (cached by configuration graph and rate).

        ``rate_per_s`` overrides the construction-time arrival rate for this
        evaluation only (used by fleet routing to probe a deployed
        configuration at candidate rates).
        """
        if config.family != self.family:
            raise ValueError(
                f"evaluator serves {self.family!r}, got a {config.family!r} config"
            )
        if config.n_gpus != self.n_gpus:
            raise ValueError(
                f"evaluator sized for {self.n_gpus} GPUs, got {config.n_gpus}"
            )
        awake = self._effective_awake()
        if awake is not None:
            config = self._trim_to_awake(config, awake)
        graph = ConfigGraph.from_config(config, self._num_variants)
        return self._cached_evaluate(graph, self._resolve_rate(rate_per_s), awake)

    def evaluate_graph(
        self, graph: ConfigGraph, rate_per_s: float | None = None
    ) -> Evaluation:
        """Evaluate directly from a configuration graph (cached)."""
        if graph.family != self.family:
            raise ValueError(
                f"evaluator serves {self.family!r}, got a {graph.family!r} graph"
            )
        if self._effective_awake() is not None:
            raise ValueError(
                "graph-level evaluation does not support a partially-awake "
                "cluster (a bare graph has no per-GPU structure to trim); "
                "evaluate the concrete ClusterConfig instead"
            )
        return self._cached_evaluate(graph, self._resolve_rate(rate_per_s), None)

    def evaluate_batch(
        self, configs, rate_per_s: float | None = None
    ) -> list[Evaluation]:
        """Evaluate a whole candidate set at one rate in one vectorized pass.

        Cache-compatible with :meth:`evaluate`: every configuration is
        keyed and looked up exactly as the scalar path keys it (hits and
        misses counted identically, duplicates within the batch counting
        as hits after their first occurrence), and the misses are computed
        through :func:`~repro.serving.analytic.estimate_fifo_batch` in
        groups of equal instance count — results land in the shared cache
        and agree with the scalar estimator to ~1e-12 relative.  DES
        evaluators fall back to the scalar loop (their samples are
        per-graph streams with nothing to batch).
        """
        configs = list(configs)
        rate = self._resolve_rate(rate_per_s)
        if self.method != "analytic":
            return [self.evaluate(c, rate) for c in configs]
        awake = self._effective_awake()
        n_powered = self.n_gpus if awake is None else awake
        results: list[Evaluation | None] = [None] * len(configs)
        pending: dict[tuple, list[int]] = {}
        graphs: dict[tuple, ConfigGraph] = {}
        for i, config in enumerate(configs):
            if config.family != self.family:
                raise ValueError(
                    f"evaluator serves {self.family!r}, got a "
                    f"{config.family!r} config"
                )
            if config.n_gpus != self.n_gpus:
                raise ValueError(
                    f"evaluator sized for {self.n_gpus} GPUs, "
                    f"got {config.n_gpus}"
                )
            trimmed = (
                self._trim_to_awake(config, awake) if awake is not None else config
            )
            graph = ConfigGraph.from_config(trimmed, self._num_variants)
            key = self._cache_key(graph, rate, awake)
            hit = self._cache.get(key)
            if hit is not None:
                self._hits += 1
                results[i] = hit
            elif key in pending:
                # A duplicate inside the batch: the first occurrence is
                # the miss that computes it, exactly as a scalar loop
                # would have counted.
                self._hits += 1
                pending[key].append(i)
            else:
                self._misses += 1
                pending[key] = [i]
                graphs[key] = graph
        self._compute_pending(graphs, pending, results, rate, n_powered)
        return results

    def evaluate_rates(self, config: ClusterConfig, rates_per_s) -> list[Evaluation]:
        """Evaluate one configuration over a grid of rates in one pass.

        The fleet router's SLA bisections probe a deployed configuration
        at many candidate rates; this batches the uncached probes through
        the vectorized estimator while keeping the cache keys — and the
        hit/miss accounting — exactly what per-rate :meth:`evaluate`
        calls would have produced.
        """
        rates = [self._resolve_rate(float(r)) for r in rates_per_s]
        if self.method != "analytic":
            return [self.evaluate(config, r) for r in rates]
        if config.family != self.family:
            raise ValueError(
                f"evaluator serves {self.family!r}, got a "
                f"{config.family!r} config"
            )
        if config.n_gpus != self.n_gpus:
            raise ValueError(
                f"evaluator sized for {self.n_gpus} GPUs, got {config.n_gpus}"
            )
        awake = self._effective_awake()
        n_powered = self.n_gpus if awake is None else awake
        trimmed = (
            self._trim_to_awake(config, awake) if awake is not None else config
        )
        graph = ConfigGraph.from_config(trimmed, self._num_variants)
        results: list[Evaluation | None] = [None] * len(rates)
        pending: dict[tuple, list[int]] = {}
        miss_rates: list[float] = []
        for i, r in enumerate(rates):
            key = self._cache_key(graph, r, awake)
            hit = self._cache.get(key)
            if hit is not None:
                self._hits += 1
                results[i] = hit
            elif key in pending:
                self._hits += 1
                pending[key].append(i)
            else:
                self._misses += 1
                pending[key] = [i]
                miss_rates.append(r)
        if pending:
            service, watts, acc, static_watts = self._graph_arrays(
                graph, n_powered
            )
            evals = self._batch_analytic(
                service, watts, acc, static_watts, np.asarray(miss_rates)
            )
            self._batched += len(evals)
            for key, ev in zip(pending, evals):
                self._cache[key] = ev
                for i in pending[key]:
                    results[i] = ev
        return results

    def _compute_pending(
        self,
        graphs: dict[tuple, ConfigGraph],
        pending: dict[tuple, list[int]],
        results: list[Evaluation | None],
        rate: float,
        n_powered: int,
    ) -> None:
        """Batch-compute cache misses as one zero-padded group.

        Ragged candidate sets are right-padded to the widest row and
        masked, so every miss shares a single lockstep p95 bisection —
        the per-iteration cost amortizes over the whole batch instead of
        one group per distinct instance count.
        """
        if not pending:  # every configuration was a cache hit
            return
        entries = []
        for key, graph in graphs.items():
            service, watts, acc, static_watts = self._graph_arrays(
                graph, n_powered
            )
            entries.append((key, service, watts, acc, static_watts))
        sizes = np.array([e[1].size for e in entries], dtype=np.intp)
        m_max = int(sizes.max())
        g = len(entries)
        service = np.zeros((g, m_max))
        watts = np.zeros((g, m_max))
        acc = np.zeros((g, m_max))
        valid = np.zeros((g, m_max), dtype=bool)
        static = np.empty(g)
        for i, (_, s, w, a, sw) in enumerate(entries):
            k = s.size
            service[i, :k] = s
            watts[i, :k] = w
            acc[i, :k] = a
            valid[i, :k] = True
            static[i] = sw
        # Equal-width batches skip the mask entirely, keeping the
        # arithmetic order identical to the unpadded formulas.
        mask = None if bool(np.all(sizes == m_max)) else valid
        evals = self._batch_analytic(
            service,
            watts,
            acc,
            static,
            np.full(g, rate),
            valid=mask,
            counts=sizes,
        )
        self._batched += len(evals)
        for (key, *_), ev in zip(entries, evals):
            self._cache[key] = ev
            for i in pending[key]:
                results[i] = ev

    @property
    def pool_key(self) -> tuple[str, ...] | None:
        """The device-pool component of this evaluator's cache keys.

        ``None`` on the single-device (implicit A100) path — those keys
        must stay byte-identical to the seed evaluator's.  Pool-aware
        keys append the canonical device-name tuple, so the same graph at
        the same rate on different silicon can never share a cache entry.
        """
        return None if self.device_pool is None else self.device_pool.names

    def set_awake_gpus(self, awake_gpus: int | None) -> None:
        """Cap subsequent evaluations to ``awake_gpus`` GPUs.

        ``None`` (or the full cluster size) restores the always-on path,
        whose cache keys and results are untouched by gating.
        """
        if awake_gpus is not None and not 1 <= awake_gpus <= self.n_gpus:
            raise ValueError(
                f"awake GPUs must be in [1, {self.n_gpus}], got {awake_gpus}"
            )
        self.awake_gpus = awake_gpus

    def _effective_awake(self) -> int | None:
        """The awake count, normalized so fully-awake means ``None``."""
        if self.awake_gpus is None or self.awake_gpus >= self.n_gpus:
            return None
        return self.awake_gpus

    @staticmethod
    def _trim_to_awake(config: ClusterConfig, awake: int) -> ClusterConfig:
        """The awake sub-cluster: the first ``awake`` canonical assignments.

        Canonical order sorts GPUs by (partition id, variant ordinals), so
        sleeping always gates the canonically-last GPUs — the finest
        partitions with the smallest variants, the cheapest capacity to
        take offline.  The rule is deterministic, which keeps DES
        substreams and cache keys reproducible.
        """
        canon = config.canonical()
        return ClusterConfig(
            family=canon.family, assignments=canon.assignments[:awake]
        )

    def adopt_cache(self, cache: dict) -> None:
        """Share ``cache`` (another evaluator's store) as this one's.

        The fleet layer pools analytic evaluators of regions with an
        identical family, cluster size and device pool behind one
        dictionary: evaluations are pure functions of the full cache key
        (graph, rate, awake, pool), so sharing changes no result — only
        how often each region recomputes one.  Hit/miss counters stay
        per-evaluator, so per-region cache stats remain meaningful.  DES
        evaluators must never share (their samples are seed-dependent);
        :func:`repro.fleet.coordinator.share_evaluator_caches` enforces
        that, this method just swaps the store.
        """
        existing = self._cache
        self._cache = cache
        # Entries computed before adoption stay usable by the group.
        for key, value in existing.items():
            cache.setdefault(key, value)

    @property
    def cache_store(self) -> dict:
        """The underlying cache dictionary (for cross-region pooling)."""
        return self._cache

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def cache_hits(self) -> int:
        return self._hits

    @property
    def cache_misses(self) -> int:
        return self._misses

    @property
    def cache_batched(self) -> int:
        """Evaluations computed through the vectorized batch paths."""
        return self._batched

    @property
    def cache_stats(self) -> CacheStats:
        """Counters snapshot: how much evaluation work the cache saved."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            size=len(self._cache),
            batched=self._batched,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _resolve_rate(self, rate_per_s: float | None) -> float:
        if rate_per_s is None:
            return self.rate_per_s
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        return rate_per_s

    def _cache_key(
        self, graph: ConfigGraph, rate: float, awake: int | None
    ) -> tuple:
        # Fully-awake evaluations keep the seed's 2-tuple key; gated ones
        # append the awake count, because a trimmed graph can collide with
        # a full configuration of the same multiset while owing a
        # different static draw.  Pool-aware evaluations additionally
        # append the device names: identical graphs at identical rates on
        # different silicon are different measurements.
        key = (graph.key(), rate) if awake is None else (graph.key(), rate, awake)
        if self.device_pool is not None:
            key = key + (self.device_pool.names,)
        return key

    def _cached_evaluate(
        self, graph: ConfigGraph, rate: float, awake: int | None
    ) -> Evaluation:
        key = self._cache_key(graph, rate, awake)
        hit = self._cache.get(key)
        if hit is not None:
            self._hits += 1
            return hit
        self._misses += 1
        result = self._evaluate_graph(graph, rate, awake)
        self._cache[key] = result
        return result

    def _fill_tables(self, v_idx: np.ndarray, s_idx: np.ndarray) -> None:
        """Price any (variant, slice) cells the lookup tables lack.

        The tables are filled lazily — infeasible combinations raise in
        the perf model and must only be priced when a graph actually
        hosts them — and each cell is the *same* ``latency_s`` /
        ``busy_watts`` call the original per-instance loop made, so the
        flattened arrays are bit-for-bit what the loop produced.
        """
        from repro.gpu.slices import SLICE_TYPES

        fam = self.zoo.family(self.family)
        if self._svc_table is None:
            shape = (self._num_variants, len(SLICE_TYPES))
            self._svc_table = np.full(shape, np.nan)
            self._watts_table = np.full(shape, np.nan)
            self._filled = np.zeros(shape, dtype=bool)
            self._acc_vec = np.array(
                [fam.variant(v + 1).accuracy for v in range(self._num_variants)]
            )
        for v, s in zip(v_idx, s_idx):
            if not self._filled[v, s]:
                variant = fam.variant(int(v) + 1)
                slice_type = SLICE_TYPES[int(s)]
                self._svc_table[v, s] = self.perf.latency_s(variant, slice_type)
                self._watts_table[v, s] = self.perf.busy_watts(variant, slice_type)
                self._filled[v, s] = True

    def _instance_arrays(
        self, graph: ConfigGraph
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten a graph to per-instance (service_s, busy_watts, accuracy).

        ``np.nonzero`` iterates (variant, slice) cells in the same
        row-major order the original Python loop did, and ``np.repeat``
        replicates each cell's value ``count`` times in place of
        ``list.extend`` — same values, same order, at array speed.
        """
        v_idx, s_idx = np.nonzero(graph.weights)
        if v_idx.size == 0:
            raise ValueError("configuration hosts no instances")
        if self._filled is None or not self._filled[v_idx, s_idx].all():
            self._fill_tables(v_idx, s_idx)
        counts = graph.weights[v_idx, s_idx].astype(np.intp)
        return (
            np.repeat(self._svc_table[v_idx, s_idx], counts),
            np.repeat(self._watts_table[v_idx, s_idx], counts),
            np.repeat(self._acc_vec[v_idx], counts),
        )

    def _pool_instance_arrays(
        self, graph: ConfigGraph, n_powered: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-instance arrays priced on the device pool's silicon.

        The graph is materialized deterministically (``realize_graph``)
        and its ``i``-th canonical assignment is priced on the pool's
        ``i``-th device — canonical order sorts coarse partitions first
        and pools sort efficient silicon first, so full-GPU slices land
        on the best devices and sleeping (which trims the canonical tail)
        always gates the least-efficient silicon.
        """
        fam = self.zoo.family(self.family)
        config = realize_graph(
            graph, n_powered,
            max_partition_id=self.device_pool.partition_granularity,
        )
        service, watts, acc = [], [], []
        for perf, assignment in zip(self._device_perfs, config.assignments):
            for slice_type, ordinal in assignment.instances():
                variant = fam.variant(ordinal)
                service.append(perf.latency_s(variant, slice_type))
                watts.append(perf.busy_watts(variant, slice_type))
                acc.append(variant.accuracy)
        if not service:
            raise ValueError("configuration hosts no instances")
        return (
            np.asarray(service, dtype=np.float64),
            np.asarray(watts, dtype=np.float64),
            np.asarray(acc, dtype=np.float64),
        )

    def _graph_arrays(
        self, graph: ConfigGraph, n_powered: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Cached per-instance arrays + static draw for one graph.

        Keyed by graph key (and the powered count on the pool path, where
        placement — and so pricing — depends on how many devices serve):
        SLA bisections probe one deployed graph at dozens of rates, and
        the flattening is a pure function of the graph.
        """
        key = (graph.key(), None if self.device_pool is None else n_powered)
        cached = self._arrays_cache.get(key)
        if cached is not None:
            return cached
        if self.device_pool is None:
            service, watts, acc = self._instance_arrays(graph)
            static_watts = self.perf.power.static_watts_per_gpu() * n_powered
        else:
            service, watts, acc = self._pool_instance_arrays(graph, n_powered)
            static_watts = float(
                sum(
                    p.power.static_watts_per_gpu()
                    for p in self.device_pool.profiles[:n_powered]
                )
            )
        out = (service, watts, acc, static_watts)
        self._arrays_cache[key] = out
        return out

    def _evaluate_graph(
        self, graph: ConfigGraph, rate: float, awake: int | None = None
    ) -> Evaluation:
        n_powered = self.n_gpus if awake is None else awake
        service, watts, acc, static_watts = self._graph_arrays(graph, n_powered)

        if self.method == "analytic":
            return self._evaluate_analytic(service, watts, acc, static_watts, rate)
        return self._evaluate_des(graph, service, watts, acc, static_watts, rate)

    def _evaluate_analytic(
        self,
        service: np.ndarray,
        watts: np.ndarray,
        acc: np.ndarray,
        static_watts: float,
        rate: float,
    ) -> Evaluation:
        est = estimate_fifo(service, rate, self.jitter_cv)
        if est.overloaded:
            # Saturated: every instance busy; throughput capped at capacity.
            capacity = float((1.0 / service).sum())
            power = static_watts + float(watts.sum())
            mu = 1.0 / service
            shares = mu / mu.sum()
            return Evaluation(
                accuracy=float(np.dot(shares, acc)),
                energy_per_request_j=power / capacity,
                p95_ms=float("inf"),
                power_watts=power,
                utilization=est.utilization,
                overloaded=True,
                num_instances=int(service.size),
            )
        per_instance_rate = rate * est.shares
        inst_util = np.clip(per_instance_rate * service, 0.0, 1.0)
        power = static_watts + float(np.dot(inst_util, watts))
        return Evaluation(
            accuracy=float(np.dot(est.shares, acc)),
            energy_per_request_j=power / rate,
            p95_ms=est.p95_ms(),
            power_watts=power,
            utilization=est.utilization,
            overloaded=False,
            num_instances=int(service.size),
        )

    def _batch_analytic(
        self,
        service,
        watts,
        acc,
        static_watts,
        rates: np.ndarray,
        valid: np.ndarray | None = None,
        counts: np.ndarray | None = None,
    ) -> list[Evaluation]:
        """Row-wise analytic evaluations via the batched estimator.

        ``service``/``watts``/``acc`` are ``(m,)`` (one configuration, a
        rate grid) or ``(n, m)`` (a candidate group); ``static_watts``
        broadcasts likewise.  Ragged groups arrive zero-padded with a
        ``valid`` mask and per-row instance ``counts``.  Each row applies
        :meth:`_evaluate_analytic`'s exact formulas — including the
        saturated branch's capacity-proportional shares — so rows agree
        with scalar evaluations to summation-order rounding.
        """
        rates = np.asarray(rates, dtype=np.float64)
        est: BatchQueueEstimate = estimate_fifo_batch(
            service, rates, self.jitter_cv, valid=valid
        )
        service2 = est.service_s
        watts2 = np.broadcast_to(np.asarray(watts, dtype=np.float64), service2.shape)
        acc2 = np.broadcast_to(np.asarray(acc, dtype=np.float64), service2.shape)
        static = np.broadcast_to(
            np.asarray(static_watts, dtype=np.float64), rates.shape
        )
        p95 = est.p95_ms()
        over = est.overloaded
        m = int(service2.shape[1])

        per_rate = rates[:, None] * est.shares
        inst_util = np.clip(per_rate * service2, 0.0, 1.0)
        power_n = static + np.sum(inst_util * watts2, axis=1)
        acc_n = np.sum(est.shares * acc2, axis=1)
        energy_n = power_n / rates

        if valid is None:
            mu = 1.0 / service2
        else:
            mu = np.where(valid, 1.0 / np.where(valid, service2, 1.0), 0.0)
        capacity = mu.sum(axis=1)
        power_o = static + watts2.sum(axis=1)
        shares_o = mu / capacity[:, None]
        acc_o = np.sum(shares_o * acc2, axis=1)
        energy_o = power_o / capacity

        out = []
        for i in range(rates.size):
            n_inst = m if counts is None else int(counts[i])
            if over[i]:
                out.append(
                    Evaluation(
                        accuracy=float(acc_o[i]),
                        energy_per_request_j=float(energy_o[i]),
                        p95_ms=float("inf"),
                        power_watts=float(power_o[i]),
                        utilization=float(est.utilization[i]),
                        overloaded=True,
                        num_instances=n_inst,
                    )
                )
            else:
                out.append(
                    Evaluation(
                        accuracy=float(acc_n[i]),
                        energy_per_request_j=float(energy_n[i]),
                        p95_ms=float(p95[i]),
                        power_watts=float(power_n[i]),
                        utilization=float(est.utilization[i]),
                        overloaded=False,
                        num_instances=n_inst,
                    )
                )
        return out

    def _evaluate_des(
        self,
        graph: ConfigGraph,
        service: np.ndarray,
        watts: np.ndarray,
        acc: np.ndarray,
        static_watts: float,
        rate: float,
    ) -> Evaluation:
        # Deterministic per-graph substream: the same configuration always
        # sees the same arrivals, so cache hits and misses agree exactly
        # (stable_hash keeps this reproducible across processes).  The rate
        # scales the exponential gaps but not the underlying stream, so a
        # rate override preserves the paper's common-random-numbers setup.
        from repro.utils.rng import stable_hash

        mixer = RngMixer(seed=self.seed)
        rng = mixer.fork("des-eval", stable_hash(graph.key()))

        workload = PoissonWorkload(rate)
        arrivals = workload.arrivals_fixed_count(self.des_requests, rng)
        batch = simulate_fifo(arrivals, service, self.jitter_cv, rng)
        metrics = summarize(batch, n_instances=service.size)

        # Overload diagnosis: the queue grows without bound iff capacity is
        # below the arrival rate; finite simulations always "finish".
        capacity = float((1.0 / service).sum())
        overloaded = rate >= capacity

        power = static_watts + float(np.dot(metrics.utilization, watts))
        throughput = min(metrics.throughput_rps, rate)
        return Evaluation(
            accuracy=float(np.dot(metrics.shares, acc)),
            energy_per_request_j=power / throughput,
            p95_ms=float("inf") if overloaded else metrics.latency.p95_ms,
            power_watts=power,
            utilization=float(metrics.mean_utilization),
            overloaded=overloaded,
            num_instances=int(service.size),
        )
