"""The five competing schemes of the paper's evaluation (Sec. 5.1).

* **BASE** — highest-quality variant on every unpartitioned GPU; carbon
  unaware.  Defines ``A_base``, ``C_base`` and the SLA target.
* **CO2OPT** — the carbon-optimal static policy: finest MIG partition,
  smallest variant everywhere.  Exploits both paper insights but never
  adapts to carbon intensity.
* **BLOVER** — Basic-Clover: carbon-aware, mixed-quality, partitioned, but
  optimizes by uniform random search in the raw ``(x_p, x_v)`` space.
* **CLOVER** — the paper's system: graph-space simulated annealing, warm
  started from the previous invocation's best configuration.
* **ORACLE** — exhaustive offline profiling of the standardized per-GPU
  configuration space with instant, zero-cost switching on every carbon
  intensity change.  Infeasible in practice; the upper bound.

All schemes share one :class:`ConfigEvaluator` interface so their selection
fidelity is identical — the differences measured by the benchmarks come only
from the search strategy, exactly as in the paper.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.annealing import (
    EvaluatedCandidate,
    OptimizationCostModel,
    OptimizationResult,
    SAParams,
    random_search,
    simulated_annealing,
)
from repro.core.config import (
    ClusterConfig,
    GpuAssignment,
    base_config,
    co2opt_config,
)
from repro.core.evaluator import ConfigEvaluator
from repro.core.graph import ConfigGraph
from repro.core.moves import MoveGenerator
from repro.core.objective import ObjectiveSpec
from repro.gpu.partitions import MIG_PARTITIONS
from repro.models.zoo import ModelZoo
from repro.utils.rng import RngMixer

__all__ = [
    "InvocationOutcome",
    "Scheme",
    "BaseScheme",
    "Co2OptScheme",
    "BloverScheme",
    "CloverScheme",
    "OracleScheme",
    "make_scheme",
    "SCHEME_NAMES",
    "enumerate_standardized_configs",
]

SCHEME_NAMES = ("base", "co2opt", "blover", "clover", "oracle")


@dataclass(frozen=True)
class InvocationOutcome:
    """What one optimization invocation did to the cluster."""

    deployed: ClusterConfig
    evaluated: tuple[EvaluatedCandidate, ...]
    virtual_cost_s: float
    termination: str

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluated)


@dataclass
class Scheme(ABC):
    """A serving policy: initial deployment plus the re-optimization rule.

    ``max_partition_id`` is the device pool's partition granularity: every
    configuration a scheme deploys or explores keeps its partitions at or
    below it (a pool containing a non-MIG device pins the whole search to
    unpartitioned GPUs).  The default admits all 19 MIG configurations —
    the seed single-device behaviour.
    """

    zoo: ModelZoo
    family: str
    n_gpus: int
    evaluator: ConfigEvaluator
    objective: ObjectiveSpec
    mixer: RngMixer = field(default_factory=RngMixer)
    sa_params: SAParams = field(default_factory=SAParams)
    cost_model: OptimizationCostModel = field(default_factory=OptimizationCostModel)
    max_partition_id: int = len(MIG_PARTITIONS)
    _invocations: int = field(default=0, init=False)

    #: Whether carbon-intensity changes should trigger :meth:`optimize`.
    reoptimizes: bool = field(default=False, init=False)
    name: str = field(default="scheme", init=False)

    @abstractmethod
    def initial_config(self) -> ClusterConfig:
        """The configuration deployed before any optimization runs."""

    def optimize(
        self, ci: float, deployed: ClusterConfig | None
    ) -> InvocationOutcome:
        """React to carbon intensity ``ci``; default: (re)deploy the initial.

        Static schemes (BASE, CO2OPT) only pay the cold-start deployment on
        their first call and are no-ops afterwards.
        """
        target = self.initial_config()
        cost = 0.0
        if deployed is None:
            cost = self.cost_model.reconfiguration_s(None, target, ged=0)
        self._invocations += 1
        return InvocationOutcome(
            deployed=target, evaluated=(), virtual_cost_s=cost, termination="static"
        )

    def _fork_rng(self) -> np.random.Generator:
        """Per-invocation RNG substream (reproducible across runs)."""
        return self.mixer.fork(f"{self.name}-invocation", self._invocations)

    @property
    def invocations(self) -> int:
        return self._invocations


@dataclass
class BaseScheme(Scheme):
    """Carbon-unaware default: largest variant, no MIG partitioning."""

    def __post_init__(self) -> None:
        self.name = "base"
        self.reoptimizes = False

    def initial_config(self) -> ClusterConfig:
        return base_config(self.zoo.family(self.family), self.n_gpus)


@dataclass
class Co2OptScheme(Scheme):
    """Aggressive carbon minimizer: finest partition, smallest variant."""

    def __post_init__(self) -> None:
        self.name = "co2opt"
        self.reoptimizes = False

    def initial_config(self) -> ClusterConfig:
        return co2opt_config(
            self.zoo.family(self.family),
            self.n_gpus,
            max_partition_id=self.max_partition_id,
        )


@dataclass
class _SearchScheme(Scheme):
    """Shared plumbing of the two online-search schemes."""

    moves: MoveGenerator = field(init=False)

    def _setup(self) -> None:
        self.moves = MoveGenerator(
            zoo=self.zoo,
            family=self.family,
            max_partition_id=self.max_partition_id,
        )

    def initial_config(self) -> ClusterConfig:
        # Both search schemes boot from the BASE deployment (it is what a
        # provider runs before turning the optimizer on) and improve online.
        return base_config(self.zoo.family(self.family), self.n_gpus)

    def _finalize(
        self,
        result: OptimizationResult,
        deployed: ClusterConfig | None,
    ) -> InvocationOutcome:
        """Pick the deployment from a search result.

        The SLA is a hard constraint: deploy the best SLA-compliant (and
        accuracy-compliant) configuration found; if none was found, stay on
        the current deployment (or fall back to the initial config on the
        very first invocation).
        """
        if result.best_deployable is not None:
            choice = result.best_deployable.config
        elif deployed is not None:
            choice = deployed
        else:
            choice = self.initial_config()
        # Final switch from the last explored candidate to the choice.
        last = result.evaluated[-1].config if result.evaluated else deployed
        extra = 0.0
        if last is not None and last.canonical() != choice.canonical():
            num_variants = self.zoo.family(self.family).num_variants
            ged = ConfigGraph.from_config(last, num_variants).ged(
                ConfigGraph.from_config(choice, num_variants)
            )
            extra = self.cost_model.reconfiguration_s(last, choice, ged)
        elif last is None:
            extra = self.cost_model.reconfiguration_s(None, choice, ged=0)
        return InvocationOutcome(
            deployed=choice,
            evaluated=result.evaluated,
            virtual_cost_s=result.elapsed_virtual_s + extra,
            termination=result.termination,
        )


@dataclass
class CloverScheme(_SearchScheme):
    """The paper's system: warm-started SA in the configuration-graph space."""

    _last_best: ClusterConfig | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.name = "clover"
        self.reoptimizes = True
        self._setup()

    def optimize(
        self, ci: float, deployed: ClusterConfig | None
    ) -> InvocationOutcome:
        rng = self._fork_rng()
        self._invocations += 1
        start = self._last_best or deployed or self.initial_config()
        result = simulated_annealing(
            initial=start,
            evaluator=self.evaluator,
            objective=self.objective,
            ci=ci,
            moves=self.moves,
            rng=rng,
            params=self.sa_params,
            cost=self.cost_model,
            deployed=deployed,
        )
        outcome = self._finalize(result, deployed)
        self._last_best = outcome.deployed
        return outcome


@dataclass
class BloverScheme(_SearchScheme):
    """Basic-Clover: random search in the raw (x_p, x_v) space.

    Implements all of Clover's design principles *except* the graph-based
    optimization of Sec. 4.2: the same warm start, objective, SLA handling
    and termination rule, but proposals uniformly re-draw whole GPUs
    (there is no graph notion of a "small" step in the raw space).  This is
    the paper's control that isolates the contribution of Sec. 4.2.
    """

    _last_best: ClusterConfig | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.name = "blover"
        self.reoptimizes = True
        self._setup()

    def optimize(
        self, ci: float, deployed: ClusterConfig | None
    ) -> InvocationOutcome:
        rng = self._fork_rng()
        self._invocations += 1
        start = self._last_best or deployed or self.initial_config()
        result = random_search(
            initial=start,
            evaluator=self.evaluator,
            objective=self.objective,
            ci=ci,
            moves=self.moves,
            rng=rng,
            params=self.sa_params,
            cost=self.cost_model,
            deployed=deployed,
        )
        outcome = self._finalize(result, deployed)
        self._last_best = outcome.deployed
        return outcome


def enumerate_standardized_configs(
    zoo: ModelZoo,
    family: str,
    n_gpus: int,
    max_partition_id: int = len(MIG_PARTITIONS),
) -> list[ClusterConfig]:
    """All standardized cluster configurations (ORACLE's search space).

    "Standardized" as in the paper's Sec. 5.1: the same partition and the
    same variant mixture on every GPU.  For each of the 19 partitions (or
    the subset the device pool's ``max_partition_id`` granularity admits),
    the variant assignment is unique up to the multiset chosen per slice
    type (slices of equal type are interchangeable), with OOM edges
    excluded.
    """
    fam = zoo.family(family)
    configs: list[ClusterConfig] = []
    for partition in MIG_PARTITIONS:
        if partition.config_id > max_partition_id:
            continue
        # Group the partition's slices by type, preserving largest-first order.
        type_counts: dict[int, int] = {}
        for s in partition.slices:
            type_counts[s.index] = type_counts.get(s.index, 0) + 1
        per_type_choices: list[list[tuple[int, ...]]] = []
        feasible_all = True
        for s_index, count in type_counts.items():
            ordinals = zoo.feasible_variants(family, s_index)
            if not ordinals:
                feasible_all = False
                break
            per_type_choices.append(
                [
                    combo
                    for combo in itertools.combinations_with_replacement(
                        ordinals, count
                    )
                ]
            )
        if not feasible_all:
            continue
        for combo in itertools.product(*per_type_choices):
            # Reassemble ordinals in the partition's slice order.
            by_type = {
                s_index: list(choice)
                for (s_index, _), choice in zip(type_counts.items(), combo)
            }
            ordinals = tuple(
                by_type[s.index].pop(0) for s in partition.slices
            )
            assignment = GpuAssignment(
                partition_id=partition.config_id, variant_ordinals=ordinals
            )
            configs.append(
                ClusterConfig(
                    family=fam.name, assignments=(assignment,) * n_gpus
                ).canonical()
            )
    return configs


@dataclass
class OracleScheme(Scheme):
    """Exhaustive offline profiling with instant zero-cost switching.

    The paper's upper bound: "it took the ORACLE scheme approximately two
    weeks to complete its offline profiling" — here the profile is the
    cached evaluation of every standardized configuration, and each carbon
    intensity change selects the argmax of Eq. 3 subject to the SLA by a
    vectorized sweep.
    """

    _configs: list[ClusterConfig] = field(default_factory=list, init=False)
    _accuracy: np.ndarray = field(default=None, init=False, repr=False)
    _energy: np.ndarray = field(default=None, init=False, repr=False)
    _p95: np.ndarray = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.name = "oracle"
        self.reoptimizes = True

    def initial_config(self) -> ClusterConfig:
        return base_config(self.zoo.family(self.family), self.n_gpus)

    def _profile(self) -> None:
        """Offline exhaustive profiling (lazily built, then cached)."""
        if self._configs:
            return
        self._configs = enumerate_standardized_configs(
            self.zoo, self.family, self.n_gpus, self.max_partition_id
        )
        evals = [self.evaluator.evaluate(c) for c in self._configs]
        self._accuracy = np.array([e.accuracy for e in evals])
        self._energy = np.array([e.energy_per_request_j for e in evals])
        self._p95 = np.array([e.p95_ms for e in evals])

    def optimize(
        self, ci: float, deployed: ClusterConfig | None
    ) -> InvocationOutcome:
        self._profile()
        self._invocations += 1
        obj = self.objective
        d_acc = (self._accuracy - obj.a_base) / obj.a_base * 100.0
        carbon = np.array(
            [obj.carbon_per_request(e, ci) for e in self._energy]
        )
        d_carbon = (obj.c_base - carbon) / obj.c_base * 100.0
        f = obj.lambda_weight * d_carbon + (1.0 - obj.lambda_weight) * d_acc
        mask = self._p95 <= obj.sla.p95_target_ms
        if obj.accuracy_floor_pct is not None:
            mask &= d_acc >= -obj.accuracy_floor_pct
        if not np.any(mask):
            choice = deployed or self.initial_config()
        else:
            f_masked = np.where(mask, f, -np.inf)
            choice = self._configs[int(np.argmax(f_masked))]
        return InvocationOutcome(
            deployed=choice, evaluated=(), virtual_cost_s=0.0, termination="oracle"
        )


def make_scheme(
    name: str,
    zoo: ModelZoo,
    family: str,
    n_gpus: int,
    evaluator: ConfigEvaluator,
    objective: ObjectiveSpec,
    mixer: RngMixer | None = None,
    sa_params: SAParams | None = None,
    cost_model: OptimizationCostModel | None = None,
    max_partition_id: int | None = None,
) -> Scheme:
    """Factory by scheme name (``"base"`` .. ``"oracle"``)."""
    classes = {
        "base": BaseScheme,
        "co2opt": Co2OptScheme,
        "blover": BloverScheme,
        "clover": CloverScheme,
        "oracle": OracleScheme,
    }
    try:
        cls = classes[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; valid: {', '.join(SCHEME_NAMES)}"
        ) from None
    kwargs = dict(
        zoo=zoo,
        family=family,
        n_gpus=n_gpus,
        evaluator=evaluator,
        objective=objective,
    )
    if mixer is not None:
        kwargs["mixer"] = mixer
    if sa_params is not None:
        kwargs["sa_params"] = sa_params
    if cost_model is not None:
        kwargs["cost_model"] = cost_model
    if max_partition_id is not None:
        kwargs["max_partition_id"] = max_partition_id
    return cls(**kwargs)
