"""Cluster configurations: the paper's ``(x_p, x_v)`` optimization variables.

``x_p`` assigns every GPU one of the 19 MIG partition configurations; ``x_v``
assigns every resulting slice a model-variant ordinal.  This module gives
those variables a concrete, validated, canonical form:

* :class:`GpuAssignment` — one GPU's partition plus the variant hosted on
  each of its slices,
* :class:`ClusterConfig` — the whole cluster's assignment, with canonical
  ordering so that configurations the paper considers equivalent (same
  variant-on-slice-type multiset, different physical placement) compare
  equal and hash identically.

The canonicalization implements the paper's observation that "which GPU the
copy runs on ... may result in different (x_p, x_v) values, but they all
result in the same objective function value and the same graph x_g".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.partitions import (
    FINEST_PARTITION_ID,
    FULL_GPU_PARTITION_ID,
    MIG_PARTITIONS,
    MigPartition,
    partition_by_id,
)
from repro.gpu.slices import SliceType
from repro.models.families import ModelFamily
from repro.models.zoo import ModelZoo

__all__ = ["GpuAssignment", "ClusterConfig", "uniform_config", "base_config", "co2opt_config"]


@dataclass(frozen=True)
class GpuAssignment:
    """One GPU's MIG partition and the variant ordinal on each slice.

    ``variant_ordinals[i]`` is the variant hosted on ``partition.slices[i]``
    (slices ordered largest-first, as in :mod:`repro.gpu.partitions`).
    """

    partition_id: int
    variant_ordinals: tuple[int, ...]

    def __post_init__(self) -> None:
        partition = partition_by_id(self.partition_id)
        if len(self.variant_ordinals) != partition.num_instances:
            raise ValueError(
                f"partition #{self.partition_id} has {partition.num_instances} "
                f"slices but got {len(self.variant_ordinals)} variant ordinals"
            )
        if any(o < 1 for o in self.variant_ordinals):
            raise ValueError(
                f"variant ordinals must be >= 1, got {self.variant_ordinals}"
            )

    @property
    def partition(self) -> MigPartition:
        return partition_by_id(self.partition_id)

    def instances(self) -> tuple[tuple[SliceType, int], ...]:
        """``(slice_type, variant_ordinal)`` pairs for every hosted copy."""
        return tuple(zip(self.partition.slices, self.variant_ordinals))

    def canonical(self) -> "GpuAssignment":
        """Sort variant ordinals within runs of the same slice type.

        Two slices of the same type are interchangeable, so the order of
        their variants is irrelevant to the configuration graph.
        """
        pairs = sorted(
            self.instances(), key=lambda p: (-p[0].compute_slots, p[1])
        )
        return GpuAssignment(
            partition_id=self.partition_id,
            variant_ordinals=tuple(o for _, o in pairs),
        )

    def validate_against(self, family: ModelFamily) -> None:
        """Raise if an ordinal is unknown or a variant does not fit its slice."""
        for slice_type, ordinal in self.instances():
            variant = family.variant(ordinal)  # raises on unknown ordinal
            if not variant.fits(slice_type):
                raise ValueError(
                    f"{variant.name} ({variant.memory_gb:g} GB) does not fit "
                    f"slice {slice_type.name} ({slice_type.memory_gb:g} GB)"
                )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{s.name}:v{o}" for s, o in self.instances()
        )
        return f"#{self.partition_id}[{inner}]"


@dataclass(frozen=True)
class ClusterConfig:
    """A full cluster assignment ``(x_p, x_v)`` for one model family."""

    family: str
    assignments: tuple[GpuAssignment, ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("a cluster configuration needs at least one GPU")

    @property
    def n_gpus(self) -> int:
        return len(self.assignments)

    @property
    def num_instances(self) -> int:
        """Total service instances ``m`` (one per slice), ``n <= m <= 7n``."""
        return sum(a.partition.num_instances for a in self.assignments)

    @property
    def partition_ids(self) -> tuple[int, ...]:
        return tuple(a.partition_id for a in self.assignments)

    def instances(self) -> tuple[tuple[SliceType, int], ...]:
        """All ``(slice_type, variant_ordinal)`` pairs across the cluster."""
        out: list[tuple[SliceType, int]] = []
        for a in self.assignments:
            out.extend(a.instances())
        return tuple(out)

    def canonical(self) -> "ClusterConfig":
        """Canonical form: per-GPU canonical assignments, GPUs sorted.

        Canonically-equal configurations have identical configuration graphs
        and identical objective values; the evaluator caches on this.
        """
        canon = sorted(
            (a.canonical() for a in self.assignments),
            key=lambda a: (a.partition_id, a.variant_ordinals),
        )
        return ClusterConfig(family=self.family, assignments=tuple(canon))

    def validate_against(self, zoo: ModelZoo) -> None:
        """Raise if any hosted variant is unknown or memory-infeasible."""
        fam = zoo.family(self.family)
        for a in self.assignments:
            a.validate_against(fam)

    def with_assignment(self, gpu_index: int, assignment: GpuAssignment) -> "ClusterConfig":
        """Functional update of one GPU's assignment."""
        if not 0 <= gpu_index < self.n_gpus:
            raise IndexError(f"gpu_index {gpu_index} out of range [0, {self.n_gpus})")
        new = list(self.assignments)
        new[gpu_index] = assignment
        return ClusterConfig(family=self.family, assignments=tuple(new))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = " | ".join(str(a) for a in self.assignments)
        return f"{self.family}({inner})"


def uniform_config(
    family: ModelFamily, n_gpus: int, partition_id: int, ordinal: int
) -> ClusterConfig:
    """Every GPU gets the same partition, every slice the same variant."""
    partition = partition_by_id(partition_id)
    assignment = GpuAssignment(
        partition_id=partition_id,
        variant_ordinals=(ordinal,) * partition.num_instances,
    )
    assignment.validate_against(family)
    return ClusterConfig(family=family.name, assignments=(assignment,) * n_gpus)


def base_config(family: ModelFamily, n_gpus: int) -> ClusterConfig:
    """The paper's BASE/default deployment: largest variant, no partitioning."""
    return uniform_config(
        family, n_gpus, FULL_GPU_PARTITION_ID, family.largest.ordinal
    )


def co2opt_config(
    family: ModelFamily, n_gpus: int, max_partition_id: int | None = None
) -> ClusterConfig:
    """The CO2OPT deployment: finest feasible partition, smallest variant.

    Uses config 19 (seven 1g slices) when the smallest variant fits a 1g
    slice; otherwise falls back to the finest partition whose smallest slice
    can host it (relevant for user-registered families with big "small"
    models).  ``max_partition_id`` caps the choice at the device pool's
    partition granularity — a non-MIG pool degenerates CO2OPT to the
    smallest variant on unpartitioned GPUs.
    """
    smallest = family.smallest
    candidates = sorted(
        MIG_PARTITIONS, key=lambda p: (-p.num_instances, p.config_id)
    )
    if max_partition_id is not None:
        candidates = [p for p in candidates if p.config_id <= max_partition_id]
    for partition in candidates:
        if all(smallest.fits(s) for s in partition.slices):
            return uniform_config(
                family, n_gpus, partition.config_id, smallest.ordinal
            )
    raise ValueError(  # pragma: no cover - smallest always fits 7g
        f"{smallest.name} does not fit any MIG partition"
    )


# Re-export the paper's anchor ids for convenience of downstream code.
FULL_GPU = FULL_GPU_PARTITION_ID
FINEST = FINEST_PARTITION_ID
