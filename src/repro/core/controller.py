"""The Clover master controller: monitor → optimize → deploy → account.

Drives one scheme over a carbon-intensity trace in fixed epochs (Fig. 5's
control loop).  Each epoch:

1. read the grid carbon intensity,
2. if the scheme is carbon-aware and the 5% trigger fires, run its
   optimization — every candidate it evaluates serves live traffic for its
   virtual reconfigure+measure window, and those windows are charged
   against the epoch (energy, accuracy, SLA compliance of *candidates*
   included, exactly as the paper reports),
3. serve the rest of the epoch on the deployed configuration, measured by
   the DES-backed evaluator,
4. account energy → carbon at the epoch's carbon intensity.

The per-epoch records carry everything the paper's figures need: the Eq. 3
objective timeline (Fig. 11), optimization-time fractions (Fig. 12a),
candidate SLA outcomes (Fig. 12b), and per-invocation candidate
trajectories (Fig. 13).

The loop is exposed at two granularities: :meth:`ServiceController.run`
drives a whole trace (the single-cluster paper setup), while
:meth:`~ServiceController.begin_run` / :meth:`~ServiceController.step` /
:meth:`~ServiceController.finalize` let an external driver — the fleet
coordinator — advance one epoch at a time with a per-epoch arrival rate
(geographically routed load).  ``run`` is implemented on top of the
step-wise API, so both paths execute identical arithmetic.

Elastic capacity enters through the optional :class:`EpochCapacity` a
driver may pass to :meth:`~ServiceController.step`: it carries the epoch's
awake-GPU count (candidate and measurement evaluations are capped to the
awake subset), the wake-up window of any reactively-woken GPUs (the epoch
is accounted part at the pre-wake capacity, part at the post-wake
capacity), and auxiliary energy the driver charges on top (sleeping GPUs'
reduced static draw, wake transitions).  Without it — the seed path —
nothing changes, bit for bit.  A routed rate of exactly zero (a region
fully drained while its GPUs sleep) is legal: the epoch serves nothing and
pays only the powered static draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.accounting import DEFAULT_PUE, carbon_grams
from repro.carbon.monitor import CarbonIntensityMonitor
from repro.core.evaluator import CacheStats, ConfigEvaluator
from repro.core.objective import ObjectiveSpec
from repro.core.schemes import Scheme
from repro.utils.stats import weighted_mean

__all__ = [
    "CandidateRecord",
    "InvocationRecord",
    "EpochCapacity",
    "EpochRecord",
    "RunResult",
    "ServiceController",
]

#: An optimization window may consume at most this share of its epoch (the
#: paper's 5-minute SA budget always fits a 10-minute epoch; this guard only
#: matters for very coarse smoke-test epochs).
_MAX_EXPLORE_FRACTION = 0.9


@dataclass(frozen=True)
class EpochCapacity:
    """One epoch's elastic-capacity state, handed to :meth:`~ServiceController.step`.

    Attributes
    ----------
    awake_gpus:
        GPUs online by the end of the epoch; all evaluations (candidates
        and measurements) are capped to this subset.
    serving_gpus_at_start:
        GPUs that were already online when the epoch began (defaults to
        ``awake_gpus``).  When smaller, the difference was woken
        *reactively* this epoch and comes online only after
        ``wake_delay_s`` — the epoch's stable window is accounted at the
        start capacity for that long.
    wake_delay_s:
        How long reactively-woken GPUs take to come online.
    aux_energy_j:
        Energy the driver charges on top of the serving cluster's draw:
        sleeping GPUs' sleep-state watts over the epoch plus wake
        transition energy.  Converted to carbon at the epoch's intensity.
    """

    awake_gpus: int
    serving_gpus_at_start: int | None = None
    wake_delay_s: float = 0.0
    aux_energy_j: float = 0.0

    def __post_init__(self) -> None:
        if self.awake_gpus < 1:
            raise ValueError(f"awake GPUs must be >= 1, got {self.awake_gpus}")
        start = self.start_gpus
        if not 1 <= start <= self.awake_gpus:
            raise ValueError(
                f"serving GPUs at start must be in [1, {self.awake_gpus}], "
                f"got {start}"
            )
        if self.wake_delay_s < 0 or self.aux_energy_j < 0:
            raise ValueError("wake delay and auxiliary energy must be non-negative")

    @property
    def start_gpus(self) -> int:
        """Capacity online at epoch start (before reactive wakes land)."""
        return (
            self.awake_gpus
            if self.serving_gpus_at_start is None
            else self.serving_gpus_at_start
        )


@dataclass(frozen=True)
class CandidateRecord:
    """One configuration evaluated during an optimization invocation."""

    order: int
    delta_accuracy_pct: float
    delta_carbon_pct: float
    f: float
    sla_met: bool
    virtual_cost_s: float


@dataclass(frozen=True)
class InvocationRecord:
    """One optimization invocation (Fig. 13's unit of analysis)."""

    index: int
    t_h: float
    ci: float
    num_evaluations: int
    cost_s: float
    termination: str
    candidates: tuple[CandidateRecord, ...]
    deployed_label: str

    @property
    def sla_met_count(self) -> int:
        return sum(1 for c in self.candidates if c.sla_met)

    @property
    def sla_violated_count(self) -> int:
        return len(self.candidates) - self.sla_met_count


@dataclass(frozen=True)
class EpochRecord:
    """Accounting of one control epoch."""

    index: int
    t_h: float
    duration_s: float
    ci: float
    config_label: str
    num_instances: int
    requests: float
    energy_j: float
    carbon_g: float
    accuracy: float
    p95_ms: float
    sla_met: bool
    f_objective: float
    delta_accuracy_pct: float
    delta_carbon_pct: float
    optimized: bool
    optimization_s: float
    num_evaluations: int
    #: Arrival rate served this epoch (0.0 in records predating routing).
    rate_per_s: float = 0.0
    #: GPUs awake this epoch (``None``: no gating — the whole cluster).
    awake_gpus: int | None = None


@dataclass
class RunResult:
    """Everything measured over one scheme x trace x application run."""

    scheme_name: str
    family: str
    application: str
    n_gpus: int
    rate_per_s: float
    sla_target_ms: float
    lambda_weight: float
    a_base: float
    c_base: float
    trace_name: str
    epochs: list[EpochRecord] = field(default_factory=list)
    invocations: list[InvocationRecord] = field(default_factory=list)
    #: Cache counters of the DES measurement evaluator (set by finalize).
    measure_cache: CacheStats | None = None
    #: Cache counters of the scheme's optimization evaluator (set by finalize).
    opt_cache: CacheStats | None = None

    # ------------------------------------------------------------------ #
    # totals
    # ------------------------------------------------------------------ #

    @property
    def duration_h(self) -> float:
        return sum(e.duration_s for e in self.epochs) / 3600.0

    @property
    def total_requests(self) -> float:
        return sum(e.requests for e in self.epochs)

    @property
    def total_energy_j(self) -> float:
        return sum(e.energy_j for e in self.epochs)

    @property
    def total_carbon_g(self) -> float:
        return sum(e.carbon_g for e in self.epochs)

    @property
    def carbon_g_per_request(self) -> float:
        """Total carbon over total requests (NaN for a zero-traffic run).

        Gated fleets can drain a region to zero requests while its static
        draw still emits, so the ratio is undefined rather than infinite
        or an exception.
        """
        total = self.total_requests
        return self.total_carbon_g / total if total > 0 else float("nan")

    @property
    def mean_accuracy(self) -> float:
        """Request-weighted accuracy over the whole run (NaN if no traffic)."""
        if self.total_requests <= 0:
            return float("nan")
        return weighted_mean(
            [e.accuracy for e in self.epochs], [e.requests for e in self.epochs]
        )

    @property
    def accuracy_loss_pct(self) -> float:
        """Positive percent loss vs ``A_base`` (the paper's Fig. 9 metric)."""
        return (self.a_base - self.mean_accuracy) / self.a_base * 100.0

    @property
    def p95_ms(self) -> float:
        """Request-weighted mean of per-epoch p95 measurements.

        Epoch latency distributions are near-stationary, so this tracks the
        pooled service p95 closely; the exact pooled value lies between this
        and :attr:`worst_p95_ms`.
        """
        finite = [e for e in self.epochs if np.isfinite(e.p95_ms)]
        if not finite:
            return float("inf")
        return weighted_mean(
            [e.p95_ms for e in finite], [e.requests for e in finite]
        )

    @property
    def worst_p95_ms(self) -> float:
        """Worst measured epoch p95 (zero-traffic epochs have none)."""
        measured = [e.p95_ms for e in self.epochs if not np.isnan(e.p95_ms)]
        return max(measured) if measured else float("nan")

    @property
    def sla_violation_fraction(self) -> float:
        """Fraction of requests served in epochs whose p95 broke the SLA."""
        total = self.total_requests
        if total <= 0:
            return 0.0
        bad = sum(e.requests for e in self.epochs if not e.sla_met)
        return bad / total

    # ------------------------------------------------------------------ #
    # optimization overhead (Fig. 12)
    # ------------------------------------------------------------------ #

    @property
    def total_optimization_s(self) -> float:
        return sum(e.optimization_s for e in self.epochs)

    @property
    def optimization_fraction(self) -> float:
        """Share of the run spent optimizing (Fig. 12a's headline number)."""
        total_s = sum(e.duration_s for e in self.epochs)
        return self.total_optimization_s / total_s if total_s else 0.0

    def optimization_fraction_by_window(self, window_h: float = 8.0) -> list[float]:
        """Fig. 12a's per-window breakdown of optimization time."""
        if window_h <= 0:
            raise ValueError(f"window must be positive, got {window_h}")
        buckets: dict[int, list[float]] = {}
        for e in self.epochs:
            b = int(e.t_h // window_h)
            buckets.setdefault(b, [0.0, 0.0])
            buckets[b][0] += e.optimization_s
            buckets[b][1] += e.duration_s
        return [
            buckets[b][0] / buckets[b][1] for b in sorted(buckets)
        ]

    @property
    def total_evaluations(self) -> int:
        return sum(i.num_evaluations for i in self.invocations)

    @property
    def evaluations_sla_met(self) -> int:
        return sum(i.sla_met_count for i in self.invocations)

    @property
    def evaluations_sla_violated(self) -> int:
        return sum(i.sla_violated_count for i in self.invocations)

    # ------------------------------------------------------------------ #
    # time series (Figs. 11, 13)
    # ------------------------------------------------------------------ #

    def objective_series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(t_h, f)`` — the Eq. 3 objective of the deployed config."""
        t = np.array([e.t_h for e in self.epochs])
        f = np.array([e.f_objective for e in self.epochs])
        return t, f

    def carbon_series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(t_h, gCO2)`` emitted per epoch."""
        t = np.array([e.t_h for e in self.epochs])
        c = np.array([e.carbon_g for e in self.epochs])
        return t, c


class ServiceController:
    """Runs one scheme over a trace with full epoch accounting."""

    def __init__(
        self,
        scheme: Scheme,
        objective: ObjectiveSpec,
        monitor: CarbonIntensityMonitor,
        measure_evaluator: ConfigEvaluator,
        rate_per_s: float,
        application: str,
        step_s: float = 600.0,
        pue: float = DEFAULT_PUE,
    ) -> None:
        if step_s <= 0:
            raise ValueError(f"epoch step must be positive, got {step_s}")
        if measure_evaluator.family != scheme.family:
            raise ValueError("measure evaluator and scheme families differ")
        self.scheme = scheme
        self.objective = objective
        self.monitor = monitor
        self.measure_evaluator = measure_evaluator
        self.rate_per_s = rate_per_s
        self.application = application
        self.step_s = step_s
        self.pue = pue
        self._deployed = None

    @property
    def deployed(self):
        """The currently deployed configuration (``None`` before warm-up)."""
        return self._deployed

    def n_epochs(self, duration_h: float) -> int:
        """How many control epochs a run of ``duration_h`` hours spans."""
        if duration_h <= 0:
            raise ValueError(f"duration must be positive, got {duration_h}")
        return max(1, int(round(duration_h * 3600.0 / self.step_s)))

    def begin_run(self) -> RunResult:
        """Start a fresh run: empty result, no deployed configuration."""
        self._deployed = None
        return RunResult(
            scheme_name=self.scheme.name,
            family=self.scheme.family,
            application=self.application,
            n_gpus=self.scheme.n_gpus,
            rate_per_s=self.rate_per_s,
            sla_target_ms=self.objective.sla.p95_target_ms,
            lambda_weight=self.objective.lambda_weight,
            a_base=self.objective.a_base,
            c_base=self.objective.c_base,
            trace_name=self.monitor.trace.name,
        )

    def step(
        self,
        result: RunResult,
        index: int,
        t_h: float,
        rate_per_s: float | None = None,
        capacity: EpochCapacity | None = None,
    ) -> EpochRecord:
        """Advance one control epoch at trace time ``t_h``.

        ``rate_per_s`` overrides the construction-time arrival rate for this
        epoch only (a fleet router's per-epoch traffic assignment); ``None``
        serves the nominal rate, which is exactly the single-cluster loop.
        ``capacity`` is the epoch's elastic-capacity state (awake GPUs,
        wake window, auxiliary sleep/wake energy); ``None`` — the seed
        path — runs the whole cluster, untouched.
        """
        if capacity is not None:
            self._set_awake_evaluators(capacity.awake_gpus)
        elif self.measure_evaluator.awake_gpus is not None:
            # A previous gated epoch left the cap behind; clear it so an
            # ungated step is indistinguishable from the seed loop.
            self._set_awake_evaluators(None)
        ci = self.monitor.observe(t_h)

        optimized = False
        opt_s = 0.0
        evaluated = ()
        if self._deployed is None or (
            self.scheme.reoptimizes and self.monitor.should_trigger(t_h)
        ):
            outcome = self.scheme.optimize(ci, self._deployed)
            self.monitor.mark_optimized(t_h)
            self._deployed = outcome.deployed
            optimized = True
            opt_s = outcome.virtual_cost_s
            evaluated = outcome.evaluated
            result.invocations.append(
                self._invocation_record(len(result.invocations), t_h, ci, outcome)
            )

        record = self._account_epoch(
            index, t_h, ci, self._deployed, optimized, opt_s, evaluated,
            rate_per_s, capacity,
        )
        result.epochs.append(record)
        return record

    def _set_awake_evaluators(self, awake_gpus: int | None) -> None:
        """Cap (or uncap) both evaluators to the awake GPU subset."""
        self.measure_evaluator.set_awake_gpus(awake_gpus)
        opt_evaluator = getattr(self.scheme, "evaluator", None)
        if opt_evaluator is not None:
            opt_evaluator.set_awake_gpus(awake_gpus)

    def finalize(self, result: RunResult) -> RunResult:
        """Attach end-of-run bookkeeping (evaluator cache counters)."""
        result.measure_cache = self.measure_evaluator.cache_stats
        opt_evaluator = getattr(self.scheme, "evaluator", None)
        if opt_evaluator is not None:
            result.opt_cache = opt_evaluator.cache_stats
        return result

    def run(self, duration_h: float) -> RunResult:
        """Execute the control loop for ``duration_h`` hours of the trace."""
        n_epochs = self.n_epochs(duration_h)
        result = self.begin_run()
        for i in range(n_epochs):
            t_h = i * self.step_s / 3600.0
            self.step(result, i, t_h)
        return self.finalize(result)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _invocation_record(self, index, t_h, ci, outcome) -> InvocationRecord:
        candidates = tuple(
            CandidateRecord(
                order=k,
                delta_accuracy_pct=c.value.delta_accuracy_pct,
                delta_carbon_pct=c.value.delta_carbon_pct,
                f=c.value.f,
                sla_met=c.value.sla_met,
                virtual_cost_s=c.virtual_cost_s,
            )
            for k, c in enumerate(outcome.evaluated)
        )
        return InvocationRecord(
            index=index,
            t_h=t_h,
            ci=ci,
            num_evaluations=outcome.num_evaluations,
            cost_s=outcome.virtual_cost_s,
            termination=outcome.termination,
            candidates=candidates,
            deployed_label=str(outcome.deployed.partition_ids),
        )

    def _account_epoch(
        self, index, t_h, ci, deployed, optimized, opt_s, evaluated,
        rate_per_s=None, capacity=None,
    ) -> EpochRecord:
        rate = self.rate_per_s if rate_per_s is None else rate_per_s
        explore_s = min(opt_s, _MAX_EXPLORE_FRACTION * self.step_s)
        stable_s = self.step_s - explore_s

        energy_j = 0.0
        acc_weighted = 0.0
        requests = 0.0

        # Exploration windows: candidates serve live traffic while measured.
        if evaluated and explore_s > 0:
            total_cost = sum(c.virtual_cost_s for c in evaluated)
            scale = explore_s / total_cost if total_cost > 0 else 0.0
            for cand in evaluated:
                dt = cand.virtual_cost_s * scale
                r = rate * dt
                energy_j += cand.evaluation.power_watts * dt
                acc_weighted += cand.evaluation.accuracy * r
                requests += r

        if rate <= 0.0:
            # Zero-traffic epoch (a gated region fully drained): nothing is
            # served or measured, only the powered static draw is paid.
            n_powered = (
                capacity.awake_gpus if capacity is not None else self.scheme.n_gpus
            )
            static_w = (
                self.measure_evaluator.perf.power.static_watts_per_gpu()
                * n_powered
            )
            energy_j += static_w * stable_s
            p95_ms = float("nan")
            if capacity is None or n_powered >= deployed.n_gpus:
                num_instances = deployed.num_instances
            else:
                # Consistent with the gated branches: count only the
                # instances hosted on awake GPUs (first canonical subset).
                num_instances = sum(
                    a.partition.num_instances
                    for a in deployed.canonical().assignments[:n_powered]
                )
            sla_met, f, d_acc, d_carbon = True, 0.0, 0.0, 0.0
        elif (
            capacity is not None
            and capacity.wake_delay_s > 0.0
            and capacity.start_gpus < capacity.awake_gpus
        ):
            # Reactive wake: the epoch starts at the pre-wake capacity and
            # gains the woken GPUs only after the wake window — the real
            # price of scaling capacity after the demand already arrived.
            wake_s = min(capacity.wake_delay_s, stable_s)
            pre = self._evaluate_capped(deployed, rate, capacity.start_gpus)
            post = self._evaluate_capped(deployed, rate, capacity.awake_gpus)
            r_pre, r_post = rate * wake_s, rate * (stable_s - wake_s)
            # Energy is deterministic: the post-wake cluster's draw for the
            # whole window, minus the still-waking GPUs' static during the
            # wake window — their ramp draw is the driver's wake transition
            # energy (aux_energy_j), bounded by that same static floor, so
            # a gated epoch can never out-spend its always-on twin.
            waking = capacity.awake_gpus - capacity.start_gpus
            static_per_gpu = (
                self.measure_evaluator.perf.power.static_watts_per_gpu()
            )
            e_stable = (
                post.power_watts * stable_s - static_per_gpu * waking * wake_s
            )
            energy_j += e_stable
            acc_weighted += pre.accuracy * r_pre + post.accuracy * r_post
            requests += r_pre + r_post
            # Request-weighted tail across the two windows, with the wake
            # window measured on the *pre-wake* capacity; an overloaded
            # wake window (p95 = inf) poisons the whole epoch's SLA, which
            # is exactly the conservatism reactive gating must answer for.
            p95_ms = (pre.p95_ms * r_pre + post.p95_ms * r_post) / (r_pre + r_post)
            num_instances = post.num_instances
            score = self.objective.score(
                post.accuracy,
                e_stable / max(r_pre + r_post, 1e-300),
                p95_ms,
                ci,
            )
            sla_met, f = score.sla_met, score.f
            d_acc, d_carbon = score.delta_accuracy_pct, score.delta_carbon_pct
        else:
            # Stable window: the deployed configuration, DES-measured at the
            # epoch's (possibly routed) arrival rate.
            stable_eval = self.measure_evaluator.evaluate(deployed, rate_per_s=rate)
            r = rate * stable_s
            energy_j += stable_eval.power_watts * stable_s
            acc_weighted += stable_eval.accuracy * r
            requests += r
            p95_ms = stable_eval.p95_ms
            num_instances = (
                deployed.num_instances
                if capacity is None
                else stable_eval.num_instances
            )
            score = self.objective.score(
                stable_eval.accuracy,
                stable_eval.energy_per_request_j,
                stable_eval.p95_ms,
                ci,
            )
            sla_met, f = score.sla_met, score.f
            d_acc, d_carbon = score.delta_accuracy_pct, score.delta_carbon_pct

        if capacity is not None:
            # Driver-side elastic-capacity charges: sleeping GPUs' reduced
            # static draw plus this epoch's wake transitions.
            energy_j += capacity.aux_energy_j

        carbon = carbon_grams(energy_j, ci, self.pue)
        return EpochRecord(
            index=index,
            t_h=t_h,
            duration_s=self.step_s,
            ci=ci,
            config_label=str(deployed.partition_ids),
            num_instances=num_instances,
            requests=requests,
            energy_j=energy_j,
            carbon_g=carbon,
            accuracy=acc_weighted / requests if requests > 0 else 0.0,
            p95_ms=p95_ms,
            sla_met=sla_met,
            f_objective=f,
            delta_accuracy_pct=d_acc,
            delta_carbon_pct=d_carbon,
            optimized=optimized,
            optimization_s=explore_s,
            num_evaluations=len(evaluated),
            rate_per_s=rate,
            awake_gpus=capacity.awake_gpus if capacity is not None else None,
        )

    def _evaluate_capped(self, deployed, rate, n_awake):
        """Measure ``deployed`` with exactly ``n_awake`` GPUs powering it."""
        ev = self.measure_evaluator
        prev = ev.awake_gpus
        ev.set_awake_gpus(n_awake)
        try:
            return ev.evaluate(deployed, rate_per_s=rate)
        finally:
            ev.set_awake_gpus(prev)
