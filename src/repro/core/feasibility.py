"""Graph-space feasibility: which configuration graphs are realizable.

A configuration graph is an abstraction; deploying it requires finding
concrete per-GPU partitions whose slice histograms sum to the graph's
slice histogram (exact cover over the 19 MIG configurations), and variants
that respect the memory (OOM-edge) mask.  This module bridges the two
representations:

* :func:`graph_is_feasible` — the predicate the optimizer uses,
* :func:`realize_graph` — graph → concrete :class:`ClusterConfig`
  (deterministic, so realized deployments are reproducible).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ClusterConfig, GpuAssignment
from repro.core.graph import ConfigGraph
from repro.gpu.cluster import decompose_histogram
from repro.gpu.partitions import NUM_PARTITIONS, partition_by_id
from repro.gpu.slices import SLICE_TYPES

__all__ = ["graph_is_feasible", "realize_graph"]


def graph_is_feasible(
    graph: ConfigGraph,
    n_gpus: int,
    memory_mask: np.ndarray | None = None,
    max_partition_id: int = NUM_PARTITIONS,
) -> bool:
    """Whether ``graph`` can be deployed on ``n_gpus`` GPUs.

    Checks (a) the OOM-edge rule when a memory mask is given and (b) that
    the slice histogram decomposes into exactly ``n_gpus`` MIG partitions
    no finer than ``max_partition_id`` (the device pool's partition
    granularity; the default admits every MIG configuration).
    """
    if memory_mask is not None and not graph.respects_memory(memory_mask):
        return False
    return (
        decompose_histogram(graph.slice_histogram(), n_gpus, max_partition_id)
        is not None
    )


def realize_graph(
    graph: ConfigGraph, n_gpus: int, max_partition_id: int = NUM_PARTITIONS
) -> ClusterConfig:
    """Deterministically materialize a graph as a concrete configuration.

    The slice histogram is decomposed into per-GPU partitions; within each
    slice type, variant copies are dealt out in ascending ordinal order
    across the partitions in decomposition order.  Any realization of the
    same graph is observationally equivalent (the paper's compaction
    argument), so determinism is purely for reproducibility.

    Raises
    ------
    ValueError
        If the histogram cannot be decomposed into ``n_gpus`` partitions.
    """
    partition_ids = decompose_histogram(
        graph.slice_histogram(), n_gpus, max_partition_id
    )
    if partition_ids is None:
        raise ValueError(
            f"slice histogram {graph.slice_histogram().tolist()} is not "
            f"realizable on {n_gpus} GPUs"
        )

    # Per slice type, the queue of variant ordinals to deal out.
    queues: list[list[int]] = []
    for s in range(len(SLICE_TYPES)):
        col = graph.weights[:, s]
        queue: list[int] = []
        for v_idx in range(graph.num_variants):
            queue.extend([v_idx + 1] * int(col[v_idx]))
        queues.append(queue)
    positions = [0] * len(SLICE_TYPES)

    assignments: list[GpuAssignment] = []
    for pid in partition_ids:
        partition = partition_by_id(pid)
        ordinals: list[int] = []
        for slice_type in partition.slices:
            idx = slice_type.index
            ordinals.append(queues[idx][positions[idx]])
            positions[idx] += 1
        assignments.append(
            GpuAssignment(partition_id=pid, variant_ordinals=tuple(ordinals))
        )

    config = ClusterConfig(family=graph.family, assignments=tuple(assignments))
    return config.canonical()
