"""Simulated annealing in the configuration-graph space (Sec. 4.2).

Implements the paper's optimizer verbatim:

* energy ``h(x) = -f(x) * min(1, L_tail / L(x))`` (Eq. 6, via
  :meth:`repro.core.objective.ObjectiveSpec.score`),
* Metropolis acceptance ``P = exp(-(h' - h)/T)`` (Eq. 7),
* ``T`` starts at 1.0, cools by 0.05 per iteration down to 0.1,
* termination on a 5-minute (virtual) time budget or 5 consecutive
  evaluations without improving the best energy,
* neighbours sampled from the GED <= 4 ball around the current centre.

Because Clover optimizes *online*, every evaluated candidate is actually
deployed and measured on live traffic; the virtual
:class:`OptimizationCostModel` charges each evaluation the reconfiguration
time (MIG repartitions + model reloads proportional to how different the
candidate is) plus a measurement window.  The runner folds these costs into
the reported results, exactly as the paper does ("the overhead of running
optimization in the background is included in all our results").

:func:`random_search` is Blover's optimizer: uniform sampling in the raw
``(x_p, x_v)`` space with the same termination rule, used to isolate the
value of the graph representation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.evaluator import ConfigEvaluator, Evaluation
from repro.core.graph import ConfigGraph
from repro.core.moves import MoveGenerator
from repro.core.objective import ObjectiveSpec, ObjectiveValue
from repro.utils.rng import as_generator

__all__ = [
    "SAParams",
    "OptimizationCostModel",
    "EvaluatedCandidate",
    "OptimizationResult",
    "simulated_annealing",
    "random_search",
]

#: Improvements smaller than this do not reset the convergence counter
#: (floating-point noise must not keep the search alive).
_IMPROVEMENT_EPS = 1e-9


@dataclass(frozen=True)
class SAParams:
    """The paper's annealing schedule and termination rule.

    ``neighborhood`` widens each SA step to a batch: ``k`` neighbours are
    proposed around the centre, batch-evaluated in one call through the
    vectorized estimator, and the lowest-energy one faces the Metropolis
    test.  The default of 1 runs the paper's verbatim single-proposal
    chain (bit-for-bit the seed trajectory — proposal and acceptance
    draws interleave differently for any ``k > 1``).
    """

    t_initial: float = 1.0
    cooling: float = 0.05
    t_min: float = 0.1
    no_improve_limit: int = 5
    time_budget_s: float = 300.0
    max_evals: int = 500
    neighborhood: int = 1

    def __post_init__(self) -> None:
        if self.t_initial <= 0 or self.t_min <= 0 or self.t_min > self.t_initial:
            raise ValueError(
                f"need 0 < t_min <= t_initial, got {self.t_min}, {self.t_initial}"
            )
        if self.cooling < 0:
            raise ValueError(f"cooling must be non-negative, got {self.cooling}")
        if self.no_improve_limit < 1:
            raise ValueError(
                f"no_improve_limit must be >= 1, got {self.no_improve_limit}"
            )
        if self.time_budget_s <= 0 or self.max_evals < 1:
            raise ValueError("time budget and max_evals must be positive")
        if self.neighborhood < 1:
            raise ValueError(
                f"neighborhood must be >= 1, got {self.neighborhood}"
            )

    def temperature(self, iteration: int) -> float:
        """Annealing temperature at a 0-based iteration index."""
        return max(self.t_min, self.t_initial - self.cooling * iteration)


@dataclass(frozen=True)
class OptimizationCostModel:
    """Virtual wall-clock cost of deploying + measuring one candidate.

    ``measure_window_s`` is how long a candidate serves live traffic before
    its metrics are read; repartitions and model reloads come from how much
    the candidate differs from what is currently deployed.
    """

    measure_window_s: float = 2.0
    model_load_s: float = 2.5
    repartition_s: float = 8.0

    def __post_init__(self) -> None:
        if min(self.measure_window_s, self.model_load_s, self.repartition_s) < 0:
            raise ValueError("cost components must be non-negative")

    def reconfiguration_s(
        self, current: ClusterConfig | None, target: ClusterConfig, ged: int
    ) -> float:
        """Seconds to reconfigure from ``current`` to ``target``.

        GPUs repartition when the multiset of partition ids changes; model
        reloads are one per changed instance (GED / 2, since every
        elementary change touches two edge-weight units).
        """
        if current is None:
            # Cold start: partition everything and load every model.
            return (
                self.repartition_s
                + self.model_load_s * target.num_instances
            )
        cur_parts = Counter(current.partition_ids)
        tgt_parts = Counter(target.partition_ids)
        changed_gpus = sum((tgt_parts - cur_parts).values())
        reloads = ged / 2.0
        return self.repartition_s * (changed_gpus > 0) + self.model_load_s * reloads

    def evaluation_s(
        self, current: ClusterConfig | None, target: ClusterConfig, ged: int
    ) -> float:
        """Full cost of one online evaluation (reconfigure + measure)."""
        return self.reconfiguration_s(current, target, ged) + self.measure_window_s


@dataclass(frozen=True)
class EvaluatedCandidate:
    """One configuration the optimizer deployed and measured."""

    config: ClusterConfig
    evaluation: Evaluation
    value: ObjectiveValue
    virtual_cost_s: float

    @property
    def sa_energy(self) -> float:
        return self.value.sa_energy

    @property
    def deployable(self) -> bool:
        return self.value.deployable and self.evaluation.feasible_latency


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one optimization invocation."""

    best_deployable: EvaluatedCandidate | None
    best_any: EvaluatedCandidate
    evaluated: tuple[EvaluatedCandidate, ...]
    accepted: int
    elapsed_virtual_s: float
    termination: str

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluated)

    @property
    def sla_compliant_evaluations(self) -> int:
        return sum(1 for c in self.evaluated if c.value.sla_met)


class _Tracker:
    """Shared bookkeeping between SA and random search."""

    def __init__(
        self,
        evaluator: ConfigEvaluator,
        objective: ObjectiveSpec,
        ci: float,
        cost: OptimizationCostModel,
        num_variants: int,
        deployed: ClusterConfig | None,
    ) -> None:
        self.evaluator = evaluator
        self.objective = objective
        self.ci = ci
        self.cost = cost
        self.num_variants = num_variants
        self.deployed = deployed
        self.evaluated: list[EvaluatedCandidate] = []
        self.elapsed_s = 0.0
        self.best: EvaluatedCandidate | None = None
        self.best_deployable: EvaluatedCandidate | None = None
        self.no_improve = 0
        self._graphs: dict[ClusterConfig, ConfigGraph] = {}

    def graph(self, config: ClusterConfig) -> ConfigGraph:
        """Memoized graph projection.

        Every SA move needs both the previous candidate's graph and the
        new one's; the previous one was always projected on the move that
        produced it, so memoizing here makes each configuration cost one
        ``from_config`` for the whole search instead of two per move.
        """
        g = self._graphs.get(config)
        if g is None:
            g = ConfigGraph.from_config(config, self.num_variants)
            self._graphs[config] = g
        return g

    def evaluate(self, config: ClusterConfig) -> EvaluatedCandidate:
        """Deploy + measure one candidate, charging virtual time."""
        ev = self.evaluator.evaluate(config)
        return self._record(config, ev)

    def evaluate_many(
        self, configs: list[ClusterConfig]
    ) -> list[EvaluatedCandidate]:
        """Deploy + measure a neighbourhood in one batched estimator call.

        Virtual-time accounting is sequential, exactly as if the
        candidates had been measured one after another on live traffic.
        """
        evs = self.evaluator.evaluate_batch(configs)
        return [self._record(c, ev) for c, ev in zip(configs, evs)]

    def _record(
        self, config: ClusterConfig, ev: Evaluation
    ) -> EvaluatedCandidate:
        prev = self.evaluated[-1].config if self.evaluated else self.deployed
        ged = (
            self.graph(prev).ged(self.graph(config)) if prev is not None else 0
        )
        cost_s = self.cost.evaluation_s(prev, config, ged)
        val = self.objective.score(
            ev.accuracy, ev.energy_per_request_j, ev.p95_ms, self.ci
        )
        cand = EvaluatedCandidate(
            config=config, evaluation=ev, value=val, virtual_cost_s=cost_s
        )
        self.evaluated.append(cand)
        self.elapsed_s += cost_s
        self._update_best(cand)
        return cand

    def _update_best(self, cand: EvaluatedCandidate) -> None:
        if self.best is None or cand.sa_energy < self.best.sa_energy - _IMPROVEMENT_EPS:
            self.best = cand
            self.no_improve = 0
        else:
            self.no_improve += 1
        if cand.deployable and (
            self.best_deployable is None
            or cand.sa_energy < self.best_deployable.sa_energy
        ):
            self.best_deployable = cand

    def result(self, accepted: int, termination: str) -> OptimizationResult:
        assert self.best is not None
        return OptimizationResult(
            best_deployable=self.best_deployable,
            best_any=self.best,
            evaluated=tuple(self.evaluated),
            accepted=accepted,
            elapsed_virtual_s=self.elapsed_s,
            termination=termination,
        )


def simulated_annealing(
    initial: ClusterConfig,
    evaluator: ConfigEvaluator,
    objective: ObjectiveSpec,
    ci: float,
    moves: MoveGenerator,
    rng: int | np.random.Generator | None = None,
    params: SAParams = SAParams(),
    cost: OptimizationCostModel = OptimizationCostModel(),
    deployed: ClusterConfig | None = None,
) -> OptimizationResult:
    """Clover's graph-space simulated annealing at carbon intensity ``ci``.

    ``deployed`` is what the cluster currently runs (for reconfiguration
    cost); ``initial`` is the search centre (warm-started from the previous
    invocation's best in the Clover scheme).
    """
    gen = as_generator(rng)
    num_variants = evaluator.zoo.family(evaluator.family).num_variants
    tracker = _Tracker(evaluator, objective, ci, cost, num_variants, deployed)

    center = tracker.evaluate(initial.canonical())
    accepted = 0
    iteration = 0
    termination = "converged"
    while True:
        if tracker.no_improve >= params.no_improve_limit:
            termination = "converged"
            break
        if tracker.elapsed_s >= params.time_budget_s:
            termination = "time_budget"
            break
        if len(tracker.evaluated) >= params.max_evals:
            termination = "max_evals"
            break
        if params.neighborhood == 1:
            # The paper's verbatim chain: one proposal, one acceptance
            # draw per step, in the seed's exact RNG order.
            neighbor = moves.propose(center.config, gen)
            if neighbor is None:
                termination = "no_neighbors"
                break
            temperature = params.temperature(iteration)
            iteration += 1
            cand = tracker.evaluate(neighbor)
        else:
            k = min(
                params.neighborhood,
                params.max_evals - len(tracker.evaluated),
            )
            neighbors = []
            for _ in range(k):
                neighbor = moves.propose(center.config, gen)
                if neighbor is None:
                    break
                neighbors.append(neighbor)
            if not neighbors:
                termination = "no_neighbors"
                break
            temperature = params.temperature(iteration)
            iteration += 1
            cands = tracker.evaluate_many(neighbors)
            cand = min(cands, key=lambda c: c.sa_energy)
        p = objective.acceptance_probability(
            center.sa_energy, cand.sa_energy, temperature
        )
        if p >= 1.0 or gen.random() < p:
            center = cand
            accepted += 1

    return tracker.result(accepted, termination)


def random_search(
    initial: ClusterConfig,
    evaluator: ConfigEvaluator,
    objective: ObjectiveSpec,
    ci: float,
    moves: MoveGenerator,
    rng: int | np.random.Generator | None = None,
    params: SAParams = SAParams(),
    cost: OptimizationCostModel = OptimizationCostModel(),
    deployed: ClusterConfig | None = None,
    per_gpu_prob: float = 0.3,
) -> OptimizationResult:
    """Blover's optimizer: random search in the raw (x_p, x_v) space.

    Hill-climbing with raw-space proposals: each step re-draws a random
    subset of GPUs uniformly (fresh partition + variants) and keeps the
    candidate if it improves the Eq. 6 energy.  Identical termination rule
    and cost accounting as :func:`simulated_annealing`; only the proposal
    distribution differs — this isolates the value of the graph
    representation.  Raw-space proposals reconfigure whole GPUs, so Blover
    pays far more reconfiguration time per sample and its candidates
    violate the SLA far more often (Fig. 12b).
    """
    gen = as_generator(rng)
    num_variants = evaluator.zoo.family(evaluator.family).num_variants
    tracker = _Tracker(evaluator, objective, ci, cost, num_variants, deployed)

    # Plain random search: every draw perturbs the *starting* configuration
    # (no hill-climbing chain — that would be an optimizer design of its
    # own, which Blover by definition lacks).
    center = tracker.evaluate(initial.canonical())
    termination = "converged"
    while True:
        if tracker.no_improve >= params.no_improve_limit:
            termination = "converged"
            break
        if tracker.elapsed_s >= params.time_budget_s:
            termination = "time_budget"
            break
        if len(tracker.evaluated) >= params.max_evals:
            termination = "max_evals"
            break
        tracker.evaluate(
            moves.perturb_config(center.config, gen, per_gpu_prob)
        )

    return tracker.result(accepted=0, termination=termination)
