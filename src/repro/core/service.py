"""Public facade: assemble and run a carbon-aware inference service.

This is the module a downstream user imports.  It wires together the
substrates (model zoo, performance model, workload, carbon trace) and the
Clover machinery (objective, evaluators, scheme, monitor, controller)
behind one call:

>>> from repro import CarbonAwareInferenceService
>>> service = CarbonAwareInferenceService.create(application="classification")
>>> report = service.run(duration_h=48.0)
>>> print(report.total_carbon_g, report.accuracy_loss_pct)

The paper's methodology defaults are baked in: 10 GPUs, Poisson workload
sized to 65% of BASE capacity, the SLA fixed to BASE's measured p95,
``lambda = 0.5``, PUE 1.5, and the US CISO March trace.

This facade is single-cluster by design; :mod:`repro.fleet` composes many
of these services into a multi-region fleet by (a) passing a per-region
``trace``/``pue``/``baseline`` here and (b) driving the controller through
its step-wise API with per-epoch routed rates instead of :meth:`run`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.carbon.accounting import DEFAULT_PUE, carbon_grams
from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.monitor import CarbonIntensityMonitor, DEFAULT_CHANGE_THRESHOLD
from repro.carbon.traces import ciso_march_48h
from repro.core.annealing import OptimizationCostModel, SAParams
from repro.core.config import base_config
from repro.core.controller import RunResult, ServiceController
from repro.core.evaluator import ConfigEvaluator
from repro.core.objective import ObjectiveSpec
from repro.core.schemes import Scheme, make_scheme
from repro.models.perf import PerfModel
from repro.models.zoo import ModelZoo, default_zoo
from repro.serving.sla import SlaPolicy
from repro.serving.workload import DEFAULT_BASE_UTILIZATION, default_rate
from repro.utils.rng import RngMixer

__all__ = ["FidelityProfile", "Baseline", "CarbonAwareInferenceService"]

#: The paper's testbed size: ten A100 GPUs.
PAPER_N_GPUS = 10

#: The paper's default carbon-vs-accuracy weight.
PAPER_LAMBDA = 0.5


@dataclass(frozen=True)
class FidelityProfile:
    """Simulation fidelity knobs (runtime vs measurement-precision).

    The paper's cadence (5-minute epochs, long measurement windows, a full
    5-minute SA budget) is hours of wall time per run; lower-fidelity
    profiles keep the identical structure with smaller samples.
    """

    name: str
    step_minutes: float
    measure_des_requests: int
    sla_des_requests: int
    sa_params: SAParams
    cost_model: OptimizationCostModel

    @classmethod
    def smoke(cls) -> "FidelityProfile":
        """CI-speed: hourly epochs, small DES samples."""
        return cls(
            name="smoke",
            step_minutes=60.0,
            measure_des_requests=400,
            sla_des_requests=4000,
            sa_params=SAParams(time_budget_s=300.0, max_evals=40),
            cost_model=OptimizationCostModel(),
        )

    @classmethod
    def default(cls) -> "FidelityProfile":
        """Benchmark-grade: 10-minute epochs, moderate DES samples."""
        return cls(
            name="default",
            step_minutes=10.0,
            measure_des_requests=1000,
            sla_des_requests=12000,
            sa_params=SAParams(time_budget_s=300.0, max_evals=120),
            cost_model=OptimizationCostModel(),
        )

    @classmethod
    def paper(cls) -> "FidelityProfile":
        """Paper cadence: 5-minute epochs, large DES samples."""
        return cls(
            name="paper",
            step_minutes=5.0,
            measure_des_requests=4000,
            sla_des_requests=50000,
            sa_params=SAParams(time_budget_s=300.0, max_evals=500),
            cost_model=OptimizationCostModel(),
        )

    @classmethod
    def by_name(cls, name: str) -> "FidelityProfile":
        factories = {"smoke": cls.smoke, "default": cls.default, "paper": cls.paper}
        try:
            return factories[name.lower()]()
        except KeyError:
            valid = ", ".join(sorted(factories))
            raise ValueError(f"unknown fidelity {name!r}; valid: {valid}") from None


@dataclass(frozen=True)
class Baseline:
    """Measured properties of the BASE deployment that anchor the objective.

    ``sla`` is BASE's p95 (the paper never relaxes it); ``c_base`` is BASE's
    per-request carbon at the baseline (trace-mean) intensity.
    """

    a_base: float
    e_base_j_per_request: float
    c_base_g_per_request: float
    sla: SlaPolicy
    ci_base: float


def derive_baseline(
    zoo: ModelZoo,
    perf: PerfModel,
    family: str,
    n_gpus: int,
    rate_per_s: float,
    ci_base: float,
    des_requests: int,
    seed: int,
    pue: float = DEFAULT_PUE,
    device_pool=None,
) -> Baseline:
    """Measure the BASE deployment to fix ``A_base``, ``C_base`` and the SLA.

    ``device_pool`` prices BASE on heterogeneous silicon (see
    :class:`~repro.core.evaluator.ConfigEvaluator`): the measured p95 — and
    hence the SLA the fleet is held to — reflects the pool's actual speed,
    and ``e_base`` its actual joules per request.
    """
    fam = zoo.family(family)
    evaluator = ConfigEvaluator(
        zoo=zoo,
        perf=perf,
        family=family,
        rate_per_s=rate_per_s,
        n_gpus=n_gpus,
        method="des",
        des_requests=des_requests,
        seed=seed,
        device_pool=device_pool,
    )
    ev = evaluator.evaluate(base_config(fam, n_gpus))
    if ev.overloaded:
        raise ValueError(
            "BASE deployment is overloaded at the requested rate; lower the "
            "target utilization"
        )
    return Baseline(
        a_base=fam.base_accuracy,
        e_base_j_per_request=ev.energy_per_request_j,
        c_base_g_per_request=carbon_grams(ev.energy_per_request_j, ci_base, pue),
        sla=SlaPolicy(p95_target_ms=ev.p95_ms),
        ci_base=ci_base,
    )


class CarbonAwareInferenceService:
    """A fully-assembled carbon-aware ML inference service (the paper's Fig. 5).

    Build with :meth:`create` (paper defaults) or the constructor (full
    control); :meth:`run` executes the control loop over the carbon trace
    and returns the measured :class:`~repro.core.controller.RunResult`.
    """

    def __init__(
        self,
        scheme: Scheme,
        controller: ServiceController,
        baseline: Baseline,
        trace: CarbonIntensityTrace,
    ) -> None:
        self.scheme = scheme
        self.controller = controller
        self.baseline = baseline
        self.trace = trace

    @classmethod
    def create(
        cls,
        application: str = "classification",
        scheme: str = "clover",
        n_gpus: int = PAPER_N_GPUS,
        lambda_weight: float = PAPER_LAMBDA,
        trace: CarbonIntensityTrace | None = None,
        zoo: ModelZoo | None = None,
        perf: PerfModel | None = None,
        utilization: float = DEFAULT_BASE_UTILIZATION,
        rate_per_s: float | None = None,
        accuracy_floor_pct: float | None = None,
        change_threshold: float = DEFAULT_CHANGE_THRESHOLD,
        fidelity: FidelityProfile | str = "default",
        pue: float = DEFAULT_PUE,
        seed: int = 0,
        baseline: Baseline | None = None,
        device_pool=None,
    ) -> "CarbonAwareInferenceService":
        """Assemble a service with the paper's methodology defaults.

        Parameters mirror Sec. 5.1: ``application`` picks the Table-1 model
        family; ``scheme`` one of base/co2opt/blover/clover/oracle;
        ``lambda_weight`` the Eq. 3 trade-off; ``accuracy_floor_pct`` the
        optional Fig. 14b hard accuracy budget; ``rate_per_s`` overrides the
        65%-of-BASE workload sizing.  Passing ``baseline`` pins the SLA and
        ``C_base`` externally — Fig. 15 uses this to hold the 10-GPU SLA
        while provisioning fewer GPUs.

        ``device_pool`` (a :class:`repro.gpu.profiles.DevicePool`) serves
        on heterogeneous silicon: the workload sizing, both evaluators, the
        measured baseline and the scheme's partition search space all
        parameterize on the pool.  ``None`` — or an all-A100 pool — is the
        seed single-device service, bit for bit.
        """
        if isinstance(fidelity, str):
            fidelity = FidelityProfile.by_name(fidelity)
        zoo = zoo or default_zoo()
        perf = perf or PerfModel()
        trace = trace if trace is not None else ciso_march_48h()
        fam = zoo.for_application(application)
        if device_pool is not None and device_pool.is_default_a100:
            device_pool = None  # the implicit seed fleet, bit for bit
        if device_pool is not None and device_pool.n_gpus != n_gpus:
            raise ValueError(
                f"device pool has {device_pool.n_gpus} GPUs, service "
                f"declares {n_gpus}"
            )

        rate = (
            rate_per_s
            if rate_per_s is not None
            else default_rate(
                fam, perf, n_gpus, utilization,
                throughput_scale_sum=(
                    None if device_pool is None
                    else device_pool.throughput_scale_sum
                ),
            )
        )
        mixer = RngMixer(seed=seed)

        if baseline is None:
            baseline = derive_baseline(
                zoo=zoo,
                perf=perf,
                family=fam.name,
                n_gpus=n_gpus,
                rate_per_s=rate,
                ci_base=trace.mean(),
                des_requests=fidelity.sla_des_requests,
                seed=seed,
                pue=pue,
                device_pool=device_pool,
            )
        objective = ObjectiveSpec(
            lambda_weight=lambda_weight,
            a_base=baseline.a_base,
            c_base=baseline.c_base_g_per_request,
            sla=baseline.sla,
            pue=pue,
            accuracy_floor_pct=accuracy_floor_pct,
        )

        opt_evaluator = ConfigEvaluator(
            zoo=zoo,
            perf=perf,
            family=fam.name,
            rate_per_s=rate,
            n_gpus=n_gpus,
            method="analytic",
            seed=seed,
            device_pool=device_pool,
        )
        measure_evaluator = ConfigEvaluator(
            zoo=zoo,
            perf=perf,
            family=fam.name,
            rate_per_s=rate,
            n_gpus=n_gpus,
            method="des",
            des_requests=fidelity.measure_des_requests,
            seed=seed + 1,
            device_pool=device_pool,
        )

        scheme_obj = make_scheme(
            scheme,
            zoo=zoo,
            family=fam.name,
            n_gpus=n_gpus,
            evaluator=opt_evaluator,
            objective=objective,
            mixer=mixer,
            sa_params=fidelity.sa_params,
            cost_model=fidelity.cost_model,
            max_partition_id=(
                None if device_pool is None
                else device_pool.partition_granularity
            ),
        )
        monitor = CarbonIntensityMonitor(trace=trace, threshold=change_threshold)
        controller = ServiceController(
            scheme=scheme_obj,
            objective=objective,
            monitor=monitor,
            measure_evaluator=measure_evaluator,
            rate_per_s=rate,
            application=application,
            step_s=fidelity.step_minutes * 60.0,
            pue=pue,
        )
        return cls(
            scheme=scheme_obj,
            controller=controller,
            baseline=baseline,
            trace=trace,
        )

    def run(self, duration_h: float | None = None) -> RunResult:
        """Run the service over the trace (default: the full trace span)."""
        if duration_h is None:
            duration_h = self.trace.span_h
        return self.controller.run(duration_h)

    def with_objective(self, **changes) -> "CarbonAwareInferenceService":
        """Clone with a tweaked objective (e.g. a new lambda or floor).

        Accepts any :class:`ObjectiveSpec` field; resets the monitor state.
        """
        new_objective = replace(self.controller.objective, **changes)
        self.scheme.objective = new_objective
        self.controller.objective = new_objective
        self.controller.monitor.reset()
        return self
