"""The Clover configuration graph and graph edit distance (Sec. 4.2).

A configuration graph is a weighted bipartite graph between **model-variant
vertices** and **MIG slice-type vertices**; the weight of edge ``(v, s)`` is
the number of copies of variant ``v`` hosted on slices of type ``s``
anywhere in the cluster.  Because both vertex sets are fixed, the graph is
fully described by its ``(V, 5)`` integer weight matrix, and the paper's
graph edit distance (each edge-weight unit added or removed is one edit)
reduces to the L1 distance between weight matrices.

That representation delivers the two properties the paper claims:

* **compaction** — physically different placements with the same
  variant-on-slice-type multiset collapse to one graph (MIG isolation makes
  them observationally identical), and
* **additivity** — adding GPUs to the cluster adds their edge weights;
  removing subtracts them (``__add__`` / ``__sub__`` below).

NetworkX interop (:meth:`ConfigGraph.to_networkx`) is provided because the
paper implements its graphs with NetworkX; the optimizer itself works on the
weight matrices directly, which is orders of magnitude faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import networkx as nx
import numpy as np

from repro.gpu.slices import SLICE_TYPES
from repro.core.config import ClusterConfig, GpuAssignment

__all__ = ["ConfigGraph", "graph_edit_distance"]


@lru_cache(maxsize=8192)
def _assignment_weights(
    assignment: GpuAssignment, num_variants: int
) -> np.ndarray:
    """One GPU's contribution to the weight matrix, memoized.

    Assignments recur constantly across a search (a candidate differs from
    its parent on one GPU), so projecting per assignment and summing the
    cached int64 matrices reproduces the per-instance loop exactly —
    integer adds are order-independent — at a fraction of the cost.
    """
    w = np.zeros((num_variants, len(SLICE_TYPES)), dtype=np.int64)
    for slice_type, ordinal in assignment.instances():
        if ordinal > num_variants:
            raise ValueError(
                f"config uses variant ordinal {ordinal} but the family has "
                f"only {num_variants} variants"
            )
        w[ordinal - 1, slice_type.index] += 1
    w.setflags(write=False)
    return w


@dataclass(frozen=True)
class ConfigGraph:
    """Weighted bipartite variant x slice-type graph of a configuration.

    ``weights[v - 1, s]`` = copies of variant ordinal ``v`` on slice type
    index ``s`` (0 = 1g .. 4 = 7g).
    """

    family: str
    weights: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=np.int64)
        if w.ndim != 2 or w.shape[1] != len(SLICE_TYPES):
            raise ValueError(
                f"weights must be (num_variants, {len(SLICE_TYPES)}), got {w.shape}"
            )
        if np.any(w < 0):
            raise ValueError("edge weights must be non-negative")
        w = w.copy()
        w.setflags(write=False)
        object.__setattr__(self, "weights", w)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_config(cls, config: ClusterConfig, num_variants: int) -> "ConfigGraph":
        """Project a concrete cluster configuration onto its graph.

        Memoized per ``(config, num_variants)``: graphs are frozen with
        write-locked weights, so a search that revisits a configuration
        (every SA move touches prev and candidate) shares one instance
        instead of re-projecting.
        """
        return _graph_from_config(config, num_variants)

    # ------------------------------------------------------------------ #
    # graph edit distance and similarity
    # ------------------------------------------------------------------ #

    def ged(self, other: "ConfigGraph") -> int:
        """Graph edit distance: L1 distance between weight matrices.

        One unit of edge weight added or removed is one edit, so swapping
        one instance's variant costs 2 and moving one instance to a
        different slice type costs 2 — the neighbourhood arithmetic of
        Sec. 4.2.
        """
        self._check_compatible(other)
        return int(np.abs(self.weights - other.weights).sum())

    def is_neighbor(self, other: "ConfigGraph", threshold: int = 4) -> bool:
        """Whether ``other`` is within the paper's GED-4 neighbourhood."""
        d = self.ged(other)
        return 0 < d <= threshold

    # ------------------------------------------------------------------ #
    # additivity (the paper's second advantage of the graph form)
    # ------------------------------------------------------------------ #

    def __add__(self, other: "ConfigGraph") -> "ConfigGraph":
        self._check_compatible(other)
        return ConfigGraph(family=self.family, weights=self.weights + other.weights)

    def __sub__(self, other: "ConfigGraph") -> "ConfigGraph":
        """Edge-weight deduction (removing GPUs); negative results raise."""
        self._check_compatible(other)
        diff = self.weights - other.weights
        if np.any(diff < 0):
            raise ValueError(
                "cannot remove more instances than the graph contains"
            )
        return ConfigGraph(family=self.family, weights=diff)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def num_variants(self) -> int:
        return int(self.weights.shape[0])

    @property
    def total_instances(self) -> int:
        """Total number of hosted model copies (sum of all edge weights)."""
        return int(self.weights.sum())

    def slice_histogram(self) -> np.ndarray:
        """Cluster slice-type histogram (column sums), len 5."""
        return self.weights.sum(axis=0)

    def variant_counts(self) -> np.ndarray:
        """Copies of each variant (row sums), len ``num_variants``."""
        return self.weights.sum(axis=1)

    def respects_memory(self, memory_mask: np.ndarray) -> bool:
        """No weight on an edge the zoo's OOM rule disables."""
        if memory_mask.shape != self.weights.shape:
            raise ValueError(
                f"memory mask shape {memory_mask.shape} does not match "
                f"weights {self.weights.shape}"
            )
        return not np.any(self.weights[~memory_mask])

    def key(self) -> bytes:
        """Stable hashable key for evaluator caching."""
        return self.weights.tobytes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigGraph):
            return NotImplemented
        return self.family == other.family and np.array_equal(
            self.weights, other.weights
        )

    def __hash__(self) -> int:
        return hash((self.family, self.key()))

    def _check_compatible(self, other: "ConfigGraph") -> None:
        if self.family != other.family:
            raise ValueError(
                f"cannot compare graphs of families "
                f"{self.family!r} and {other.family!r}"
            )
        if self.weights.shape != other.weights.shape:
            raise ValueError(
                f"graph shapes differ: {self.weights.shape} vs "
                f"{other.weights.shape}"
            )

    # ------------------------------------------------------------------ #
    # NetworkX interop
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> nx.DiGraph:
        """The directed bipartite graph of Definition 1, as a NetworkX graph.

        Variant vertices are ``"V1" .. "Vk"``, slice vertices ``"1g" ..
        "7g"``; only edges with positive weight are materialized.
        """
        g = nx.DiGraph()
        for v in range(self.num_variants):
            g.add_node(f"V{v + 1}", bipartite="variant")
        for s in SLICE_TYPES:
            g.add_node(s.name, bipartite="slice")
        rows, cols = np.nonzero(self.weights)
        for v, s in zip(rows, cols):
            g.add_edge(
                f"V{v + 1}", SLICE_TYPES[s].name, weight=int(self.weights[v, s])
            )
        return g

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        edges = [
            f"V{v + 1}-{SLICE_TYPES[s].name}:{self.weights[v, s]}"
            for v, s in zip(*np.nonzero(self.weights))
        ]
        return f"ConfigGraph({self.family}; {', '.join(edges)})"


@lru_cache(maxsize=4096)
def _graph_from_config(config: ClusterConfig, num_variants: int) -> ConfigGraph:
    """Memoized body of :meth:`ConfigGraph.from_config`.

    Safe to share because :class:`ConfigGraph` is frozen and its weight
    matrix is write-locked; integer per-assignment sums reproduce the
    per-instance projection exactly.
    """
    w = np.zeros((num_variants, len(SLICE_TYPES)), dtype=np.int64)
    for assignment in config.assignments:
        w += _assignment_weights(assignment, num_variants)
    return ConfigGraph(family=config.family, weights=w)


def graph_edit_distance(a: ConfigGraph, b: ConfigGraph) -> int:
    """Module-level alias of :meth:`ConfigGraph.ged` (reads better in code
    that treats GED as a metric between two graphs)."""
    return a.ged(b)
