"""Neighbourhood moves in the configuration-graph space (Sec. 4.2).

The paper defines the SA neighbourhood as all configurations within graph
edit distance 4 of the current centre: one variant swap costs 2, one
slice-type switch costs 2, so a neighbour differs by at most two elementary
changes.  :class:`MoveGenerator` samples such neighbours by applying
elementary moves to a *concrete* cluster configuration (so feasibility —
both MIG placement and memory — holds by construction) and then verifying
the resulting graph distance:

* ``variant``      — re-host one instance with a different variant (GED 2),
* ``variant2``     — two independent variant swaps (GED up to 4),
* ``repartition``  — change one GPU to a partition whose slice histogram is
  within L1 distance 4, inheriting variants where slices survive
  (GED up to 4: slice switches + instance additions/removals).

Candidates whose graph leaves the GED <= 4 ball (e.g. two swaps that happen
to touch the same edge and cancel, or a repartition that forces too many
variant changes) are rejected and re-sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ClusterConfig, GpuAssignment
from repro.core.graph import ConfigGraph
from repro.gpu.partitions import MIG_PARTITIONS, partition_by_id
from repro.models.zoo import ModelZoo
from repro.utils.rng import as_generator

__all__ = ["MoveGenerator", "partition_neighbors", "GED_THRESHOLD"]

#: The paper's neighbourhood radius: "Clover sets this GED threshold to be
#: four".
GED_THRESHOLD = 4


def partition_neighbors(
    threshold: int = GED_THRESHOLD,
    max_partition_id: int = len(MIG_PARTITIONS),
) -> dict[int, tuple[int, ...]]:
    """Pairs of MIG partitions whose histograms differ by <= ``threshold``.

    The histogram L1 difference lower-bounds the GED cost of repartitioning
    one GPU, so only these pairs can yield in-neighbourhood moves.
    ``max_partition_id`` restricts both sides of every pair to the device
    pool's partition granularity.
    """
    partitions = [p for p in MIG_PARTITIONS if p.config_id <= max_partition_id]
    hists = {p.config_id: p.histogram() for p in partitions}
    out: dict[int, list[int]] = {p.config_id: [] for p in partitions}
    for a in partitions:
        for b in partitions:
            if a.config_id == b.config_id:
                continue
            d = int(np.abs(hists[a.config_id] - hists[b.config_id]).sum())
            if d <= threshold:
                out[a.config_id].append(b.config_id)
    return {k: tuple(v) for k, v in out.items()}


@dataclass
class MoveGenerator:
    """Samples random GED <= 4 neighbours of a cluster configuration.

    ``max_partition_id`` bounds every sampled or proposed partition to the
    device pool's granularity (see
    :attr:`repro.gpu.profiles.DevicePool.partition_granularity`): a
    granularity-1 pool (an L4 in the mix) restricts the search to
    unpartitioned GPUs, where the only moves left are variant swaps.
    """

    zoo: ModelZoo
    family: str
    threshold: int = GED_THRESHOLD
    max_attempts: int = 64
    max_partition_id: int = len(MIG_PARTITIONS)
    _partition_adj: dict[int, tuple[int, ...]] = field(init=False, repr=False)
    _num_variants: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.threshold < 2:
            raise ValueError(
                f"threshold below 2 admits no moves, got {self.threshold}"
            )
        if not 1 <= self.max_partition_id <= len(MIG_PARTITIONS):
            raise ValueError(
                f"max partition id must be in [1, {len(MIG_PARTITIONS)}], "
                f"got {self.max_partition_id}"
            )
        self._partition_adj = partition_neighbors(
            self.threshold, self.max_partition_id
        )
        self._num_variants = self.zoo.family(self.family).num_variants

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def propose(
        self, config: ClusterConfig, rng: int | np.random.Generator | None = None
    ) -> ClusterConfig | None:
        """One random neighbour of ``config`` (GED in (0, threshold]).

        Returns ``None`` if ``max_attempts`` samples all failed to produce a
        distinct in-neighbourhood configuration (tiny families on tiny
        clusters can have very few neighbours).
        """
        gen = as_generator(rng)
        base_graph = ConfigGraph.from_config(config, self._num_variants)
        kinds = ("variant", "variant", "variant2", "repartition", "repartition")
        for _ in range(self.max_attempts):
            kind = kinds[int(gen.integers(len(kinds)))]
            if kind == "variant":
                candidate = self._move_variant(config, gen)
            elif kind == "variant2":
                candidate = self._move_variant(config, gen)
                if candidate is not None:
                    candidate = self._move_variant(candidate, gen)
            else:
                candidate = self._move_repartition(config, gen)
            if candidate is None:
                continue
            cand_graph = ConfigGraph.from_config(candidate, self._num_variants)
            if base_graph.is_neighbor(cand_graph, self.threshold):
                return candidate.canonical()
        return None

    def random_config(
        self, n_gpus: int, rng: int | np.random.Generator | None = None
    ) -> ClusterConfig:
        """Uniformly random raw-space configuration (Blover's sampler).

        Independently draws each GPU's partition among the 19 and each
        slice's variant among the memory-feasible ordinals — the "original
        problem space defined by x_p and x_v".
        """
        gen = as_generator(rng)
        assignments = tuple(
            self._random_assignment(gen) for _ in range(n_gpus)
        )
        return ClusterConfig(
            family=self.family, assignments=assignments
        ).canonical()

    def perturb_config(
        self,
        config: ClusterConfig,
        rng: int | np.random.Generator | None = None,
        per_gpu_prob: float = 0.3,
    ) -> ClusterConfig:
        """Raw-space random perturbation (Blover's proposal distribution).

        Each GPU is independently re-drawn (fresh random partition and
        variants) with probability ``per_gpu_prob``; at least one GPU always
        changes.  This is "random search in the original (x_p, x_v) space":
        without the graph representation there is no notion of a *small*
        step, so every proposal reconfigures whole GPUs — which is exactly
        why Blover pays more reconfiguration time and violates the SLA more
        often during exploration than Clover's GED <= 4 moves.
        """
        if not 0.0 < per_gpu_prob <= 1.0:
            raise ValueError(
                f"per_gpu_prob must be in (0, 1], got {per_gpu_prob}"
            )
        gen = as_generator(rng)
        flags = gen.random(config.n_gpus) < per_gpu_prob
        if not flags.any():
            flags[int(gen.integers(config.n_gpus))] = True
        assignments = tuple(
            self._random_assignment(gen) if flag else assignment
            for flag, assignment in zip(flags, config.assignments)
        )
        return ClusterConfig(
            family=self.family, assignments=assignments
        ).canonical()

    def _random_assignment(self, gen: np.random.Generator) -> GpuAssignment:
        """One GPU's uniformly random *supported* partition + variants."""
        pid = int(gen.integers(1, self.max_partition_id + 1))
        partition = partition_by_id(pid)
        ordinals = tuple(
            int(gen.choice(self.zoo.feasible_variants(self.family, s.index)))
            for s in partition.slices
        )
        return GpuAssignment(partition_id=pid, variant_ordinals=ordinals)

    # ------------------------------------------------------------------ #
    # elementary moves
    # ------------------------------------------------------------------ #

    def _move_variant(
        self, config: ClusterConfig, gen: np.random.Generator
    ) -> ClusterConfig | None:
        """Swap the variant of one uniformly-chosen instance (GED 2)."""
        sizes = [a.partition.num_instances for a in config.assignments]
        total = sum(sizes)
        flat = int(gen.integers(total))
        gpu_idx = 0
        while flat >= sizes[gpu_idx]:
            flat -= sizes[gpu_idx]
            gpu_idx += 1
        assignment = config.assignments[gpu_idx]
        slice_type = assignment.partition.slices[flat]
        current = assignment.variant_ordinals[flat]
        feasible = [
            o
            for o in self.zoo.feasible_variants(self.family, slice_type.index)
            if o != current
        ]
        if not feasible:
            return None
        new_ordinal = int(feasible[int(gen.integers(len(feasible)))])
        ordinals = list(assignment.variant_ordinals)
        ordinals[flat] = new_ordinal
        return config.with_assignment(
            gpu_idx,
            GpuAssignment(
                partition_id=assignment.partition_id,
                variant_ordinals=tuple(ordinals),
            ),
        )

    def _move_repartition(
        self, config: ClusterConfig, gen: np.random.Generator
    ) -> ClusterConfig | None:
        """Repartition one GPU to an adjacent MIG configuration.

        Variants are inherited slice-type by slice-type; slices that survive
        keep their variants, displaced variants fill new slices when they
        fit, and any remaining new slice takes the closest feasible ordinal
        of a displaced variant (keeping the move's GED minimal).
        """
        gpu_idx = int(gen.integers(config.n_gpus))
        assignment = config.assignments[gpu_idx]
        neighbors = self._partition_adj[assignment.partition_id]
        if not neighbors:
            return None
        new_pid = int(neighbors[int(gen.integers(len(neighbors)))])
        new_partition = partition_by_id(new_pid)

        # Pools of old variants per slice-type index.
        pools: dict[int, list[int]] = {}
        for slice_type, ordinal in assignment.instances():
            pools.setdefault(slice_type.index, []).append(ordinal)

        ordinals: list[int] = []
        displaced: list[int] = []
        for slice_type in new_partition.slices:
            pool = pools.get(slice_type.index)
            if pool:
                ordinals.append(pool.pop())
            else:
                ordinals.append(-1)  # placeholder: fill from displaced below
        for leftover in pools.values():
            displaced.extend(leftover)

        feasible_cache: dict[int, tuple[int, ...]] = {}
        for i, slice_type in enumerate(new_partition.slices):
            if ordinals[i] != -1:
                continue
            feas = feasible_cache.setdefault(
                slice_type.index,
                self.zoo.feasible_variants(self.family, slice_type.index),
            )
            if not feas:
                return None
            chosen = None
            for j, d in enumerate(displaced):
                if d in feas:
                    chosen = displaced.pop(j)
                    break
            if chosen is None:
                if displaced:
                    # Closest feasible ordinal to a displaced variant.
                    target = displaced.pop(0)
                    chosen = min(feas, key=lambda o: abs(o - target))
                else:
                    chosen = int(feas[int(gen.integers(len(feas)))])
            ordinals[i] = chosen

        return config.with_assignment(
            gpu_idx,
            GpuAssignment(partition_id=new_pid, variant_ordinals=tuple(ordinals)),
        )
